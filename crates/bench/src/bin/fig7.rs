//! Fig 7: micro-tiling strategy comparison (OpenBLAS vs LIBXSMM vs DMT)
//! on KP920, Graviton2 and M2, over the sub-matrix shapes the paper uses.

use autogemm_arch::ChipSpec;
use autogemm_bench::{pct, print_table};
use autogemm_kernelgen::MicroTile;
use autogemm_perfmodel::ModelOpts;
use autogemm_tiling::{plan_dmt, plan_libxsmm, plan_openblas, TilePlan};
use autogemm_tuner::space::LoopOrder;
use autogemm_tuner::{Packing, Schedule};

/// Simulate a whole-block plan as autoGEMM would execute it.
fn simulate_plan(
    plan: TilePlan,
    m: usize,
    n: usize,
    kc: usize,
    chip: &ChipSpec,
    opts: ModelOpts,
) -> f64 {
    let schedule = Schedule {
        m,
        n,
        k: kc,
        mc: m,
        nc: n,
        kc,
        order: LoopOrder::goto(),
        packing: Packing::Online,
    };
    let exec = autogemm::ExecutionPlan {
        schedule,
        block_plan: plan,
        opts,
        sigma_lane: chip.sigma_lane(),
        warmth: None,
        routing: autogemm::OperandRouting::packed(),
    };
    let block = autogemm::simexec::simulate_block(&exec, chip, true);
    let flops = (2 * m * n * kc) as f64;
    let gflops = flops * chip.freq_ghz / block.cycles as f64;
    gflops / chip.peak_gflops_core()
}

fn main() {
    let kc = 64usize;
    let opts = ModelOpts { rotate: true, fused: true };
    let shapes = [(80usize, 32usize), (25, 64), (26, 36), (26, 64), (13, 20), (31, 44)];
    for chip in autogemm_bench::fig_chips() {
        let mut rows = Vec::new();
        for (m, n) in shapes {
            let tile = MicroTile::new(5, 16);
            let ob = simulate_plan(
                plan_openblas(m, n, tile),
                m,
                n,
                kc,
                &chip,
                ModelOpts { rotate: true, fused: false },
            );
            let xs = simulate_plan(
                plan_libxsmm(m, n, tile, 4),
                m,
                n,
                kc,
                &chip,
                ModelOpts { rotate: true, fused: false },
            );
            let dmt_plan = plan_dmt(m, n, kc, &chip, opts);
            let tiles = dmt_plan.tile_count();
            let low_ai = dmt_plan.low_ai_count(&chip);
            let dmt = simulate_plan(dmt_plan, m, n, kc, &chip, opts);
            rows.push(vec![
                format!("{m}x{n}"),
                pct(ob),
                pct(xs),
                pct(dmt),
                tiles.to_string(),
                low_ai.to_string(),
            ]);
        }
        print_table(
            &format!("Fig 7 — tiling strategies on {} (k_c = {kc})", chip.name),
            &["M x N", "OpenBLAS", "LIBXSMM", "DMT (ours)", "DMT tiles", "DMT low-AI"],
            &rows,
        );
    }
    println!(
        "\npaper landmarks: ties at 80x32 and 25x64 (same 5x16 grid); at 26x64 DMT eliminates"
    );
    println!("low-AI tiles on low-sigma_AI chips (Graviton2/M2) and minimizes them on KP920.");
}
