//! Table V: the 20 irregular GEMM shapes extracted from ResNet-50.

use autogemm_bench::print_table;
use autogemm_workloads::resnet50_table_v;

fn main() {
    let rows: Vec<Vec<String>> = resnet50_table_v()
        .into_iter()
        .map(|l| {
            vec![
                l.name(),
                l.m.to_string(),
                l.n.to_string(),
                l.k.to_string(),
                format!("{:.1}", l.flops() as f64 / 1e6),
            ]
        })
        .collect();
    print_table("Table V — ResNet-50 GEMM shapes", &["Layer", "M", "N", "K", "MFLOPs"], &rows);
}
