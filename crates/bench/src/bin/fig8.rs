//! Fig 8: single-core small-GEMM performance (M=N=K sweep) for autoGEMM
//! and every supported library on all five chips.

use autogemm::AutoGemm;
use autogemm_arch::ChipSpec;
use autogemm_baselines::{all_baselines, simulate_baseline};
use autogemm_bench::{gf, print_table};
use autogemm_workloads::small_sweep;

fn main() {
    for chip in ChipSpec::all_evaluated() {
        let engine = AutoGemm::new(chip.clone());
        let mut rows = Vec::new();
        for s in small_sweep() {
            let mut row = vec![format!("{s}")];
            let auto = engine.simulate(s, s, s, 1);
            row.push(gf(auto.gflops));
            for b in all_baselines() {
                row.push(
                    simulate_baseline(b, s, s, s, &chip, 1)
                        .map(|r| gf(r.gflops))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            rows.push(row);
        }
        let mut headers = vec!["M=N=K", "autoGEMM"];
        let names: Vec<&str> = all_baselines().iter().map(|b| b.name()).collect();
        headers.extend(names);
        print_table(
            &format!(
                "Fig 8 — small GEMM, single core, {} (GFLOPS; peak {:.1})",
                chip.name,
                chip.peak_gflops_core()
            ),
            &headers,
            &rows,
        );
        let e64 = engine.simulate(64, 64, 64, 1).efficiency;
        println!(
            "efficiency at 64^3: {:.1}% (paper: 97.6/98.3/98.4/96.5/93.2% per chip)",
            e64 * 100.0
        );
    }
    println!(
        "\nnotes: LibShalom computes only N,K % 8 == 0 and skips M2/A64FX; SSL2 is A64FX-only;"
    );
    println!("LIBXSMM is small-matrix only. Missing points print as '-'.");
}
