//! Emit `BENCH_gemmtrace.json`: per-GEMM telemetry reports over a shape
//! sweep — the observability layer's end-to-end artifact.
//!
//! For every shape in [`autogemm_workloads::gemmtrace_sweep`] (Fig 8
//! cubes plus one Table V ResNet-50 layer per irregularity class) the
//! binary runs the engine's traced front door
//! ([`autogemm::AutoGemm::try_gemm_traced`]), keeps the best-wall
//! report of a few repetitions, joins it against the perfmodel's
//! projected cycles ([`autogemm::GemmReport::join_model`]) and records
//! the full versioned-JSON report: per-phase wall/cycle breakdown
//! (pack-A, pack-B, kernel, drain), pack counts/bytes, per-thread block
//! counts and busy fractions, the dispatched kernel-shape histogram,
//! the measured-vs-model `cycle_ratio`, plus the schema-v4 `pool` and
//! `dispatch` sections and the schema-v5 engine `metrics` snapshot.
//!
//! The ratio mixes host counter ticks with modelled-chip cycles, so its
//! absolute value is host-specific; its *flatness across shapes* is the
//! validation signal (same convention as the microkernel bench's
//! `effective_ghz` — §III-B's achieved-vs-predicted tracking).
//!
//! ```text
//! cargo run --release -p autogemm-bench --features telemetry --bin gemmtrace [OUT.json]
//! cargo run --release -p autogemm-bench --features telemetry --bin gemmtrace -- --smoke
//! cargo run --release -p autogemm-bench --features telemetry --bin gemmtrace -- --timeline
//! ```
//!
//! `--smoke` (the CI mode) runs only the small cube shapes with one
//! repetition and writes no artifact unless a path is also given — but
//! still serializes every report, re-parses it through the
//! schema-version guard, and gates that the registry's metrics-off path
//! adds no measurable overhead to `try_gemm`. `--timeline` runs a short
//! multi-threaded burst on a tracing engine and writes
//! `BENCH_timeline.json`, a Chrome trace-event timeline (open it in
//! Perfetto or `chrome://tracing`) with pack/kernel spans on every
//! engaged worker track. Without the `telemetry` feature the binary
//! still runs (and the smoke validation still holds) but all report
//! timings are zero.

use autogemm::telemetry::{Json, ENABLED, SCHEMA_VERSION};
use autogemm::{AutoGemm, GemmReport};
use autogemm_arch::ChipSpec;
use autogemm_bench::print_table;
use autogemm_perfmodel::{ModelOpts, ProjectionTable};
use std::fmt::Write as _;
use std::time::Instant;

const THREADS: usize = 4;

fn data(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 16) % 61) as f32 / 4.0 - 7.5
        })
        .collect()
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "-".into();
    }
    format!("{:.1}%", 100.0 * part as f64 / whole as f64)
}

fn median_secs(mut run: impl FnMut()) -> f64 {
    for _ in 0..3 {
        run();
    }
    let mut times: Vec<f64> = (0..15)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// `--timeline`: run a short multi-threaded burst on a tracing engine
/// and write the span timeline as Chrome trace-event JSON.
fn run_timeline(out_path: &str) {
    let chip = ChipSpec::graviton2();
    let engine = AutoGemm::new(chip).with_tracing(4096);
    for (m, n, k) in [(64, 64, 64), (256, 256, 256), (64, 3136, 64)] {
        let a = data(m * k, 0x5eed);
        let b = data(k * n, 0x9e37);
        let mut c = vec![0.0f32; m * n];
        for _ in 0..3 {
            engine
                .try_gemm_threaded(m, n, k, &a, &b, &mut c, THREADS)
                .unwrap_or_else(|e| panic!("{m}x{n}x{k}: {e}"));
        }
    }
    let trace = engine.trace_export().expect("engine was built with_tracing");
    let parsed = Json::parse(&trace).expect("timeline must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("timeline must carry a traceEvents array");
    // The acceptance contract: phase spans (pack/kernel) on at least two
    // distinct tracks — the caller slot plus at least one pool worker.
    let mut phase_tracks: Vec<u64> = events
        .iter()
        .filter(|e| e.get("cat").and_then(Json::as_str) == Some("phase"))
        .filter_map(|e| e.get("tid").and_then(Json::as_u64))
        .collect();
    let phase_spans = phase_tracks.len();
    phase_tracks.sort_unstable();
    phase_tracks.dedup();
    assert!(
        phase_tracks.len() >= 2,
        "timeline must show phase spans on >= 2 tracks, got {phase_tracks:?}"
    );
    assert!(
        events.iter().any(|e| e.get("ph").and_then(Json::as_str) == Some("M")),
        "timeline must carry thread_name metadata events"
    );
    std::fs::write(out_path, &trace).expect("write timeline artifact");
    println!(
        "wrote {out_path}: {} events, {phase_spans} phase spans across {} tracks",
        events.len(),
        phase_tracks.len()
    );
}

/// `--smoke` gate: a registry that is switched off must not slow down
/// `try_gemm` — the disabled path is one relaxed atomic load per call.
fn gate_metrics_overhead() {
    let chip = ChipSpec::graviton2();
    let on = AutoGemm::new(chip.clone());
    let off = AutoGemm::new(chip);
    off.set_metrics_enabled(false);
    let (m, n, k) = (96, 96, 96);
    let a = data(m * k, 0x5eed);
    let b = data(k * n, 0x9e37);
    let mut c = vec![0.0f32; m * n];
    let t_on = median_secs(|| {
        on.try_gemm(m, n, k, &a, &b, &mut c).expect("gemm");
        std::hint::black_box(&c);
    });
    let t_off = median_secs(|| {
        off.try_gemm(m, n, k, &a, &b, &mut c).expect("gemm");
        std::hint::black_box(&c);
    });
    let ratio = t_on / t_off;
    println!(
        "metrics overhead gate: enabled {:.3}ms, disabled {:.3}ms, ratio {ratio:.3}",
        t_on * 1e3,
        t_off * 1e3
    );
    // Both directions: the registry must be noise either way (generous
    // bound — shared-CI hosts jitter).
    assert!(
        ratio < 1.35 && ratio > 1.0 / 1.35,
        "metrics on/off ratio {ratio:.3} outside noise bound"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let timeline = args.iter().any(|a| a == "--timeline");
    let out_path = args.iter().find(|a| !a.starts_with("--")).cloned();
    if timeline {
        run_timeline(out_path.as_deref().unwrap_or("BENCH_timeline.json"));
        return;
    }
    let out_path = match (smoke, out_path) {
        (_, Some(p)) => Some(p),
        (true, None) => None,
        (false, None) => Some("BENCH_gemmtrace.json".to_string()),
    };
    let reps = if smoke { 1 } else { 5 };
    let chip = ChipSpec::graviton2();
    let mut table = ProjectionTable::new(&chip, ModelOpts::default());
    println!(
        "gemmtrace: telemetry feature {} (schema v{SCHEMA_VERSION})",
        if ENABLED { "ON — live clocks" } else { "OFF — zeroed timings" }
    );

    let mut sweep = autogemm_workloads::gemmtrace_sweep();
    if smoke {
        sweep.retain(|(name, ..)| name.starts_with("cube"));
    }

    let engine = AutoGemm::new(chip.clone());
    let mut entries: Vec<(String, GemmReport)> = Vec::new();
    for (name, m, n, k) in sweep {
        let a = data(m * k, 0x5eed);
        let b = data(k * n, 0x9e37);
        let mut c = vec![0.0f32; m * n];
        // Warm the pool (and caches) once, then keep the best-wall rep:
        // steady-state behaviour, not first-touch page faults.
        let run = |c: &mut Vec<f32>| {
            engine
                .try_gemm_traced(m, n, k, &a, &b, c, THREADS)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        };
        run(&mut c);
        let mut best: Option<GemmReport> = None;
        for _ in 0..reps {
            let r = run(&mut c);
            if best.as_ref().is_none_or(|b| r.wall.wall_ns < b.wall.wall_ns) {
                best = Some(r);
            }
        }
        let mut report = best.expect("reps >= 1");
        report.join_model(&mut table);
        entries.push((name, report));
    }

    // Every emitted report must survive the schema-version guard — the
    // smoke contract CI relies on.
    for (name, report) in &entries {
        let back = GemmReport::from_json(&report.to_json())
            .unwrap_or_else(|e| panic!("{name}: emitted report failed validation: {e}"));
        assert_eq!(&back, report, "{name}: JSON round trip lost data");
    }
    println!("validated {} reports against schema v{SCHEMA_VERSION}", entries.len());

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|(name, r)| {
            let busy: Vec<f64> =
                r.thread_profiles.iter().map(|p| p.busy_fraction(r.phases.kernel)).collect();
            let (lo, hi) =
                busy.iter().fold((f64::MAX, 0.0f64), |(lo, hi), &f| (lo.min(f), hi.max(f)));
            let mj = r.model.as_ref().expect("joined above");
            let d = &r.dispatch;
            let packed = match (d.packed_a, d.packed_b) {
                (true, true) => "AB",
                (true, false) => "A",
                (false, true) => "B",
                (false, false) => "-",
            };
            vec![
                name.clone(),
                format!("{}x{}x{}", r.m, r.n, r.k),
                format!("{:.3}", r.wall.wall_ns as f64 / 1e6),
                format!("{:.2}", r.gflops()),
                pct(r.phases.pack_a.wall_ns, r.wall.wall_ns),
                pct(r.phases.pack_b.wall_ns, r.wall.wall_ns),
                pct(r.phases.kernel.wall_ns, r.wall.wall_ns),
                pct(r.phases.drain.wall_ns, r.phases.kernel.wall_ns),
                if busy.is_empty() { "-".into() } else { format!("{lo:.2}/{hi:.2}") },
                format!("{}", r.total_tiles()),
                format!("{:.3}", mj.cycle_ratio),
                format!("{}{}", d.route, if d.plan_cache_hit { "*" } else { "" }),
                packed.to_string(),
                format!("{}/{}", r.pool.submissions, r.pool.wake_count),
            ]
        })
        .collect();
    print_table(
        "gemmtrace: per-GEMM phase profile (threads = 4, best of reps; route * = plan-cache hit)",
        &[
            "shape",
            "MxNxK",
            "wall ms",
            "GFLOPS",
            "packA",
            "packB",
            "kernel",
            "drain",
            "busy lo/hi",
            "tiles",
            "cyc ratio",
            "route",
            "packed",
            "pool sub/wake",
        ],
        &rows,
    );

    // Engine-lifetime metrics accumulated over the whole sweep — the
    // registry view the schema-v5 `metrics` section snapshots.
    let m = engine.metrics();
    println!(
        "engine metrics: {} calls, latency p50 {:.3}ms p99 {:.3}ms, \
         plan cache {} hit / {} miss, breaker transitions {}",
        m.counter(autogemm::telemetry::Counter::Calls),
        m.call_latency_ns.p50() as f64 / 1e6,
        m.call_latency_ns.p99() as f64 / 1e6,
        m.counter(autogemm::telemetry::Counter::PlanCacheHits),
        m.counter(autogemm::telemetry::Counter::PlanCacheMisses),
        m.counter(autogemm::telemetry::Counter::BreakerTransitions),
    );

    if smoke {
        gate_metrics_overhead();
    }

    let Some(out_path) = out_path else {
        println!("smoke mode: no artifact written");
        return;
    };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"gemmtrace\",");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p autogemm-bench --features telemetry --bin gemmtrace\","
    );
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"telemetry_enabled\": {ENABLED},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"model_chip\": \"{}\",", chip.id);
    let _ = writeln!(json, "  \"entries\": [");
    for (i, (name, report)) in entries.iter().enumerate() {
        let entry = Json::Obj(vec![
            ("name".into(), Json::Str(name.clone())),
            ("report".into(), report.to_json_value()),
        ]);
        let _ = write!(json, "    {entry}");
        let _ = writeln!(json, "{}", if i + 1 < entries.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    Json::parse(&json).expect("artifact must be valid JSON");
    std::fs::write(&out_path, json).expect("write artifact");
    println!("wrote {out_path}");
}
