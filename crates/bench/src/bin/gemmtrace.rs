//! Emit `BENCH_gemmtrace.json`: per-GEMM telemetry reports over a shape
//! sweep — the observability layer's end-to-end artifact.
//!
//! For every shape in [`autogemm_workloads::gemmtrace_sweep`] (Fig 8
//! cubes plus one Table V ResNet-50 layer per irregularity class) the
//! binary runs the traced panel-cache driver
//! ([`autogemm::native::gemm_with_plan_traced`]), keeps the best-wall
//! report of a few repetitions, joins it against the perfmodel's
//! projected cycles ([`autogemm::GemmReport::join_model`]) and records
//! the full versioned-JSON report: per-phase wall/cycle breakdown
//! (pack-A, pack-B, kernel, drain), pack counts/bytes, per-thread block
//! counts and busy fractions, the dispatched kernel-shape histogram and
//! the measured-vs-model `cycle_ratio`.
//!
//! The ratio mixes host counter ticks with modelled-chip cycles, so its
//! absolute value is host-specific; its *flatness across shapes* is the
//! validation signal (same convention as the microkernel bench's
//! `effective_ghz` — §III-B's achieved-vs-predicted tracking).
//!
//! ```text
//! cargo run --release -p autogemm-bench --features telemetry --bin gemmtrace [OUT.json]
//! cargo run --release -p autogemm-bench --features telemetry --bin gemmtrace -- --smoke
//! ```
//!
//! `--smoke` (the CI mode) runs only the small cube shapes with one
//! repetition and writes no artifact unless a path is also given — but
//! still serializes every report and re-parses it through the
//! schema-version guard, so CI validates the emitted JSON either way.
//! Without the `telemetry` feature the binary still runs (and the smoke
//! validation still holds) but all timings are zero.

use autogemm::native::gemm_with_plan_traced;
use autogemm::telemetry::{Json, ENABLED, SCHEMA_VERSION};
use autogemm::{ExecutionPlan, GemmReport, PanelPool};
use autogemm_arch::ChipSpec;
use autogemm_bench::print_table;
use autogemm_perfmodel::{ModelOpts, ProjectionTable};
use autogemm_tuner::tune;
use std::fmt::Write as _;

const THREADS: usize = 4;

fn data(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            (((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 16) % 61) as f32 / 4.0 - 7.5
        })
        .collect()
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        return "-".into();
    }
    format!("{:.1}%", 100.0 * part as f64 / whole as f64)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args.iter().find(|a| !a.starts_with("--")).cloned();
    let out_path = match (smoke, out_path) {
        (_, Some(p)) => Some(p),
        (true, None) => None,
        (false, None) => Some("BENCH_gemmtrace.json".to_string()),
    };
    let reps = if smoke { 1 } else { 5 };
    let chip = ChipSpec::graviton2();
    let mut table = ProjectionTable::new(&chip, ModelOpts::default());
    println!(
        "gemmtrace: telemetry feature {} (schema v{SCHEMA_VERSION})",
        if ENABLED { "ON — live clocks" } else { "OFF — zeroed timings" }
    );

    let mut sweep = autogemm_workloads::gemmtrace_sweep();
    if smoke {
        sweep.retain(|(name, ..)| name.starts_with("cube"));
    }

    let pool = PanelPool::new();
    let mut entries: Vec<(String, GemmReport)> = Vec::new();
    for (name, m, n, k) in sweep {
        let plan = ExecutionPlan::from_schedule(tune(m, n, k, &chip), &chip);
        let a = data(m * k, 0x5eed);
        let b = data(k * n, 0x9e37);
        let mut c = vec![0.0f32; m * n];
        // Warm the pool (and caches) once, then keep the best-wall rep:
        // steady-state behaviour, not first-touch page faults.
        gemm_with_plan_traced(&plan, &a, &b, &mut c, THREADS, &pool);
        let mut best: Option<GemmReport> = None;
        for _ in 0..reps {
            let r = gemm_with_plan_traced(&plan, &a, &b, &mut c, THREADS, &pool);
            if best.as_ref().is_none_or(|b| r.wall.wall_ns < b.wall.wall_ns) {
                best = Some(r);
            }
        }
        let mut report = best.expect("reps >= 1");
        report.join_model(&mut table);
        entries.push((name, report));
    }

    // Every emitted report must survive the schema-version guard — the
    // smoke contract CI relies on.
    for (name, report) in &entries {
        let back = GemmReport::from_json(&report.to_json())
            .unwrap_or_else(|e| panic!("{name}: emitted report failed validation: {e}"));
        assert_eq!(&back, report, "{name}: JSON round trip lost data");
    }
    println!("validated {} reports against schema v{SCHEMA_VERSION}", entries.len());

    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|(name, r)| {
            let busy: Vec<f64> =
                r.thread_profiles.iter().map(|p| p.busy_fraction(r.phases.kernel)).collect();
            let (lo, hi) =
                busy.iter().fold((f64::MAX, 0.0f64), |(lo, hi), &f| (lo.min(f), hi.max(f)));
            let mj = r.model.as_ref().expect("joined above");
            vec![
                name.clone(),
                format!("{}x{}x{}", r.m, r.n, r.k),
                format!("{:.3}", r.wall.wall_ns as f64 / 1e6),
                format!("{:.2}", r.gflops()),
                pct(r.phases.pack_a.wall_ns, r.wall.wall_ns),
                pct(r.phases.pack_b.wall_ns, r.wall.wall_ns),
                pct(r.phases.kernel.wall_ns, r.wall.wall_ns),
                pct(r.phases.drain.wall_ns, r.phases.kernel.wall_ns),
                if busy.is_empty() { "-".into() } else { format!("{lo:.2}/{hi:.2}") },
                format!("{}", r.total_tiles()),
                format!("{:.3}", mj.cycle_ratio),
            ]
        })
        .collect();
    print_table(
        "gemmtrace: per-GEMM phase profile (threads = 4, best of reps)",
        &[
            "shape",
            "MxNxK",
            "wall ms",
            "GFLOPS",
            "packA",
            "packB",
            "kernel",
            "drain",
            "busy lo/hi",
            "tiles",
            "cyc ratio",
        ],
        &rows,
    );

    let Some(out_path) = out_path else {
        println!("smoke mode: no artifact written");
        return;
    };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"gemmtrace\",");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p autogemm-bench --features telemetry --bin gemmtrace\","
    );
    let _ = writeln!(json, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(json, "  \"telemetry_enabled\": {ENABLED},");
    let _ = writeln!(json, "  \"threads\": {THREADS},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"model_chip\": \"{}\",", chip.id);
    let _ = writeln!(json, "  \"entries\": [");
    for (i, (name, report)) in entries.iter().enumerate() {
        let entry = Json::Obj(vec![
            ("name".into(), Json::Str(name.clone())),
            ("report".into(), report.to_json_value()),
        ]);
        let _ = write!(json, "    {entry}");
        let _ = writeln!(json, "{}", if i + 1 < entries.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    Json::parse(&json).expect("artifact must be valid JSON");
    std::fs::write(&out_path, json).expect("write artifact");
    println!("wrote {out_path}");
}
