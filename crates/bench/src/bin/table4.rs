//! Table IV: the five evaluated Arm machines as modelled by this
//! reproduction (see DESIGN.md for the hardware-substitution rationale).

use autogemm_arch::ChipSpec;
use autogemm_bench::print_table;

fn main() {
    let chips = ChipSpec::all_evaluated();
    let headers: Vec<&str> = std::iter::once("").chain(chips.iter().map(|c| c.name)).collect();
    let mut rows = Vec::new();
    let row = |name: &str, f: &dyn Fn(&ChipSpec) -> String| -> Vec<String> {
        std::iter::once(name.to_string()).chain(chips.iter().map(f)).collect()
    };
    rows.push(row("Cores", &|c| c.cores.to_string()));
    rows.push(row("Frequency (GHz)", &|c| format!("{:.2}", c.freq_ghz)));
    rows.push(row("L1d / core", &|c| format!("{}K", c.l1d_bytes() >> 10)));
    rows.push(row("SIMD", &|c| c.simd.to_string()));
    rows.push(row("sigma_lane", &|c| c.sigma_lane().to_string()));
    rows.push(row("sigma_AI", &|c| format!("{:.1}", c.sigma_ai)));
    rows.push(row("OoO window", &|c| c.ooo_window.to_string()));
    rows.push(row("NUMA domains", &|c| c.numa.domains.to_string()));
    rows.push(row("Mem BW (GB/s)", &|c| format!("{:.0}", c.numa.total_bw_gbs())));
    rows.push(row("Peak sp GFLOPS/core", &|c| format!("{:.1}", c.peak_gflops_core())));
    rows.push(row("Peak sp GFLOPS", &|c| format!("{:.0}", c.peak_gflops())));
    print_table("Table IV — modelled hardware", &headers, &rows);
}
