//! Emit `BENCH_pool.json`: per-call threaded dispatch overhead of the
//! persistent worker pool vs the scoped-spawn baseline it replaced
//! (ISSUE 7).
//!
//! For each Table V small shape the binary streams repeated calls on the
//! same plan three ways — single-threaded inline (the compute floor),
//! pooled submission (the shipped threaded path) and per-call scoped
//! spawn (the historical path, reachable only through the hidden bench
//! baseline) — and records p50/p99 latencies. The *dispatch overhead* of
//! a threaded variant is its p50 minus the inline p50: what the call
//! pays to get onto worker threads at all. On shapes this small that
//! cost is the whole story, which is exactly why the pool exists.
//!
//! Run with
//!
//! ```text
//! cargo run --release -p autogemm-bench --bin pool_overhead [OUT.json]
//! ```
//!
//! from the workspace root (default output: `BENCH_pool.json`).
//!
//! `--smoke` instead runs the fast CI guard: pooled and scoped execution
//! must be bit-identical, the pooled p50 must not be slower than the
//! scoped p50 beyond noise tolerance, and the pool must end the stream
//! with zero leaked workers (`alive_workers == workers`) and zero new OS
//! threads per call.

use autogemm::native::try_gemm_with_plan_supervised;
use autogemm::supervisor::Supervision;
use autogemm::{AutoGemm, PanelPool, Runtime};
use autogemm_arch::ChipSpec;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Calls per streamed variant: enough for a stable p99 on µs-scale work.
const STREAM: usize = 300;
const WARMUP: usize = 20;

/// Table V-class small shapes: the pack/dispatch-dominated calls DNN
/// inference actually serves, where per-call spawn cost is ruinous.
const SHAPES: [(&str, usize, usize, usize); 4] = [
    ("L16c_n49", 128, 49, 256),
    ("L20c_n49", 64, 49, 64),
    ("fig8_irr", 31, 44, 29),
    ("L2_small", 64, 196, 64),
];

fn data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>) {
    let a = (0..m * k).map(|i| (i % 17) as f32 - 8.0).collect();
    let b = (0..k * n).map(|i| (i % 13) as f32 - 6.0).collect();
    (a, b)
}

struct Percentiles {
    p50: f64,
    p99: f64,
}

/// Stream `f` and return per-call latency percentiles in seconds.
fn stream(mut f: impl FnMut()) -> Percentiles {
    for _ in 0..WARMUP {
        f();
    }
    let mut samples: Vec<f64> = (0..STREAM)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latency samples are finite"));
    Percentiles { p50: samples[samples.len() / 2], p99: samples[(samples.len() * 99) / 100] }
}

struct Entry {
    label: &'static str,
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    inline_p: Percentiles,
    pooled_p: Percentiles,
    scoped_p: Percentiles,
    overhead_pooled_s: f64,
    overhead_scoped_s: f64,
    overhead_ratio: f64,
}

/// Measure one shape: inline floor, pooled stream, scoped stream — all
/// on the same multicore plan, bit-identity checked.
fn measure(
    engine: &AutoGemm,
    rt: &Runtime,
    label: &'static str,
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
) -> Entry {
    let plan = engine.plan_multicore(m, n, k, threads);
    let (a, b) = data(m, n, k);
    let pool = PanelPool::new();
    let pooled_sup = Supervision::none().with_runtime(engine.runtime().clone());
    let scoped_sup = Supervision::none().with_spawn_baseline();

    // Bit-identity rides along with every bench run.
    let mut c_pooled = vec![0.0f32; m * n];
    let mut c_scoped = vec![0.0f32; m * n];
    try_gemm_with_plan_supervised(&plan, &a, &b, &mut c_pooled, threads, &pool, &pooled_sup)
        .expect("pooled bench call failed");
    try_gemm_with_plan_supervised(&plan, &a, &b, &mut c_scoped, threads, &pool, &scoped_sup)
        .expect("scoped bench call failed");
    assert_eq!(c_pooled, c_scoped, "{label}: pooled diverged from scoped baseline");

    let mut c = vec![0.0f32; m * n];
    let inline_p = stream(|| {
        try_gemm_with_plan_supervised(
            black_box(&plan),
            &a,
            &b,
            &mut c,
            1,
            &pool,
            &Supervision::none(),
        )
        .expect("inline bench call failed")
    });
    let pooled_p = stream(|| {
        try_gemm_with_plan_supervised(black_box(&plan), &a, &b, &mut c, threads, &pool, &pooled_sup)
            .expect("pooled bench call failed")
    });
    let scoped_p = stream(|| {
        try_gemm_with_plan_supervised(black_box(&plan), &a, &b, &mut c, threads, &pool, &scoped_sup)
            .expect("scoped bench call failed")
    });

    // Dispatch overhead: what the threaded call pays over the inline
    // compute floor. Floored at 100 ns so a lucky pooled median can
    // never divide by ~zero and overstate the ratio.
    let overhead_pooled_s = (pooled_p.p50 - inline_p.p50).max(100e-9);
    let overhead_scoped_s = (scoped_p.p50 - inline_p.p50).max(100e-9);
    let overhead_ratio = overhead_scoped_s / overhead_pooled_s;
    println!(
        "{label:>9} {m:>4}x{n:>4}x{k:>4} t{threads}: inline p50 {:>8.1} µs  pooled p50/p99 \
         {:>8.1}/{:>8.1} µs  scoped p50/p99 {:>8.1}/{:>8.1} µs  overhead {:>7.1} vs {:>7.1} µs \
         ({overhead_ratio:.1}x)",
        inline_p.p50 * 1e6,
        pooled_p.p50 * 1e6,
        pooled_p.p99 * 1e6,
        scoped_p.p50 * 1e6,
        scoped_p.p99 * 1e6,
        overhead_pooled_s * 1e6,
        overhead_scoped_s * 1e6,
    );
    assert_eq!(
        rt.alive_workers(),
        rt.stats().workers as usize,
        "{label}: pool lost or leaked a worker mid-stream"
    );
    Entry {
        label,
        m,
        n,
        k,
        threads,
        inline_p,
        pooled_p,
        scoped_p,
        overhead_pooled_s,
        overhead_scoped_s,
        overhead_ratio,
    }
}

/// Reads this process's thread count from /proc (Linux CI hosts); 0
/// where /proc is absent, which disables the stability assert.
fn os_thread_count() -> u64 {
    std::fs::read_to_string("/proc/self/stat")
        .ok()
        .and_then(|s| {
            let rest = &s[s.rfind(')')? + 2..];
            rest.split_whitespace().nth(17)?.parse::<u64>().ok()
        })
        .unwrap_or(0)
}

/// Fast CI guard: pooled dispatch must be bit-identical to scoped, not
/// slower beyond noise, spawn no OS threads per call and leak no
/// workers. Gates are generous — these are µs-scale medians on shared
/// hosts — while the tracked JSON records the real (≥3x) margin.
fn smoke() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let rt = engine.runtime().clone();
    let threads = 2.min(rt.capacity());
    let (label, m, n, k) = SHAPES[1];
    let e = measure(&engine, &rt, label, m, n, k, threads);

    assert!(
        e.pooled_p.p50 < e.scoped_p.p50 * 1.15,
        "{label}: pooled p50 {:.1} µs slower than scoped {:.1} µs beyond noise",
        e.pooled_p.p50 * 1e6,
        e.scoped_p.p50 * 1e6,
    );

    // Zero per-call OS thread creation: a warmed-up stream must leave
    // the process thread count untouched.
    let (a, b) = data(m, n, k);
    let mut c = vec![0.0f32; m * n];
    engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).expect("smoke call failed");
    let threads_before = os_thread_count();
    let submissions_before = rt.stats().submissions;
    for _ in 0..64 {
        engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, threads).expect("smoke call failed");
    }
    let stats = rt.stats();
    assert!(stats.submissions > submissions_before, "stream bypassed the pool");
    assert_eq!(rt.alive_workers(), stats.workers as usize, "pool leaked a worker");
    if threads_before > 0 {
        assert_eq!(os_thread_count(), threads_before, "threaded calls created OS threads");
    }
    println!(
        "pool_overhead smoke passed: pooled/scoped p50 ratio {:.3}, overhead ratio {:.1}x, \
         {} workers alive.",
        e.pooled_p.p50 / e.scoped_p.p50,
        e.overhead_ratio,
        stats.alive_workers,
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let first = args.next();
    if first.as_deref() == Some("--smoke") {
        smoke();
        return;
    }
    let out_path = first.unwrap_or_else(|| "BENCH_pool.json".to_string());
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let rt = engine.runtime().clone();
    let threads = 2.min(rt.capacity());

    let entries: Vec<Entry> = SHAPES
        .iter()
        .map(|&(label, m, n, k)| measure(&engine, &rt, label, m, n, k, threads))
        .collect();

    let stats = rt.stats();
    let avg_wake_ns = stats.wake_ns_total.checked_div(stats.wake_count).unwrap_or(0);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"pool_overhead\",");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p autogemm-bench --bin pool_overhead\","
    );
    let _ = writeln!(json, "  \"stream_calls\": {STREAM},");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    );
    let _ = writeln!(json, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"label\": \"{}\", \"m\": {}, \"n\": {}, \"k\": {}, \"threads\": {}, \
             \"inline_p50_s\": {:.9}, \"inline_p99_s\": {:.9}, \
             \"pooled_p50_s\": {:.9}, \"pooled_p99_s\": {:.9}, \
             \"scoped_p50_s\": {:.9}, \"scoped_p99_s\": {:.9}, \
             \"dispatch_overhead_pooled_s\": {:.9}, \"dispatch_overhead_scoped_s\": {:.9}, \
             \"overhead_ratio\": {:.4}}}",
            e.label,
            e.m,
            e.n,
            e.k,
            e.threads,
            e.inline_p.p50,
            e.inline_p.p99,
            e.pooled_p.p50,
            e.pooled_p.p99,
            e.scoped_p.p50,
            e.scoped_p.p99,
            e.overhead_pooled_s,
            e.overhead_scoped_s,
            e.overhead_ratio,
        );
        let _ = writeln!(json, "{}", if i + 1 < entries.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"pool\": {{");
    let _ = writeln!(
        json,
        "    \"workers\": {}, \"alive_workers\": {}, \"submissions\": {},",
        stats.workers, stats.alive_workers, stats.submissions
    );
    let _ = writeln!(
        json,
        "    \"wake_count\": {}, \"avg_wake_ns\": {avg_wake_ns}, \"threads_clamped\": {}",
        stats.wake_count, stats.threads_clamped
    );
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_pool.json");
    println!("wrote {out_path}");
}
