//! Fig 12: end-to-end DNN inference in the TNN-like runner — OpenBLAS vs
//! autoGEMM backends, T_GEMM vs T_other decomposition, on KP920 and
//! Graviton2.

use autogemm_arch::ChipSpec;
use autogemm_baselines::Baseline;
use autogemm_bench::print_table;
use autogemm_workloads::tnn::{
    reference_gemm_seconds, run_model, AutoGemmBackend, BaselineBackend,
};
use autogemm_workloads::DnnModel;

fn main() {
    for chip in [ChipSpec::kp920(), ChipSpec::graviton2()] {
        let threads = chip.cores;
        let ob = BaselineBackend { baseline: Baseline::OpenBlas };
        let auto = AutoGemmBackend::new(chip.clone());
        let mut rows = Vec::new();
        for model in DnnModel::all() {
            let reference = reference_gemm_seconds(model, &ob, &chip, threads)
                .expect("OpenBLAS supports all shapes");
            let t_ob = run_model(model, &ob, reference, &chip, threads).unwrap();
            let t_auto = run_model(model, &auto, reference, &chip, threads).unwrap();
            let total_ob = t_ob.total();
            rows.push(vec![
                format!("{} ({})", model.label(), model.name()),
                format!("{:.0} + {:.0}", t_ob.t_gemm * 1e6, t_ob.t_other * 1e6),
                format!("{:.0} + {:.0}", t_auto.t_gemm * 1e6, t_auto.t_other * 1e6),
                format!("{:.2}", t_ob.t_gemm / total_ob),
                format!("{:.2}x", total_ob / t_auto.total()),
            ]);
        }
        print_table(
            &format!(
                "Fig 12 — end-to-end DNN inference on {} ({} threads) [T_GEMM + T_other, µs]",
                chip.name, threads
            ),
            &["model", "OpenBLAS", "autoGEMM", "GEMM share", "end-to-end speedup"],
            &rows,
        );
    }
    println!("\npaper landmarks: T_other identical across backends; speedup 1.30x on KP920,");
    println!(
        "1.08-1.15x on Graviton2, across ResNet50 / Inception-V3 / MobileNet-V1 / SqueezeNet."
    );
}
