//! Emit `BENCH_microkernel.json`: per-shape GFLOP/s of the dispatched
//! SIMD micro-kernel menu vs the scalar reference kernel, cross-checked
//! against the perfmodel's projected cycle counts (Eqns 4–11).
//!
//! For every `(m_r, n_r)` shape in the native dispatch menu
//! ([`autogemm::native::KERNEL_MENU`]) the binary times the
//! runtime-dispatched SIMD kernel ([`autogemm::native::run_placement`])
//! and the scalar reference ([`autogemm::native::run_placement_ref`]) on
//! a hot, packed `kc = 256` panel pair, then records:
//!
//! * achieved GFLOP/s of both kernels and the SIMD/scalar speedup;
//! * the perfmodel's projected cycles for the same `(tile, kc)` on the
//!   Graviton2 model and the derived model flops-per-cycle;
//! * `effective_ghz = achieved_simd_flops_per_ns / model_flops_per_cycle`
//!   — the clock the modelled chip would need to reproduce the host's
//!   throughput. The absolute value is host-specific; its *flatness
//!   across shapes* is the model-validation signal (a tile whose
//!   effective GHz sags is one the model over-predicts, exactly the
//!   per-shape achieved-vs-predicted tracking §III-B uses).
//!
//! ```text
//! cargo run --release -p autogemm-bench --bin microkernel [OUT.json]
//! cargo run --release -p autogemm-bench --bin microkernel -- --smoke
//! ```
//!
//! `--smoke` (the CI mode) runs only the four first-choice shapes with
//! fewer samples and writes no artifact unless a path is also given.

use autogemm::native::{run_placement, run_placement_ref, CTile, KERNEL_MENU};
use autogemm::packing::{pack_a, pack_b};
use autogemm::simd::SimdBackend;
use autogemm_arch::ChipSpec;
use autogemm_kernelgen::MicroTile;
use autogemm_perfmodel::micro::{projected_cycles, ModelOpts};
use autogemm_tiling::TilePlacement;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const KC: usize = 256;

struct Entry {
    mr: usize,
    nr: usize,
    simd_gflops: f64,
    scalar_gflops: f64,
    model_cycles: f64,
    model_flops_per_cycle: f64,
}

/// Median seconds per call: calibrate an inner iteration count so one
/// sample is ≥ `min_sample_s`, then take `reps` samples.
fn median_secs_per_call(reps: usize, min_sample_s: f64, mut f: impl FnMut()) -> f64 {
    let mut iters = 1usize;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        if t0.elapsed().as_secs_f64() >= min_sample_s || iters >= 1 << 22 {
            break;
        }
        iters *= 2;
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args.iter().find(|a| !a.starts_with("--")).cloned();
    let out_path = match (smoke, out_path) {
        (_, Some(p)) => Some(p),
        (true, None) => None,
        (false, None) => Some("BENCH_microkernel.json".to_string()),
    };
    let (reps, min_sample_s) = if smoke { (5, 1e-4) } else { (15, 1e-3) };
    let chip = ChipSpec::graviton2();
    let backend = SimdBackend::detect();
    println!("dispatched SIMD backend: {}", backend.name());

    let menu: Vec<(usize, usize)> = if smoke {
        autogemm_kernelgen::tiles::first_choice_neon().iter().map(|t| (t.mr, t.nr)).collect()
    } else {
        KERNEL_MENU.to_vec()
    };

    let mut entries = Vec::new();
    for (mr, nr) in menu {
        let tile = MicroTile::new(mr, nr);
        let placement = TilePlacement::full(0, 0, tile);
        // Packed operands exactly as the block driver provides them
        // (lane-padded, 64-byte-aligned panels, hot in L1 for kc = 256).
        let a_src: Vec<f32> = (0..mr * KC).map(|i| ((i * 13 + 5) % 23) as f32 - 11.0).collect();
        let b_src: Vec<f32> = (0..KC * nr).map(|i| ((i * 7 + 2) % 19) as f32 - 9.0).collect();
        let pa = pack_a(&a_src, KC, 0, 0, mr, KC, 4);
        let pb = pack_b(&b_src, nr, 0, 0, KC, nr, 4);
        let mut cbuf = vec![0.0f32; mr * nr];

        let flops = 2.0 * (mr * nr * KC) as f64;
        let simd_s = median_secs_per_call(reps, min_sample_s, || {
            let ct = unsafe { CTile::new(cbuf.as_mut_ptr(), nr, cbuf.len()) };
            run_placement(black_box(&placement), KC, &pa.data, pa.ld, &pb.data, pb.ld, ct, true);
        });
        let scalar_s = median_secs_per_call(reps, min_sample_s, || {
            let ct = unsafe { CTile::new(cbuf.as_mut_ptr(), nr, cbuf.len()) };
            run_placement_ref(
                black_box(&placement),
                KC,
                &pa.data,
                pa.ld,
                &pb.data,
                pb.ld,
                ct,
                true,
            );
        });

        let model_cycles = projected_cycles(tile, KC, &chip, ModelOpts::default());
        let e = Entry {
            mr,
            nr,
            simd_gflops: flops / simd_s / 1e9,
            scalar_gflops: flops / scalar_s / 1e9,
            model_cycles,
            model_flops_per_cycle: flops / model_cycles,
        };
        println!(
            "{mr}x{nr:<3} kc={KC}: simd {:>7.2} GFLOPS  scalar {:>7.2} GFLOPS  \
             speedup {:>5.2}x  model {:>7.0} cyc ({:.2} flops/cyc, eff {:.2} GHz)",
            e.simd_gflops,
            e.scalar_gflops,
            e.simd_gflops / e.scalar_gflops,
            e.model_cycles,
            e.model_flops_per_cycle,
            e.simd_gflops / e.model_flops_per_cycle,
        );
        entries.push(e);
    }

    let Some(out_path) = out_path else {
        println!("smoke mode: no artifact written");
        return;
    };
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"microkernel\",");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p autogemm-bench --bin microkernel\","
    );
    let _ = writeln!(json, "  \"backend\": \"{}\",", backend.name());
    let _ = writeln!(json, "  \"kc\": {KC},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"model_chip\": \"{}\",", chip.id);
    let _ = writeln!(json, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"mr\": {}, \"nr\": {}, \"simd_gflops\": {:.3}, \"scalar_gflops\": {:.3}, \
             \"speedup\": {:.3}, \"model_cycles\": {:.1}, \"model_flops_per_cycle\": {:.3}, \
             \"effective_ghz\": {:.3}}}",
            e.mr,
            e.nr,
            e.simd_gflops,
            e.scalar_gflops,
            e.simd_gflops / e.scalar_gflops,
            e.model_cycles,
            e.model_flops_per_cycle,
            e.simd_gflops / e.model_flops_per_cycle,
        );
        let _ = writeln!(json, "{}", if i + 1 < entries.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write artifact");
    println!("wrote {out_path}");
}
