//! Table II: maximum arithmetic intensity of every feasible register tile
//! under the 32-vector-register budget, with the paper's first-choice
//! shapes marked.

use autogemm_bench::print_table;
use autogemm_kernelgen::tiles::{enumerate, first_choice_neon, table_ii};

fn main() {
    let fc = first_choice_neon();
    let rows: Vec<Vec<String>> = table_ii()
        .into_iter()
        .map(|(mr, cols)| {
            let mut row = vec![mr.to_string()];
            for (i, cell) in cols.into_iter().enumerate() {
                let nr = (i + 1) * 4;
                row.push(match cell {
                    Some(ai) => {
                        let mark =
                            if fc.iter().any(|t| t.mr == mr && t.nr == nr) { "*" } else { "" };
                        format!("{ai:.2}{mark}")
                    }
                    None => "-".into(),
                });
            }
            row
        })
        .collect();
    print_table(
        "Table II — AI_max per register tile (* = first-choice)",
        &["m_r \\ n_r", "4", "8", "12", "16", "20", "24", "28"],
        &rows,
    );
    println!("\nfeasible NEON tiles under 32 registers: {}", enumerate(4).len());
}
