//! Fig 10: roofline placement of small cubes (8..64) and four ResNet-50
//! layers (L4, L8, L10, L16) on KP920, Graviton2 and M2 — single core and
//! all cores.

use autogemm::AutoGemm;
use autogemm_bench::print_table;
use autogemm_perfmodel::roofline::{gemm_operational_intensity, Roofline};
use autogemm_workloads::shapes::roofline_layers;

fn main() {
    for chip in autogemm_bench::fig_chips() {
        let engine = AutoGemm::new(chip.clone());
        for (label, threads) in [("single-core", 1usize), ("multi-cores", chip.cores)] {
            let roof = if threads == 1 {
                Roofline::single_core(&chip)
            } else {
                Roofline::multi_core(&chip)
            };
            let mut rows = Vec::new();
            let mut add = |name: String, m: usize, n: usize, k: usize| {
                let ai = gemm_operational_intensity(m, n, k);
                let attainable = roof.attainable(ai);
                let r = engine.simulate(m, n, k, threads);
                rows.push(vec![
                    name,
                    format!("{ai:.2}"),
                    format!("{attainable:.1}"),
                    format!("{:.1}", r.gflops),
                    format!("{:.0}%", r.gflops / attainable * 100.0),
                    if ai >= roof.ridge_ai() { "compute".into() } else { "memory".into() },
                ]);
            };
            for s in [8usize, 16, 32, 64] {
                add(format!("{s}^3"), s, s, s);
            }
            for l in roofline_layers() {
                add(l.name(), l.m, l.n, l.k);
            }
            print_table(
                &format!(
                    "Fig 10 — roofline, {} {} (peak {:.1} GFLOPS, ridge AI {:.1} flop/B)",
                    chip.name,
                    label,
                    roof.peak_gflops,
                    roof.ridge_ai()
                ),
                &["point", "AI (flop/B)", "attainable", "measured", "of roof", "bound"],
                &rows,
            );
        }
    }
    println!(
        "\npaper landmarks: small cubes sit below/near the ridge; ResNet layers are compute-bound;"
    );
    println!("single-core autoGEMM tracks the roof closely.");
}
