//! Fig 11: strong scaling of autoGEMM on the L1 ResNet-50 layer
//! (64x12544x147) across all five chips.

use autogemm::AutoGemm;
use autogemm_arch::ChipSpec;
use autogemm_bench::print_table;

fn main() {
    let (m, n, k) = (64usize, 12544usize, 147usize);
    let mut summary = Vec::new();
    for chip in ChipSpec::all_evaluated() {
        let engine = AutoGemm::new(chip.clone());
        let mut rows = Vec::new();
        // One plan for the whole curve: the full-core-count multicore
        // schedule (the paper scales one tuned binary).
        let plan = engine.plan_multicore(m, n, k, chip.cores);
        let t1 = engine.simulate_with_plan(&plan, 1).seconds;
        let mut counts = vec![1usize, 2, 4];
        let mut c = 8;
        while c < chip.cores {
            counts.push(c);
            c *= 2;
        }
        counts.push(chip.cores);
        counts.dedup();
        let mut final_eff = 0.0;
        for &t in &counts {
            let r = engine.simulate_with_plan(&plan, t);
            let speedup = t1 / r.seconds;
            let eff = speedup / t as f64;
            final_eff = eff;
            rows.push(vec![
                t.to_string(),
                format!("{:.3} ms", r.seconds * 1e3),
                format!("{speedup:.2}x"),
                format!("{:.1}%", eff * 100.0),
                if r.bw_limited { "BW-limited".into() } else { "".into() },
            ]);
        }
        print_table(
            &format!("Fig 11 — strong scaling on {} (L1: {m}x{n}x{k})", chip.name),
            &["threads", "time", "speedup", "parallel eff", ""],
            &rows,
        );
        summary.push(vec![chip.name.to_string(), format!("{:.1}%", final_eff * 100.0)]);
    }
    print_table(
        "Fig 11 summary — parallel efficiency at full core count (paper: 98 / 98.2 / 83.2 / 93.5 / 30.3%)",
        &["chip", "parallel efficiency"],
        &summary,
    );

    // What-if: the paper's future-work item — CMG-aware operand placement
    // on the A64FX (pack per domain, no ring traffic).
    let chip = ChipSpec::a64fx();
    let baseline = AutoGemm::new(chip.clone());
    let aware = AutoGemm::new(chip.clone()).with_cmg_replication();
    let plan_b = baseline.plan_multicore(m, n, k, chip.cores);
    let plan_a = aware.plan_multicore(m, n, k, chip.cores);
    let t1 = baseline.simulate_with_plan(&plan_b, 1).seconds;
    let tb = baseline.simulate_with_plan(&plan_b, chip.cores).seconds;
    let ta = aware.simulate_with_plan(&plan_a, chip.cores).seconds;
    println!(
        "
what-if (paper future work): CMG-aware packing on the A64FX raises parallel efficiency"
    );
    println!(
        "from {:.1}% to {:.1}% at {} cores ({:.2}x end-to-end)",
        t1 / tb / chip.cores as f64 * 100.0,
        t1 / ta / chip.cores as f64 * 100.0,
        chip.cores,
        tb / ta
    );
}
