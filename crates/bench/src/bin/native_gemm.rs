//! Emit `BENCH_native_gemm.json`: the tracked wall-clock trajectory of
//! the native block driver on this host.
//!
//! For each (shape × threads) point the binary times the panel-cache
//! driver (operands packed once per GEMM, atomic block queue, pooled
//! buffers) and the historical per-block repacking path on the same
//! execution plan, and records medians, GFLOPS and the speedup. A
//! `small_irregular` section times the engine's input-aware dispatch
//! (GEMV/small-k fast paths, packing elision, plan cache) against the
//! always-packed panel-cache driver on pack-dominated shapes — Table V
//! ResNet layers, `m = 1` / `n = 1` GEMV calls and tiny-k shapes — and a
//! `plan_cache` section demonstrates that a repeated shape skips the
//! tuner, and a `verify_overhead` section (ISSUE 10) prices
//! `VerifyPolicy::Sample { rate: 16 }` against unverified calls on the
//! Table V shapes. Run with
//!
//! ```text
//! cargo run --release -p autogemm-bench --bin native_gemm [OUT.json]
//! ```
//!
//! from the workspace root (default output: `BENCH_native_gemm.json`).
//!
//! `--smoke` instead runs the fast CI guard: it asserts the fallible
//! (`try_*`) driver is bit-identical to and not measurably slower than
//! the classic path, that a far-future deadline adds no measurable
//! overhead over `try_gemm` (the passive-monitor fast path), that the
//! input-aware dispatch is bit-identical to and never slower (beyond
//! noise) than the panel-cache path on Table V ResNet shapes, that
//! `Sample { rate: 16 }` verification prices near its 2% design target
//! on the same shapes, that a repeated shape deterministically hits the
//! plan cache, and loosely cross-checks the panel-cache timings against
//! the tracked `BENCH_native_gemm.json` trajectory.
//!
//! `--soak [ITERS]` (requires the `faultinject` feature) runs a
//! randomized supervision soak: thousands of watchdog-supervised calls
//! under seeded fault plans, asserting every call is structured-error-or
//! -correct, the panel pool never leaks, and the circuit breaker is
//! never stuck Open once faults stop.

use autogemm::native::{gemm_with_plan_pooled, gemm_with_plan_repack, try_gemm_with_plan_pooled};
use autogemm::{AutoGemm, PanelPool};
use autogemm_arch::ChipSpec;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

const REPS: usize = 15;
const WARMUP: usize = 3;

fn data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>) {
    let a = (0..m * k).map(|i| (i % 17) as f32 - 8.0).collect();
    let b = (0..k * n).map(|i| (i % 13) as f32 - 6.0).collect();
    (a, b)
}

fn median_secs(mut f: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        f();
    }
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct Entry {
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    repack_s: f64,
    cached_s: f64,
}

/// Verification-overhead measurement (ISSUE 10): the Table V shapes with
/// verification off vs `Sample { rate: 16 }` on the same engine. The
/// sampled policy verifies ~1/16 of calls, so a median over [`REPS`]
/// calls prices the *amortized* cost the way a production sampling
/// tenant pays it — most calls see only the sequence-counter branch.
/// Returns `(label, m, n, k, off_s, sampled_s)` per shape.
fn verify_overhead(engine: &AutoGemm) -> Vec<(&'static str, usize, usize, usize, f64, f64)> {
    use autogemm::supervisor::GemmOptions;
    use autogemm::VerifyPolicy;
    let shapes =
        [("L2", 64usize, 3136usize, 64usize), ("L16c", 128, 49, 256), ("gemv", 1, 3136, 64)];
    let plain = GemmOptions::new();
    let sampled = GemmOptions::new().verify(VerifyPolicy::Sample { rate: 16 });
    shapes
        .iter()
        .map(|&(label, m, n, k)| {
            let (a, b) = data(m, n, k);
            let mut c_off = vec![0.0f32; m * n];
            let off_s = median_secs(|| {
                engine
                    .try_gemm_opts(m, n, k, black_box(&a), &b, &mut c_off, &plain)
                    .expect("unverified call failed")
            });
            let mut c_v = vec![0.0f32; m * n];
            let sampled_s = median_secs(|| {
                engine
                    .try_gemm_opts(m, n, k, black_box(&a), &b, &mut c_v, &sampled)
                    .expect("sampled verified call failed")
            });
            assert_eq!(c_v, c_off, "{label}: verification must not perturb the output");
            (label, m, n, k, off_s, sampled_s)
        })
        .collect()
}

/// Fast CI guard for the fallible API: the `Result` plumbing through the
/// pooled driver must stay bit-identical to the classic path and add no
/// measurable overhead (the wrappers are `if let Err(e) = try_...` thin).
fn smoke() {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let points = [(64usize, 196usize, 64usize, 1usize), (128, 128, 128, 4)];
    for (m, n, k, threads) in points {
        let plan = if threads > 1 {
            engine.plan_multicore(m, n, k, threads)
        } else {
            engine.plan(m, n, k)
        };
        let (a, b) = data(m, n, k);
        let pool = PanelPool::new();

        let mut c_plain = vec![0.0f32; m * n];
        let plain_s = median_secs(|| {
            gemm_with_plan_pooled(black_box(&plan), &a, &b, &mut c_plain, threads, &pool)
        });
        let mut c_try = vec![0.0f32; m * n];
        let try_s = median_secs(|| {
            try_gemm_with_plan_pooled(black_box(&plan), &a, &b, &mut c_try, threads, &pool)
                .expect("smoke gemm failed")
        });
        assert_eq!(c_try, c_plain, "{m}x{n}x{k} t{threads}: try path diverged");
        let ratio = try_s / plain_s;
        println!(
            "{m:>4}x{n:>4}x{k:>4} t{threads}: plain {:>9.1} µs  try {:>9.1} µs  ratio {ratio:.3}",
            plain_s * 1e6,
            try_s * 1e6,
        );
        // Generous bound: medians over {REPS} reps keep noise down, and
        // the plumbing itself is branch-on-Err only.
        assert!(
            ratio < 1.35,
            "{m}x{n}x{k} t{threads}: fallible path {ratio:.3}x slower than classic"
        );
    }

    // Supervised path with a deadline nobody will hit: the run monitor
    // must stay passive-priced (one branch per block, no clock reads).
    // Design target is <=2% overhead; the hard gate is generous because
    // these are microsecond-scale medians on a shared host.
    {
        let (m, n, k, threads) = (128usize, 128usize, 128usize, 4usize);
        let (a, b) = data(m, n, k);
        let mut c_plain = vec![0.0f32; m * n];
        let plain_s = median_secs(|| {
            engine
                .try_gemm_threaded(m, n, k, black_box(&a), &b, &mut c_plain, threads)
                .expect("smoke gemm failed")
        });
        let mut c_dl = vec![0.0f32; m * n];
        let dl_s = median_secs(|| {
            engine
                .try_gemm_deadline(
                    m,
                    n,
                    k,
                    black_box(&a),
                    &b,
                    &mut c_dl,
                    threads,
                    Duration::from_secs(3600),
                )
                .expect("smoke deadline gemm failed")
        });
        assert_eq!(c_dl, c_plain, "deadline path diverged from try_gemm");
        let ratio = dl_s / plain_s;
        println!(
            "{m:>4}x{n:>4}x{k:>4} t{threads}: try {:>9.1} µs  deadline {:>9.1} µs  ratio {ratio:.3}",
            plain_s * 1e6,
            dl_s * 1e6,
        );
        if ratio > 1.02 {
            println!("  note: deadline ratio {ratio:.3} above the 2% design target (host noise?)");
        }
        assert!(ratio < 1.35, "far-future deadline {ratio:.3}x slower than try_gemm");
    }

    // Input-aware dispatch gate over Table V ResNet shapes: the engine's
    // routed path (packing elision, GEMV/small-k fast paths) must be
    // bit-identical to the always-packed panel-cache driver and never
    // slower beyond noise tolerance. The shapes span the elision classes:
    // L2 long-rectangular (B-pack elided at tm = 1), L16-class n = 49
    // (A-pack elided at tn = 1, scaled to smoke budget) and a GEMV row.
    {
        let table_v =
            [("L2", 64usize, 3136usize, 64usize), ("L16c", 128, 49, 256), ("gemv", 1, 3136, 64)];
        for (label, m, n, k) in table_v {
            let (a, b) = data(m, n, k);
            let plan = engine.plan(m, n, k);
            let pool = PanelPool::new();
            let mut c_panel = vec![0.0f32; m * n];
            let panel_s = median_secs(|| {
                gemm_with_plan_pooled(black_box(&plan), &a, &b, &mut c_panel, 1, &pool)
            });
            let mut c_aware = vec![0.0f32; m * n];
            let aware_s = median_secs(|| {
                engine
                    .try_gemm(m, n, k, black_box(&a), &b, &mut c_aware)
                    .expect("smoke input-aware gemm failed")
            });
            assert_eq!(c_aware, c_panel, "{label}: input-aware path diverged from panel cache");
            let ratio = aware_s / panel_s;
            println!(
                "{label:>5} {m:>4}x{n:>4}x{k:>4}: panel {:>9.1} µs  input-aware {:>9.1} µs  \
                 ratio {ratio:.3}",
                panel_s * 1e6,
                aware_s * 1e6,
            );
            assert!(
                ratio < 1.25,
                "{label} ({m}x{n}x{k}): input-aware path {ratio:.3}x slower than panel cache"
            );
        }
    }

    // Sampled-verification overhead gate over the same Table V shapes:
    // `Sample { rate: 16 }` must price like the 2% design target, not
    // like recomputing the product. The hard bound stays generous for
    // the same shared-host reasons as the deadline gate above.
    for (label, m, n, k, off_s, sampled_s) in verify_overhead(&engine) {
        let ratio = sampled_s / off_s;
        println!(
            "{label:>5} {m:>4}x{n:>4}x{k:>4}: off {:>9.1} µs  sample-1/16 {:>9.1} µs  \
             ratio {ratio:.3}",
            off_s * 1e6,
            sampled_s * 1e6,
        );
        if ratio > 1.02 {
            println!("  note: verify ratio {ratio:.3} above the 2% design target (host noise?)");
        }
        assert!(
            ratio < 1.35,
            "{label} ({m}x{n}x{k}): sampled verification {ratio:.3}x slower than unverified"
        );
    }

    // Plan-cache determinism: the second identical call must be a cache
    // hit and reproduce the first call's bits.
    {
        let (m, n, k) = (52usize, 40usize, 48usize);
        let (a, b) = data(m, n, k);
        let fresh = AutoGemm::new(ChipSpec::graviton2());
        let mut c1 = vec![0.0f32; m * n];
        let r1 = fresh.try_gemm_traced(m, n, k, &a, &b, &mut c1, 1).expect("traced call failed");
        let mut c2 = vec![0.0f32; m * n];
        let r2 = fresh.try_gemm_traced(m, n, k, &a, &b, &mut c2, 1).expect("traced call failed");
        assert!(!r1.dispatch.plan_cache_hit, "first call must tune (cache miss)");
        assert!(r2.dispatch.plan_cache_hit, "second identical call must be a plan-cache hit");
        assert_eq!(c2, c1, "cached plan must reproduce the miss call's bits");
        let stats = fresh.plan_cache_stats();
        println!(
            "plan cache: {m}x{n}x{k} second call hit (engine lifetime: {} hits / {} misses)",
            stats.hits, stats.misses
        );
    }

    // Loose trajectory check against the tracked baseline: catch only
    // catastrophic regressions (order-of-magnitude), not host noise.
    match std::fs::read_to_string("BENCH_native_gemm.json") {
        Err(_) => println!("BENCH_native_gemm.json not found; skipping trajectory check"),
        Ok(text) => {
            let doc = autogemm::telemetry::json::Json::parse(&text)
                .expect("BENCH_native_gemm.json must parse");
            let entries = doc
                .get("entries")
                .and_then(|e| e.as_arr())
                .expect("BENCH_native_gemm.json missing entries");
            for e in entries {
                let get = |key: &str| e.get(key).and_then(|v| v.as_usize()).unwrap_or(0);
                let (m, n, k, threads) = (get("m"), get("n"), get("k"), get("threads"));
                let baseline_s =
                    e.get("panel_cache_s").and_then(|v| v.as_f64()).unwrap_or(f64::INFINITY);
                if m * n * k == 0 || threads == 0 {
                    continue;
                }
                let plan = if threads > 1 {
                    engine.plan_multicore(m, n, k, threads)
                } else {
                    engine.plan(m, n, k)
                };
                let (a, b) = data(m, n, k);
                let pool = PanelPool::new();
                let mut c = vec![0.0f32; m * n];
                let now_s = median_secs(|| {
                    gemm_with_plan_pooled(black_box(&plan), &a, &b, &mut c, threads, &pool)
                });
                println!(
                    "{m:>4}x{n:>5}x{k:>4} t{threads}: now {:>9.1} µs  baseline {:>9.1} µs",
                    now_s * 1e6,
                    baseline_s * 1e6,
                );
                assert!(
                    now_s < baseline_s * 8.0,
                    "{m}x{n}x{k} t{threads}: {now_s}s vs baseline {baseline_s}s — \
                     panel-cache driver regressed past the loose 8x guard"
                );
            }
        }
    }
    println!("native_gemm smoke passed.");
}

/// Randomized supervision soak (ISSUE 5): watchdog-supervised calls
/// under seeded fault plans. Every call must be structured-error-or-
/// correct, no pool buffer may leak past a call, and once the probes are
/// disarmed a short clean tail must walk the circuit breaker back to
/// all-Closed (no path stuck Open).
#[cfg(feature = "faultinject")]
fn soak(iters: usize) {
    use autogemm::faultinject::{arm, FaultPlan};
    use autogemm::supervisor::{CancelToken, GemmOptions, WatchdogConfig};
    use autogemm::GemmError;
    use autogemm_baselines::naive::{max_rel_error, naive_gemm};

    // The injected faults panic on purpose (contained by the drivers);
    // keep the soak output readable by silencing exactly those.
    {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains("injected fault"))
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    }

    let engine = AutoGemm::new(ChipSpec::graviton2());
    // Deterministic LCG so soak failures reproduce from the iteration
    // number alone.
    let mut state: u64 = 0x9e3779b97f4a7c15;
    let mut next = move |bound: usize| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % bound
    };
    let watchdog =
        WatchdogConfig { quiescence: Duration::from_millis(500), poll: Duration::from_millis(10) };

    let (mut ok, mut failed, mut cancelled) = (0usize, 0usize, 0usize);
    for i in 0..iters {
        let (m, n, k) = (1 + next(48), 1 + next(48), 1 + next(40));
        let threads = [1, 2, 4, 8][next(4)];
        let (a, b) = data(m, n, k);
        let mut c = vec![0.0f32; m * n];

        let guard = arm(FaultPlan::seeded(next(1000) as u64));
        let mut opts = GemmOptions::new().threads(threads).watchdog(watchdog);
        // A quarter of the calls also carry a far-future deadline; a few
        // carry an already-cancelled token (must stop, never fault).
        match next(8) {
            0 | 1 => opts = opts.deadline(Duration::from_secs(30)),
            2 => {
                let tok = CancelToken::new();
                tok.cancel();
                opts = opts.cancel(tok);
            }
            _ => {}
        }
        match engine.try_gemm_opts(m, n, k, &a, &b, &mut c, &opts) {
            Ok(()) => {
                let mut want = vec![0.0f32; m * n];
                naive_gemm(m, n, k, &a, &b, &mut want);
                let err = max_rel_error(&c, &want);
                assert!(err < 1e-5, "iter {i} ({m}x{n}x{k} t{threads}): rel err {err}");
                ok += 1;
            }
            Err(GemmError::Cancelled { .. }) => cancelled += 1,
            Err(
                GemmError::WorkerPanicked { .. }
                | GemmError::AllocFailed { .. }
                | GemmError::Stalled { .. },
            ) => failed += 1,
            Err(e) => panic!("iter {i} ({m}x{n}x{k} t{threads}): unexpected error {e:?}"),
        }
        drop(guard);
        assert_eq!(
            engine.panel_pool().outstanding(),
            0,
            "iter {i} ({m}x{n}x{k} t{threads}): pool buffers leaked"
        );
    }

    // Disarmed clean tail: enough calls to serve any Open cooldown and
    // close every half-open probe — the breaker must not be stuck.
    let (m, n, k) = (40usize, 36usize, 24usize);
    let (a, b) = data(m, n, k);
    for _ in 0..16 {
        let mut c = vec![0.0f32; m * n];
        engine.try_gemm_threaded(m, n, k, &a, &b, &mut c, 2).expect("clean tail call failed");
    }
    let health = engine.health();
    assert!(
        health.all_closed(),
        "breaker stuck after the clean tail: {:?}",
        health.paths.iter().map(|p| (&p.path, &p.state)).collect::<Vec<_>>()
    );

    let high_water = engine.panel_pool().high_water();
    assert_eq!(engine.panel_pool().outstanding(), 0, "pool buffers leaked across the soak");
    assert!(high_water > 0, "soak never exercised the panel pool");
    assert!(high_water < 100_000, "pool high-water {high_water} unbounded");
    println!(
        "native_gemm soak passed: {iters} iters ({ok} ok, {failed} faulted, {cancelled} \
         cancelled), pool high-water {high_water} blocks, breaker all-closed."
    );
}

#[cfg(not(feature = "faultinject"))]
fn soak(_iters: usize) {
    eprintln!("--soak needs the fault probes: rerun with --features faultinject");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("--smoke") => {
            smoke();
            return;
        }
        Some("--soak") => {
            let iters = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000);
            soak(iters);
            return;
        }
        _ => {}
    }
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_native_gemm.json".to_string());
    let engine = AutoGemm::new(ChipSpec::graviton2());
    // The paper's flagship irregular DNN GEMM (64×3136×64, Table V) at 1
    // and 8 threads, a small Fig 8 shape, an awkward-prime shape, and a
    // mid square.
    let points = [
        (64, 3136, 64, 8),
        (64, 3136, 64, 1),
        (64, 196, 64, 1),
        (31, 44, 29, 1),
        (128, 128, 128, 4),
    ];

    let mut entries = Vec::new();
    for (m, n, k, threads) in points {
        let plan = if threads > 1 {
            engine.plan_multicore(m, n, k, threads)
        } else {
            engine.plan(m, n, k)
        };
        let (a, b) = data(m, n, k);
        let mut c = vec![0.0f32; m * n];

        let pool = PanelPool::new();
        let cached_s =
            median_secs(|| gemm_with_plan_pooled(black_box(&plan), &a, &b, &mut c, threads, &pool));
        let repack_s =
            median_secs(|| gemm_with_plan_repack(black_box(&plan), &a, &b, &mut c, threads));

        // Bit-identity check rides along with every bench run.
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm_with_plan_pooled(&plan, &a, &b, &mut c1, threads, &pool);
        gemm_with_plan_repack(&plan, &a, &b, &mut c2, threads);
        assert_eq!(c1, c2, "panel cache diverged from seed path on {m}x{n}x{k}");

        let flops = 2.0 * (m * n * k) as f64;
        println!(
            "{m:>4}x{n:>5}x{k:>4} t{threads}: panel_cache {:>9.1} µs ({:>6.2} GFLOPS)  \
             seed_repack {:>9.1} µs  speedup {:.2}x",
            cached_s * 1e6,
            flops / cached_s / 1e9,
            repack_s * 1e6,
            repack_s / cached_s,
        );
        entries.push(Entry { m, n, k, threads, repack_s, cached_s });
    }

    // Small/irregular section: the engine's input-aware dispatch (GEMV
    // and small-k fast paths, packing elision, plan cache) against the
    // always-packed panel-cache driver on the shapes the paper's Table V
    // says DNN inference actually serves. `speedup` is
    // panel_cache_s / input_aware_s.
    let small_points: [(&str, usize, usize, usize, usize); 8] = [
        ("L16c_n49", 128, 49, 256, 1), // Table V L16 class (n = 49, A-pack elided), scaled
        ("L20c_n49", 64, 49, 64, 1),   // Table V L20 class, small
        ("fig8_irr", 31, 44, 29, 1),   // awkward-prime small shape
        ("gemv_row", 1, 3136, 64, 1),  // m = 1 over the L2 panel
        ("gemv_row_t4", 1, 3136, 576, 4),
        ("gemv_col", 3136, 1, 64, 1), // n = 1, tall
        ("small_k", 64, 49, 8, 1),    // k ≤ 8 fast path
        ("small_k2", 31, 44, 6, 1),
    ];
    let mut small_entries = Vec::new();
    for (label, m, n, k, threads) in small_points {
        let (a, b) = data(m, n, k);
        let plan = if threads > 1 {
            engine.plan_multicore(m, n, k, threads)
        } else {
            engine.plan(m, n, k)
        };
        let pool = PanelPool::new();
        let mut c_panel = vec![0.0f32; m * n];
        let panel_s = median_secs(|| {
            gemm_with_plan_pooled(black_box(&plan), &a, &b, &mut c_panel, threads, &pool)
        });
        let mut c_aware = vec![0.0f32; m * n];
        let aware_s = median_secs(|| {
            engine
                .try_gemm_threaded(m, n, k, black_box(&a), &b, &mut c_aware, threads)
                .expect("input-aware bench call failed")
        });
        assert_eq!(c_aware, c_panel, "{label}: input-aware path diverged from panel cache");
        let mut c_r = vec![0.0f32; m * n];
        let report = engine
            .try_gemm_traced(m, n, k, &a, &b, &mut c_r, threads)
            .expect("traced bench call failed");
        let flops = 2.0 * (m * n * k) as f64;
        println!(
            "{label:>12} {m:>4}x{n:>5}x{k:>4} t{threads} [{}]: panel_cache {:>9.1} µs  \
             input_aware {:>9.1} µs ({:>6.2} GFLOPS)  speedup {:.2}x",
            report.dispatch.route,
            panel_s * 1e6,
            aware_s * 1e6,
            flops / aware_s / 1e9,
            panel_s / aware_s,
        );
        small_entries.push((label, m, n, k, threads, report.dispatch, panel_s, aware_s));
    }

    // Plan-cache repeat benchmark: a fresh engine pays the tuner once;
    // the second lookup of the same shape must come back from the cache
    // in ~0 time.
    let (pc_m, pc_n, pc_k) = (52usize, 40usize, 48usize);
    let fresh = AutoGemm::new(ChipSpec::graviton2());
    let t0 = Instant::now();
    let _ = fresh.plan(pc_m, pc_n, pc_k);
    let first_plan_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let _ = fresh.plan(pc_m, pc_n, pc_k);
    let cached_plan_s = t1.elapsed().as_secs_f64();
    let pc_stats = fresh.plan_cache_stats();
    println!(
        "plan cache {pc_m}x{pc_n}x{pc_k}: first (tuned) {:.1} µs, repeat (hit) {:.1} µs, \
         {} hits / {} misses",
        first_plan_s * 1e6,
        cached_plan_s * 1e6,
        pc_stats.hits,
        pc_stats.misses
    );
    assert!(pc_stats.hits >= 1, "repeated plan lookup must hit the cache");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"native_gemm\",");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p autogemm-bench --bin native_gemm\","
    );
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    );
    let _ = writeln!(json, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let flops = 2.0 * (e.m * e.n * e.k) as f64;
        let _ = write!(
            json,
            "    {{\"m\": {}, \"n\": {}, \"k\": {}, \"threads\": {}, \
             \"panel_cache_s\": {:.9}, \"panel_cache_gflops\": {:.3}, \
             \"seed_repack_s\": {:.9}, \"seed_repack_gflops\": {:.3}, \
             \"speedup\": {:.4}}}",
            e.m,
            e.n,
            e.k,
            e.threads,
            e.cached_s,
            flops / e.cached_s / 1e9,
            e.repack_s,
            flops / e.repack_s / 1e9,
            e.repack_s / e.cached_s,
        );
        let _ = writeln!(json, "{}", if i + 1 < entries.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"small_irregular\": [");
    for (i, (label, m, n, k, threads, dispatch, panel_s, aware_s)) in
        small_entries.iter().enumerate()
    {
        let flops = 2.0 * (m * n * k) as f64;
        let _ = write!(
            json,
            "    {{\"label\": \"{label}\", \"m\": {m}, \"n\": {n}, \"k\": {k}, \
             \"threads\": {threads}, \"route\": \"{}\", \"packed_a\": {}, \"packed_b\": {}, \
             \"panel_cache_s\": {panel_s:.9}, \"input_aware_s\": {aware_s:.9}, \
             \"input_aware_gflops\": {:.3}, \"speedup\": {:.4}}}",
            dispatch.route,
            dispatch.packed_a,
            dispatch.packed_b,
            flops / aware_s / 1e9,
            panel_s / aware_s,
        );
        let _ = writeln!(json, "{}", if i + 1 < small_entries.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"verify_overhead\": [");
    let vo = verify_overhead(&engine);
    for (i, (label, m, n, k, off_s, sampled_s)) in vo.iter().enumerate() {
        println!(
            "{label:>5} {m:>4}x{n:>5}x{k:>4}: off {:>9.1} µs  sample-1/16 {:>9.1} µs  \
             overhead {:.2}%",
            off_s * 1e6,
            sampled_s * 1e6,
            (sampled_s / off_s - 1.0) * 100.0,
        );
        let _ = write!(
            json,
            "    {{\"label\": \"{label}\", \"m\": {m}, \"n\": {n}, \"k\": {k}, \
             \"sample_rate\": 16, \"off_s\": {off_s:.9}, \"sampled_s\": {sampled_s:.9}, \
             \"overhead_ratio\": {:.4}}}",
            sampled_s / off_s,
        );
        let _ = writeln!(json, "{}", if i + 1 < vo.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"plan_cache\": {{");
    let _ = writeln!(json, "    \"m\": {pc_m}, \"n\": {pc_n}, \"k\": {pc_k},");
    let _ = writeln!(json, "    \"first_plan_s\": {first_plan_s:.9},");
    let _ = writeln!(json, "    \"cached_plan_s\": {cached_plan_s:.9},");
    let _ = writeln!(json, "    \"hits\": {}, \"misses\": {}", pc_stats.hits, pc_stats.misses);
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_native_gemm.json");
    println!("wrote {out_path}");
}
