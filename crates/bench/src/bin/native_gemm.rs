//! Emit `BENCH_native_gemm.json`: the tracked wall-clock trajectory of
//! the native block driver on this host.
//!
//! For each (shape × threads) point the binary times the panel-cache
//! driver (operands packed once per GEMM, atomic block queue, pooled
//! buffers) and the historical per-block repacking path on the same
//! execution plan, and records medians, GFLOPS and the speedup. Run with
//!
//! ```text
//! cargo run --release -p autogemm-bench --bin native_gemm [OUT.json]
//! ```
//!
//! from the workspace root (default output: `BENCH_native_gemm.json`).

use autogemm::native::{gemm_with_plan_pooled, gemm_with_plan_repack};
use autogemm::{AutoGemm, PanelPool};
use autogemm_arch::ChipSpec;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const REPS: usize = 15;
const WARMUP: usize = 3;

fn data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>) {
    let a = (0..m * k).map(|i| (i % 17) as f32 - 8.0).collect();
    let b = (0..k * n).map(|i| (i % 13) as f32 - 6.0).collect();
    (a, b)
}

fn median_secs(mut f: impl FnMut()) -> f64 {
    for _ in 0..WARMUP {
        f();
    }
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct Entry {
    m: usize,
    n: usize,
    k: usize,
    threads: usize,
    repack_s: f64,
    cached_s: f64,
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_native_gemm.json".to_string());
    let engine = AutoGemm::new(ChipSpec::graviton2());
    // The paper's flagship irregular DNN GEMM (64×3136×64, Table V) at 1
    // and 8 threads, a small Fig 8 shape, an awkward-prime shape, and a
    // mid square.
    let points = [
        (64, 3136, 64, 8),
        (64, 3136, 64, 1),
        (64, 196, 64, 1),
        (31, 44, 29, 1),
        (128, 128, 128, 4),
    ];

    let mut entries = Vec::new();
    for (m, n, k, threads) in points {
        let plan = if threads > 1 {
            engine.plan_multicore(m, n, k, threads)
        } else {
            engine.plan(m, n, k)
        };
        let (a, b) = data(m, n, k);
        let mut c = vec![0.0f32; m * n];

        let pool = PanelPool::new();
        let cached_s =
            median_secs(|| gemm_with_plan_pooled(black_box(&plan), &a, &b, &mut c, threads, &pool));
        let repack_s =
            median_secs(|| gemm_with_plan_repack(black_box(&plan), &a, &b, &mut c, threads));

        // Bit-identity check rides along with every bench run.
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm_with_plan_pooled(&plan, &a, &b, &mut c1, threads, &pool);
        gemm_with_plan_repack(&plan, &a, &b, &mut c2, threads);
        assert_eq!(c1, c2, "panel cache diverged from seed path on {m}x{n}x{k}");

        let flops = 2.0 * (m * n * k) as f64;
        println!(
            "{m:>4}x{n:>5}x{k:>4} t{threads}: panel_cache {:>9.1} µs ({:>6.2} GFLOPS)  \
             seed_repack {:>9.1} µs  speedup {:.2}x",
            cached_s * 1e6,
            flops / cached_s / 1e9,
            repack_s * 1e6,
            repack_s / cached_s,
        );
        entries.push(Entry { m, n, k, threads, repack_s, cached_s });
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"native_gemm\",");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p autogemm-bench --bin native_gemm\","
    );
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    );
    let _ = writeln!(json, "  \"entries\": [");
    for (i, e) in entries.iter().enumerate() {
        let flops = 2.0 * (e.m * e.n * e.k) as f64;
        let _ = write!(
            json,
            "    {{\"m\": {}, \"n\": {}, \"k\": {}, \"threads\": {}, \
             \"panel_cache_s\": {:.9}, \"panel_cache_gflops\": {:.3}, \
             \"seed_repack_s\": {:.9}, \"seed_repack_gflops\": {:.3}, \
             \"speedup\": {:.4}}}",
            e.m,
            e.n,
            e.k,
            e.threads,
            e.cached_s,
            flops / e.cached_s / 1e9,
            e.repack_s,
            flops / e.repack_s / 1e9,
            e.repack_s / e.cached_s,
        );
        let _ = writeln!(json, "{}", if i + 1 < entries.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_native_gemm.json");
    println!("wrote {out_path}");
}
