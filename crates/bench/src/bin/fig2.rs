//! Fig 2: arithmetic intensity of m_r x 16 micro-kernels as k_c grows,
//! against each chip's sigma_AI threshold.

use autogemm_arch::ChipSpec;
use autogemm_bench::print_table;
use autogemm_perfmodel::ai::fig2_series;

fn main() {
    let kcs = [4usize, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256];
    let series = fig2_series(&[2, 3, 4, 5], &kcs);
    let mut rows = Vec::new();
    for (mr, vals) in &series {
        let mut row = vec![format!("{mr}x16")];
        row.extend(vals.iter().map(|v| format!("{v:.2}")));
        rows.push(row);
    }
    let kc_headers: Vec<String> = kcs.iter().map(|k| k.to_string()).collect();
    let mut headers = vec!["tile \\ k_c"];
    headers.extend(kc_headers.iter().map(|s| s.as_str()));
    print_table("Fig 2 — AI(k_c) for m_r x 16 tiles (Eqn 3)", &headers, &rows);

    println!("\nsigma_AI thresholds (lower = easier to reach peak):");
    for chip in ChipSpec::all_evaluated() {
        println!("  {:14} {:.1}", chip.name, chip.sigma_ai);
    }
    println!("\nA tile reaches close-to-peak once its AI(k_c) clears the chip's sigma_AI.");
}
