//! Emit `BENCH_service.json`: overload behavior of the admission-
//! controlled service layer (ISSUE 9).
//!
//! The binary first measures the service's *saturation throughput* with a
//! closed loop (one caller per execution slot, no deadlines, no
//! shedding), then replays paced open-loop traffic at 0.5x / 1x / 2x that
//! rate with a per-call deadline. The artifact records, per offered load:
//! offered vs achieved QPS, the admission outcome counts
//! (admitted / rejected / shed / expired-in-queue), and the p50/p99
//! end-to-end latency of the calls that completed. The overload story the
//! numbers must tell: below saturation everything is admitted and fast;
//! at 2x the queue bounds latency for the admitted fraction and the
//! overflow is converted into deterministic structured rejections rather
//! than unbounded queue growth.
//!
//! Run with
//!
//! ```text
//! cargo run --release -p autogemm-bench --bin service_soak [OUT.json]
//! ```
//!
//! from the workspace root (default output: `BENCH_service.json`).
//!
//! The artifact also carries a `verify_matrix` (ISSUE 10): three tenants
//! with `VerifyPolicy::{Off, Sample{8}, Always}` quotas run the same
//! burst through their per-tenant engines, recording how much
//! verification each policy actually bought (engine-lifetime
//! `verify_*_total` counters from the schema-v7 `integrity` section).
//!
//! `--smoke` runs a shortened sweep as a CI guard and asserts the
//! contract instead of writing the artifact: >0 rejections at 2x offered
//! load, bounded p99 for admitted calls, the queue and the in-flight
//! gauge drained to zero, no leaked pool workers, and the verify matrix
//! contract (off ⇒ zero runs, always ⇒ every call, sampled ⇒ the
//! cadence's share; zero failures on clean traffic; drained to idle).

use autogemm::supervisor::GemmOptions;
use autogemm::telemetry::metrics::Counter;
use autogemm::{GemmError, GemmService, ServiceConfig, ShedPolicy, TenantId, TenantQuota};
use autogemm_arch::ChipSpec;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One irregular Table V-class shape: small enough that admission
/// overhead matters, big enough that execution dominates a queue hop.
const SHAPE: (usize, usize, usize) = (64, 49, 64);

/// Per-call deadline during the paced phases.
const DEADLINE: Duration = Duration::from_millis(25);

const QUEUE_DEPTH: usize = 8;
const MAX_IN_FLIGHT: usize = 2;
const TENANT_THREADS: usize = 2;

const LOADS: [f64; 3] = [0.5, 1.0, 2.0];

fn data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>) {
    let a = (0..m * k).map(|i| (i % 17) as f32 - 8.0).collect();
    let b = (0..k * n).map(|i| (i % 13) as f32 - 6.0).collect();
    (a, b)
}

fn service(default_deadline: Option<Duration>, shed: bool) -> GemmService {
    GemmService::new(
        ChipSpec::graviton2(),
        ServiceConfig {
            queue_depth: QUEUE_DEPTH,
            max_in_flight: MAX_IN_FLIGHT,
            default_deadline,
            shed: ShedPolicy { enabled: shed, ..ShedPolicy::default() },
            default_quota: TenantQuota { threads: TENANT_THREADS, ..TenantQuota::default() },
            ..ServiceConfig::default()
        },
    )
}

/// Closed-loop saturation probe: `MAX_IN_FLIGHT` callers back-to-back for
/// `window`, no deadlines. Returns calls/second.
fn measure_saturation(window: Duration) -> f64 {
    let svc = service(None, false);
    let tenant = TenantId::new("probe");
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k);
    let done = std::sync::atomic::AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..MAX_IN_FLIGHT {
            s.spawn(|| {
                let mut c = vec![0.0f32; m * n];
                while t0.elapsed() < window {
                    svc.submit(&tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new())
                        .expect("unloaded closed-loop call failed");
                    done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    let calls = done.load(std::sync::atomic::Ordering::Relaxed);
    calls as f64 / t0.elapsed().as_secs_f64()
}

struct LoadResult {
    multiplier: f64,
    offered_qps: f64,
    achieved_qps: f64,
    admitted: u64,
    rejected: u64,
    shed: u64,
    expired_in_queue: u64,
    ok: u64,
    exec_errors: u64,
    p50_s: f64,
    p99_s: f64,
    queued_after: usize,
    in_flight_after: usize,
    gauge_after: i64,
}

fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64 * 1e-9
}

/// Paced open-loop phase: `pacers` threads offer `offered_qps` calls/sec
/// in aggregate for `window`, each call carrying [`DEADLINE`].
fn run_load(multiplier: f64, saturation_qps: f64, window: Duration) -> LoadResult {
    let svc = service(Some(DEADLINE), true);
    let tenant = TenantId::new("paced");
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k);
    let offered_qps = saturation_qps * multiplier;
    // Enough pacer threads that callers stuck in the admission queue do
    // not throttle the offered rate.
    let pacers = (2 * MAX_IN_FLIGHT + QUEUE_DEPTH + 2).max(4);
    let per_thread_interval = Duration::from_secs_f64(pacers as f64 / offered_qps.max(1.0));
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let ok = std::sync::atomic::AtomicU64::new(0);
    let exec_errors = std::sync::atomic::AtomicU64::new(0);

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for p in 0..pacers {
            let (svc, tenant, a, b, latencies, ok, exec_errors) =
                (&svc, &tenant, &a, &b, &latencies, &ok, &exec_errors);
            s.spawn(move || {
                let mut c = vec![0.0f32; m * n];
                // Stagger thread start across one interval so the
                // aggregate offered stream is evenly spaced.
                let mut next = t0 + per_thread_interval.mul_f64(p as f64 / pacers as f64);
                loop {
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep(next - now);
                    }
                    if t0.elapsed() >= window {
                        break;
                    }
                    next += per_thread_interval;
                    let call_t0 = Instant::now();
                    match svc.submit(tenant, m, n, k, a, b, &mut c, &GemmOptions::new()) {
                        Ok(_) => {
                            ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let ns = call_t0.elapsed().as_nanos() as u64;
                            let mut l = latencies.lock().unwrap_or_else(|e| e.into_inner());
                            l.push(ns);
                        }
                        Err(GemmError::Rejected { .. }) => {}
                        Err(_) => {
                            exec_errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let snap = svc.metrics().snapshot();
    let mut lat = latencies.into_inner().unwrap_or_else(|e| e.into_inner());
    lat.sort_unstable();
    let ok_calls = ok.load(std::sync::atomic::Ordering::Relaxed);
    LoadResult {
        multiplier,
        offered_qps,
        achieved_qps: ok_calls as f64 / elapsed,
        admitted: snap.counter(Counter::ServiceAdmitted),
        rejected: snap.counter(Counter::ServiceRejected),
        shed: snap.counter(Counter::ServiceShed),
        expired_in_queue: snap.counter(Counter::ServiceExpiredInQueue),
        ok: ok_calls,
        exec_errors: exec_errors.load(std::sync::atomic::Ordering::Relaxed),
        p50_s: percentile(&lat, 0.50),
        p99_s: percentile(&lat, 0.99),
        queued_after: svc.queued(),
        in_flight_after: svc.in_flight(),
        gauge_after: snap.in_flight,
    }
}

struct VerifyCell {
    policy: &'static str,
    sample_rate: u64,
    calls: u64,
    runs: u64,
    passes: u64,
    failures: u64,
    queued_after: usize,
    in_flight_after: usize,
    gauge_after: i64,
}

/// Per-tenant verification policy matrix (ISSUE 10): three tenants on
/// one service — verify never / one-in-eight / always — each push the
/// same closed-loop burst through their own engine. Engines are
/// per-tenant, so the engine-lifetime verify counters (read from the
/// final traced call's schema-v7 `integrity` section) attribute
/// verification work to exactly one policy.
fn run_verify_matrix(calls_per_tenant: u64) -> Vec<VerifyCell> {
    use autogemm::VerifyPolicy;
    const SAMPLE_RATE: u32 = 8;
    let policies: [(&'static str, VerifyPolicy); 3] = [
        ("off", VerifyPolicy::Off),
        ("sampled", VerifyPolicy::Sample { rate: SAMPLE_RATE }),
        ("always", VerifyPolicy::Always),
    ];
    let svc = service(None, false);
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k);
    policies
        .iter()
        .map(|&(name, policy)| {
            let tenant = svc.add_tenant(
                name,
                TenantQuota { threads: TENANT_THREADS, verify: policy, ..TenantQuota::default() },
            );
            let remaining = std::sync::atomic::AtomicU64::new(calls_per_tenant);
            std::thread::scope(|s| {
                for _ in 0..MAX_IN_FLIGHT {
                    let (svc, tenant, a, b, remaining) = (&svc, &tenant, &a, &b, &remaining);
                    s.spawn(move || {
                        let mut c = vec![0.0f32; m * n];
                        while remaining
                            .fetch_update(
                                std::sync::atomic::Ordering::Relaxed,
                                std::sync::atomic::Ordering::Relaxed,
                                |v| v.checked_sub(1),
                            )
                            .is_ok()
                        {
                            svc.submit(tenant, m, n, k, a, b, &mut c, &GemmOptions::new())
                                .expect("unloaded verified call failed");
                        }
                    });
                }
            });
            // One more (traced) call exposes the tenant engine's lifetime
            // verify counters through the integrity report section.
            let mut c = vec![0.0f32; m * n];
            let (_reply, report) = svc
                .submit_traced(&tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new())
                .expect("traced verified call failed");
            let integ = report.integrity.expect("schema-v7 report carries an integrity section");
            assert_eq!(integ.policy, policy.name(), "quota policy must reach the engine");
            let snap = svc.metrics().snapshot();
            VerifyCell {
                policy: name,
                sample_rate: integ.sample_rate,
                calls: calls_per_tenant + 1,
                runs: integ.verify_runs_total,
                passes: integ.verify_passes_total,
                failures: integ.verify_failures_total,
                queued_after: svc.queued(),
                in_flight_after: svc.in_flight(),
                gauge_after: snap.in_flight,
            }
        })
        .collect()
}

/// One traced call through a fresh service: the embedded schema-v6 report
/// (with its `service` section) the schema guard validates.
fn traced_report() -> String {
    let svc = service(None, false);
    let tenant = TenantId::new("traced");
    let (m, n, k) = SHAPE;
    let (a, b) = data(m, n, k);
    let mut c = vec![0.0f32; m * n];
    let (_reply, report) = svc
        .submit_traced(&tenant, m, n, k, &a, &b, &mut c, &GemmOptions::new())
        .expect("traced service call failed");
    report.to_json()
}

fn run(window_sat: Duration, window_load: Duration) -> (f64, Vec<LoadResult>) {
    let saturation_qps = measure_saturation(window_sat);
    let results = LOADS.iter().map(|&mult| run_load(mult, saturation_qps, window_load)).collect();
    (saturation_qps, results)
}

fn smoke() {
    let baseline_workers = autogemm::Runtime::global().alive_workers();
    let (saturation_qps, results) = run(Duration::from_millis(200), Duration::from_millis(400));
    assert!(saturation_qps > 0.0, "saturation probe made no calls");
    for r in &results {
        // Whatever the load, the service must settle to idle...
        assert_eq!(r.queued_after, 0, "{}x: queue not drained", r.multiplier);
        assert_eq!(r.in_flight_after, 0, "{}x: leaked in-flight slot", r.multiplier);
        assert_eq!(r.gauge_after, 0, "{}x: metrics gauge nonzero", r.multiplier);
        // ...and admitted calls keep a bounded latency profile: queue
        // wait and execution are both capped by the deadline, so
        // end-to-end p99 is bounded by a small multiple of it.
        if r.ok > 0 {
            assert!(
                r.p99_s < (5 * DEADLINE).as_secs_f64(),
                "{}x: admitted p99 {:.1} ms unbounded",
                r.multiplier,
                r.p99_s * 1e3,
            );
        }
        let accounted = r.admitted + r.rejected + r.shed + r.expired_in_queue;
        assert!(accounted > 0, "{}x: no traffic offered", r.multiplier);
    }
    let overload = results.last().expect("loads configured");
    let dropped = overload.rejected + overload.shed + overload.expired_in_queue;
    assert!(
        dropped > 0,
        "2x offered load must produce deterministic rejections, got none \
         (admitted {} of offered {:.0}/s)",
        overload.admitted,
        overload.offered_qps,
    );
    let matrix = run_verify_matrix(24);
    for cell in &matrix {
        // The verify matrix must also settle to idle: verification runs
        // inline in the dispatched call, never as trailing work.
        assert_eq!(cell.queued_after, 0, "verify {}: queue not drained", cell.policy);
        assert_eq!(cell.in_flight_after, 0, "verify {}: leaked in-flight slot", cell.policy);
        assert_eq!(cell.gauge_after, 0, "verify {}: metrics gauge nonzero", cell.policy);
        assert_eq!(cell.failures, 0, "verify {}: clean traffic flagged", cell.policy);
        assert_eq!(
            cell.passes, cell.runs,
            "verify {}: runs != passes on clean traffic",
            cell.policy
        );
        match cell.policy {
            "off" => assert_eq!(cell.runs, 0, "off tenant must never verify"),
            "always" => assert_eq!(cell.runs, cell.calls, "always tenant must verify every call"),
            _ => {
                // Sampled: at least the cadence's share, strictly fewer
                // than every call (rate > 1 really elides work).
                assert!(
                    cell.runs >= cell.calls / cell.sample_rate && cell.runs < cell.calls,
                    "sampled tenant verified {} of {} calls at rate {}",
                    cell.runs,
                    cell.calls,
                    cell.sample_rate,
                );
            }
        }
    }
    assert_eq!(
        autogemm::Runtime::global().alive_workers(),
        baseline_workers,
        "soak changed the global pool's worker count"
    );
    let sampled = &matrix[1];
    println!(
        "verify matrix passed: off 0 runs, sampled {}/{} at rate {}, always {}/{}; \
         zero failures, all drained.",
        sampled.runs, sampled.calls, sampled.sample_rate, matrix[2].runs, matrix[2].calls,
    );
    println!(
        "service_soak smoke passed: saturation {:.0} calls/s; 2x load admitted {} / \
         dropped {} (rejected {}, shed {}, expired {}), admitted p99 {:.2} ms.",
        saturation_qps,
        overload.admitted,
        dropped,
        overload.rejected,
        overload.shed,
        overload.expired_in_queue,
        overload.p99_s * 1e3,
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let first = args.next();
    if first.as_deref() == Some("--smoke") {
        smoke();
        return;
    }
    let out_path = first.unwrap_or_else(|| "BENCH_service.json".to_string());
    let (saturation_qps, results) = run(Duration::from_millis(400), Duration::from_millis(800));

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"service_soak\",");
    let _ = writeln!(
        json,
        "  \"command\": \"cargo run --release -p autogemm-bench --bin service_soak\","
    );
    let (m, n, k) = SHAPE;
    let _ = writeln!(json, "  \"shape\": {{\"m\": {m}, \"n\": {n}, \"k\": {k}}},");
    let _ = writeln!(
        json,
        "  \"config\": {{\"queue_depth\": {QUEUE_DEPTH}, \"max_in_flight\": {MAX_IN_FLIGHT}, \
         \"tenant_threads\": {TENANT_THREADS}, \"deadline_ms\": {}}},",
        DEADLINE.as_millis()
    );
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    );
    let _ = writeln!(json, "  \"saturation_qps\": {saturation_qps:.1},");
    let _ = writeln!(json, "  \"loads\": [");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"multiplier\": {:.1}, \"offered_qps\": {:.1}, \"achieved_qps\": {:.1}, \
             \"admitted\": {}, \"rejected\": {}, \"shed\": {}, \"expired_in_queue\": {}, \
             \"ok\": {}, \"exec_errors\": {}, \"p50_s\": {:.9}, \"p99_s\": {:.9}, \
             \"queued_after\": {}, \"in_flight_after\": {}}}",
            r.multiplier,
            r.offered_qps,
            r.achieved_qps,
            r.admitted,
            r.rejected,
            r.shed,
            r.expired_in_queue,
            r.ok,
            r.exec_errors,
            r.p50_s,
            r.p99_s,
            r.queued_after,
            r.in_flight_after,
        );
        let _ = writeln!(json, "{}", if i + 1 < results.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let matrix = run_verify_matrix(64);
    let _ = writeln!(json, "  \"verify_matrix\": [");
    for (i, cell) in matrix.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"policy\": \"{}\", \"sample_rate\": {}, \"calls\": {}, \
             \"verify_runs_total\": {}, \"verify_passes_total\": {}, \
             \"verify_failures_total\": {}, \"queued_after\": {}, \"in_flight_after\": {}}}",
            cell.policy,
            cell.sample_rate,
            cell.calls,
            cell.runs,
            cell.passes,
            cell.failures,
            cell.queued_after,
            cell.in_flight_after,
        );
        let _ = writeln!(json, "{}", if i + 1 < matrix.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"report\": {}", traced_report());
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write BENCH_service.json");
    let overload = results.last().expect("loads configured");
    println!(
        "wrote {out_path}: saturation {:.0} calls/s; 2x load admitted {} rejected {} \
         shed {} expired {}.",
        saturation_qps,
        overload.admitted,
        overload.rejected,
        overload.shed,
        overload.expired_in_queue,
    );
}
