//! Fig 9: irregular GEMM performance on the 20 ResNet-50 layers of
//! Table V — single core (upper) and all cores (lower) — for autoGEMM,
//! OpenBLAS, Eigen and LibShalom.

use autogemm::AutoGemm;
use autogemm_arch::ChipSpec;
use autogemm_baselines::{simulate_baseline, Baseline};
use autogemm_bench::{gf, print_table};
use autogemm_workloads::resnet50_table_v;

fn main() {
    let chips = [ChipSpec::kp920(), ChipSpec::graviton2(), ChipSpec::altra()];
    for chip in chips {
        // autoGEMM uses offline packing here, like LibShalom (§V-C).
        let engine = AutoGemm::new(chip.clone()).with_offline_packing();
        for threads in [1usize, chip.cores] {
            let mut rows = Vec::new();
            let mut speedup_ob = Vec::new();
            let mut speedup_eigen = Vec::new();
            for layer in resnet50_table_v() {
                let (m, n, k) = (layer.m, layer.n, layer.k);
                let auto = engine.simulate(m, n, k, threads);
                let ob = simulate_baseline(Baseline::OpenBlas, m, n, k, &chip, threads);
                let eig = simulate_baseline(Baseline::Eigen, m, n, k, &chip, threads);
                let sha = simulate_baseline(Baseline::LibShalom, m, n, k, &chip, threads);
                if let Some(r) = &ob {
                    speedup_ob.push(auto.gflops / r.gflops);
                }
                if let Some(r) = &eig {
                    speedup_eigen.push(auto.gflops / r.gflops);
                }
                rows.push(vec![
                    layer.name(),
                    format!("{m}x{n}x{k}"),
                    gf(auto.gflops),
                    ob.map(|r| gf(r.gflops)).unwrap_or("-".into()),
                    eig.map(|r| gf(r.gflops)).unwrap_or("-".into()),
                    sha.map(|r| gf(r.gflops)).unwrap_or("-".into()),
                ]);
            }
            let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            let mx = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
            print_table(
                &format!(
                    "Fig 9 — ResNet-50 layers on {} ({} thread(s)) [GFLOPS]",
                    chip.name, threads
                ),
                &["layer", "shape", "autoGEMM", "OpenBLAS", "Eigen", "LibShalom"],
                &rows,
            );
            println!(
                "speedup vs OpenBLAS avg {:.2}x (max {:.2}x); vs Eigen avg {:.2}x (max {:.2}x)",
                avg(&speedup_ob),
                mx(&speedup_ob),
                avg(&speedup_eigen),
                mx(&speedup_eigen)
            );
            if threads > 1 {
                println!("(multi-core runs pin k_c = K — the TVM limitation — large-K layers L7/L12/L17/L20 dip)");
            }
        }
    }
    println!("\npaper landmarks: single-core 1.3x (up to 1.9x) over OpenBLAS, 1.5x (up to 2.0x) over Eigen;");
    println!("within 2-8% of LibShalom; multi-core ~8% over LibShalom on Graviton2.");
}
