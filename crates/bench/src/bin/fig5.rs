//! Fig 5: micro-tiling strategies on the C(26,36) worked example —
//! OpenBLAS (pad), LIBXSMM (edges), DMT (dynamic) on low- and high-σ_AI
//! hardware.

use autogemm_arch::ChipSpec;
use autogemm_bench::print_table;
use autogemm_kernelgen::MicroTile;
use autogemm_perfmodel::ModelOpts;
use autogemm_tiling::{plan_dmt, plan_libxsmm, plan_openblas};

fn main() {
    let (m, n, kc) = (26usize, 36usize, 64usize);
    let opts = ModelOpts { rotate: true, fused: true };
    let tile = MicroTile::new(5, 16);

    let ob = plan_openblas(m, n, tile);
    let xs = plan_libxsmm(m, n, tile, 4);
    let low = plan_dmt(m, n, kc, &ChipSpec::graviton2(), opts);
    let high = plan_dmt(m, n, kc, &ChipSpec::kp920(), opts);

    let mut rows = Vec::new();
    for (name, plan, chip) in [
        ("OpenBLAS (pad 5x16)", &ob, ChipSpec::kp920()),
        ("LIBXSMM (edges 5x16)", &xs, ChipSpec::kp920()),
        ("DMT (low sigma_AI: Graviton2)", &low, ChipSpec::graviton2()),
        ("DMT (high sigma_AI: KP920)", &high, ChipSpec::kp920()),
    ] {
        rows.push(vec![
            name.to_string(),
            plan.tile_count().to_string(),
            plan.low_ai_count(&chip).to_string(),
            plan.padded_elems().to_string(),
            format!("{:.0}", plan.effective_cycles(kc, &chip, opts)),
        ]);
    }
    print_table(
        "Fig 5 — tiling C(26,36) (paper: OpenBLAS 18 tiles/8 padded, LIBXSMM 18/8 low-AI, DMT 13/<=2)",
        &["strategy", "tiles", "low-AI tiles", "padded elems", "projected cycles"],
        &rows,
    );

    println!("\nDMT plan on low-sigma_AI hardware (Graviton2):\n{}", low.ascii_art());
    println!("DMT plan on high-sigma_AI hardware (KP920):\n{}", high.ascii_art());
}
