//! Re-parse every committed `BENCH_*.json` artifact through the
//! versioned-schema parser — the CI sweep that keeps old artifacts
//! loadable as the schema evolves.
//!
//! Every artifact must be valid JSON. On top of that, any object found
//! anywhere inside one that carries a `schema_version` key is treated
//! as an embedded [`autogemm::GemmReport`] and must survive
//! [`GemmReport::from_json_value`] (the guard accepts every version
//! back to `MIN_SCHEMA_VERSION`, so `BENCH_gemmtrace.json` regenerated
//! under any schema still passes). A timeline artifact (one with a
//! top-level `traceEvents` array) is checked for well-formed Chrome
//! trace events instead: every event needs `ph`/`pid`/`tid`, and every
//! duration event (`ph: "X"`) needs numeric `ts`/`dur`.
//!
//! ```text
//! cargo run --release -p autogemm-bench --bin schema_guard [DIR]
//! ```
//!
//! Scans `DIR` (default `.`, the repo root in CI) non-recursively and
//! panics on the first violation — artifacts with no embedded reports
//! (e.g. `BENCH_pool.json`, previously unguarded entirely) still get
//! the full JSON validation.

use autogemm::telemetry::Json;
use autogemm::GemmReport;

/// Recursively count and validate embedded schema-versioned reports.
fn check_reports(path: &str, v: &Json) -> usize {
    let mut found = 0;
    match v {
        Json::Obj(fields) => {
            // Artifact envelopes also stamp a top-level `schema_version`;
            // an embedded GemmReport is distinguished by the mandatory
            // `phases` section (present in every schema version).
            if v.get("schema_version").is_some() && v.get("phases").is_some() {
                GemmReport::from_json_value(v).unwrap_or_else(|e| {
                    panic!("{path}: embedded report failed the schema guard: {e}")
                });
                check_integrity_consistency(path, v);
                found += 1;
            }
            for (_, inner) in fields {
                found += check_reports(path, inner);
            }
        }
        Json::Arr(items) => {
            for inner in items {
                found += check_reports(path, inner);
            }
        }
        _ => {}
    }
    found
}

/// Schema-v7 cross-section rule: a report that claims verification
/// failures (`integrity.verify_failures_total > 0`) must also show the
/// failures reaching the breaker — either accumulated faults on the
/// `verify_integrity` health path or a recorded transition on it. An
/// artifact violating this was produced by an engine that detected
/// corruption but never fed the quarantine machinery, which is exactly
/// the bug this guard exists to catch. Reports without an `integrity`
/// section (schema ≤ v6, or verification off) are exempt.
fn check_integrity_consistency(path: &str, report: &Json) {
    let failures = report
        .get("integrity")
        .and_then(|i| i.get("verify_failures_total"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if failures == 0 {
        return;
    }
    let health = report
        .get("health")
        .unwrap_or_else(|| panic!("{path}: report claims verify failures but has no health"));
    let path_faulted = health
        .get("paths")
        .and_then(Json::as_arr)
        .map(|paths| {
            paths.iter().any(|p| {
                p.get("path").and_then(Json::as_str) == Some("verify_integrity")
                    && (p.get("total_faults").and_then(Json::as_u64).unwrap_or(0) > 0
                        || p.get("trips").and_then(Json::as_u64).unwrap_or(0) > 0)
            })
        })
        .unwrap_or(false);
    let transition_recorded = health
        .get("transitions")
        .and_then(Json::as_arr)
        .map(|ts| ts.iter().filter_map(Json::as_str).any(|t| t.starts_with("verify_integrity:")))
        .unwrap_or(false);
    if !path_faulted && !transition_recorded {
        panic!(
            "{path}: report claims {failures} verify failures but the \
             verify_integrity breaker path shows no faults, trips or \
             transitions — detection is not reaching quarantine"
        );
    }
}

/// Validate a Chrome trace-event timeline artifact; returns the event
/// count.
fn check_timeline(path: &str, events: &[Json]) -> usize {
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{path}: event {i} missing ph"));
        for key in ["pid", "tid"] {
            if e.get(key).and_then(Json::as_u64).is_none() {
                panic!("{path}: event {i} missing numeric {key}");
            }
        }
        if ph == "X" {
            for key in ["ts", "dur"] {
                if e.get(key).and_then(Json::as_f64).is_none() {
                    panic!("{path}: duration event {i} missing numeric {key}");
                }
            }
        }
    }
    events.len()
}

/// Explicit envelope checks for `BENCH_service.json` (the service_soak
/// artifact): the overload sweep must carry its load matrix with the
/// admission accounting, and its embedded report must actually have the
/// schema-v6 `service` section (the generic report sweep would accept a
/// report without one, since v1–v5 artifacts legitimately lack it).
fn check_service_envelope(path: &str, v: &Json) {
    if v.get("saturation_qps").and_then(Json::as_f64).is_none() {
        panic!("{path}: service_soak artifact missing numeric saturation_qps");
    }
    let loads = v
        .get("loads")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{path}: service_soak artifact missing loads array"));
    assert!(!loads.is_empty(), "{path}: empty loads array");
    for (i, load) in loads.iter().enumerate() {
        for key in [
            "multiplier",
            "offered_qps",
            "achieved_qps",
            "admitted",
            "rejected",
            "shed",
            "expired_in_queue",
            "p50_s",
            "p99_s",
            "queued_after",
            "in_flight_after",
        ] {
            if load.get(key).and_then(Json::as_f64).is_none() {
                panic!("{path}: load {i} missing numeric {key}");
            }
        }
    }
    let report = v
        .get("report")
        .unwrap_or_else(|| panic!("{path}: service_soak artifact missing embedded report"));
    let service = report
        .get("service")
        .unwrap_or_else(|| panic!("{path}: embedded report has no service section at all"));
    for key in ["queue_depth", "max_in_flight", "offered", "admitted", "shed_ratio"] {
        if service.get(key).and_then(Json::as_f64).is_none() {
            panic!("{path}: service section missing numeric {key}");
        }
    }
    if service.get("queue_wait_ns").is_none() {
        panic!("{path}: service section missing queue_wait_ns histogram");
    }
    // The per-tenant verification matrix (ISSUE 10). Optional so pre-v7
    // service artifacts still parse, but when present it must be
    // complete and internally consistent (clean soak traffic ⇒ zero
    // failures, drained queues).
    if let Some(matrix) = v.get("verify_matrix").and_then(Json::as_arr) {
        assert!(!matrix.is_empty(), "{path}: empty verify_matrix");
        for (i, cell) in matrix.iter().enumerate() {
            if cell.get("policy").and_then(Json::as_str).is_none() {
                panic!("{path}: verify_matrix cell {i} missing policy string");
            }
            for key in [
                "sample_rate",
                "calls",
                "verify_runs_total",
                "verify_passes_total",
                "verify_failures_total",
                "queued_after",
                "in_flight_after",
            ] {
                if cell.get(key).and_then(Json::as_f64).is_none() {
                    panic!("{path}: verify_matrix cell {i} missing numeric {key}");
                }
            }
            let failures = cell.get("verify_failures_total").and_then(Json::as_u64).unwrap_or(1);
            assert_eq!(failures, 0, "{path}: verify_matrix cell {i} flagged clean soak traffic");
            let drained = cell.get("queued_after").and_then(Json::as_u64) == Some(0)
                && cell.get("in_flight_after").and_then(Json::as_u64) == Some(0);
            assert!(drained, "{path}: verify_matrix cell {i} did not drain to idle");
        }
    }
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("schema_guard: cannot read {dir}: {e}"))
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("BENCH_") && name.ends_with(".json"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "schema_guard: no BENCH_*.json artifacts found in {dir}");
    for name in &names {
        let path = format!("{dir}/{name}");
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: unreadable: {e}"));
        let parsed = Json::parse(&text).unwrap_or_else(|e| panic!("{path}: invalid JSON: {e}"));
        if let Some(events) = parsed.get("traceEvents").and_then(Json::as_arr) {
            let n = check_timeline(&path, events);
            println!("{name}: timeline OK ({n} trace events)");
        } else {
            let reports = check_reports(&path, &parsed);
            if parsed.get("bench").and_then(Json::as_str) == Some("service_soak") {
                check_service_envelope(&path, &parsed);
                assert!(reports > 0, "{path}: service artifact carries no embedded report");
                println!("{name}: service envelope OK ({reports} embedded reports)");
            } else {
                println!("{name}: OK ({reports} embedded schema-versioned reports)");
            }
        }
    }
    println!("schema_guard: {} artifacts validated", names.len());
}
