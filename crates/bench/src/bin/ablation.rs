//! Ablation study: remove one autoGEMM design decision at a time and
//! measure the cost — quantifying the DESIGN.md inventory beyond the
//! paper's step-wise Fig 6:
//!
//! * **full** — DMT tiling + rotation + fusion + tuned blocking/packing;
//! * **-DMT** — LIBXSMM-style static edge tiling instead of Algorithm 1;
//! * **-rotation** — no rotating register allocation (§III-C1 off);
//! * **-fusion** — kernels launched individually (§III-C2 off);
//! * **-tuning** — fixed Goto-style blocking instead of the cost-model
//!   search, packing always online;
//! * **-σ_AI** — DMT with the arithmetic-intensity derating disabled
//!   (tiles ranked by raw Eqn cycles; a σ_AI = 0 chip variant).

use autogemm::ExecutionPlan;
use autogemm_arch::ChipSpec;
use autogemm_bench::{pct, print_table};
use autogemm_kernelgen::MicroTile;
use autogemm_perfmodel::ModelOpts;
use autogemm_tiling::{plan_dmt, plan_libxsmm};
use autogemm_tuner::space::LoopOrder;
use autogemm_tuner::{tune, Packing, Schedule};

fn efficiency(plan: &ExecutionPlan, chip: &ChipSpec) -> f64 {
    let block = autogemm::simexec::simulate_block(plan, chip, true);
    let cycles = autogemm::simexec::single_core_cycles(plan, chip, block);
    let gflops = plan.flops() as f64 * chip.freq_ghz / cycles;
    gflops / chip.peak_gflops_core()
}

fn variant(chip: &ChipSpec, m: usize, n: usize, k: usize, name: &str) -> ExecutionPlan {
    let full_opts = ModelOpts { rotate: true, fused: true };
    let sched = tune(m, n, k, chip);
    match name {
        "full" => ExecutionPlan::from_schedule(sched, chip),
        "-DMT" => {
            let mut plan = ExecutionPlan::from_schedule(sched, chip);
            plan.block_plan = plan_libxsmm(
                plan.schedule.mc,
                plan.schedule.nc,
                MicroTile::new(5, chip.sigma_lane() * 4),
                chip.sigma_lane(),
            );
            plan
        }
        "-rotation" => {
            let mut plan = ExecutionPlan::from_schedule(sched, chip);
            plan.opts = ModelOpts { rotate: false, fused: true };
            plan.block_plan =
                plan_dmt(plan.schedule.mc, plan.schedule.nc, plan.schedule.kc, chip, plan.opts);
            plan
        }
        "-fusion" => {
            let mut plan = ExecutionPlan::from_schedule(sched, chip);
            plan.opts = ModelOpts { rotate: true, fused: false };
            plan
        }
        "-tuning" => {
            // Goto-ish defaults, oblivious to the shape.
            let pick = |dim: usize, cap: usize| {
                autogemm_tuner::space::divisors(dim)
                    .into_iter()
                    .rev()
                    .find(|&d| d <= cap)
                    .unwrap_or(dim)
            };
            let sched = Schedule {
                m,
                n,
                k,
                mc: pick(m, 192),
                nc: pick(n, 4096),
                kc: pick(k, 384),
                order: LoopOrder::goto(),
                packing: Packing::Online,
            };
            ExecutionPlan::from_schedule(sched, chip)
        }
        "-sigma_ai" => {
            let mut blind = chip.clone();
            blind.sigma_ai = 0.0;
            let mut plan = ExecutionPlan::from_schedule(sched, chip);
            plan.block_plan =
                plan_dmt(plan.schedule.mc, plan.schedule.nc, plan.schedule.kc, &blind, full_opts);
            plan
        }
        other => unreachable!("unknown variant {other}"),
    }
}

fn main() {
    let shapes = [
        ("64^3 (small)", 64usize, 64usize, 64usize),
        ("26x36x64 (ragged)", 26, 36, 64),
        ("256x3136x64 (L4)", 256, 3136, 64),
        ("2048x49x512 (L18)", 2048, 49, 512),
    ];
    let variants = ["full", "-DMT", "-rotation", "-fusion", "-tuning", "-sigma_ai"];

    for chip in [ChipSpec::kp920(), ChipSpec::graviton2()] {
        let mut rows = Vec::new();
        for (label, m, n, k) in shapes {
            let mut row = vec![label.to_string()];
            let mut full_eff = 0.0;
            for v in variants {
                let plan = variant(&chip, m, n, k, v);
                let eff = efficiency(&plan, &chip);
                if v == "full" {
                    full_eff = eff;
                    row.push(pct(eff));
                } else {
                    row.push(format!("{} ({:+.1}%)", pct(eff), (eff / full_eff - 1.0) * 100.0));
                }
            }
            rows.push(row);
        }
        let mut headers = vec!["shape"];
        headers.extend(variants);
        print_table(
            &format!("Ablation — single-core efficiency on {}", chip.name),
            &headers,
            &rows,
        );
    }
    println!(
        "\nEach column removes one design decision; parentheses show the delta vs full autoGEMM."
    );
}
