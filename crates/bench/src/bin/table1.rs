//! Table I: feature matrix and efficiency comparison of GEMM libraries on
//! small (M=N=K=64) and irregular (256×3136×64) shapes, on the KP920.

use autogemm_arch::ChipSpec;
use autogemm_baselines::{all_baselines, simulate_baseline, Baseline};
use autogemm_bench::{pct, print_table};

fn main() {
    let chip = ChipSpec::kp920();
    let engine = autogemm::AutoGemm::new(chip.clone());

    // Feature matrix (static facts from §II-B / Table I).
    let features = [
        ("Hand-written Micro-kernels", ["y", "y", "y", "y", "y", "y", "y"]),
        ("Code Generation", ["-", "-", "-", "y", "y", "y", "y"]),
        ("Auto-tuning", ["-", "-", "-", "y", "y", "y", "y"]),
        ("Loop Scheduling", ["-", "-", "-", "-", "y", "y", "y"]),
    ];
    let libs = ["OpenBLAS", "Eigen", "LibShalom", "FastConv", "LIBXSMM", "TVM", "Ours"];
    let rows: Vec<Vec<String>> = features
        .iter()
        .map(|(name, cells)| {
            let mut row = vec![name.to_string()];
            row.extend(cells.iter().map(|c| c.to_string()));
            row
        })
        .collect();
    let mut headers = vec![""];
    headers.extend(libs);
    print_table("Table I — feature matrix", &headers, &rows);

    // Efficiency rows (simulated on the KP920).
    let order = [
        Baseline::OpenBlas,
        Baseline::Eigen,
        Baseline::LibShalom,
        Baseline::FastConv,
        Baseline::Libxsmm,
        Baseline::Tvm,
    ];
    let eff_row = |m: usize, n: usize, k: usize, threads: usize| -> Vec<String> {
        let mut row: Vec<String> = order
            .iter()
            .map(|b| {
                simulate_baseline(*b, m, n, k, &chip, threads)
                    .map(|r| pct(r.efficiency))
                    .unwrap_or_else(|| "N/A".into())
            })
            .collect();
        row.push(pct(engine.simulate(m, n, k, threads).efficiency));
        row
    };

    let mut small = vec!["Small GEMM Efficiency (M=N=K=64)".to_string()];
    small.extend(eff_row(64, 64, 64, 1));
    let mut irregular = vec!["Irregular GEMM Efficiency (M=256,N=3136,K=64)".to_string()];
    irregular.extend(eff_row(256, 3136, 64, 1));
    print_table(
        "Table I — efficiency (simulated, KP920; paper: 35/50/95/58/68/78/98 and 47/49/86/79/NA/72/91)",
        &headers,
        &[small, irregular],
    );
    let _ = all_baselines();
}
