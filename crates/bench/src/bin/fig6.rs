//! Fig 6: step-wise pipeline optimization (basic → +rotating registers →
//! +epilogue/prologue fusion) on KP920, Graviton2 and M2, across (M,N,K)
//! shapes including the K=4 fusion showcase and the KP920 K=256 L1 dip.

use autogemm::{AutoGemm, ExecutionPlan};
use autogemm_bench::{pct, print_table};
use autogemm_perfmodel::ModelOpts;

fn simulate_with_opts(engine: &AutoGemm, m: usize, n: usize, k: usize, opts: ModelOpts) -> f64 {
    let chip = engine.chip().clone();
    let sched = autogemm_tuner::tune(m, n, k, &chip);
    let mut plan = ExecutionPlan::from_schedule(sched, &chip);
    plan.opts = opts;
    plan.block_plan = autogemm_tiling::plan_dmt(
        plan.schedule.mc,
        plan.schedule.nc,
        plan.schedule.kc,
        &chip,
        opts,
    );
    let block = autogemm::simexec::simulate_block(&plan, &chip, true);
    let cycles = autogemm::simexec::single_core_cycles(&plan, &chip, block);
    let flops = plan.flops() as f64;
    let gflops = flops * chip.freq_ghz / cycles;
    gflops / chip.peak_gflops_core()
}

fn main() {
    let shapes = [
        (64usize, 64usize, 4usize),
        (64, 64, 16),
        (64, 64, 64),
        (64, 64, 128),
        (64, 64, 256),
        (128, 64, 64),
        (32, 64, 64),
    ];
    for chip in autogemm_bench::fig_chips() {
        let engine = AutoGemm::new(chip.clone());
        let mut rows = Vec::new();
        for (m, n, k) in shapes {
            let basic =
                simulate_with_opts(&engine, m, n, k, ModelOpts { rotate: false, fused: false });
            let rot =
                simulate_with_opts(&engine, m, n, k, ModelOpts { rotate: true, fused: false });
            let full =
                simulate_with_opts(&engine, m, n, k, ModelOpts { rotate: true, fused: true });
            rows.push(vec![
                format!("{m}x{n}x{k}"),
                pct(basic),
                pct(rot),
                pct(full),
                format!("{:+.1}%", (rot / basic - 1.0) * 100.0),
                format!("{:+.1}%", (full / rot - 1.0) * 100.0),
            ]);
        }
        print_table(
            &format!("Fig 6 — step-wise optimization on {} (efficiency of peak)", chip.name),
            &["M x N x K", "basic", "+rotate", "+rotate+fuse", "rotate gain", "fuse gain"],
            &rows,
        );
    }
    println!("\npaper landmarks: +17.3/15.8/16.7% fusion gain at K=4; KP920 efficiency dip at K=256 (B spills L1);");
    println!("rotation helps on KP920 (~3%) but not on Graviton2/M2 (bigger OoO windows).");
}
