//! Fig 3: micro-kernel pipeline cycles on the idealized machine
//! (`L = 8`, `IPC = 1`) — the paper's worked examples, cross-validating
//! the analytic model (Eqns 4–10) against the cycle-level simulator.

use autogemm_arch::ChipSpec;
use autogemm_bench::print_table;
use autogemm_kernelgen::{MicroKernelSpec, MicroTile, PipelineOpts, Strides};
use autogemm_perfmodel::{projected_cycles, ModelOpts};
use autogemm_sim::{run_micro_kernel, Warmth};

fn simulate(mr: usize, nr: usize, kc: usize, rotate: bool, chip: &ChipSpec) -> u64 {
    let spec = MicroKernelSpec {
        tile: MicroTile::new(mr, nr),
        kc,
        sigma_lane: 4,
        accumulate: true,
        strides: Strides::Dynamic,
        opts: PipelineOpts { rotate, prefetch: true },
    };
    let a = vec![1.0f32; mr * kc];
    let b = vec![1.0f32; kc * nr];
    let mut c = vec![0.0f32; mr * nr];
    run_micro_kernel(&spec, chip, &a, &b, &mut c, Warmth::L1).stats.cycles
}

fn main() {
    let chip = ChipSpec::idealized();
    let kc = 64usize;
    let kv = kc / 4;

    let cases = [
        ("(a) 5x16 basic", 5, 16, false, (20 * kc + 13 * kv + 65) as f64),
        (
            "(c) 5x16 + rotating registers",
            5,
            16,
            true,
            projected_cycles(
                MicroTile::new(5, 16),
                kc,
                &chip,
                ModelOpts { rotate: true, fused: false },
            ),
        ),
        (
            "(b) 2x16 basic (mainloop 48*kv)",
            2,
            16,
            false,
            projected_cycles(MicroTile::new(2, 16), kc, &chip, ModelOpts::default()),
        ),
        (
            "(d) 2x16 + rotating registers (mainloop 42*kv)",
            2,
            16,
            true,
            projected_cycles(
                MicroTile::new(2, 16),
                kc,
                &chip,
                ModelOpts { rotate: true, fused: false },
            ),
        ),
    ];

    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|(name, mr, nr, rotate, model)| {
            let sim = simulate(*mr, *nr, kc, *rotate, &chip);
            let ratio = sim as f64 / model;
            vec![name.to_string(), format!("{model:.0}"), sim.to_string(), format!("{ratio:.3}")]
        })
        .collect();
    print_table(
        &format!("Fig 3 — pipeline cycles at k_c = {kc} on the idealized machine (L=8, IPC=1)"),
        &["kernel", "analytic model", "simulated", "sim/model"],
        &rows,
    );
    println!(
        "\npaper formulas: 5x16 basic = 20*kc + 13*kv + 65; 2x16 mainloop 48*kv -> 42*kv rotated"
    );

    // The actual pipeline diagram (paper Fig 3-(a), first iterations):
    // trace the 5x16 basic kernel and render its opening window.
    let spec = MicroKernelSpec {
        tile: MicroTile::new(5, 16),
        kc: 8,
        sigma_lane: 4,
        accumulate: true,
        strides: Strides::Dynamic,
        opts: PipelineOpts::basic(),
    };
    let prog = autogemm_kernelgen::generate(&spec, &chip);
    let mut mem = autogemm_sim::Memory::new();
    let a = mem.alloc(5, 8, 16);
    let b = mem.alloc(10, 16, 16);
    let cbuf = mem.alloc(5, 16, 16);
    let mut caches = autogemm_sim::cache::CacheHierarchy::new(&chip);
    for r in [a, b, cbuf] {
        caches.warm(r.byte_range(), 0);
    }
    let mut state = autogemm_sim::FuncState::new(4);
    state.bind_gemm(a.base, b.base, cbuf.base, a.ld, b.ld, cbuf.ld);
    let events = autogemm_sim::trace(&prog, &chip, &mut state, &mut mem, &mut caches);
    println!(
        "\npipeline timeline, 5x16 basic (prologue + first lanes; F=fmla L=ldr S=str .=scalar):\n"
    );
    print!("{}", autogemm_sim::render_timeline(&events, 0, 60));
}
