//! # autogemm-bench
//!
//! The benchmark harness: one binary per table/figure of the paper (run
//! `cargo run --release -p autogemm-bench --bin fig8` etc. — see
//! DESIGN.md §4 for the full index) plus criterion wall-clock benches of
//! the native library (`cargo bench -p autogemm-bench`).

use autogemm_arch::ChipSpec;

/// Print a compact fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut line = String::from("| ");
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:>w$} | ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        line
    };
    println!("{}", fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Percentage formatting for efficiency cells.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// GFLOPS formatting.
pub fn gf(x: f64) -> String {
    format!("{x:.1}")
}

/// The three chips the step-wise / tiling / roofline figures use.
pub fn fig_chips() -> Vec<ChipSpec> {
    vec![ChipSpec::kp920(), ChipSpec::graviton2(), ChipSpec::m2()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.976), "97.6%");
        assert_eq!(gf(19.84), "19.8");
        assert_eq!(fig_chips().len(), 3);
    }
}
