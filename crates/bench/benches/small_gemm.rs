//! Criterion wall-clock benches: native autoGEMM vs naive reference on
//! the Fig 8 small-matrix shapes (host machine).

use autogemm::AutoGemm;
use autogemm_arch::ChipSpec;
use autogemm_baselines::naive_gemm;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let a = (0..m * k).map(|i| (i % 17) as f32 - 8.0).collect();
    let b = (0..k * n).map(|i| (i % 13) as f32 - 6.0).collect();
    let c = vec![0.0f32; m * n];
    (a, b, c)
}

fn bench_small(c: &mut Criterion) {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let mut group = c.benchmark_group("small_gemm");
    for s in [16usize, 32, 64, 128] {
        let (a, b, c0) = data(s, s, s);
        // Warm the schedule cache outside the timed region.
        let mut cw = c0.clone();
        engine.gemm(s, s, s, &a, &b, &mut cw);
        group.bench_with_input(BenchmarkId::new("autogemm", s), &s, |bch, _| {
            let mut cc = c0.clone();
            bch.iter(|| engine.gemm(black_box(s), s, s, &a, &b, &mut cc));
        });
        group.bench_with_input(BenchmarkId::new("naive", s), &s, |bch, _| {
            let mut cc = c0.clone();
            bch.iter(|| {
                cc.fill(0.0);
                naive_gemm(black_box(s), s, s, &a, &b, &mut cc)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_small);
criterion_main!(benches);
