//! Criterion wall-clock benches: native autoGEMM on Table V irregular
//! shapes (host machine), single- and multi-threaded.

use autogemm::AutoGemm;
use autogemm_arch::ChipSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_irregular(c: &mut Criterion) {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let mut group = c.benchmark_group("irregular_gemm");
    group.sample_size(10);
    // A subset of Table V that spans the three irregular classes.
    for layer in autogemm_workloads::resnet50_table_v()
        .into_iter()
        .filter(|l| [2usize, 11, 16].contains(&l.layer))
    {
        let (m, n, k) = (layer.m, layer.n, layer.k);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 11) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32).collect();
        let mut cc = vec![0.0f32; m * n];
        engine.gemm(m, n, k, &a, &b, &mut cc); // warm tuner
        group.throughput(Throughput::Elements(layer.flops()));
        group.bench_with_input(BenchmarkId::new("single", layer.name()), &layer, |bch, _| {
            bch.iter(|| engine.gemm(black_box(m), n, k, &a, &b, &mut cc));
        });
        group.bench_with_input(BenchmarkId::new("threads2", layer.name()), &layer, |bch, _| {
            bch.iter(|| engine.gemm_threaded(black_box(m), n, k, &a, &b, &mut cc, 2));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_irregular);
criterion_main!(benches);
