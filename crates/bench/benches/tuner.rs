//! Criterion benches of schedule tuning (the TVM-stand-in search).

use autogemm_arch::ChipSpec;
use autogemm_tuner::tune;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_tuner(c: &mut Criterion) {
    let chip = ChipSpec::graviton2();
    let mut group = c.benchmark_group("tuner");
    group.sample_size(10);
    for (m, n, k) in [(64usize, 64usize, 64usize), (256, 196, 512)] {
        let name = format!("{m}x{n}x{k}");
        group.bench_with_input(BenchmarkId::new("tune", &name), &(m, n, k), |bch, _| {
            bch.iter(|| tune(black_box(m), n, k, &chip));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tuner);
criterion_main!(benches);
