//! Criterion benches of the tiling strategies (planning cost).

use autogemm_arch::ChipSpec;
use autogemm_kernelgen::MicroTile;
use autogemm_perfmodel::ModelOpts;
use autogemm_tiling::{plan_dmt, plan_libxsmm, plan_openblas};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_tiling(c: &mut Criterion) {
    let chip = ChipSpec::graviton2();
    let opts = ModelOpts { rotate: true, fused: true };
    let mut group = c.benchmark_group("tiling");
    for (m, n) in [(26usize, 36usize), (64, 112), (128, 256)] {
        let name = format!("{m}x{n}");
        group.bench_with_input(BenchmarkId::new("dmt", &name), &(m, n), |bch, _| {
            bch.iter(|| plan_dmt(black_box(m), n, 64, &chip, opts));
        });
        group.bench_with_input(BenchmarkId::new("libxsmm", &name), &(m, n), |bch, _| {
            bch.iter(|| plan_libxsmm(black_box(m), n, MicroTile::new(5, 16), 4));
        });
        group.bench_with_input(BenchmarkId::new("openblas", &name), &(m, n), |bch, _| {
            bch.iter(|| plan_openblas(black_box(m), n, MicroTile::new(5, 16)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tiling);
criterion_main!(benches);
