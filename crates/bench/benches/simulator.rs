//! Criterion benches of the pipeline simulator itself (instructions per
//! second of simulation).

use autogemm_arch::ChipSpec;
use autogemm_kernelgen::{MicroKernelSpec, MicroTile};
use autogemm_sim::{run_micro_kernel, Warmth};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let chip = ChipSpec::graviton2();
    let mut group = c.benchmark_group("simulator");
    for kc in [64usize, 256] {
        let spec = MicroKernelSpec::listing1(MicroTile::new(5, 16), kc, &chip);
        let a = vec![1.0f32; 5 * kc];
        let b = vec![1.0f32; kc * 16];
        let prog = autogemm_kernelgen::generate(&spec, &chip);
        group.throughput(Throughput::Elements(prog.dynamic_len() as u64));
        group.bench_with_input(BenchmarkId::new("micro_kernel", kc), &kc, |bch, _| {
            let mut cbuf = vec![0.0f32; 5 * 16];
            bch.iter(|| run_micro_kernel(black_box(&spec), &chip, &a, &b, &mut cbuf, Warmth::L1));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
