//! Criterion wall-clock benches of the native block driver: the
//! panel-cache path (every panel packed once, atomic work queue) against
//! the historical per-block repacking path, on the irregular shapes the
//! paper targets. Run with `cargo bench -p autogemm-bench --bench
//! native_gemm`; the machine-readable artifact comes from the
//! `native_gemm` bin instead (see README §Benchmarks).

use autogemm::native::{gemm_with_plan, gemm_with_plan_repack};
use autogemm::{AutoGemm, PanelPool};
use autogemm_arch::ChipSpec;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let a = (0..m * k).map(|i| (i % 17) as f32 - 8.0).collect();
    let b = (0..k * n).map(|i| (i % 13) as f32 - 6.0).collect();
    let c = vec![0.0f32; m * n];
    (a, b, c)
}

fn bench_native_gemm(c: &mut Criterion) {
    let engine = AutoGemm::new(ChipSpec::graviton2());
    let mut group = c.benchmark_group("native_gemm");
    group.sample_size(10);
    // (m, n, k, threads): the paper's flagship irregular DNN shape at one
    // and eight cores, a small Fig 8 shape, and a mid square.
    for (m, n, k, threads) in
        [(64, 3136, 64, 8), (64, 3136, 64, 1), (64, 196, 64, 1), (128, 128, 128, 4)]
    {
        let plan = if threads > 1 {
            engine.plan_multicore(m, n, k, threads)
        } else {
            engine.plan(m, n, k)
        };
        let (a, b, c0) = data(m, n, k);
        let label = format!("{m}x{n}x{k}t{threads}");
        let pool = PanelPool::new();
        group.bench_with_input(BenchmarkId::new("panel_cache", &label), &threads, |bch, &t| {
            let mut cc = c0.clone();
            bch.iter(|| {
                autogemm::native::gemm_with_plan_pooled(black_box(&plan), &a, &b, &mut cc, t, &pool)
            });
        });
        group.bench_with_input(BenchmarkId::new("seed_repack", &label), &threads, |bch, &t| {
            let mut cc = c0.clone();
            bch.iter(|| gemm_with_plan_repack(black_box(&plan), &a, &b, &mut cc, t));
        });
        // Sanity outside the timed region: both paths agree bitwise.
        let (mut c1, mut c2) = (c0.clone(), c0.clone());
        gemm_with_plan(&plan, &a, &b, &mut c1, threads);
        gemm_with_plan_repack(&plan, &a, &b, &mut c2, threads);
        assert_eq!(c1, c2, "panel cache diverged from seed path on {label}");
    }
    group.finish();
}

criterion_group!(benches, bench_native_gemm);
criterion_main!(benches);
