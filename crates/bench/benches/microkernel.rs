//! Criterion benches of the native micro-kernels: the runtime-dispatched
//! SIMD kernel vs the scalar reference, per register-tile shape.
//!
//! The `simd/*` vs `scalar/*` pairs are the acceptance check that the
//! explicit `F32x4` kernels beat the scalar reference on compute-bound
//! tiles (8×8, 4×16); the full-sweep JSON artifact comes from the
//! `microkernel` *bin*, this bench is the statistically-rigorous spot
//! check.

use autogemm::native::{run_placement, run_placement_ref, CTile};
use autogemm_kernelgen::MicroTile;
use autogemm_tiling::TilePlacement;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("microkernel");
    let kc = 256usize;
    let mut tiles = autogemm_kernelgen::tiles::first_choice_neon().to_vec();
    tiles.push(MicroTile::new(4, 16));
    for tile in tiles {
        let lda = kc + 8;
        let a = vec![1.0f32; tile.mr * lda];
        let b = vec![1.0f32; (kc + 2) * tile.nr];
        let mut cbuf = vec![0.0f32; tile.mr * tile.nr];
        let placement = TilePlacement::full(0, 0, MicroTile::new(tile.mr, tile.nr));
        group.throughput(Throughput::Elements((2 * tile.mr * tile.nr * kc) as u64));
        group.bench_with_input(BenchmarkId::new("simd", tile.to_string()), &tile, |bch, _| {
            bch.iter(|| {
                let ct = unsafe { CTile::new(cbuf.as_mut_ptr(), tile.nr, cbuf.len()) };
                run_placement(black_box(&placement), kc, &a, lda, &b, tile.nr, ct, true)
            });
        });
        group.bench_with_input(BenchmarkId::new("scalar", tile.to_string()), &tile, |bch, _| {
            bch.iter(|| {
                let ct = unsafe { CTile::new(cbuf.as_mut_ptr(), tile.nr, cbuf.len()) };
                run_placement_ref(black_box(&placement), kc, &a, lda, &b, tile.nr, ct, true)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
