//! Criterion benches of the native monomorphized micro-kernels.

use autogemm::native::{run_placement, CTile};
use autogemm_kernelgen::MicroTile;
use autogemm_tiling::TilePlacement;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("microkernel");
    let kc = 256usize;
    for tile in autogemm_kernelgen::tiles::first_choice_neon() {
        let lda = kc + 8;
        let a = vec![1.0f32; tile.mr * lda];
        let b = vec![1.0f32; (kc + 2) * tile.nr];
        let mut cbuf = vec![0.0f32; tile.mr * tile.nr];
        let placement = TilePlacement::full(0, 0, MicroTile::new(tile.mr, tile.nr));
        group.throughput(Throughput::Elements((2 * tile.mr * tile.nr * kc) as u64));
        group.bench_with_input(BenchmarkId::new("tile", tile.to_string()), &tile, |bch, _| {
            bch.iter(|| {
                let ct = unsafe { CTile::new(cbuf.as_mut_ptr(), tile.nr, cbuf.len()) };
                run_placement(black_box(&placement), kc, &a, lda, &b, tile.nr, ct, true)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
