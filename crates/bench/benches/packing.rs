//! Criterion benches of the packing kernels.

use autogemm::packing::{pack_a, pack_b};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    for (rows, cols) in [(64usize, 64usize), (64, 512), (256, 784)] {
        let src = vec![1.0f32; rows * cols];
        group.throughput(Throughput::Bytes((rows * cols * 4) as u64));
        let name = format!("{rows}x{cols}");
        group.bench_with_input(BenchmarkId::new("pack_a", &name), &(rows, cols), |bch, _| {
            bch.iter(|| pack_a(black_box(&src), cols, 0, 0, rows, cols, 4));
        });
        group.bench_with_input(BenchmarkId::new("pack_b", &name), &(rows, cols), |bch, _| {
            bch.iter(|| pack_b(black_box(&src), cols, 0, 0, rows, cols, 4));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_packing);
criterion_main!(benches);
