//! Cycle-level pipeline model.
//!
//! This is the machine model whose mechanics the paper's Figure 3 walks
//! through: instructions dispatch in program order; each issues once its
//! source operands are ready, its class port is free (reciprocal
//! throughputs `IPC_*` of Table III), and it is within the out-of-order
//! window of the oldest unretired instruction. Loads resolve their latency
//! through the cache hierarchy ([`crate::cache`]); FMA and store latencies
//! come from the chip descriptor.
//!
//! Two fidelity knobs reproduce the paper's cross-chip observations:
//!
//! * `ChipSpec::ooo_window` — a small window cannot hoist the boundary `A`
//!   loads over a whole loop iteration, which is why software pipelining
//!   (rotating register allocation) pays on some chips;
//! * `ChipSpec::war_hazard` — without rename capacity for the streaming
//!   banks, a load overwriting a register must wait for the last FMA that
//!   reads it, producing exactly the `FMA → LOAD → FMA` bubble of §III-B2.
//!
//! The functional interpreter co-runs in program order to resolve
//! addresses, so timing and semantics can never disagree.

use crate::cache::{CacheHierarchy, CacheStats, HitLevel};
use crate::func::FuncState;
use crate::memory::Memory;
use autogemm_arch::isa::{Instr, InstrClass};
use autogemm_arch::{Block, ChipSpec, Program};
use std::collections::VecDeque;

/// Outcome of simulating one program.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// In-order retire time of the last instruction.
    pub cycles: u64,
    /// Dynamic instructions executed (loop control excluded).
    pub instructions: u64,
    pub fma_count: u64,
    pub load_count: u64,
    pub store_count: u64,
    /// Cycles FMA issue waited on unready source operands (a measure of
    /// pipeline bubbles).
    pub fma_stall_cycles: u64,
    /// Cycles load issue waited on operands or hazards.
    pub load_stall_cycles: u64,
    /// Portion of all stalls attributable to WAR/WAW hazards (no-rename
    /// chips only).
    pub war_stall_cycles: u64,
    pub cache: CacheStats,
}

impl PipelineStats {
    /// FLOPs performed (`σ_lane` element FMAs each count 2 flops/lane).
    pub fn flops(&self, sigma_lane: usize) -> u64 {
        self.fma_count * 2 * sigma_lane as u64
    }

    /// Achieved GFLOP/s at the chip's clock.
    pub fn gflops(&self, chip: &ChipSpec) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.flops(chip.sigma_lane()) as f64 * chip.freq_ghz / self.cycles as f64
    }

    /// Fraction of the chip's single-core peak achieved.
    pub fn efficiency(&self, chip: &ChipSpec) -> f64 {
        self.gflops(chip) / chip.peak_gflops_core()
    }
}

struct Scheduler<'c> {
    chip: &'c ChipSpec,
    /// Cycle each vector register's value becomes available.
    vreg_ready: [u64; 32],
    /// Latest issue cycle among readers of each vreg since its last write.
    vreg_last_read: [u64; 32],
    /// Issue cycle of each vreg's last writer (WAW without renaming).
    vreg_last_write: [u64; 32],
    xreg_ready: [u64; 31],
    port_free: [u64; 5],
    /// Next cycle each memory level's fill interface is free (index 0 =
    /// L1, unused; higher levels and DRAM have finite line-fill
    /// bandwidth that hardware prefetching cannot exceed).
    fill_free: [u64; 5],
    /// In-order retire times of the last `ooo_window` instructions.
    retire_ring: VecDeque<u64>,
    inorder_retire: u64,
    stats: PipelineStats,
}

impl<'c> Scheduler<'c> {
    fn new(chip: &'c ChipSpec) -> Self {
        Scheduler {
            chip,
            vreg_ready: [0; 32],
            vreg_last_read: [0; 32],
            vreg_last_write: [u64::MAX; 32],
            xreg_ready: [0; 31],
            port_free: [0; 5],
            fill_free: [0; 5],
            retire_ring: VecDeque::with_capacity(chip.ooo_window + 1),
            inorder_retire: 0,
            stats: PipelineStats::default(),
        }
    }

    fn port_index(class: InstrClass) -> usize {
        match class {
            InstrClass::Load => 0,
            InstrClass::Store => 1,
            InstrClass::Fma => 2,
            InstrClass::Prefetch => 3,
            InstrClass::Scalar => 4,
        }
    }

    fn class_rt(&self, class: InstrClass) -> u64 {
        match class {
            InstrClass::Load => self.chip.rt_load,
            InstrClass::Store => self.chip.rt_store,
            InstrClass::Fma => self.chip.rt_fma,
            InstrClass::Prefetch => 1,
            InstrClass::Scalar => 1,
        }
    }

    /// Cycles per line fill from a given source (line bytes over the
    /// level's per-core fill bandwidth: L2 ≈ 32 B/cy, L3 ≈ 16 B/cy,
    /// DRAM ≈ 8 B/cy).
    fn fill_rt(&self, source: HitLevel) -> (usize, u64) {
        let line = self.chip.caches.first().map(|c| c.line_bytes as u64).unwrap_or(64);
        match source {
            HitLevel::Cache(0) => (0, 0),
            HitLevel::Cache(i) => (i, line / (32 >> (i - 1).min(2)).max(8)),
            HitLevel::Dram => (4, line / 8),
        }
    }

    /// Schedule one instruction whose memory latency (for loads) is
    /// already resolved. Returns its (issue, completion) cycles.
    fn issue(&mut self, instr: &Instr, mem_latency: u64, source: HitLevel) -> (u64, u64) {
        let class = instr.class();
        let mut ready = 0u64;
        for r in instr.vreg_reads() {
            ready = ready.max(self.vreg_ready[r.0 as usize]);
        }
        for r in instr.xreg_reads() {
            ready = ready.max(self.xreg_ready[r.0 as usize]);
        }
        let ready_raw = ready;
        if self.chip.war_hazard {
            if let Some(w) = instr.vreg_write() {
                // No renaming: wait for the last reader and writer to issue
                // (u64::MAX marks a register never written yet).
                ready = ready.max(self.vreg_last_read[w.0 as usize]);
                let lw = self.vreg_last_write[w.0 as usize];
                if lw != u64::MAX {
                    ready = ready.max(lw + 1);
                }
            }
        }
        let war_extra = ready - ready_raw;
        let port = Self::port_index(class);
        let window_ready = if self.retire_ring.len() >= self.chip.ooo_window {
            *self.retire_ring.front().unwrap()
        } else {
            0
        };
        let mut port_avail = self.port_free[port].max(window_ready);
        // Loads whose line crossed a lower level also wait on that level's
        // fill interface.
        let (fill_idx, fill_rt) =
            if class == InstrClass::Load { self.fill_rt(source) } else { (0, 0) };
        if fill_rt > 0 {
            port_avail = port_avail.max(self.fill_free[fill_idx]);
        }
        let issue = ready.max(port_avail);
        self.port_free[port] = issue + self.class_rt(class);
        if fill_rt > 0 {
            self.fill_free[fill_idx] = issue + fill_rt;
        }

        let latency = match class {
            InstrClass::Load => mem_latency,
            InstrClass::Store => self.chip.lat_store,
            InstrClass::Fma => self.chip.lat_fma,
            InstrClass::Prefetch | InstrClass::Scalar => 1,
        };
        let complete = issue + latency;

        if class == InstrClass::Fma {
            self.stats.fma_count += 1;
            // Cycles this FMA waited on operands beyond port availability —
            // the "bubbles" of the paper's Fig 3 analysis.
            self.stats.fma_stall_cycles += ready.saturating_sub(port_avail);
        }
        if class == InstrClass::Load {
            self.stats.load_stall_cycles += ready.saturating_sub(port_avail);
        }
        if ready > port_avail {
            self.stats.war_stall_cycles += war_extra.min(ready - port_avail);
        }
        match class {
            InstrClass::Load => self.stats.load_count += 1,
            InstrClass::Store => self.stats.store_count += 1,
            _ => {}
        }

        for r in instr.vreg_reads() {
            let i = r.0 as usize;
            self.vreg_last_read[i] = self.vreg_last_read[i].max(issue);
        }
        if let Some(w) = instr.vreg_write() {
            let i = w.0 as usize;
            self.vreg_ready[i] = complete;
            self.vreg_last_read[i] = 0;
            self.vreg_last_write[i] = issue;
        }
        if let Some(w) = instr.xreg_write() {
            // Scalar results (address updates) forward in one cycle.
            self.xreg_ready[w.0 as usize] = issue + 1;
        }

        self.inorder_retire = self.inorder_retire.max(complete);
        self.retire_ring.push_back(self.inorder_retire);
        if self.retire_ring.len() > self.chip.ooo_window {
            self.retire_ring.pop_front();
        }
        self.stats.instructions += 1;
        (issue, complete)
    }

    /// Account one loop-control `subs`/`bne` pair per iteration: a scalar
    /// port slot (branch itself is predicted).
    fn loop_overhead(&mut self) {
        let port = Self::port_index(InstrClass::Scalar);
        self.port_free[port] += 1;
    }
}

/// The production scheduler exposed for instruction-level tracing
/// ([`crate::trace`]): identical mechanics, but each `issue` call reports
/// the instruction's (issue, complete) cycle pair.
pub(crate) struct TracingScheduler<'c>(Scheduler<'c>);

impl<'c> TracingScheduler<'c> {
    pub(crate) fn new(chip: &'c ChipSpec) -> Self {
        TracingScheduler(Scheduler::new(chip))
    }

    pub(crate) fn issue(
        &mut self,
        instr: &Instr,
        mem_latency: u64,
        source: HitLevel,
    ) -> (u64, u64) {
        self.0.issue(instr, mem_latency, source)
    }

    pub(crate) fn loop_overhead(&mut self) {
        self.0.loop_overhead();
    }
}

/// Simulate `prog` on `chip`, co-running the functional interpreter so
/// load/store addresses (and therefore cache behaviour) are exact.
///
/// `state` must already have the kernel ABI bound; `caches` carries
/// residency across successive calls (e.g. across the micro-kernels of one
/// cache block).
pub fn simulate(
    prog: &Program,
    chip: &ChipSpec,
    state: &mut FuncState,
    mem: &mut Memory,
    caches: &mut CacheHierarchy,
) -> PipelineStats {
    let mut sched = Scheduler::new(chip);
    let exec = |instr: &Instr,
                state: &mut FuncState,
                mem: &mut Memory,
                sched: &mut Scheduler,
                caches: &mut CacheHierarchy| {
        let addr = state.step(instr, mem);
        let (mem_latency, source) = match (instr.class(), addr) {
            (InstrClass::Load, Some(a)) => caches.access(a),
            (InstrClass::Store, Some(a)) => {
                // Write-allocate: stores install the line but their latency
                // is the store-pipe latency, not the miss latency.
                caches.prefetch(a);
                (0, HitLevel::Cache(0))
            }
            (InstrClass::Prefetch, Some(a)) => {
                caches.prefetch(a);
                (0, HitLevel::Cache(0))
            }
            _ => (0, HitLevel::Cache(0)),
        };
        sched.issue(instr, mem_latency, source);
    };

    for block in &prog.blocks {
        match block {
            Block::Straight(instrs) => {
                for i in instrs {
                    exec(i, state, mem, &mut sched, caches);
                }
            }
            Block::Loop { count, body } => {
                for _ in 0..*count {
                    for i in body {
                        exec(i, state, mem, &mut sched, caches);
                    }
                    sched.loop_overhead();
                }
            }
        }
    }

    sched.stats.cycles = sched.inorder_retire;
    sched.stats.cache = caches.stats.clone();
    sched.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_arch::isa::{VReg, XReg};

    fn run(prog: &Program, chip: &ChipSpec, warm: bool) -> PipelineStats {
        let mut mem = Memory::new();
        let r = mem.alloc(64, 64, 64);
        let mut caches = CacheHierarchy::new(chip);
        if warm {
            caches.warm(r.byte_range(), 0);
        }
        let mut state = FuncState::new(chip.sigma_lane());
        state.x[0] = r.base as i64;
        simulate(prog, chip, &mut state, &mut mem, &mut caches)
    }

    #[test]
    fn independent_fmas_pipeline_at_one_per_cycle() {
        // 16 independent FMAs on the idealized chip: issue 0..15, last
        // completes at 15 + 8 = 23.
        let chip = ChipSpec::idealized();
        let mut p = Program::new("fmas");
        p.push_straight(
            (0..16)
                .map(|i| Instr::Fmla { acc: VReg(i), mul: VReg(20), lane_src: VReg(21), lane: 0 })
                .collect(),
        );
        let stats = run(&p, &chip, true);
        assert_eq!(stats.cycles, 15 + 8);
        assert_eq!(stats.fma_count, 16);
    }

    #[test]
    fn dependent_fmas_serialize_on_latency() {
        // A chain of 4 FMAs accumulating into the same register:
        // issue 0, 8, 16, 24 → retire 32.
        let chip = ChipSpec::idealized();
        let mut p = Program::new("chain");
        p.push_straight(
            (0..4)
                .map(|_| Instr::Fmla { acc: VReg(0), mul: VReg(20), lane_src: VReg(21), lane: 0 })
                .collect(),
        );
        let stats = run(&p, &chip, true);
        assert_eq!(stats.cycles, 3 * 8 + 8);
    }

    #[test]
    fn load_latency_comes_from_cache_level() {
        let chip = ChipSpec::idealized();
        let mut p = Program::new("load");
        p.push_straight(vec![Instr::Ldr { dst: VReg(0), base: XReg(0), offset: 0, post_inc: 0 }]);
        let warm = run(&p, &chip, true);
        assert_eq!(warm.cycles, 8); // idealized L1 hit = 8 cycles
        let cold = run(&p, &chip, false);
        assert_eq!(cold.cycles, chip.dram_latency_cycles);
    }

    #[test]
    fn war_hazard_delays_overwriting_load() {
        // FMA reads v1; a load then overwrites v1; a second FMA reads it.
        // With war_hazard the load waits for the first FMA's issue; the
        // second FMA waits the full load latency.
        let seq = vec![
            Instr::Fmla { acc: VReg(0), mul: VReg(2), lane_src: VReg(1), lane: 0 },
            Instr::Ldr { dst: VReg(1), base: XReg(0), offset: 0, post_inc: 0 },
            Instr::Fmla { acc: VReg(0), mul: VReg(2), lane_src: VReg(1), lane: 0 },
        ];
        let mut with = ChipSpec::idealized();
        with.war_hazard = true;
        let mut without = ChipSpec::idealized();
        without.war_hazard = false;
        let mut p = Program::new("war");
        p.push_straight(seq);
        let t_with = run(&p, &with, true).cycles;
        let t_without = run(&p, &without, true).cycles;
        // Renaming lets the load issue at cycle 0 alongside the first FMA.
        assert!(t_without <= t_with);
    }

    #[test]
    fn window_limits_hoisting_of_independent_work() {
        // A long dependent FMA chain followed by an independent load the
        // hardware would like to hoist: a tiny window forces the load to
        // wait, a big window hides it completely.
        let mut chain: Vec<Instr> = (0..32)
            .map(|_| Instr::Fmla { acc: VReg(0), mul: VReg(2), lane_src: VReg(1), lane: 0 })
            .collect();
        chain.push(Instr::Ldr { dst: VReg(3), base: XReg(0), offset: 0, post_inc: 0 });
        chain.push(Instr::Fmla { acc: VReg(4), mul: VReg(3), lane_src: VReg(1), lane: 0 });
        let mut p = Program::new("win");
        p.push_straight(chain);
        let mut small = ChipSpec::idealized();
        small.ooo_window = 2;
        small.war_hazard = false;
        let mut big = ChipSpec::idealized();
        big.ooo_window = 512;
        big.war_hazard = false;
        let t_small = run(&p, &small, true).cycles;
        let t_big = run(&p, &big, true).cycles;
        assert!(t_big < t_small, "big window {t_big} should beat small {t_small}");
    }

    #[test]
    fn ports_serialize_same_class() {
        // Two independent loads share the load port: second issues 1 cycle
        // later.
        let chip = ChipSpec::idealized();
        let mut p = Program::new("ports");
        p.push_straight(vec![
            Instr::Ldr { dst: VReg(0), base: XReg(0), offset: 0, post_inc: 0 },
            Instr::Ldr { dst: VReg(1), base: XReg(0), offset: 0, post_inc: 0 },
        ]);
        let stats = run(&p, &chip, true);
        assert_eq!(stats.cycles, 1 + 8);
    }

    #[test]
    fn different_classes_issue_in_parallel() {
        let chip = ChipSpec::idealized();
        let mut p = Program::new("par");
        p.push_straight(vec![
            Instr::Ldr { dst: VReg(0), base: XReg(0), offset: 0, post_inc: 0 },
            Instr::Fmla { acc: VReg(1), mul: VReg(2), lane_src: VReg(3), lane: 0 },
        ]);
        let stats = run(&p, &chip, true);
        // Both issue at cycle 0 on separate ports.
        assert_eq!(stats.cycles, 8);
    }

    #[test]
    fn scalar_dependency_chains_cost_one_cycle_each() {
        let chip = ChipSpec::idealized();
        let mut p = Program::new("scalar");
        p.push_straight(vec![
            Instr::MovImm { dst: XReg(3), imm: 4 },
            Instr::AddImm { dst: XReg(3), a: XReg(3), imm: 4 },
            Instr::AddImm { dst: XReg(3), a: XReg(3), imm: 4 },
        ]);
        let stats = run(&p, &chip, true);
        assert_eq!(stats.cycles, 3);
    }
}
