//! Functional interpreter for the virtual Arm ISA.
//!
//! Executes a generated program in strict program order with real `f32`
//! arithmetic — this is what the correctness tests compare against a naive
//! GEMM. Timing is handled separately by [`crate::pipeline`], which co-runs
//! this interpreter to resolve load/store addresses.

use crate::memory::Memory;
use autogemm_arch::isa::Instr;
use autogemm_arch::simd::MAX_LANES;
use autogemm_arch::{Block, Program};

/// Architectural register state.
#[derive(Debug, Clone)]
pub struct FuncState {
    /// Scalar registers `x0..x30` (byte addresses / strides / counters).
    pub x: [i64; 31],
    /// Vector registers; only the first `σ_lane` lanes are meaningful.
    pub v: [[f32; MAX_LANES]; 32],
    /// Lanes per vector operation.
    pub sigma_lane: usize,
}

impl FuncState {
    pub fn new(sigma_lane: usize) -> Self {
        assert!(sigma_lane <= MAX_LANES);
        FuncState { x: [0; 31], v: [[0.0; MAX_LANES]; 32], sigma_lane }
    }

    /// Bind the kernel ABI: `x0..x2` = byte addresses of A/B/C,
    /// `x3..x5` = leading dimensions in elements.
    pub fn bind_gemm(&mut self, a: usize, b: usize, c: usize, lda: usize, ldb: usize, ldc: usize) {
        self.x[0] = a as i64;
        self.x[1] = b as i64;
        self.x[2] = c as i64;
        self.x[3] = lda as i64;
        self.x[4] = ldb as i64;
        self.x[5] = ldc as i64;
    }

    /// Execute a single instruction. Returns the byte address touched by a
    /// load/store/prefetch (used by the timing model), if any.
    pub fn step(&mut self, instr: &Instr, mem: &mut Memory) -> Option<usize> {
        match instr {
            Instr::Ldr { dst, base, offset, post_inc } => {
                let addr = (self.x[base.0 as usize] + offset) as usize;
                let vals = mem.read_vec(addr, self.sigma_lane).to_vec();
                let reg = &mut self.v[dst.0 as usize];
                reg.fill(0.0);
                reg[..self.sigma_lane].copy_from_slice(&vals);
                self.x[base.0 as usize] += post_inc;
                Some(addr)
            }
            Instr::Str { src, base, offset, post_inc } => {
                let addr = (self.x[base.0 as usize] + offset) as usize;
                let vals = self.v[src.0 as usize][..self.sigma_lane].to_vec();
                mem.write_vec(addr, &vals);
                self.x[base.0 as usize] += post_inc;
                Some(addr)
            }
            Instr::Fmla { acc, mul, lane_src, lane } => {
                let scalar = self.v[lane_src.0 as usize][*lane as usize];
                let m = self.v[mul.0 as usize];
                let a = &mut self.v[acc.0 as usize];
                for l in 0..self.sigma_lane {
                    a[l] = m[l].mul_add(scalar, a[l]);
                }
                None
            }
            Instr::Vzero { dst } => {
                self.v[dst.0 as usize].fill(0.0);
                None
            }
            Instr::Prfm { base, offset, .. } => Some((self.x[base.0 as usize] + offset) as usize),
            Instr::MovImm { dst, imm } => {
                self.x[dst.0 as usize] = *imm;
                None
            }
            Instr::MovReg { dst, src } => {
                self.x[dst.0 as usize] = self.x[src.0 as usize];
                None
            }
            Instr::AddReg { dst, a, b } => {
                self.x[dst.0 as usize] = self.x[a.0 as usize] + self.x[b.0 as usize];
                None
            }
            Instr::AddImm { dst, a, imm } => {
                self.x[dst.0 as usize] = self.x[a.0 as usize] + imm;
                None
            }
            Instr::Lsl { dst, src, shift } => {
                self.x[dst.0 as usize] = self.x[src.0 as usize] << shift;
                None
            }
        }
    }

    /// Execute a whole program in order.
    pub fn run(&mut self, prog: &Program, mem: &mut Memory) {
        for block in &prog.blocks {
            match block {
                Block::Straight(instrs) => {
                    for i in instrs {
                        self.step(i, mem);
                    }
                }
                Block::Loop { count, body } => {
                    for _ in 0..*count {
                        for i in body {
                            self.step(i, mem);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_arch::isa::{VReg, XReg};

    #[test]
    fn load_fma_store_computes_axpy() {
        // v1 = [1,2,3,4]; v2 = [10,20,30,40]; v0 += v2 * v1[1] => v0 = v2*2.
        let mut mem = Memory::new();
        let r = mem.alloc(1, 12, 12);
        mem.write_vec(r.base, &[1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0, 0.0, 0.0, 0.0, 0.0]);
        let mut st = FuncState::new(4);
        st.x[0] = r.base as i64;
        let prog = [
            Instr::Ldr { dst: VReg(1), base: XReg(0), offset: 0, post_inc: 16 },
            Instr::Ldr { dst: VReg(2), base: XReg(0), offset: 0, post_inc: 16 },
            Instr::Vzero { dst: VReg(0) },
            Instr::Fmla { acc: VReg(0), mul: VReg(2), lane_src: VReg(1), lane: 1 },
            Instr::Str { src: VReg(0), base: XReg(0), offset: 0, post_inc: 0 },
        ];
        for i in &prog {
            st.step(i, &mut mem);
        }
        assert_eq!(mem.read_vec(r.base + 32, 4), &[20.0, 40.0, 60.0, 80.0]);
    }

    #[test]
    fn post_increment_advances_base() {
        let mut mem = Memory::new();
        let r = mem.alloc(1, 8, 8);
        let mut st = FuncState::new(4);
        st.x[0] = r.base as i64;
        st.step(&Instr::Ldr { dst: VReg(0), base: XReg(0), offset: 0, post_inc: 16 }, &mut mem);
        assert_eq!(st.x[0], r.base as i64 + 16);
    }

    #[test]
    fn scalar_ops() {
        let mut mem = Memory::new();
        let mut st = FuncState::new(4);
        st.step(&Instr::MovImm { dst: XReg(3), imm: 10 }, &mut mem);
        st.step(&Instr::Lsl { dst: XReg(3), src: XReg(3), shift: 2 }, &mut mem);
        st.step(&Instr::AddImm { dst: XReg(4), a: XReg(3), imm: 2 }, &mut mem);
        st.step(&Instr::AddReg { dst: XReg(5), a: XReg(3), b: XReg(4) }, &mut mem);
        assert_eq!(st.x[3], 40);
        assert_eq!(st.x[4], 42);
        assert_eq!(st.x[5], 82);
    }

    #[test]
    fn loops_execute_count_times() {
        let mut mem = Memory::new();
        let r = mem.alloc(1, 4, 4);
        let mut prog = Program::new("t");
        let mut st = FuncState::new(4);
        st.x[0] = r.base as i64;
        // x3 += 1, five times.
        prog.push_loop(5, vec![Instr::AddImm { dst: XReg(3), a: XReg(3), imm: 1 }]);
        st.run(&prog, &mut mem);
        assert_eq!(st.x[3], 5);
    }

    #[test]
    fn sve_lane_width_respected() {
        let mut mem = Memory::new();
        let r = mem.alloc(1, 40, 40);
        let vals: Vec<f32> = (0..16).map(|i| i as f32).collect();
        mem.write_vec(r.base, &vals);
        let mut st = FuncState::new(16);
        st.x[0] = r.base as i64;
        st.step(&Instr::Ldr { dst: VReg(0), base: XReg(0), offset: 0, post_inc: 64 }, &mut mem);
        assert_eq!(st.v[0][15], 15.0);
        assert_eq!(st.x[0], r.base as i64 + 64);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use autogemm_arch::isa::{VReg, XReg};
    use proptest::prelude::*;

    proptest! {
        /// Stores then loads round-trip arbitrary values at arbitrary
        /// aligned offsets.
        #[test]
        fn store_load_round_trip(vals in proptest::collection::vec(-1e6f32..1e6, 4), slot in 0usize..32) {
            let mut mem = Memory::new();
            let r = mem.alloc(1, 256, 256);
            let mut st = FuncState::new(4);
            st.x[0] = (r.base + slot * 16) as i64;
            st.v[3][..4].copy_from_slice(&vals);
            st.step(&Instr::Str { src: VReg(3), base: XReg(0), offset: 0, post_inc: 0 }, &mut mem);
            st.step(&Instr::Ldr { dst: VReg(7), base: XReg(0), offset: 0, post_inc: 0 }, &mut mem);
            prop_assert_eq!(&st.v[7][..4], &vals[..]);
        }

        /// FMLA is exact for values where fused and unfused arithmetic
        /// agree (integers in range).
        #[test]
        fn fmla_matches_scalar_math(a in -100i32..100, b in -100i32..100, c0 in -100i32..100, lane in 0usize..4) {
            let mut mem = Memory::new();
            mem.alloc(1, 4, 4);
            let mut st = FuncState::new(4);
            st.v[0].fill(c0 as f32);
            st.v[1].fill(b as f32);
            st.v[2].fill(a as f32);
            st.step(
                &Instr::Fmla { acc: VReg(0), mul: VReg(1), lane_src: VReg(2), lane: lane as u8 },
                &mut mem,
            );
            prop_assert_eq!(st.v[0][0], (c0 + a * b) as f32);
        }
    }
}
