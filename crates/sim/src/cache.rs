//! Multi-level set-associative LRU cache model.
//!
//! Built from a chip's [`CacheLevelSpec`] list. Probes walk L1 → last
//! level → DRAM; the first hit determines the load-to-use latency; fills
//! are inclusive (every level on the way up receives the line). Associativity
//! is fixed at 8 ways (typical for the evaluated chips' L1d caches); the
//! capacity and line size come from the chip descriptor, which is what the
//! paper's cache-residency arguments (e.g. the Fig 6 KP920 K=256 dip) hinge
//! on.

use autogemm_arch::{CacheLevelSpec, ChipSpec};

const WAYS: usize = 8;

/// One cache level: `sets × WAYS` lines with LRU replacement.
struct Level {
    spec: CacheLevelSpec,
    sets: usize,
    /// `tags[set * WAYS + way]` = line tag, `u64::MAX` when invalid.
    tags: Vec<u64>,
    /// LRU stamps, larger = more recent.
    stamps: Vec<u64>,
    clock: u64,
}

impl Level {
    fn new(spec: CacheLevelSpec) -> Self {
        let lines = (spec.size_bytes / spec.line_bytes).max(WAYS);
        let sets = (lines / WAYS).max(1);
        Level {
            spec,
            sets,
            tags: vec![u64::MAX; sets * WAYS],
            stamps: vec![0; sets * WAYS],
            clock: 0,
        }
    }

    fn set_and_tag(&self, addr: usize) -> (usize, u64) {
        let line = addr / self.spec.line_bytes;
        (line % self.sets, line as u64)
    }

    /// Probe for `addr`; on hit refreshes the LRU stamp.
    fn probe(&mut self, addr: usize) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.clock += 1;
        for way in 0..WAYS {
            let idx = set * WAYS + way;
            if self.tags[idx] == tag {
                self.stamps[idx] = self.clock;
                return true;
            }
        }
        false
    }

    /// Insert the line holding `addr`, evicting the LRU way.
    fn fill(&mut self, addr: usize) {
        let (set, tag) = self.set_and_tag(addr);
        self.clock += 1;
        let mut victim = set * WAYS;
        for way in 1..WAYS {
            let idx = set * WAYS + way;
            if self.stamps[idx] < self.stamps[victim] {
                victim = idx;
            }
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.clock;
    }
}

/// Per-access classification used by the bandwidth model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Hit in cache level `i` (0 = L1).
    Cache(usize),
    Dram,
}

/// Access statistics accumulated over a simulation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Hits per level (index 0 = L1).
    pub hits: Vec<u64>,
    pub dram_accesses: u64,
    /// Bytes transferred from DRAM (full lines).
    pub dram_bytes: u64,
}

/// One tracked prefetch stream: last miss address and its stride.
#[derive(Clone, Copy)]
struct Stream {
    last: usize,
    stride: isize,
    /// Confidence: the stride has repeated at least once.
    confirmed: bool,
    lru: u64,
}

/// A small fully-associative stride-prefetcher table, as found on every
/// evaluated Arm core. A stream whose stride has been observed twice gets
/// its next line pulled ahead of use; demand accesses that match a
/// confirmed stream are charged L1 latency.
struct StridePrefetcher {
    streams: Vec<Stream>,
    clock: u64,
}

const STREAM_TABLE: usize = 32;
/// A stream only re-trains on deltas up to this size (half a page, as
/// hardware stride detectors do); larger deltas allocate a fresh stream so
/// parallel row-streams don't destroy each other's state.
const STREAM_WINDOW: isize = 2048;

impl StridePrefetcher {
    fn new() -> Self {
        StridePrefetcher { streams: Vec::with_capacity(STREAM_TABLE), clock: 0 }
    }

    /// Observe a miss at `addr`; on a confirmed-stream prediction hit,
    /// returns the *next* predicted address (for lookahead fills).
    fn observe(&mut self, addr: usize) -> Option<usize> {
        self.clock += 1;
        // Exact prediction hit?
        for s in &mut self.streams {
            if s.last as isize + s.stride == addr as isize && s.stride != 0 {
                let hit = s.confirmed;
                s.confirmed = true;
                s.last = addr;
                s.lru = self.clock;
                if hit {
                    let next = addr as isize + s.stride;
                    return (next >= 0).then_some(next as usize);
                }
                return None;
            }
        }
        // Re-train the nearest stream. A forward skip by a small multiple
        // of the stride is a *continuation* (the skipped lines were cache
        // hits and never surfaced as misses) — the stream stays confirmed,
        // as in real stride detectors.
        if let Some(s) = self
            .streams
            .iter_mut()
            .filter(|s| ((addr as isize) - (s.last as isize)).abs() < STREAM_WINDOW)
            .min_by_key(|s| ((addr as isize) - (s.last as isize)).unsigned_abs())
        {
            let delta = addr as isize - s.last as isize;
            let continuation =
                s.stride != 0 && delta > 0 && delta % s.stride == 0 && delta / s.stride <= 8;
            if continuation {
                let hit = s.confirmed;
                s.confirmed = true;
                s.last = addr;
                s.lru = self.clock;
                if hit {
                    let next = addr as isize + s.stride;
                    return (next >= 0).then_some(next as usize);
                }
                return None;
            }
            s.stride = delta;
            s.confirmed = false;
            s.last = addr;
            s.lru = self.clock;
            return None;
        }
        // Allocate (evict LRU).
        let entry = Stream { last: addr, stride: 0, confirmed: false, lru: self.clock };
        if self.streams.len() < STREAM_TABLE {
            self.streams.push(entry);
        } else if let Some(victim) = self.streams.iter_mut().min_by_key(|s| s.lru) {
            *victim = entry;
        }
        None
    }
}

/// The chip's full data-cache hierarchy.
pub struct CacheHierarchy {
    levels: Vec<Level>,
    dram_latency: u64,
    prefetcher: StridePrefetcher,
    pub stats: CacheStats,
}

impl CacheHierarchy {
    pub fn new(chip: &ChipSpec) -> Self {
        let levels: Vec<Level> = chip.caches.iter().copied().map(Level::new).collect();
        CacheHierarchy {
            stats: CacheStats { hits: vec![0; levels.len()], ..Default::default() },
            levels,
            dram_latency: chip.dram_latency_cycles,
            prefetcher: StridePrefetcher::new(),
        }
    }

    /// Line size of the innermost level (bytes).
    pub fn line_bytes(&self) -> usize {
        self.levels.first().map(|l| l.spec.line_bytes).unwrap_or(64)
    }

    /// Perform a demand access: returns `(latency_cycles, hit_level)` and
    /// fills the line into every level above the hit (inclusive).
    ///
    /// A stride prefetcher is modelled (see the `StridePrefetcher` table): misses
    /// on a line whose address a confirmed stream predicted — next-line
    /// streams over packed panels as well as large constant strides like a
    /// `C` panel's row walk — are charged L1 latency. All five evaluated
    /// chips have aggressive hardware prefetchers; without this, streaming
    /// would be charged miss latency per line, which no real Arm core
    /// pays.
    pub fn access(&mut self, addr: usize) -> (u64, HitLevel) {
        let line = self.line_bytes();
        let line_addr = addr / line * line;
        // L1 hit: nothing to hide.
        if !self.levels.is_empty() && self.levels[0].probe(addr) {
            self.stats.hits[0] += 1;
            return (self.levels[0].spec.latency_cycles, HitLevel::Cache(0));
        }
        // On any L1 miss the stream prefetcher gets a say: a confirmed
        // stream has already pulled the line into L1, wherever it lived
        // (L2, L3 or DRAM) — that is what hardware prefetch is for.
        let predicted = self.prefetcher.observe(line_addr);
        let l1_lat = self.levels.first().map(|l| l.spec.latency_cycles).unwrap_or(1);
        for i in 1..self.levels.len() {
            if self.levels[i].probe(addr) {
                self.stats.hits[i] += 1;
                for upper in &mut self.levels[..i] {
                    upper.fill(addr);
                }
                if let Some(next) = predicted {
                    for level in &mut self.levels[..i.max(1)] {
                        level.fill(next);
                    }
                    if !self.stats.hits.is_empty() {
                        self.stats.hits[0] += 1;
                    }
                    // Latency hidden, but the line still crossed the
                    // level-i interface: report the true source so the
                    // pipeline can charge fill bandwidth.
                    return (l1_lat, HitLevel::Cache(i));
                }
                return (self.levels[i].spec.latency_cycles, HitLevel::Cache(i));
            }
        }
        self.stats.dram_bytes += line as u64;
        for level in &mut self.levels {
            level.fill(addr);
            if let Some(next) = predicted {
                // Lookahead: the prefetcher runs one line ahead of demand.
                level.fill(next);
            }
        }
        if predicted.is_some() {
            if !self.stats.hits.is_empty() {
                self.stats.hits[0] += 1;
            }
            return (l1_lat, HitLevel::Dram);
        }
        self.stats.dram_accesses += 1;
        (self.dram_latency, HitLevel::Dram)
    }

    /// Software prefetch: fill the line into the hierarchy without
    /// counting a demand access (timing is charged to the prefetch port).
    pub fn prefetch(&mut self, addr: usize) {
        if !self.levels.iter_mut().any(|l| l.probe(addr)) {
            self.stats.dram_bytes += self.line_bytes() as u64;
        }
        for level in &mut self.levels {
            level.fill(addr);
        }
    }

    /// Warm a byte range into cache level `level_idx` and below (used to
    /// set up the paper's "sub-matrices resident in L1" precondition).
    pub fn warm(&mut self, range: std::ops::Range<usize>, level_idx: usize) {
        let line = self.line_bytes();
        let start = range.start / line * line;
        let mut addr = start;
        while addr < range.end {
            for level in &mut self.levels[level_idx..] {
                level.fill(addr);
            }
            addr += line;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_arch::ChipSpec;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(&ChipSpec::kp920())
    }

    #[test]
    fn cold_access_goes_to_dram_then_hits_l1() {
        let mut h = hierarchy();
        let (lat1, lvl1) = h.access(0x1000);
        assert_eq!(lvl1, HitLevel::Dram);
        assert_eq!(lat1, ChipSpec::kp920().dram_latency_cycles);
        let (lat2, lvl2) = h.access(0x1000);
        assert_eq!(lvl2, HitLevel::Cache(0));
        assert_eq!(lat2, ChipSpec::kp920().caches[0].latency_cycles);
        assert_eq!(h.stats.dram_accesses, 1);
        assert_eq!(h.stats.hits[0], 1);
    }

    #[test]
    fn same_line_hits_different_line_misses() {
        let mut h = hierarchy();
        h.access(0x1000);
        let (_, lvl) = h.access(0x1000 + 60); // same 64B line
        assert_eq!(lvl, HitLevel::Cache(0));
        let (_, lvl) = h.access(0x1000 + 64); // next line
        assert_eq!(lvl, HitLevel::Dram);
    }

    #[test]
    fn warm_preloads_a_range() {
        let mut h = hierarchy();
        h.warm(0..4096, 0);
        let (lat, lvl) = h.access(2048);
        assert_eq!(lvl, HitLevel::Cache(0));
        assert_eq!(lat, ChipSpec::kp920().caches[0].latency_cycles);
        assert_eq!(h.stats.dram_bytes, 0);
    }

    #[test]
    fn warm_into_l2_misses_l1_hits_l2() {
        let mut h = hierarchy();
        h.warm(0..4096, 1);
        let (lat, lvl) = h.access(128);
        assert_eq!(lvl, HitLevel::Cache(1));
        assert_eq!(lat, 22); // KP920's expensive L2 (Fig 6 dip)
    }

    #[test]
    fn capacity_eviction_falls_back_to_outer_level() {
        // Stream > L1 (64 KiB) but < L2: the second pass over the head of
        // the stream should hit L2, not L1.
        let mut h = hierarchy();
        let span = 256 << 10; // 256 KiB streamed
        let mut addr = 0;
        while addr < span {
            h.access(addr);
            addr += 64;
        }
        let (_, lvl) = h.access(0);
        assert_eq!(lvl, HitLevel::Cache(1));
    }

    #[test]
    fn prefetch_fills_without_demand_count() {
        let mut h = hierarchy();
        h.prefetch(0x2000);
        assert_eq!(h.stats.dram_accesses, 0);
        assert!(h.stats.dram_bytes > 0);
        let (_, lvl) = h.access(0x2000);
        assert_eq!(lvl, HitLevel::Cache(0));
    }

    #[test]
    fn dram_bytes_counted_per_line() {
        let mut h = hierarchy();
        h.access(0);
        h.access(64);
        h.access(4); // hit
        assert_eq!(h.stats.dram_bytes, 128);
    }
}
