//! Drivers for simulating micro-kernels and fused chains end-to-end.
//!
//! These bind real `f32` matrices into simulated memory, honour the
//! generated kernels' padding contract, set up the cache residency the
//! experiment calls for, run the pipeline model, and hand back both the
//! numerical result and the cycle report.

use crate::cache::CacheHierarchy;
use crate::func::FuncState;
use crate::memory::{Memory, Region};
use crate::pipeline::{simulate, PipelineStats};
use autogemm_arch::ChipSpec;
use autogemm_kernelgen::{fuse_chain, generate, MicroKernelSpec, TileInvocation};

/// Initial cache residency of the kernel's operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Warmth {
    /// Nothing cached; every first touch goes to DRAM.
    Cold,
    /// Operands resident in L1 — the paper's micro-kernel assumption
    /// (`A`, `B`, `C` sub-matrices stored in L1, §III-A).
    L1,
    /// Operands resident in L2 only (e.g. the KP920 K=256 case of Fig 6).
    L2,
    /// Operands resident in the last cache level only.
    LastLevel,
}

/// Simulated buffers for one GEMM problem.
pub struct KernelBuffers {
    pub mem: Memory,
    pub a: Region,
    pub b: Region,
    pub c: Region,
}

impl KernelBuffers {
    /// Allocate and fill buffers for `C(m×n) += A(m×k)·B(k×n)`, row-major,
    /// with the padding the generated kernels require.
    pub fn new(
        m: usize,
        n: usize,
        k: usize,
        sigma_lane: usize,
        a: &[f32],
        b: &[f32],
        c: &[f32],
    ) -> Self {
        assert_eq!(a.len(), m * k, "A must be m*k");
        assert_eq!(b.len(), k * n, "B must be k*n");
        assert_eq!(c.len(), m * n, "C must be m*n");
        let mut mem = Memory::new();
        // A rows padded by 2·σ_lane trailing elements.
        let ra = mem.alloc(m, k, k + 2 * sigma_lane);
        // B padded by two trailing rows (allocated rows = k + 2).
        let rb = mem.alloc(k + 2, n, n);
        let rc = mem.alloc(m, n, n);
        mem.fill(ra, a, k);
        mem.fill(Region { rows: k, ..rb }, b, n);
        mem.fill(rc, c, n);
        KernelBuffers { mem, a: ra, b: rb, c: rc }
    }

    fn warm(&self, caches: &mut CacheHierarchy, warmth: Warmth, chip: &ChipSpec) {
        let level = match warmth {
            Warmth::Cold => return,
            Warmth::L1 => 0,
            Warmth::L2 => 1.min(chip.caches.len().saturating_sub(1)),
            Warmth::LastLevel => chip.caches.len().saturating_sub(1),
        };
        for r in [self.a, self.b, self.c] {
            caches.warm(r.byte_range(), level);
        }
    }
}

/// Result of a simulated kernel run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Pipeline cycles plus the kernel-launch overhead(s).
    pub cycles: u64,
    /// Number of kernel launches charged (`T_launch` each).
    pub launches: u64,
    pub stats: PipelineStats,
}

impl SimReport {
    pub fn gflops(&self, chip: &ChipSpec) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.stats.flops(chip.sigma_lane()) as f64 * chip.freq_ghz / self.cycles as f64
    }

    pub fn efficiency(&self, chip: &ChipSpec) -> f64 {
        self.gflops(chip) / chip.peak_gflops_core()
    }
}

/// Simulate one micro-kernel `C(m_r×n_r) (+)= A(m_r×k_c)·B(k_c×n_r)`.
///
/// `c` is updated in place with the kernel's numerical result.
pub fn run_micro_kernel(
    spec: &MicroKernelSpec,
    chip: &ChipSpec,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    warmth: Warmth,
) -> SimReport {
    let (mr, nr, kc) = (spec.tile.mr, spec.tile.nr, spec.kc);
    let bufs = KernelBuffers::new(mr, nr, kc, spec.sigma_lane, a, b, c);
    let mut mem = bufs.mem.clone();
    let mut caches = CacheHierarchy::new(chip);
    bufs.warm(&mut caches, warmth, chip);

    let prog = generate(spec, chip);
    let mut state = FuncState::new(spec.sigma_lane);
    state.bind_gemm(bufs.a.base, bufs.b.base, bufs.c.base, bufs.a.ld, bufs.b.ld, bufs.c.ld);
    let stats = simulate(&prog, chip, &mut state, &mut mem, &mut caches);

    c.copy_from_slice(&mem.extract(bufs.c));
    SimReport { cycles: stats.cycles + chip.launch_cycles, launches: 1, stats }
}

/// Simulate a fused chain of micro-kernels over shared buffers.
///
/// The invocations' placements are element offsets into `bufs`' regions
/// (relative to each region's origin). One launch overhead is charged for
/// the whole chain — the fusion benefit of §III-C2. Returns the report;
/// read results back via `bufs.mem.extract(bufs.c)`.
pub fn run_chain(
    invocations: &[TileInvocation],
    chip: &ChipSpec,
    bufs: &mut KernelBuffers,
    warmth: Warmth,
) -> SimReport {
    let mut caches = CacheHierarchy::new(chip);
    bufs.warm(&mut caches, warmth, chip);

    // Rebase placements from region-relative to absolute element offsets.
    let rebase: Vec<TileInvocation> = invocations
        .iter()
        .map(|inv| TileInvocation {
            spec: inv.spec,
            a_off: bufs.a.base / 4 + inv.a_off,
            b_off: bufs.b.base / 4 + inv.b_off,
            c_off: bufs.c.base / 4 + inv.c_off,
        })
        .collect();
    let (prog, _kinds) = fuse_chain(&rebase, chip);
    let mut state = FuncState::new(chip.sigma_lane());
    // Chain placements are absolute: bases are zero.
    state.bind_gemm(0, 0, 0, bufs.a.ld, bufs.b.ld, bufs.c.ld);
    let stats = simulate(&prog, chip, &mut state, &mut bufs.mem, &mut caches);
    SimReport { cycles: stats.cycles + chip.launch_cycles, launches: 1, stats }
}

/// Simulate the same invocations *without* fusion: each kernel runs as its
/// own program (sharing cache state) and pays its own launch overhead.
/// This is the baseline the fusion optimization is measured against.
pub fn run_unfused(
    invocations: &[TileInvocation],
    chip: &ChipSpec,
    bufs: &mut KernelBuffers,
    warmth: Warmth,
) -> SimReport {
    let mut caches = CacheHierarchy::new(chip);
    bufs.warm(&mut caches, warmth, chip);
    let mut total = PipelineStats::default();
    let mut cycles = 0u64;
    for inv in invocations {
        let prog = generate(&inv.spec, chip);
        let mut state = FuncState::new(chip.sigma_lane());
        state.bind_gemm(
            bufs.a.base + inv.a_off * 4,
            bufs.b.base + inv.b_off * 4,
            bufs.c.base + inv.c_off * 4,
            bufs.a.ld,
            bufs.b.ld,
            bufs.c.ld,
        );
        let stats = simulate(&prog, chip, &mut state, &mut bufs.mem, &mut caches);
        cycles += stats.cycles + chip.launch_cycles;
        total.instructions += stats.instructions;
        total.fma_count += stats.fma_count;
        total.load_count += stats.load_count;
        total.store_count += stats.store_count;
        total.fma_stall_cycles += stats.fma_stall_cycles;
        total.cache = stats.cache.clone();
    }
    total.cycles = cycles;
    SimReport { cycles, launches: invocations.len() as u64, stats: total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_kernelgen::{MicroTile, PipelineOpts, Strides};

    fn naive_gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = c[i * n + j];
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = acc;
            }
        }
    }

    fn test_data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7 + 3) % 11) as f32 - 5.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 5 + 1) % 13) as f32 - 6.0).collect();
        let c: Vec<f32> = (0..m * n).map(|i| ((i * 3 + 2) % 7) as f32 - 3.0).collect();
        (a, b, c)
    }

    fn check_kernel(mr: usize, nr: usize, kc: usize, rotate: bool, chip: &ChipSpec) {
        let spec = MicroKernelSpec {
            tile: MicroTile::new(mr, nr),
            kc,
            sigma_lane: chip.sigma_lane(),
            accumulate: true,
            strides: Strides::Dynamic,
            opts: PipelineOpts { rotate, prefetch: true },
        };
        let (a, b, c0) = test_data(mr, nr, kc);
        let mut c = c0.clone();
        let report = run_micro_kernel(&spec, chip, &a, &b, &mut c, Warmth::L1);
        let mut expected = c0;
        naive_gemm(mr, nr, kc, &a, &b, &mut expected);
        for (i, (&got, &want)) in c.iter().zip(&expected).enumerate() {
            assert!(
                (got - want).abs() <= 1e-3 * want.abs().max(1.0),
                "{}x{}x{} rotate={rotate}: C[{i}] = {got}, want {want}",
                mr,
                nr,
                kc
            );
        }
        assert!(report.cycles > 0);
        assert_eq!(report.stats.fma_count as usize, mr * (nr / chip.sigma_lane()) * kc);
    }

    #[test]
    fn all_first_choice_tiles_compute_correctly() {
        let chip = ChipSpec::idealized();
        for tile in autogemm_kernelgen::tiles::first_choice_neon() {
            for kc in [4, 16, 18, 37] {
                check_kernel(tile.mr, tile.nr, kc, false, &chip);
                check_kernel(tile.mr, tile.nr, kc, true, &chip);
            }
        }
    }

    #[test]
    fn every_feasible_tile_computes_correctly_at_kc_12() {
        let chip = ChipSpec::idealized();
        for tile in autogemm_kernelgen::tiles::enumerate(4) {
            check_kernel(tile.mr, tile.nr, 12, false, &chip);
            check_kernel(tile.mr, tile.nr, 12, true, &chip);
        }
    }

    #[test]
    fn remainder_kc_values_compute_correctly() {
        let chip = ChipSpec::idealized();
        for kc in 1..=9 {
            check_kernel(5, 16, kc, false, &chip);
            check_kernel(2, 16, kc, true, &chip);
        }
    }

    #[test]
    fn sve_kernel_computes_correctly() {
        let chip = ChipSpec::a64fx();
        check_kernel(5, 16, 32, false, &chip);
        check_kernel(5, 16, 19, true, &chip);
        check_kernel(8, 16, 16, false, &chip);
    }

    #[test]
    fn fig3_compute_bound_timing_close_to_paper_model() {
        // Paper: 5×16 basic kernel on the idealized machine takes
        // 20·k_c + 13·k̄_c + 65 cycles (§III-B1).
        let chip = ChipSpec::idealized();
        let kc = 64;
        let spec = MicroKernelSpec::listing1(MicroTile::new(5, 16), kc, &chip);
        let (a, b, c0) = test_data(5, 16, kc);
        let mut c = c0;
        let report = run_micro_kernel(&spec, &chip, &a, &b, &mut c, Warmth::L1);
        let model = 20 * kc as u64 + 13 * (kc as u64 / 4) + 65;
        let ratio = report.stats.cycles as f64 / model as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "simulated {} vs model {model} (ratio {ratio:.3})",
            report.stats.cycles
        );
    }

    #[test]
    fn rotation_reduces_cycles_on_war_hazard_chip() {
        let chip = ChipSpec::idealized();
        let kc = 64;
        let mk = |rotate| MicroKernelSpec {
            tile: MicroTile::new(5, 16),
            kc,
            sigma_lane: 4,
            accumulate: true,
            strides: Strides::Dynamic,
            opts: PipelineOpts { rotate, prefetch: true },
        };
        let (a, b, c0) = test_data(5, 16, kc);
        let mut c1 = c0.clone();
        let basic = run_micro_kernel(&mk(false), &chip, &a, &b, &mut c1, Warmth::L1);
        let mut c2 = c0;
        let rot = run_micro_kernel(&mk(true), &chip, &a, &b, &mut c2, Warmth::L1);
        assert!(
            rot.stats.cycles < basic.stats.cycles,
            "rotated {} !< basic {}",
            rot.stats.cycles,
            basic.stats.cycles
        );
        assert_eq!(c1, c2);
    }

    #[test]
    fn memory_bound_rotation_removes_bubbles() {
        // Paper Fig 3(b)/(d): 2×16 improves from 48·k̄_c to 42·k̄_c in the
        // main loop.
        let chip = ChipSpec::idealized();
        let kc = 64;
        let mk = |rotate| MicroKernelSpec {
            tile: MicroTile::new(2, 16),
            kc,
            sigma_lane: 4,
            accumulate: true,
            strides: Strides::Dynamic,
            opts: PipelineOpts { rotate, prefetch: true },
        };
        let (a, b, c0) = test_data(2, 16, kc);
        let mut c1 = c0.clone();
        let basic = run_micro_kernel(&mk(false), &chip, &a, &b, &mut c1, Warmth::L1);
        let mut c2 = c0;
        let rot = run_micro_kernel(&mk(true), &chip, &a, &b, &mut c2, Warmth::L1);
        assert!(rot.stats.cycles < basic.stats.cycles);
        assert_eq!(c1, c2);
    }

    #[test]
    fn fused_chain_matches_unfused_numerics_and_saves_cycles() {
        let chip = ChipSpec::idealized();
        let (mr, nr, kc) = (5, 16, 8);
        let n_tiles = 4;
        let n_total = nr * n_tiles;
        let (a, b, c0) = test_data(mr, n_total, kc);
        let mk_invs = || -> Vec<TileInvocation> {
            (0..n_tiles)
                .map(|t| TileInvocation {
                    spec: MicroKernelSpec {
                        tile: MicroTile::new(mr, nr),
                        kc,
                        sigma_lane: 4,
                        accumulate: true,
                        strides: Strides::Static { lda: kc + 8, ldb: n_total, ldc: n_total },
                        opts: PipelineOpts::basic(),
                    },
                    a_off: 0,
                    b_off: t * nr,
                    c_off: t * nr,
                })
                .collect()
        };
        let mut bufs_f = KernelBuffers::new(mr, n_total, kc, 4, &a, &b, &c0);
        let fused = run_chain(&mk_invs(), &chip, &mut bufs_f, Warmth::L1);
        let got_fused = bufs_f.mem.extract(bufs_f.c);

        let mut bufs_u = KernelBuffers::new(mr, n_total, kc, 4, &a, &b, &c0);
        let unfused = run_unfused(&mk_invs(), &chip, &mut bufs_u, Warmth::L1);
        let got_unfused = bufs_u.mem.extract(bufs_u.c);

        let mut expected = c0;
        naive_gemm(mr, n_total, kc, &a, &b, &mut expected);
        for (i, (&got, &want)) in got_fused.iter().zip(&expected).enumerate() {
            assert!((got - want).abs() <= 1e-3 * want.abs().max(1.0), "fused C[{i}]");
        }
        assert_eq!(got_fused, got_unfused);
        assert!(
            fused.cycles < unfused.cycles,
            "fused {} !< unfused {}",
            fused.cycles,
            unfused.cycles
        );
    }

    #[test]
    fn l2_resident_operands_cost_more_than_l1() {
        let chip = ChipSpec::kp920();
        let spec = MicroKernelSpec::listing1(MicroTile::new(5, 16), 32, &chip);
        let (a, b, c0) = test_data(5, 16, 32);
        let mut c1 = c0.clone();
        let l1 = run_micro_kernel(&spec, &chip, &a, &b, &mut c1, Warmth::L1);
        let mut c2 = c0;
        let l2 = run_micro_kernel(&spec, &chip, &a, &b, &mut c2, Warmth::L2);
        assert!(l2.cycles > l1.cycles);
        assert_eq!(c1, c2);
    }
}
