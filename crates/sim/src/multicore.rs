//! Analytic multi-core execution model (§V-C/E).
//!
//! Threads execute independent cache blocks (autoGEMM never parallelizes
//! the K dimension — a limitation inherited from TVM that the paper calls
//! out). The makespan is the slowest thread's compute time, inflated when
//! the threads' aggregate DRAM traffic exceeds the machine's bandwidth.
//! NUMA topologies (Altra's two sockets, the A64FX's four CMGs on a ring)
//! add a cross-domain penalty to the fraction of traffic that leaves a
//! thread's domain, which is what collapses the A64FX's strong scaling in
//! Fig 11.

use autogemm_arch::ChipSpec;

/// Work executed by one thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadWork {
    /// Pipeline cycles of the thread's kernel sequence.
    pub cycles: u64,
    /// Bytes the thread pulls from DRAM.
    pub dram_bytes: u64,
}

/// Result of the multi-core model.
#[derive(Debug, Clone, Copy)]
pub struct MulticoreResult {
    /// Wall-clock seconds for the slowest thread including bandwidth and
    /// NUMA inflation.
    pub seconds: f64,
    /// Aggregate DRAM bandwidth demanded at pure-compute speed (GB/s).
    pub bw_demand_gbs: f64,
    /// `true` when the run is slowed by bandwidth saturation.
    pub bw_limited: bool,
    /// Fraction of traffic charged the cross-domain penalty.
    pub remote_fraction: f64,
}

impl MulticoreResult {
    /// Achieved GFLOP/s for a run of `flops` floating-point operations.
    pub fn gflops(&self, flops: u64) -> f64 {
        if self.seconds == 0.0 {
            return 0.0;
        }
        flops as f64 / self.seconds / 1e9
    }
}

/// Compute the makespan of `works` threads on `chip`.
///
/// Threads are placed round-robin-by-block onto NUMA domains (thread `t`
/// lands on domain `t / cores_per_domain`). When more than one domain is
/// populated, shared operand traffic is assumed uniformly distributed over
/// the populated domains, so a `1 - 1/d` fraction of each thread's bytes is
/// remote and pays [`autogemm_arch::NumaTopology::cross_domain_penalty`].
pub fn makespan(chip: &ChipSpec, works: &[ThreadWork]) -> MulticoreResult {
    makespan_with_placement(chip, works, false)
}

/// [`makespan`] with optional domain-local operand placement: when
/// `replicated` is set, every domain holds its own copy of the shared
/// operands (packed per CMG), so no traffic crosses the interconnect —
/// the CMG-aware scheduling the paper leaves as future work for the
/// A64FX (§V-C/E). The replication cost itself (packing × domains) is
/// charged by the caller.
pub fn makespan_with_placement(
    chip: &ChipSpec,
    works: &[ThreadWork],
    replicated: bool,
) -> MulticoreResult {
    assert!(!works.is_empty(), "makespan of zero threads");
    assert!(
        works.len() <= chip.cores,
        "{} threads exceed {} cores on {}",
        works.len(),
        chip.cores,
        chip.name
    );
    let freq_hz = chip.freq_ghz * 1e9;
    let t_comp = works.iter().map(|w| w.cycles).max().unwrap() as f64 / freq_hz;
    if t_comp == 0.0 {
        return MulticoreResult {
            seconds: 0.0,
            bw_demand_gbs: 0.0,
            bw_limited: false,
            remote_fraction: 0.0,
        };
    }

    let per_domain = chip.numa.cores_per_domain.max(1);
    let domains_used = works.len().div_ceil(per_domain).min(chip.numa.domains.max(1));
    let remote_fraction =
        if domains_used > 1 && !replicated { 1.0 - 1.0 / domains_used as f64 } else { 0.0 };

    // Effective bytes per domain: local + penalized remote share.
    let mut domain_bytes = vec![0.0f64; domains_used];
    for (t, w) in works.iter().enumerate() {
        let d = (t / per_domain).min(domains_used - 1);
        let local = w.dram_bytes as f64 * (1.0 - remote_fraction);
        let remote = w.dram_bytes as f64 * remote_fraction * chip.numa.cross_domain_penalty;
        domain_bytes[d] += local + remote;
    }

    let total_bytes: f64 = works.iter().map(|w| w.dram_bytes as f64).sum();
    let bw_demand_gbs = total_bytes / t_comp / 1e9;

    // Each domain's traffic is served by its own memory controller.
    let mut scale: f64 = 1.0;
    for bytes in &domain_bytes {
        let demand = bytes / t_comp / 1e9;
        scale = scale.max(demand / chip.numa.bw_per_domain_gbs);
    }
    // Cross-domain traffic shares the inter-domain interconnect (the
    // A64FX's CMG ring / the Altra's socket link).
    if remote_fraction > 0.0 && chip.numa.interconnect_bw_gbs.is_finite() {
        let cross_bytes = total_bytes * remote_fraction;
        let ring_demand = cross_bytes / t_comp / 1e9;
        scale = scale.max(ring_demand / chip.numa.interconnect_bw_gbs);
    }
    let bw_limited = scale > 1.0;
    MulticoreResult { seconds: t_comp * scale.max(1.0), bw_demand_gbs, bw_limited, remote_fraction }
}

/// Strong-scaling helper: parallel efficiency of `t_n` seconds on `n`
/// threads against `t_1` seconds on one.
pub fn parallel_efficiency(t_1: f64, t_n: f64, n: usize) -> f64 {
    t_1 / (t_n * n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(cycles: u64, bytes: u64) -> ThreadWork {
        ThreadWork { cycles, dram_bytes: bytes }
    }

    #[test]
    fn single_thread_time_is_cycles_over_frequency() {
        let chip = ChipSpec::kp920();
        let r = makespan(&chip, &[work(2_600_000, 0)]);
        assert!((r.seconds - 1e-3).abs() < 1e-9);
        assert!(!r.bw_limited);
    }

    #[test]
    fn compute_bound_threads_scale_linearly() {
        let chip = ChipSpec::graviton2();
        let one = makespan(&chip, &[work(1_000_000, 1000)]);
        let works: Vec<_> = (0..8).map(|_| work(1_000_000, 1000)).collect();
        let eight = makespan(&chip, &works);
        // Same per-thread work, negligible traffic: same wall time.
        assert!((eight.seconds / one.seconds - 1.0).abs() < 0.05);
        let eff = parallel_efficiency(one.seconds * 8.0, eight.seconds, 8);
        let _ = eff;
    }

    #[test]
    fn bandwidth_saturation_inflates_makespan() {
        let chip = ChipSpec::kp920(); // 85 GB/s
                                      // Each thread wants ~40 GB/s at compute speed: 3 threads saturate.
        let cycles = 2_600_000; // 1 ms
        let bytes = 40_000_000; // 40 MB in 1 ms = 40 GB/s
        let one = makespan(&chip, &[work(cycles, bytes)]);
        assert!(!one.bw_limited);
        let four = makespan(&chip, &[work(cycles, bytes); 4]);
        assert!(four.bw_limited);
        assert!(four.seconds > one.seconds * 1.5);
    }

    #[test]
    fn makespan_is_slowest_thread() {
        let chip = ChipSpec::m2();
        let r = makespan(&chip, &[work(100, 0), work(1_000_000, 0), work(5, 0)]);
        assert!((r.seconds - 1_000_000.0 / (3.49e9)).abs() / r.seconds < 1e-9);
    }

    #[test]
    fn a64fx_cross_cmg_penalty_kicks_in_beyond_one_cmg() {
        let chip = ChipSpec::a64fx();
        let cycles = 2_200_000; // 1 ms
        let bytes = 150_000_000; // 150 GB/s demand per thread
        let twelve = makespan(&chip, &[work(cycles, bytes / 12); 12]);
        let r12 = twelve.remote_fraction;
        assert_eq!(r12, 0.0, "single CMG has no remote traffic");
        let forty_eight = makespan(&chip, &vec![work(cycles, bytes / 12); 48]);
        assert!(forty_eight.remote_fraction > 0.7);
        // 4x the threads, but far from 4x... the aggregate throughput:
        // scaling efficiency collapses, as in Fig 11.
        assert!(forty_eight.seconds > twelve.seconds);
    }

    #[test]
    fn altra_two_socket_remote_fraction_is_half() {
        let chip = ChipSpec::altra();
        let works: Vec<_> = (0..70).map(|_| work(1000, 10_000)).collect();
        let r = makespan(&chip, &works);
        assert!((r.remote_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn more_threads_than_cores_rejected() {
        let chip = ChipSpec::m2();
        makespan(&chip, &[work(1, 0); 5]);
    }

    #[test]
    fn gflops_accounting() {
        let chip = ChipSpec::kp920();
        let r = makespan(&chip, &[work(2_600_000, 0)]); // 1 ms
                                                        // 20.8 GFLOP in 1 ms => 20800 GFLOP/s.
        let g = r.gflops(20_800_000);
        assert!((g - 20.8).abs() < 0.1);
    }
}

#[cfg(test)]
mod placement_tests {
    use super::*;

    #[test]
    fn replication_removes_remote_traffic() {
        let chip = ChipSpec::a64fx();
        let works: Vec<_> =
            (0..48).map(|_| ThreadWork { cycles: 2_200_000, dram_bytes: 2_000_000 }).collect();
        let shared = makespan_with_placement(&chip, &works, false);
        let replicated = makespan_with_placement(&chip, &works, true);
        assert!(shared.remote_fraction > 0.7);
        assert_eq!(replicated.remote_fraction, 0.0);
        assert!(replicated.seconds <= shared.seconds);
    }

    #[test]
    fn replication_is_a_noop_within_one_domain() {
        let chip = ChipSpec::a64fx();
        let works: Vec<_> =
            (0..12).map(|_| ThreadWork { cycles: 1000, dram_bytes: 1000 }).collect();
        let a = makespan_with_placement(&chip, &works, false);
        let b = makespan_with_placement(&chip, &works, true);
        assert_eq!(a.seconds, b.seconds);
    }
}
