//! Instruction-level pipeline traces and the ASCII timeline renderer —
//! the Fig 3 "runtime measured in cycles" diagrams, regenerated from the
//! simulator rather than drawn by hand.

use crate::cache::CacheHierarchy;
use crate::func::FuncState;
use crate::memory::Memory;
use autogemm_arch::isa::InstrClass;
use autogemm_arch::{Block, ChipSpec, Program};

/// One traced instruction: what it was and when it issued/completed.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    pub index: usize,
    pub text: String,
    pub class: InstrClass,
    pub issue: u64,
    pub complete: u64,
}

/// Execute a program on the pipeline model, recording per-instruction
/// issue/complete times. Functionally identical to [`crate::simulate`]
/// (same scheduler), but keeps the whole event list, so use it on short
/// kernels only.
pub fn trace(
    prog: &Program,
    chip: &ChipSpec,
    state: &mut FuncState,
    mem: &mut Memory,
    caches: &mut CacheHierarchy,
) -> Vec<TraceEvent> {
    // Re-run the production scheduler with event capture: we reuse
    // `simulate`'s mechanics by instrumenting a private copy of the issue
    // logic through the public API — simplest faithful approach is to
    // re-issue instruction by instruction.
    let mut events = Vec::with_capacity(prog.dynamic_len());
    let mut sched = crate::pipeline::TracingScheduler::new(chip);
    let mut idx = 0usize;
    let mut exec = |instr: &autogemm_arch::Instr,
                    state: &mut FuncState,
                    mem: &mut Memory,
                    caches: &mut CacheHierarchy,
                    events: &mut Vec<TraceEvent>,
                    sched: &mut crate::pipeline::TracingScheduler| {
        let addr = state.step(instr, mem);
        let (lat, source) = match (instr.class(), addr) {
            (InstrClass::Load, Some(a)) => caches.access(a),
            (InstrClass::Store, Some(a)) | (InstrClass::Prefetch, Some(a)) => {
                caches.prefetch(a);
                (0, crate::cache::HitLevel::Cache(0))
            }
            _ => (0, crate::cache::HitLevel::Cache(0)),
        };
        let (issue, complete) = sched.issue(instr, lat, source);
        events.push(TraceEvent {
            index: idx,
            text: instr.render(),
            class: instr.class(),
            issue,
            complete,
        });
        idx += 1;
    };
    for block in &prog.blocks {
        match block {
            Block::Straight(instrs) => {
                for i in instrs {
                    exec(i, state, mem, caches, &mut events, &mut sched);
                }
            }
            Block::Loop { count, body } => {
                for _ in 0..*count {
                    for i in body {
                        exec(i, state, mem, caches, &mut events, &mut sched);
                    }
                    sched.loop_overhead();
                }
            }
        }
    }
    events
}

/// Render a window of a trace as an ASCII timeline (one row per
/// instruction, `#` from issue to completion), Fig 3-style.
pub fn render_timeline(events: &[TraceEvent], from: usize, to: usize) -> String {
    let window = &events[from.min(events.len())..to.min(events.len())];
    if window.is_empty() {
        return String::from("(empty trace window)\n");
    }
    let t0 = window.iter().map(|e| e.issue).min().unwrap();
    let t1 = window.iter().map(|e| e.complete).max().unwrap();
    let width = (t1 - t0 + 1).min(160) as usize;
    let label_w = window.iter().map(|e| e.text.len()).max().unwrap().min(36);
    let mut out = String::new();
    out.push_str(&format!("{:>4} {:<label_w$} cycles {t0}..{t1}\n", "#", "instruction",));
    for e in window {
        let mut bar = vec![b' '; width];
        let s = (e.issue - t0) as usize;
        let c = ((e.complete - t0) as usize).min(width.saturating_sub(1));
        let ch = match e.class {
            InstrClass::Fma => b'F',
            InstrClass::Load => b'L',
            InstrClass::Store => b'S',
            InstrClass::Prefetch => b'p',
            InstrClass::Scalar => b'.',
        };
        for slot in bar.iter_mut().take(c + 1).skip(s.min(width - 1)) {
            *slot = ch;
        }
        let mut label = e.text.clone();
        label.truncate(label_w);
        out.push_str(&format!(
            "{:>4} {:<label_w$} |{}|\n",
            e.index,
            label,
            String::from_utf8_lossy(&bar),
        ));
    }
    out
}

/// Per-class utilization summary of a trace: issued cycles per class over
/// the makespan (the "how full is the FMA pipe" number behind Fig 3).
pub fn utilization(events: &[TraceEvent]) -> Vec<(InstrClass, f64)> {
    if events.is_empty() {
        return Vec::new();
    }
    let span = events.iter().map(|e| e.complete).max().unwrap().max(1);
    let mut counts: Vec<(InstrClass, u64)> = Vec::new();
    for class in [
        InstrClass::Fma,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Prefetch,
        InstrClass::Scalar,
    ] {
        let n = events.iter().filter(|e| e.class == class).count() as u64;
        counts.push((class, n));
    }
    counts.into_iter().map(|(c, n)| (c, n as f64 / span as f64)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_kernelgen::{generate, MicroKernelSpec, MicroTile};

    fn traced_kernel(kc: usize) -> Vec<TraceEvent> {
        let chip = ChipSpec::idealized();
        let spec = MicroKernelSpec::listing1(MicroTile::new(5, 16), kc, &chip);
        let prog = generate(&spec, &chip);
        let mut mem = Memory::new();
        let a = mem.alloc(5, kc, kc + 8);
        let b = mem.alloc(kc + 2, 16, 16);
        let c = mem.alloc(5, 16, 16);
        let mut caches = CacheHierarchy::new(&chip);
        for r in [a, b, c] {
            caches.warm(r.byte_range(), 0);
        }
        let mut state = FuncState::new(4);
        state.bind_gemm(a.base, b.base, c.base, a.ld, b.ld, c.ld);
        trace(&prog, &chip, &mut state, &mut mem, &mut caches)
    }

    #[test]
    fn trace_covers_every_dynamic_instruction() {
        let chip = ChipSpec::idealized();
        let spec = MicroKernelSpec::listing1(MicroTile::new(5, 16), 16, &chip);
        let prog = generate(&spec, &chip);
        let events = traced_kernel(16);
        assert_eq!(events.len(), prog.dynamic_len());
    }

    #[test]
    fn trace_times_match_the_production_scheduler() {
        // The traced makespan must equal the cycle count `simulate` reports
        // for the same kernel — one scheduler, two views.
        let chip = ChipSpec::idealized();
        let spec = MicroKernelSpec::listing1(MicroTile::new(5, 16), 16, &chip);
        let a = vec![1.0f32; 5 * 16];
        let b = vec![1.0f32; 16 * 16];
        let mut c = vec![0.0f32; 5 * 16];
        let report = crate::run_micro_kernel(&spec, &chip, &a, &b, &mut c, crate::Warmth::L1);
        let events = traced_kernel(16);
        let makespan = events.iter().map(|e| e.complete).max().unwrap();
        assert_eq!(makespan, report.stats.cycles);
    }

    #[test]
    fn issue_order_is_causal() {
        let events = traced_kernel(8);
        for e in &events {
            assert!(e.complete >= e.issue);
        }
        // First instruction issues at cycle 0-ish.
        assert!(events[0].issue <= 1);
    }

    #[test]
    fn timeline_renders_with_class_glyphs() {
        let events = traced_kernel(8);
        let art = render_timeline(&events, 0, 24);
        assert!(art.contains('L'), "loads visible");
        assert!(art.lines().count() >= 20);
    }

    #[test]
    fn utilization_sums_are_sane() {
        let events = traced_kernel(64);
        let util = utilization(&events);
        let fma = util.iter().find(|(c, _)| *c == InstrClass::Fma).map(|(_, u)| *u).unwrap();
        // A compute-bound 5x16 kernel keeps the FMA pipe mostly busy.
        assert!(fma > 0.7, "FMA utilization {fma:.2}");
    }
}
