//! Flat simulated memory with region bookkeeping.
//!
//! Generated kernels address memory in bytes; element type is always `f32`.
//! Allocation appends a slack area after every region so that the kernels'
//! documented over-reads (one trailing `A` vector per row, up to two
//! trailing `B` rows) stay inside mapped memory.

/// Slack elements appended after every region — generously larger than the
/// worst-case over-read of any generated kernel (2 B rows × n_r ≤ 2·28, or
/// 2·σ_lane per A row which is accounted per-row via the leading dimension).
pub const REGION_SLACK_ELEMS: usize = 128;

/// A matrix region inside a [`Memory`]: `rows × cols` elements with leading
/// dimension `ld` (in elements), starting at byte offset `base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    pub base: usize,
    pub rows: usize,
    pub cols: usize,
    pub ld: usize,
}

impl Region {
    /// Byte address of element `(row, col)`.
    pub fn addr(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        self.base + 4 * (row * self.ld + col)
    }

    /// Total bytes spanned by the region (without slack).
    pub fn span_bytes(&self) -> usize {
        if self.rows == 0 {
            0
        } else {
            4 * ((self.rows - 1) * self.ld + self.cols)
        }
    }

    /// Byte range `[start, end)` of the region's data (without slack).
    pub fn byte_range(&self) -> std::ops::Range<usize> {
        self.base..self.base + self.span_bytes()
    }
}

/// A flat `f32` memory, byte-addressed with 4-byte alignment.
#[derive(Debug, Clone, Default)]
pub struct Memory {
    data: Vec<f32>,
}

impl Memory {
    pub fn new() -> Self {
        Memory { data: Vec::new() }
    }

    /// Allocate a `rows × cols` region with leading dimension `ld`,
    /// followed by [`REGION_SLACK_ELEMS`] of zeroed slack.
    pub fn alloc(&mut self, rows: usize, cols: usize, ld: usize) -> Region {
        assert!(ld >= cols, "leading dimension {ld} smaller than cols {cols}");
        let base = self.data.len() * 4;
        let elems = rows.max(1).saturating_sub(1) * ld + cols.max(1) + REGION_SLACK_ELEMS;
        self.data.resize(self.data.len() + elems, 0.0);
        Region { base, rows, cols, ld }
    }

    /// Copy `src` (row-major `rows × cols`, leading dimension `src_ld`)
    /// into the region.
    pub fn fill(&mut self, region: Region, src: &[f32], src_ld: usize) {
        for r in 0..region.rows {
            for c in 0..region.cols {
                let v = src[r * src_ld + c];
                self.write_f32(region.addr(r, c), v);
            }
        }
    }

    /// Read the region back as a dense row-major `rows × cols` vector.
    pub fn extract(&self, region: Region) -> Vec<f32> {
        let mut out = Vec::with_capacity(region.rows * region.cols);
        for r in 0..region.rows {
            for c in 0..region.cols {
                out.push(self.read_f32(region.addr(r, c)));
            }
        }
        out
    }

    /// Read one `f32` at a byte address.
    pub fn read_f32(&self, addr: usize) -> f32 {
        assert_eq!(addr % 4, 0, "unaligned read at byte {addr}");
        self.data[addr / 4]
    }

    /// Write one `f32` at a byte address.
    pub fn write_f32(&mut self, addr: usize, v: f32) {
        assert_eq!(addr % 4, 0, "unaligned write at byte {addr}");
        self.data[addr / 4] = v;
    }

    /// Read `n` consecutive `f32`s starting at a byte address.
    pub fn read_vec(&self, addr: usize, n: usize) -> &[f32] {
        assert_eq!(addr % 4, 0, "unaligned vector read at byte {addr}");
        &self.data[addr / 4..addr / 4 + n]
    }

    /// Write `n` consecutive `f32`s starting at a byte address.
    pub fn write_vec(&mut self, addr: usize, src: &[f32]) {
        assert_eq!(addr % 4, 0, "unaligned vector write at byte {addr}");
        self.data[addr / 4..addr / 4 + src.len()].copy_from_slice(src);
    }

    /// Total allocated bytes.
    pub fn len_bytes(&self) -> usize {
        self.data.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_fills_and_extracts_round_trip() {
        let mut mem = Memory::new();
        let r = mem.alloc(3, 4, 6);
        let src: Vec<f32> = (0..12).map(|i| i as f32).collect();
        mem.fill(r, &src, 4);
        assert_eq!(mem.extract(r), src);
    }

    #[test]
    fn regions_do_not_overlap_and_include_slack() {
        let mut mem = Memory::new();
        let a = mem.alloc(2, 2, 2);
        let b = mem.alloc(2, 2, 2);
        assert!(a.byte_range().end + REGION_SLACK_ELEMS * 4 <= b.base + 4);
        mem.write_f32(a.addr(1, 1), 7.0);
        assert_eq!(mem.read_f32(b.addr(0, 0)), 0.0);
    }

    #[test]
    fn overread_into_slack_is_mapped() {
        let mut mem = Memory::new();
        let r = mem.alloc(4, 8, 8);
        // Two "rows" beyond the region: still mapped, reads zero.
        let beyond = r.addr(3, 7) + 4 + 8 * 4;
        assert_eq!(mem.read_f32(beyond), 0.0);
    }

    #[test]
    fn addr_respects_leading_dimension() {
        let mut mem = Memory::new();
        let r = mem.alloc(2, 3, 10);
        assert_eq!(r.addr(1, 2) - r.base, 4 * (10 + 2));
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_access_panics() {
        let mut mem = Memory::new();
        mem.alloc(1, 1, 1);
        mem.read_f32(2);
    }

    #[test]
    fn vector_ops_round_trip() {
        let mut mem = Memory::new();
        let r = mem.alloc(1, 8, 8);
        mem.write_vec(r.base, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(mem.read_vec(r.base, 4), &[1.0, 2.0, 3.0, 4.0]);
    }
}
