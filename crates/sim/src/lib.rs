//! # autogemm-sim
//!
//! Execution substrate for the autoGEMM reproduction: a functional and
//! cycle-level simulator for the virtual Arm ISA of `autogemm-arch`.
//!
//! The paper evaluates on five physical Arm machines; this crate stands in
//! for that hardware (see DESIGN.md §2). It provides:
//!
//! * [`memory`] — a flat `f32` memory with region bookkeeping that honours
//!   the generated kernels' padding contract;
//! * [`func`] — a functional interpreter: executes a generated
//!   [`autogemm_arch::Program`] with real `f32` arithmetic, giving
//!   bit-exact GEMM results used by every correctness test;
//! * [`cache`] — a multi-level, set-associative LRU cache model built from
//!   a chip's [`autogemm_arch::CacheLevelSpec`]s;
//! * [`pipeline`] — the cycle-level scheduler: per-class latencies and
//!   reciprocal throughputs (Table III), a finite out-of-order window,
//!   optional write-after-read hazards (no renaming), and cache-dependent
//!   load latencies. This is the machine model whose mechanics the paper's
//!   Figure 3 walks through;
//! * [`kernelsim`] — drivers that bind matrices, run a micro-kernel or a
//!   fused chain, and report cycles + GFLOPS;
//! * [`multicore`] — the analytic multi-core layer: per-thread makespan
//!   with memory-bandwidth contention and NUMA/CMG penalties (§V-E).

pub mod cache;
pub mod func;
pub mod kernelsim;
pub mod memory;
pub mod multicore;
pub mod pipeline;
pub mod trace;

pub use func::FuncState;
pub use kernelsim::{run_chain, run_micro_kernel, run_unfused, KernelBuffers, SimReport, Warmth};
pub use memory::{Memory, Region};
pub use multicore::{makespan, makespan_with_placement, MulticoreResult, ThreadWork};
pub use pipeline::{simulate, PipelineStats};
pub use trace::{render_timeline, trace, TraceEvent};
