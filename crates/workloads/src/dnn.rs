//! GEMM-shape extraction for the four DNNs of Fig 12.
//!
//! Convolution layers lower to GEMM by im2col: a `Cout × (Cin·kh·kw)`
//! filter matrix times a `(Cin·kh·kw) × (H'·W')` patch matrix — so
//! `M = Cout`, `K = Cin·kh·kw`, `N = H'·W'`. Fully-connected layers map
//! directly. The layer lists are the standard published architectures
//! at 224×224 input (227 for SqueezeNet), abbreviated to the distinct
//! GEMM shapes with their occurrence counts — what matters for `T_GEMM`
//! is the multiset of shapes, not the graph wiring.

use serde::{Deserialize, Serialize};

/// One GEMM invocation shape with its multiplicity within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GemmShape {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    /// How many layers in the network share this shape.
    pub count: usize,
}

impl GemmShape {
    pub fn flops_once(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    pub fn flops_total(&self) -> u64 {
        self.flops_once() * self.count as u64
    }
}

/// A convolution layer description, lowered to a GEMM shape.
#[derive(Debug, Clone, Copy)]
pub struct ConvLayer {
    pub cin: usize,
    pub cout: usize,
    pub kernel: usize,
    pub out_hw: usize,
    pub count: usize,
}

impl ConvLayer {
    /// im2col lowering: `M = Cout`, `K = Cin·k²`, `N = H'·W'`.
    ///
    /// `N` is rounded up to a multiple of 32, as inference frameworks pad
    /// the patch matrix: odd spatial sizes (`35² = 1225`, `13² = 169`, …)
    /// would otherwise admit no lane-aligned cache blocking at all.
    pub fn to_gemm(self) -> GemmShape {
        let n_raw = self.out_hw * self.out_hw;
        GemmShape {
            m: self.cout,
            n: n_raw.div_ceil(32) * 32,
            k: self.cin * self.kernel * self.kernel,
            count: self.count,
        }
    }
}

/// The four evaluated networks (Fig 12's N1..N4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DnnModel {
    ResNet50,
    InceptionV3,
    MobileNetV1,
    SqueezeNet,
}

impl DnnModel {
    pub fn name(&self) -> &'static str {
        match self {
            DnnModel::ResNet50 => "ResNet50",
            DnnModel::InceptionV3 => "Inception-V3",
            DnnModel::MobileNetV1 => "MobileNet-V1",
            DnnModel::SqueezeNet => "SqueezeNet",
        }
    }

    /// Fig 12's N1..N4 labels.
    pub fn label(&self) -> &'static str {
        match self {
            DnnModel::ResNet50 => "N1",
            DnnModel::InceptionV3 => "N2",
            DnnModel::MobileNetV1 => "N3",
            DnnModel::SqueezeNet => "N4",
        }
    }

    pub fn all() -> [DnnModel; 4] {
        [DnnModel::ResNet50, DnnModel::InceptionV3, DnnModel::MobileNetV1, DnnModel::SqueezeNet]
    }

    /// The network's CONV/FC GEMM shapes with multiplicities.
    pub fn gemm_shapes(&self) -> Vec<GemmShape> {
        match self {
            // Table V is exactly ResNet-50's distinct conv shapes; add the
            // final 1000-way FC layer.
            DnnModel::ResNet50 => {
                let mut shapes: Vec<GemmShape> = crate::shapes::resnet50_table_v()
                    .into_iter()
                    .map(|l| GemmShape {
                        m: l.m,
                        n: l.n,
                        k: l.k,
                        count: layer_multiplicity(l.layer),
                    })
                    .collect();
                shapes.push(GemmShape { m: 1000, n: 1, k: 2048, count: 1 });
                shapes
            }
            DnnModel::InceptionV3 => vec![
                ConvLayer { cin: 3, cout: 32, kernel: 3, out_hw: 149, count: 1 }.to_gemm(),
                ConvLayer { cin: 32, cout: 32, kernel: 3, out_hw: 147, count: 1 }.to_gemm(),
                ConvLayer { cin: 32, cout: 64, kernel: 3, out_hw: 147, count: 1 }.to_gemm(),
                ConvLayer { cin: 64, cout: 80, kernel: 1, out_hw: 73, count: 1 }.to_gemm(),
                ConvLayer { cin: 80, cout: 192, kernel: 3, out_hw: 71, count: 1 }.to_gemm(),
                // Inception blocks (35x35, 17x17, 8x8 grids), aggregated.
                ConvLayer { cin: 192, cout: 64, kernel: 1, out_hw: 35, count: 4 }.to_gemm(),
                ConvLayer { cin: 64, cout: 96, kernel: 3, out_hw: 35, count: 6 }.to_gemm(),
                ConvLayer { cin: 48, cout: 64, kernel: 5, out_hw: 35, count: 3 }.to_gemm(),
                ConvLayer { cin: 288, cout: 384, kernel: 3, out_hw: 17, count: 1 }.to_gemm(),
                ConvLayer { cin: 768, cout: 192, kernel: 1, out_hw: 17, count: 8 }.to_gemm(),
                ConvLayer { cin: 192, cout: 192, kernel: 7, out_hw: 17, count: 8 }.to_gemm(),
                ConvLayer { cin: 1280, cout: 320, kernel: 1, out_hw: 8, count: 2 }.to_gemm(),
                ConvLayer { cin: 1280, cout: 384, kernel: 1, out_hw: 8, count: 2 }.to_gemm(),
                ConvLayer { cin: 384, cout: 384, kernel: 3, out_hw: 8, count: 4 }.to_gemm(),
                GemmShape { m: 1000, n: 1, k: 2048, count: 1 },
            ],
            // MobileNet-V1: pointwise (1x1) convolutions dominate; the
            // depthwise stages are non-GEMM work.
            DnnModel::MobileNetV1 => vec![
                ConvLayer { cin: 3, cout: 32, kernel: 3, out_hw: 112, count: 1 }.to_gemm(),
                ConvLayer { cin: 32, cout: 64, kernel: 1, out_hw: 112, count: 1 }.to_gemm(),
                ConvLayer { cin: 64, cout: 128, kernel: 1, out_hw: 56, count: 1 }.to_gemm(),
                ConvLayer { cin: 128, cout: 128, kernel: 1, out_hw: 56, count: 1 }.to_gemm(),
                ConvLayer { cin: 128, cout: 256, kernel: 1, out_hw: 28, count: 1 }.to_gemm(),
                ConvLayer { cin: 256, cout: 256, kernel: 1, out_hw: 28, count: 1 }.to_gemm(),
                ConvLayer { cin: 256, cout: 512, kernel: 1, out_hw: 14, count: 1 }.to_gemm(),
                ConvLayer { cin: 512, cout: 512, kernel: 1, out_hw: 14, count: 5 }.to_gemm(),
                ConvLayer { cin: 512, cout: 1024, kernel: 1, out_hw: 7, count: 1 }.to_gemm(),
                ConvLayer { cin: 1024, cout: 1024, kernel: 1, out_hw: 7, count: 1 }.to_gemm(),
                GemmShape { m: 1000, n: 1, k: 1024, count: 1 },
            ],
            // SqueezeNet v1.1 fire modules: squeeze 1x1 + expand 1x1/3x3.
            DnnModel::SqueezeNet => vec![
                ConvLayer { cin: 3, cout: 64, kernel: 3, out_hw: 111, count: 1 }.to_gemm(),
                ConvLayer { cin: 64, cout: 16, kernel: 1, out_hw: 55, count: 2 }.to_gemm(),
                ConvLayer { cin: 16, cout: 64, kernel: 1, out_hw: 55, count: 4 }.to_gemm(),
                ConvLayer { cin: 16, cout: 64, kernel: 3, out_hw: 55, count: 2 }.to_gemm(),
                ConvLayer { cin: 128, cout: 32, kernel: 1, out_hw: 27, count: 2 }.to_gemm(),
                ConvLayer { cin: 32, cout: 128, kernel: 1, out_hw: 27, count: 4 }.to_gemm(),
                ConvLayer { cin: 32, cout: 128, kernel: 3, out_hw: 27, count: 2 }.to_gemm(),
                ConvLayer { cin: 256, cout: 48, kernel: 1, out_hw: 13, count: 2 }.to_gemm(),
                ConvLayer { cin: 48, cout: 192, kernel: 1, out_hw: 13, count: 4 }.to_gemm(),
                ConvLayer { cin: 48, cout: 192, kernel: 3, out_hw: 13, count: 2 }.to_gemm(),
                ConvLayer { cin: 384, cout: 64, kernel: 1, out_hw: 13, count: 2 }.to_gemm(),
                ConvLayer { cin: 64, cout: 256, kernel: 1, out_hw: 13, count: 4 }.to_gemm(),
                ConvLayer { cin: 512, cout: 1000, kernel: 1, out_hw: 13, count: 1 }.to_gemm(),
            ],
        }
    }

    /// Fraction of end-to-end time spent in non-GEMM operators under the
    /// OpenBLAS configuration (pooling, activation, normalization, and —
    /// for MobileNet — the depthwise convolutions). Calibrated to Fig 12's
    /// `T_other` bars.
    pub fn other_fraction(&self) -> f64 {
        match self {
            DnnModel::ResNet50 => 0.25,
            DnnModel::InceptionV3 => 0.30,
            DnnModel::MobileNetV1 => 0.45,
            DnnModel::SqueezeNet => 0.35,
        }
    }
}

/// How many times each Table V shape occurs in ResNet-50 (bottleneck
/// blocks repeat: conv2_x ×3, conv3_x ×4, conv4_x ×6, conv5_x ×3).
fn layer_multiplicity(layer: usize) -> usize {
    match layer {
        1 => 1,       // stem
        2..=5 => 3,   // conv2_x
        6..=10 => 4,  // conv3_x
        11..=15 => 6, // conv4_x
        16..=20 => 3, // conv5_x
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn im2col_lowering() {
        let g = ConvLayer { cin: 64, cout: 256, kernel: 1, out_hw: 56, count: 1 }.to_gemm();
        assert_eq!((g.m, g.n, g.k), (256, 3136, 64)); // Table V L4
        let g3 = ConvLayer { cin: 64, cout: 64, kernel: 3, out_hw: 56, count: 1 }.to_gemm();
        assert_eq!((g3.m, g3.n, g3.k), (64, 3136, 576)); // Table V L3
    }

    #[test]
    fn resnet_flops_are_in_the_8gflop_ballpark() {
        // ResNet-50 ≈ 4.1 GMACs ≈ 8.2 GFLOPs at 2 flops/MAC; the Table V
        // multiset (which treats each stage's blocks as identical) lands a
        // little above that.
        let total: u64 = DnnModel::ResNet50.gemm_shapes().iter().map(|s| s.flops_total()).sum();
        let gflops = total as f64 / 1e9;
        assert!((6.0..13.0).contains(&gflops), "ResNet-50 GEMM flops {gflops:.2} GF out of range");
    }

    #[test]
    fn all_models_have_shapes_and_positive_other_fraction() {
        for m in DnnModel::all() {
            let shapes = m.gemm_shapes();
            assert!(shapes.len() >= 10, "{} too few shapes", m.name());
            assert!(shapes.iter().all(|s| s.m > 0 && s.n > 0 && s.k > 0 && s.count > 0));
            assert!((0.0..1.0).contains(&m.other_fraction()));
        }
    }

    #[test]
    fn mobilenet_is_dominated_by_pointwise_convs() {
        let shapes = DnnModel::MobileNetV1.gemm_shapes();
        let pointwise = shapes.iter().filter(|s| !s.k.is_multiple_of(9)).count();
        assert!(pointwise > shapes.len() / 2);
    }

    #[test]
    fn labels_match_fig12() {
        assert_eq!(DnnModel::ResNet50.label(), "N1");
        assert_eq!(DnnModel::SqueezeNet.label(), "N4");
    }
}
