//! A minimal TNN-like inference runner (Fig 12).
//!
//! The paper integrates autoGEMM into Tencent's TNN by replacing only the
//! GEMM routine behind CONV/FC operators; everything else (`T_other`) is
//! untouched and identical across configurations. This module mirrors that
//! experiment: a model is a multiset of GEMM shapes plus a fixed
//! non-GEMM cost; the GEMM backend is pluggable.

use crate::dnn::DnnModel;
use autogemm_arch::ChipSpec;

/// A pluggable GEMM timing backend: returns seconds for one `M×N×K` GEMM
/// on `threads` threads of `chip`.
pub trait GemmBackend {
    fn name(&self) -> &str;
    fn gemm_seconds(
        &self,
        m: usize,
        n: usize,
        k: usize,
        chip: &ChipSpec,
        threads: usize,
    ) -> Option<f64>;
}

/// autoGEMM as a backend (simulated on the modelled chip).
pub struct AutoGemmBackend {
    engine: autogemm::AutoGemm,
}

impl AutoGemmBackend {
    pub fn new(chip: ChipSpec) -> Self {
        AutoGemmBackend { engine: autogemm::AutoGemm::new(chip) }
    }
}

impl GemmBackend for AutoGemmBackend {
    fn name(&self) -> &str {
        "autoGEMM"
    }

    fn gemm_seconds(
        &self,
        m: usize,
        n: usize,
        k: usize,
        chip: &ChipSpec,
        threads: usize,
    ) -> Option<f64> {
        debug_assert_eq!(chip.id, self.engine.chip().id);
        Some(self.engine.simulate(m, n, k, threads).seconds)
    }
}

/// A comparison library as a backend.
pub struct BaselineBackend {
    pub baseline: autogemm_baselines::Baseline,
}

impl GemmBackend for BaselineBackend {
    fn name(&self) -> &str {
        self.baseline.name()
    }

    fn gemm_seconds(
        &self,
        m: usize,
        n: usize,
        k: usize,
        chip: &ChipSpec,
        threads: usize,
    ) -> Option<f64> {
        autogemm_baselines::simulate_baseline(self.baseline, m, n, k, chip, threads)
            .map(|r| r.seconds)
    }
}

/// End-to-end timing decomposition (the Fig 12 bars).
#[derive(Debug, Clone, Copy)]
pub struct ModelTiming {
    pub t_gemm: f64,
    pub t_other: f64,
}

impl ModelTiming {
    pub fn total(&self) -> f64 {
        self.t_gemm + self.t_other
    }
}

/// Run a model end-to-end on a backend. `T_other` is derived from the
/// model's OpenBLAS-relative non-GEMM fraction and a fixed reference GEMM
/// time, so it is identical across backends — exactly the Fig 12 setup.
///
/// Returns `None` if the backend cannot execute one of the model's shapes.
pub fn run_model(
    model: DnnModel,
    backend: &dyn GemmBackend,
    reference_gemm_seconds: f64,
    chip: &ChipSpec,
    threads: usize,
) -> Option<ModelTiming> {
    let mut t_gemm = 0.0;
    for shape in model.gemm_shapes() {
        let t = backend.gemm_seconds(shape.m, shape.n, shape.k, chip, threads)?;
        t_gemm += t * shape.count as f64;
    }
    // T_other: fixed, derived once from the reference (OpenBLAS) GEMM time.
    let f = model.other_fraction();
    let t_other = reference_gemm_seconds * f / (1.0 - f);
    Some(ModelTiming { t_gemm, t_other })
}

/// Compute the reference GEMM time of a model under a given backend
/// (used with OpenBLAS to anchor `T_other`).
pub fn reference_gemm_seconds(
    model: DnnModel,
    backend: &dyn GemmBackend,
    chip: &ChipSpec,
    threads: usize,
) -> Option<f64> {
    let mut t = 0.0;
    for shape in model.gemm_shapes() {
        t += backend.gemm_seconds(shape.m, shape.n, shape.k, chip, threads)? * shape.count as f64;
    }
    Some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn autogemm_beats_openblas_end_to_end() {
        // Fig 12: replacing OpenBLAS with autoGEMM shrinks T_GEMM while
        // T_other stays identical; KP920 speedup ≈ 1.30x end-to-end.
        let chip = ChipSpec::graviton2();
        let ob = BaselineBackend { baseline: autogemm_baselines::Baseline::OpenBlas };
        let auto = AutoGemmBackend::new(chip.clone());
        let model = DnnModel::SqueezeNet;
        let threads = 4;
        let reference = reference_gemm_seconds(model, &ob, &chip, threads).unwrap();
        let t_ob = run_model(model, &ob, reference, &chip, threads).unwrap();
        let t_auto = run_model(model, &auto, reference, &chip, threads).unwrap();
        assert!((t_ob.t_other - t_auto.t_other).abs() < 1e-12, "T_other must be identical");
        assert!(t_auto.t_gemm < t_ob.t_gemm);
        let speedup = t_ob.total() / t_auto.total();
        assert!(
            speedup > 1.05 && speedup < 3.0,
            "end-to-end speedup {speedup:.2} out of plausible range"
        );
    }

    #[test]
    fn timing_totals_add_up() {
        let t = ModelTiming { t_gemm: 2.0, t_other: 1.0 };
        assert_eq!(t.total(), 3.0);
    }
}
