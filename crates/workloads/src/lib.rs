//! # autogemm-workloads
//!
//! The evaluation workloads of the paper's §V:
//!
//! * [`shapes`] — the small-matrix sweep of Fig 8 and the 20 ResNet-50
//!   irregular GEMM shapes of Table V;
//! * [`dnn`] — GEMM-shape extraction for the four end-to-end networks of
//!   Fig 12 (ResNet-50, Inception-V3, MobileNet-V1, SqueezeNet), lowering
//!   CONV layers to im2col GEMMs and FC layers to plain GEMMs;
//! * [`tnn`] — a minimal TNN-like inference runner: a layer graph whose
//!   CONV/FC layers dispatch to a pluggable GEMM backend while non-GEMM
//!   layers carry a fixed cost, reproducing the `T_GEMM` vs `T_other`
//!   decomposition of Fig 12.

pub mod dnn;
pub mod shapes;
pub mod tnn;

pub use dnn::{DnnModel, GemmShape};
pub use shapes::{gemmtrace_sweep, resnet50_table_v, small_sweep, ResnetLayer};
pub use tnn::{run_model, GemmBackend, ModelTiming};
