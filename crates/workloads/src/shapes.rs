//! Matrix-shape workloads: the Fig 8 small-matrix sweep and the Table V
//! ResNet-50 irregular shapes.

use serde::{Deserialize, Serialize};

/// One irregular GEMM shape from Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResnetLayer {
    /// Layer label (1..=20, printed as "L1".."L20").
    pub layer: usize,
    pub m: usize,
    pub n: usize,
    pub k: usize,
}

impl ResnetLayer {
    pub fn name(&self) -> String {
        format!("L{}", self.layer)
    }

    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }
}

/// The 20 ResNet-50 GEMM shapes of Table V, in layer order.
pub fn resnet50_table_v() -> Vec<ResnetLayer> {
    let rows = [
        (1, 64, 12544, 147),
        (2, 64, 3136, 64),
        (3, 64, 3136, 576),
        (4, 256, 3136, 64),
        (5, 64, 3136, 256),
        (6, 128, 784, 256),
        (7, 128, 784, 1152),
        (8, 512, 784, 128),
        (9, 512, 784, 256),
        (10, 128, 784, 512),
        (11, 256, 196, 512),
        (12, 256, 196, 2304),
        (13, 1024, 196, 256),
        (14, 1024, 196, 512),
        (15, 256, 196, 1024),
        (16, 512, 49, 1024),
        (17, 512, 49, 4608),
        (18, 2048, 49, 512),
        (19, 2048, 49, 1024),
        (20, 512, 49, 2048),
    ];
    rows.into_iter().map(|(layer, m, n, k)| ResnetLayer { layer, m, n, k }).collect()
}

/// The square sizes evaluated in the Fig 8 small-matrix sweep
/// (`M = N = K`, from tiny to 128).
pub fn small_sweep() -> Vec<usize> {
    vec![4, 8, 12, 16, 24, 32, 48, 64, 80, 96, 112, 128]
}

/// The four layers Fig 10's roofline places alongside the small cubes.
pub fn roofline_layers() -> Vec<ResnetLayer> {
    resnet50_table_v().into_iter().filter(|l| [4, 8, 10, 16].contains(&l.layer)).collect()
}

/// The `gemmtrace` telemetry sweep: named `(m, n, k)` shapes spanning
/// every irregularity class — square cubes from the Fig 8 sweep plus a
/// Table V layer per class (long-rectangular, tall-skinny, regular and
/// the large-K L17 the multi-core analysis in §V-C singles out). Small
/// enough for a smoke run, shaped enough that the per-shape
/// measured-vs-model cycle ratio has something to disagree about.
pub fn gemmtrace_sweep() -> Vec<(String, usize, usize, usize)> {
    let mut shapes: Vec<(String, usize, usize, usize)> =
        [16usize, 64, 128].iter().map(|&s| (format!("cube{s}"), s, s, s)).collect();
    for l in resnet50_table_v() {
        if [2usize, 11, 17, 18].contains(&l.layer) {
            shapes.push((l.name(), l.m, l.n, l.k));
        }
    }
    shapes
}

/// Classification of an irregular shape, following §II-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeClass {
    /// All dimensions ≤ 80 (paper's small-matrix bound, after LIBXSMM).
    Small,
    /// One dimension much larger than the others, output tall: `N ≫ M, K`.
    LongRectangular,
    /// `M ≫ N` or deep reduction: tall-skinny output.
    TallSkinny,
    Regular,
}

/// Classify a GEMM shape.
pub fn classify(m: usize, n: usize, k: usize) -> ShapeClass {
    let max = m.max(n).max(k);
    if max <= 80 {
        return ShapeClass::Small;
    }
    let ratio_n = n as f64 / m.min(k) as f64;
    let ratio_m = m as f64 / n.min(k) as f64;
    if ratio_n >= 4.0 {
        ShapeClass::LongRectangular
    } else if ratio_m >= 4.0 {
        ShapeClass::TallSkinny
    } else {
        ShapeClass::Regular
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_has_20_layers_with_paper_values() {
        let t = resnet50_table_v();
        assert_eq!(t.len(), 20);
        assert_eq!((t[0].m, t[0].n, t[0].k), (64, 12544, 147));
        assert_eq!((t[6].m, t[6].n, t[6].k), (128, 784, 1152));
        assert_eq!((t[19].m, t[19].n, t[19].k), (512, 49, 2048));
        // Layers are labelled 1..=20 in order.
        for (i, l) in t.iter().enumerate() {
            assert_eq!(l.layer, i + 1);
        }
    }

    #[test]
    fn large_k_layers_include_l7_l12_l17_l20() {
        // §V-C: multi-core performance dips on the large-K layers the
        // paper names (L7, L12, L17, L20).
        let t = resnet50_table_v();
        for l in [7usize, 12, 17, 20] {
            assert!(t[l - 1].k >= 1024, "L{l} should have large K");
        }
    }

    #[test]
    fn shape_classes() {
        assert_eq!(classify(64, 64, 64), ShapeClass::Small);
        assert_eq!(classify(64, 12544, 147), ShapeClass::LongRectangular);
        assert_eq!(classify(2048, 49, 512), ShapeClass::TallSkinny);
        assert_eq!(classify(256, 256, 256), ShapeClass::Regular);
    }

    #[test]
    fn sweep_is_ascending_and_capped_at_128() {
        let s = small_sweep();
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*s.last().unwrap(), 128);
        assert!(s.contains(&64));
    }

    #[test]
    fn gemmtrace_sweep_covers_every_shape_class() {
        let sweep = gemmtrace_sweep();
        assert!(sweep.len() >= 6, "sweep too thin: {sweep:?}");
        let classes: Vec<ShapeClass> =
            sweep.iter().map(|&(_, m, n, k)| classify(m, n, k)).collect();
        for want in [
            ShapeClass::Small,
            ShapeClass::LongRectangular,
            ShapeClass::TallSkinny,
            ShapeClass::Regular,
        ] {
            assert!(classes.contains(&want), "sweep misses {want:?}");
        }
        // Names are unique (they key the JSON artifact's entries).
        let mut names: Vec<&str> = sweep.iter().map(|(n, ..)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), sweep.len());
    }

    #[test]
    fn roofline_layers_are_l4_l8_l10_l16() {
        let layers: Vec<usize> = roofline_layers().iter().map(|l| l.layer).collect();
        assert_eq!(layers, vec![4, 8, 10, 16]);
    }
}
