//! Packing-elision heuristic for the input-aware dispatch layer.
//!
//! The GotoBLAS pipeline the paper builds on packs both operands
//! unconditionally, which taxes exactly the irregular Table V shapes the
//! paper targets: a pack is one strided read plus one contiguous write of
//! the whole operand (`pack_traffic_bytes`), and it only pays for itself
//! when the packed panel is then *re-streamed* by the kernel loop.
//!
//! Panel reuse is fully determined by the cache-block grid:
//!
//! * each A panel `(bi, kb)` is streamed once per column-block trip —
//!   reuse = `tn`;
//! * each B panel `(kb, bj)` is streamed once per row-block trip —
//!   reuse = `tm`.
//!
//! With reuse 1 the kernel reads the operand exactly once either way, so
//! the packed copy is strictly extra traffic (the pack pass itself pays
//! the very strided read it is meant to avoid). With reuse ≥ 2 the pack
//! cost amortizes over `reuse − 1` saved strided passes and the
//! historical behaviour is kept. The tall-skinny ResNet layers (L16–L20,
//! `n = 49`) land on `tn = 1` and skip the A pack of their dominant
//! operand entirely.
//!
//! Reuse is not the whole story for B, though: the vector kernels read B
//! in σ_lane-wide column vectors, and a packed B panel is *padded* to a
//! lane multiple, which is what keeps the lane-rounded rightmost tiles
//! full-tile safe. Streaming B unpacked when `n` is not a lane multiple
//! reroutes every overhanging right-edge tile to the bounds-exact scalar
//! edge kernel — measured at ~2× whole-GEMM cost on the `n = 49` ResNet
//! layers, far more than the pack copy ever costs. So the B pack is
//! elided only when its panels are single-use *and* `n` is a lane
//! multiple. A is read as scalar broadcasts by every kernel, packed or
//! not, so A elision carries no such penalty.

/// The elision decision for one GEMM, with the inputs that produced it
/// (surfaced so telemetry and docs can explain the routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackRouting {
    /// Pack A into panels (`false` = stream A strided from row-major).
    pub pack_a: bool,
    /// Pack B into panels.
    pub pack_b: bool,
    /// Times each A panel is streamed by the kernel loop (= `tn`).
    pub a_reuse: usize,
    /// Times each B panel is streamed by the kernel loop (= `tm`).
    pub b_reuse: usize,
    /// Projected traffic of packing all of A: one read + one write of
    /// `m·k` f32 elements.
    pub a_pack_bytes: u64,
    /// Projected traffic of packing all of B.
    pub b_pack_bytes: u64,
}

/// The SIMD lane width the generated kernels are built on (σ_lane = 4
/// f32 lanes on every backend: NEON, SSE2/FMA and the portable
/// fallback). B panels are padded to this width when packed.
pub const SIGMA_LANE: usize = 4;

/// Decide packed/unpacked routing per operand from the problem shape and
/// the tuned cache-block grid `(tm, tn)` (trip counts along M and N).
///
/// `pack_a` follows reuse alone; `pack_b` additionally keeps the pack
/// whenever `n` is not a lane multiple, because only the padded panel
/// keeps the lane-rounded right-edge tiles on the vector kernels (see
/// the module docs for the measured penalty).
pub fn route_packing(m: usize, n: usize, k: usize, tm: usize, tn: usize) -> PackRouting {
    PackRouting {
        pack_a: tn >= 2,
        pack_b: tm >= 2 || !n.is_multiple_of(SIGMA_LANE),
        a_reuse: tn,
        b_reuse: tm,
        a_pack_bytes: 2 * 4 * (m as u64) * (k as u64),
        b_pack_bytes: 2 * 4 * (k as u64) * (n as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_grids_elide_both_packs() {
        // n = 44 is a lane multiple, so nothing forces the B pack.
        let r = route_packing(31, 44, 29, 1, 1);
        assert!(!r.pack_a && !r.pack_b);
        assert_eq!((r.a_reuse, r.b_reuse), (1, 1));
        assert_eq!(r.a_pack_bytes, 2 * 4 * 31 * 29);
        assert_eq!(r.b_pack_bytes, 2 * 4 * 29 * 44);
    }

    #[test]
    fn lane_tail_forces_the_b_pack() {
        // L20-like: n = 49 leaves a lane tail, so streaming B unpacked
        // would push the right-edge tiles onto the scalar edge kernel —
        // the pack stays even though the panels are single-use. A has no
        // lane constraint and still elides.
        let r = route_packing(64, 49, 64, 1, 1);
        assert!(!r.pack_a, "single-use A panels elide regardless of n");
        assert!(r.pack_b, "a lane-tail n must keep the padded B pack");
    }

    #[test]
    fn reused_panels_keep_packing() {
        let r = route_packing(256, 256, 256, 4, 4);
        assert!(r.pack_a && r.pack_b);
    }

    #[test]
    fn tall_skinny_elides_the_dominant_a_operand() {
        // L18-like: 2048×49×512 — n fits one column block, so every A
        // panel is single-use and the 4 MiB A pack is pure overhead.
        let r = route_packing(2048, 49, 512, 16, 1);
        assert!(!r.pack_a, "single-use A panels must not be packed");
        assert!(r.pack_b, "B panels reused 16× keep the pack");
    }

    #[test]
    fn long_rectangular_elides_b_when_m_fits_one_block() {
        let r = route_packing(64, 3136, 64, 1, 8);
        assert!(r.pack_a);
        assert!(!r.pack_b);
    }
}
