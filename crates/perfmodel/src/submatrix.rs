//! Cache-block runtime estimation — Eqn 13 and the `T(m, n)` helper of
//! Algorithm 1.
//!
//! Given a rectangular region of the output panel and a micro-tile shape,
//! [`region_cycles`] projects the cycles to cover it, charging full-price
//! micro-kernels for the interior and smaller corner kernels for the
//! remainders. This is the quantity the DMT dynamic program minimizes and
//! the cost model TVM-style tuning uses to prune cache-block candidates
//! (§IV-B).

use crate::micro::{effective_cycles, projected_cycles, ModelOpts};
use autogemm_arch::ChipSpec;
use autogemm_kernelgen::MicroTile;

/// Projected cycles to cover an `m × n` output region with micro-tiles of
/// shape `tile` at reduction depth `kc` (the `T(m, n)` of Algorithm 1,
/// extended to charge remainder rows/columns at their actual smaller tile
/// sizes rather than assuming exact divisibility).
///
/// Remainder columns are rounded up to the lane width (`n_r` must stay a
/// lane multiple); remainder rows use an `m_rem × n_r` kernel.
pub fn region_cycles(
    m: usize,
    n: usize,
    tile: MicroTile,
    kc: usize,
    chip: &ChipSpec,
    opts: ModelOpts,
) -> f64 {
    region_cycles_with(m, n, tile, kc, chip, opts, projected_cycles)
}

/// [`region_cycles`] with the `σ_AI` derating applied per kernel — the
/// cost DMT and the tuner minimize.
pub fn region_cycles_derated(
    m: usize,
    n: usize,
    tile: MicroTile,
    kc: usize,
    chip: &ChipSpec,
    opts: ModelOpts,
) -> f64 {
    region_cycles_with(m, n, tile, kc, chip, opts, effective_cycles)
}

fn region_cycles_with(
    m: usize,
    n: usize,
    tile: MicroTile,
    kc: usize,
    chip: &ChipSpec,
    opts: ModelOpts,
    cost: fn(MicroTile, usize, &ChipSpec, ModelOpts) -> f64,
) -> f64 {
    if m == 0 || n == 0 || kc == 0 {
        return 0.0;
    }
    let sigma = chip.sigma_lane();
    let full_rows = m / tile.mr;
    let rem_rows = m % tile.mr;
    let full_cols = n / tile.nr;
    let rem_cols_elems = n % tile.nr;
    // Remainder columns padded up to a lane multiple (the kernels' n_r must
    // divide σ_lane; padding work is wasted but charged).
    let rem_nr = rem_cols_elems.div_ceil(sigma) * sigma;

    let mut total = 0.0;
    let t_full = cost(tile, kc, chip, opts);
    total += (full_rows * full_cols) as f64 * t_full;
    if rem_cols_elems > 0 {
        let t = cost(MicroTile::new(tile.mr, rem_nr), kc, chip, opts);
        total += full_rows as f64 * t;
    }
    if rem_rows > 0 {
        let t = cost(MicroTile::new(rem_rows, tile.nr), kc, chip, opts);
        total += full_cols as f64 * t;
    }
    if rem_rows > 0 && rem_cols_elems > 0 {
        total += cost(MicroTile::new(rem_rows, rem_nr), kc, chip, opts);
    }
    total
}

/// Eqn 13: total projected cycles of a DMT-split sub-matrix
/// `C(m_c, n_c)`, given the four quadrant extents and the tile chosen for
/// each quadrant.
#[allow(clippy::too_many_arguments)]
pub fn dmt_split_cycles(
    n_front: usize,
    n_back: usize,
    m_front_up: usize,
    m_front_down: usize,
    m_back_up: usize,
    m_back_down: usize,
    tiles: [MicroTile; 4],
    kc: usize,
    chip: &ChipSpec,
    opts: ModelOpts,
) -> f64 {
    region_cycles(m_front_up, n_front, tiles[0], kc, chip, opts)
        + region_cycles(m_front_down, n_front, tiles[1], kc, chip, opts)
        + region_cycles(m_back_up, n_back, tiles[2], kc, chip, opts)
        + region_cycles(m_back_down, n_back, tiles[3], kc, chip, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_cover_charges_full_tiles_only() {
        let chip = ChipSpec::idealized();
        let tile = MicroTile::new(5, 16);
        let t1 = projected_cycles(tile, 32, &chip, ModelOpts::default());
        let region = region_cycles(10, 32, tile, 32, &chip, ModelOpts::default());
        assert!((region - 4.0 * t1).abs() < 1e-9);
    }

    #[test]
    fn remainders_cost_extra_but_less_than_full_tiles() {
        let chip = ChipSpec::idealized();
        let tile = MicroTile::new(5, 16);
        let exact = region_cycles(10, 32, tile, 32, &chip, ModelOpts::default());
        let ragged = region_cycles(11, 36, tile, 32, &chip, ModelOpts::default());
        assert!(ragged > exact);
        // Bounded by the fully padded cover (12 rows of 48 cols = 3x3 full tiles... 15x48).
        let padded = region_cycles(15, 48, tile, 32, &chip, ModelOpts::default());
        assert!(ragged < padded);
    }

    #[test]
    fn empty_regions_cost_nothing() {
        let chip = ChipSpec::idealized();
        let tile = MicroTile::new(5, 16);
        assert_eq!(region_cycles(0, 32, tile, 32, &chip, ModelOpts::default()), 0.0);
        assert_eq!(region_cycles(5, 0, tile, 32, &chip, ModelOpts::default()), 0.0);
        assert_eq!(region_cycles(5, 32, tile, 0, &chip, ModelOpts::default()), 0.0);
    }

    #[test]
    fn dmt_split_sums_quadrants() {
        let chip = ChipSpec::idealized();
        let t = MicroTile::new(5, 16);
        let whole = dmt_split_cycles(16, 16, 10, 0, 10, 0, [t; 4], 32, &chip, ModelOpts::default());
        let by_hand = region_cycles(10, 16, t, 32, &chip, ModelOpts::default()) * 2.0;
        assert!((whole - by_hand).abs() < 1e-9);
    }

    #[test]
    fn cycles_scale_roughly_linearly_with_area_for_exact_covers() {
        let chip = ChipSpec::graviton2();
        let tile = MicroTile::new(8, 8);
        let one = region_cycles(8, 8, tile, 64, &chip, ModelOpts::default());
        let four = region_cycles(16, 16, tile, 64, &chip, ModelOpts::default());
        assert!((four / one - 4.0).abs() < 1e-9);
    }
}
