//! The roofline model of §V-D (after Williams et al.).
//!
//! Attainable performance is `min(peak, AI · BW)` where AI is the
//! operational intensity in flop/byte of DRAM (or last-level-cache)
//! traffic. Fig 10 places the small-GEMM cases (8..64 cubed) and four
//! ResNet-50 layers on the rooflines of KP920, Graviton2 and M2, for
//! single-core and all-core configurations.

use autogemm_arch::ChipSpec;

/// A roofline: compute ceiling and one or more bandwidth slopes.
#[derive(Debug, Clone)]
pub struct Roofline {
    /// Peak GFLOP/s of the configuration (single core or whole chip).
    pub peak_gflops: f64,
    /// DRAM bandwidth in GB/s available to the configuration.
    pub dram_bw_gbs: f64,
    /// Optional last-level-cache bandwidth ceiling in GB/s.
    pub llc_bw_gbs: Option<f64>,
}

impl Roofline {
    /// Single-core roofline of a chip. A single core cannot typically
    /// saturate the socket's memory controllers; we cap its DRAM bandwidth
    /// at an even share plus headroom (×2, clamped to the socket total).
    pub fn single_core(chip: &ChipSpec) -> Roofline {
        let total = chip.numa.total_bw_gbs();
        let share = (total / chip.cores as f64 * 2.0).min(total);
        Roofline {
            peak_gflops: chip.peak_gflops_core(),
            dram_bw_gbs: share,
            llc_bw_gbs: Some(share * 4.0),
        }
    }

    /// All-cores roofline of a chip.
    pub fn multi_core(chip: &ChipSpec) -> Roofline {
        let total = chip.numa.total_bw_gbs();
        Roofline {
            peak_gflops: chip.peak_gflops(),
            dram_bw_gbs: total,
            llc_bw_gbs: Some(total * 4.0),
        }
    }

    /// Attainable GFLOP/s at operational intensity `ai` (flop per DRAM
    /// byte): `min(peak, ai · BW)`.
    pub fn attainable(&self, ai: f64) -> f64 {
        self.peak_gflops.min(ai * self.dram_bw_gbs)
    }

    /// The ridge point: the AI at which the configuration turns
    /// compute-bound.
    pub fn ridge_ai(&self) -> f64 {
        self.peak_gflops / self.dram_bw_gbs
    }
}

/// Operational intensity of a full GEMM in flop per byte, assuming each
/// operand is streamed from memory once: `2MNK / 4(MN + MK + KN)`.
pub fn gemm_operational_intensity(m: usize, n: usize, k: usize) -> f64 {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    let bytes = 4.0 * (m * n + m * k + k * n) as f64;
    flops / bytes
}

/// Attainable GFLOP/s for a GEMM shape on a roofline.
pub fn attainable_gflops(roof: &Roofline, m: usize, n: usize, k: usize) -> f64 {
    roof.attainable(gemm_operational_intensity(m, n, k))
}

/// Machine balance in flop/byte: the AI a kernel needs to be compute-bound
/// on the whole chip.
pub fn machine_balance(chip: &ChipSpec) -> f64 {
    chip.peak_gflops() / chip.numa.total_bw_gbs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_grows_with_cube_size() {
        let mut prev = 0.0;
        for s in [8usize, 16, 32, 64, 128] {
            let ai = gemm_operational_intensity(s, s, s);
            assert!(ai > prev);
            prev = ai;
        }
        // Square GEMM: AI = 2s^3 / 12s^2 = s/6 flop/byte.
        assert!((gemm_operational_intensity(60, 60, 60) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn small_cubes_are_memory_bound_big_cubes_compute_bound() {
        let chip = ChipSpec::kp920();
        let roof = Roofline::multi_core(&chip);
        assert!(attainable_gflops(&roof, 8, 8, 8) < roof.peak_gflops);
        assert!((attainable_gflops(&roof, 512, 512, 512) - roof.peak_gflops).abs() < 1e-9);
    }

    #[test]
    fn resnet_layers_sit_in_compute_bound_region_single_core() {
        // §V-D: "The shape extracted from Resnet50 has larger arithmetic
        // intensity than small matrices and is typically compute bound."
        let chip = ChipSpec::graviton2();
        let roof = Roofline::single_core(&chip);
        for (m, n, k) in [(256, 3136, 64), (512, 784, 128), (128, 784, 512), (512, 49, 1024)] {
            let ai = gemm_operational_intensity(m, n, k);
            assert!(
                ai > roof.ridge_ai(),
                "L({m},{n},{k}) AI {ai:.1} below ridge {:.1}",
                roof.ridge_ai()
            );
        }
    }

    #[test]
    fn multi_core_ridge_is_to_the_right_of_single_core() {
        for chip in ChipSpec::all_evaluated() {
            let single = Roofline::single_core(&chip);
            let multi = Roofline::multi_core(&chip);
            assert!(
                multi.ridge_ai() >= single.ridge_ai(),
                "{}: multi ridge should need more AI",
                chip.name
            );
        }
    }

    #[test]
    fn attainable_is_monotone_in_ai() {
        let roof = Roofline::multi_core(&ChipSpec::m2());
        let mut prev = 0.0;
        for ai in [0.1, 1.0, 5.0, 20.0, 100.0] {
            let g = roof.attainable(ai);
            assert!(g >= prev);
            prev = g;
        }
    }
}
