//! The micro-kernel cycle model: Eqns 4–11 of the paper.
//!
//! All quantities are in cycles of the target chip. The paper writes
//! `IPC_*` for what is operationally a reciprocal throughput multiplier
//! (cycles per instruction); we read those values from
//! [`ChipSpec::rt_fma`] / [`ChipSpec::rt_load`] / [`ChipSpec::rt_store`],
//! and `L_*` from the latency fields (`L_load` is the L1 hit latency, the
//! model's resident-data assumption).

use autogemm_arch::ChipSpec;
use autogemm_kernelgen::{BoundClass, MicroTile};

/// Model switches mirroring the generator's pipeline options plus fusion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModelOpts {
    /// Rotating register allocation (§III-C1): Eqn 9 (compute-bound) or
    /// Eqn 10 (memory-bound) replaces the basic main-loop term.
    pub rotate: bool,
    /// Epilogue fused with the following prologue (§III-C2, Eqn 11):
    /// drops `T_launch` and overlaps the boundary loads/stores.
    pub fused: bool,
}

/// Which phase of Eqn 4 a cycle count belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    Launch,
    Prologue,
    Mainloop,
    Epilogue,
}

/// Per-phase breakdown of the projected runtime (Eqn 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseBreakdown {
    pub launch: f64,
    pub prologue: f64,
    pub mainloop: f64,
    pub epilogue: f64,
}

impl PhaseBreakdown {
    pub fn total(&self) -> f64 {
        self.launch + self.prologue + self.mainloop + self.epilogue
    }

    pub fn phase(&self, p: Phase) -> f64 {
        match p {
            Phase::Launch => self.launch,
            Phase::Prologue => self.prologue,
            Phase::Mainloop => self.mainloop,
            Phase::Epilogue => self.epilogue,
        }
    }
}

/// `T_prologue` (Eqn 5): C-panel, first A column and first B row loads plus
/// one load latency to drain.
fn t_prologue(tile: MicroTile, chip: &ChipSpec) -> f64 {
    let nrv = tile.nr_vec(chip.sigma_lane()) as f64;
    let mr = tile.mr as f64;
    (mr * nrv + mr + nrv) * chip.rt_load as f64 + chip.lat_load_l1() as f64
}

/// `T_mainloop` for a compute-bound tile: basic Eqn 6 or rotated Eqn 9.
fn t_mainloop_compute(tile: MicroTile, kc: usize, chip: &ChipSpec, rotate: bool) -> f64 {
    let sigma = chip.sigma_lane();
    let nrv = tile.nr_vec(sigma) as f64;
    let mr = tile.mr as f64;
    let kv = (kc / sigma) as f64; // ⌊k̄_c⌋
    let fma = mr * nrv * chip.rt_fma as f64 * (kv * sigma as f64);
    let boundary = mr * chip.rt_load as f64 + chip.lat_load_l1() as f64;
    if rotate {
        // Eqn 9: the A-load bubble survives only every other iteration.
        fma + (kv / 2.0).ceil() * boundary
    } else {
        // Eqn 6.
        fma + kv * boundary
    }
}

/// `T_mainloop` for a memory-bound tile: basic Eqn 8 or rotated Eqn 10.
fn t_mainloop_memory(tile: MicroTile, kc: usize, chip: &ChipSpec, rotate: bool) -> f64 {
    let sigma = chip.sigma_lane();
    let nrv = tile.nr_vec(sigma) as f64;
    let mr = tile.mr as f64;
    let kv = (kc / sigma) as f64;
    if rotate {
        // Eqn 10: B loads fully overlap; only the boundary A loads remain.
        mr * nrv * chip.rt_fma as f64 * (kv * sigma as f64)
            + kv * (mr * chip.rt_load as f64 + chip.lat_load_l1() as f64)
    } else {
        // Eqn 8: the FMA→LOAD→FMA dependency leaves a bubble per lane.
        mr * chip.rt_load as f64 * kv * sigma as f64
            + chip.lat_load_l1() as f64 * kv * (sigma as f64 + 1.0)
    }
}

/// `T_epilogue` (Eqn 7): remainder-lane FMAs, the final FMA latency, and
/// the C-panel stores.
fn t_epilogue(tile: MicroTile, kc: usize, chip: &ChipSpec) -> f64 {
    let sigma = chip.sigma_lane();
    let nrv = tile.nr_vec(sigma) as f64;
    let mr = tile.mr as f64;
    let rem = (kc % sigma) as f64;
    mr * nrv * chip.rt_fma as f64 * rem + chip.lat_fma as f64 + mr * nrv * chip.rt_store as f64
}

/// Fused epilogue+prologue (Eqn 11, `c_to_c` flavour): the remainder FMAs
/// plus the next kernel's C-panel and A loads, with stores hidden under
/// them.
fn t_fused_junction(tile: MicroTile, kc: usize, chip: &ChipSpec) -> f64 {
    let sigma = chip.sigma_lane();
    let nrv = tile.nr_vec(sigma) as f64;
    let mr = tile.mr as f64;
    let rem = (kc % sigma) as f64;
    mr * nrv * chip.rt_fma as f64 * rem
        + (mr * nrv + mr) * chip.rt_load as f64
        + chip.lat_load_l1() as f64
}

/// Project the runtime of one micro-kernel invocation (Eqn 4), split by
/// phase. With `opts.fused`, the launch phase is dropped and the
/// prologue/epilogue pair is replaced by the Eqn 11 junction cost (the
/// steady-state cost of one kernel inside a fused chain).
pub fn projected_phases(
    tile: MicroTile,
    kc: usize,
    chip: &ChipSpec,
    opts: ModelOpts,
) -> PhaseBreakdown {
    let class = BoundClass::classify(tile, chip);
    // FMA-throughput floor: no main loop can beat issuing every FMA.
    let sigma = chip.sigma_lane();
    let kv = (kc / sigma) as f64;
    let fma_floor = (tile.mr * tile.nr_vec(sigma)) as f64 * chip.rt_fma as f64 * kv * sigma as f64;
    let basic = match class {
        BoundClass::Compute => t_mainloop_compute(tile, kc, chip, false),
        BoundClass::Memory => t_mainloop_memory(tile, kc, chip, false),
    }
    .max(fma_floor);
    let mainloop = if opts.rotate {
        // The library only applies rotation where the model predicts a win
        // (the tuner keeps the basic schedule otherwise) — and rotation is
        // only as effective as the spare registers allow: a compute-bound
        // tile double-buffers `min(spare, m_r)` of its `m_r` A rows
        // (§III-C1: 3 registers for 5×16), and a memory-bound tile needs a
        // full second B bank (`n̄_r` spares). Without renaming
        // (`war_hazard` chips) an under-provisioned tile keeps its
        // boundary stalls, which is exactly why DMT avoids shapes like
        // 7×12 (one spare) despite their high arithmetic intensity — and
        // why Table II leaves that cell empty.
        let spare = tile.spare_registers(sigma) as f64;
        let rotated_full = match class {
            BoundClass::Compute => t_mainloop_compute(tile, kc, chip, true),
            BoundClass::Memory => t_mainloop_memory(tile, kc, chip, true),
        }
        .max(fma_floor);
        let coverage = match class {
            BoundClass::Compute => (spare / tile.mr as f64).min(1.0),
            BoundClass::Memory => {
                if spare >= tile.nr_vec(sigma) as f64 {
                    1.0
                } else {
                    0.0
                }
            }
        };
        let rotated = basic - (basic - rotated_full) * coverage;
        rotated.min(basic)
    } else {
        basic
    };
    if opts.fused {
        let junction = t_fused_junction(tile, kc, chip);
        PhaseBreakdown { launch: 0.0, prologue: junction / 2.0, mainloop, epilogue: junction / 2.0 }
    } else {
        PhaseBreakdown {
            launch: chip.launch_cycles as f64,
            prologue: t_prologue(tile, chip),
            mainloop,
            epilogue: t_epilogue(tile, kc, chip),
        }
    }
}

/// Total projected cycles of one micro-kernel invocation (`T_r` of
/// Algorithm 1 / Eqn 13).
pub fn projected_cycles(tile: MicroTile, kc: usize, chip: &ChipSpec, opts: ModelOpts) -> f64 {
    projected_phases(tile, kc, chip, opts).total()
}

/// The `σ_AI` derating factor: a tile whose finite-`k_c` arithmetic
/// intensity (Eqn 3) falls below the chip's threshold cannot reach peak
/// (§III-A1); its throughput degrades proportionally. Tiles above the
/// threshold are not derated.
pub fn ai_derate(tile: MicroTile, kc: usize, chip: &ChipSpec) -> f64 {
    let ai = crate::ai::ai_with_kc(tile, kc, chip.sigma_lane());
    (chip.sigma_ai / ai).max(1.0)
}

/// Projected cycles including the `σ_AI` derating — the cost DMT
/// (Algorithm 1, condition 1: "micro-tiles that have high arithmetic
/// intensity") and the tuner's pruning model use to rank tiles. The
/// un-derated [`projected_cycles`] keeps the paper's Eqns 4–11 exact.
pub fn effective_cycles(tile: MicroTile, kc: usize, chip: &ChipSpec, opts: ModelOpts) -> f64 {
    projected_cycles(tile, kc, chip, opts) * ai_derate(tile, kc, chip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_arch::ChipSpec;

    /// The paper's worked example (§III-B1): 5×16 on the idealized machine
    /// costs `20·k_c + 13·k̄_c + 65` cycles beyond launch.
    #[test]
    fn fig3a_formula_for_5x16() {
        let chip = ChipSpec::idealized();
        let tile = MicroTile::new(5, 16);
        for kc in [16usize, 32, 64, 128] {
            let b = projected_phases(tile, kc, &chip, ModelOpts::default());
            let expected = 20.0 * kc as f64 + 13.0 * (kc / 4) as f64 + 65.0;
            assert!(
                (b.total() - b.launch - expected).abs() < 1e-9,
                "kc={kc}: {} vs {expected}",
                b.total() - b.launch
            );
        }
    }

    /// §III-C1: with rotation and *full* spare coverage the 5×16 kernel's
    /// Eqn 9 target is `20·k_c + 13·⌈k̄_c/2⌉ + 65`; with its actual 3-of-5
    /// spare coverage the model interpolates 3/5 of the way from the basic
    /// Eqn 6 boundary cost toward that target.
    #[test]
    fn eqn9_rotated_5x16() {
        let chip = ChipSpec::idealized();
        let tile = MicroTile::new(5, 16);
        let kc = 64;
        let kv = (kc / 4) as f64;
        let b = projected_phases(tile, kc, &chip, ModelOpts { rotate: true, fused: false });
        let basic_boundary = 13.0 * kv;
        let eqn9_boundary = 13.0 * (kv / 2.0).ceil();
        let coverage = 3.0 / 5.0;
        let expected = 20.0 * kc as f64
            + (basic_boundary - (basic_boundary - eqn9_boundary) * coverage)
            + 65.0;
        assert!(
            (b.total() - b.launch - expected).abs() < 1e-9,
            "{} vs {expected}",
            b.total() - b.launch
        );
        // And it still lands strictly between basic and the full-Eqn-9 ideal.
        let basic = projected_phases(tile, kc, &chip, ModelOpts::default());
        assert!(b.total() < basic.total());
        assert!(b.total() - b.launch > 20.0 * kc as f64 + eqn9_boundary + 65.0 - 1e-9);
    }

    /// §III-B2: the 2×16 main loop costs `48·k̄_c` basic (Eqn 8) and
    /// `42·k̄_c` rotated (Eqn 10).
    #[test]
    fn fig3b_and_eqn10_for_2x16() {
        let chip = ChipSpec::idealized();
        let tile = MicroTile::new(2, 16);
        let kc = 64;
        let kv = (kc / 4) as f64;
        let basic = projected_phases(tile, kc, &chip, ModelOpts::default());
        assert!((basic.mainloop - 48.0 * kv).abs() < 1e-9);
        let rot = projected_phases(tile, kc, &chip, ModelOpts { rotate: true, fused: false });
        assert!((rot.mainloop - 42.0 * kv).abs() < 1e-9);
    }

    /// §III-C2: for 5×16 with k_c = 18, prologue and epilogue account for
    /// 8.2% and 15.1% of the projected runtime.
    #[test]
    fn prologue_epilogue_shares_at_kc_18() {
        let chip = ChipSpec::idealized();
        let tile = MicroTile::new(5, 16);
        let b = projected_phases(tile, 18, &chip, ModelOpts::default());
        let total = b.total() - b.launch;
        let pro = b.prologue / total;
        let epi = b.epilogue / total;
        assert!((pro - 0.082).abs() < 0.02, "prologue share {pro:.3}");
        assert!((epi - 0.151).abs() < 0.03, "epilogue share {epi:.3}");
    }

    #[test]
    fn fusion_removes_launch_and_shrinks_boundaries() {
        let chip = ChipSpec::kp920();
        let tile = MicroTile::new(5, 16);
        let plain = projected_phases(tile, 4, &chip, ModelOpts::default());
        let fused = projected_phases(tile, 4, &chip, ModelOpts { rotate: false, fused: true });
        assert_eq!(fused.launch, 0.0);
        assert!(fused.total() < plain.total());
        // At K=4 the saving is substantial (the paper reports ~16-17%).
        let saving = 1.0 - fused.total() / plain.total();
        assert!(saving > 0.10, "saving {saving:.3}");
    }

    #[test]
    fn model_matches_simulator_on_worked_examples() {
        // Cross-validation: analytic model vs pipeline simulator within
        // 25% on the paper's two Fig 3 kernels.
        use autogemm_kernelgen::{MicroKernelSpec, PipelineOpts, Strides};
        let chip = ChipSpec::idealized();
        for (mr, nr) in [(5usize, 16usize), (2, 16)] {
            for rotate in [false, true] {
                let kc = 64;
                let tile = MicroTile::new(mr, nr);
                let spec = MicroKernelSpec {
                    tile,
                    kc,
                    sigma_lane: 4,
                    accumulate: true,
                    strides: Strides::Dynamic,
                    opts: PipelineOpts { rotate, prefetch: true },
                };
                let a = vec![1.0f32; mr * kc];
                let b = vec![1.0f32; kc * nr];
                let mut c = vec![0.0f32; mr * nr];
                let sim = autogemm_sim::run_micro_kernel(
                    &spec,
                    &chip,
                    &a,
                    &b,
                    &mut c,
                    autogemm_sim::Warmth::L1,
                );
                let model = projected_cycles(tile, kc, &chip, ModelOpts { rotate, fused: false });
                let ratio = sim.cycles as f64 / model;
                assert!(
                    (0.75..1.35).contains(&ratio),
                    "{mr}x{nr} rotate={rotate}: sim {} vs model {model:.0} (ratio {ratio:.3})",
                    sim.cycles
                );
            }
        }
    }

    #[test]
    fn rotation_never_hurts_in_the_model() {
        let chip = ChipSpec::kp920();
        for tile in autogemm_kernelgen::tiles::enumerate(4) {
            for kc in [8usize, 32, 128] {
                let basic = projected_cycles(tile, kc, &chip, ModelOpts::default());
                let rot =
                    projected_cycles(tile, kc, &chip, ModelOpts { rotate: true, fused: false });
                assert!(rot <= basic + 1e-9, "{tile} kc={kc}");
            }
        }
    }

    #[test]
    fn deeper_kc_amortizes_overheads() {
        let chip = ChipSpec::graviton2();
        let tile = MicroTile::new(5, 16);
        // Cycles per flop must decrease monotonically with k_c.
        let mut prev = f64::INFINITY;
        for kc in [4usize, 8, 16, 32, 64, 128] {
            let per_flop = projected_cycles(tile, kc, &chip, ModelOpts::default())
                / (2.0 * 5.0 * 16.0 * kc as f64);
            assert!(per_flop < prev);
            prev = per_flop;
        }
    }
}
