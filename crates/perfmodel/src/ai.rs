//! Arithmetic-intensity formulas (Eqns 2 and 3, Fig 2).
//!
//! For an infinitely deep reduction a tile's AI tends to `AI_max`
//! ([`autogemm_kernelgen::MicroTile::ai_max`], Eqn 2). Irregular matrices
//! break the `k_c ≫ m_r` assumption, so the paper derives the finite-`k_c`
//! intensity (Eqn 3):
//!
//! ```text
//! AI = 2·m_r·n̄_r·k_c / (2·m_r·n̄_r + m_r·k̄_c + k_c·n̄_r)
//! ```
//!
//! which is what Fig 2 plots for the `m_r × 16` tile family. A micro-kernel
//! can reach close-to-peak on a chip when its AI clears the chip's
//! empirical threshold `σ_AI`.

use autogemm_arch::ChipSpec;
use autogemm_kernelgen::MicroTile;

/// Finite-`k_c` arithmetic intensity of a tile (Eqn 3).
pub fn ai_with_kc(tile: MicroTile, kc: usize, sigma_lane: usize) -> f64 {
    let mr = tile.mr as f64;
    let nrv = tile.nr_vec(sigma_lane) as f64;
    let kc_f = kc as f64;
    let kcv = kc_f / sigma_lane as f64;
    2.0 * mr * nrv * kc_f / (2.0 * mr * nrv + mr * kcv + kc_f * nrv)
}

/// Whether a tile at depth `k_c` clears the chip's `σ_AI` threshold
/// (i.e. can potentially achieve close-to-peak performance, §III-A1).
pub fn meets_sigma_ai(tile: MicroTile, kc: usize, chip: &ChipSpec) -> bool {
    ai_with_kc(tile, kc, chip.sigma_lane()) >= chip.sigma_ai
}

/// Whether a tile's asymptotic AI clears the threshold (the Fig 5 / Fig 7
/// "low-AI tile" criterion used by the tiling comparisons).
pub fn tile_meets_sigma_ai(tile: MicroTile, chip: &ChipSpec) -> bool {
    tile.ai_max() >= chip.sigma_ai
}

/// The Fig 2 series: AI of `m_r × 16` tiles as `k_c` grows.
pub fn fig2_series(mr_values: &[usize], kc_values: &[usize]) -> Vec<(usize, Vec<f64>)> {
    mr_values
        .iter()
        .map(|&mr| {
            let tile = MicroTile::new(mr, 16);
            let series = kc_values.iter().map(|&kc| ai_with_kc(tile, kc, 4)).collect();
            (mr, series)
        })
        .collect()
}

/// The smallest `AI_max` among tiles that are compute-bound on `chip` — an
/// analytic stand-in for the micro-benchmarked `σ_AI` (documentation /
/// sanity checks only; the empirical `ChipSpec::sigma_ai` drives decisions).
pub fn min_compute_bound_ai(chip: &ChipSpec) -> Option<f64> {
    autogemm_kernelgen::tiles::enumerate(chip.sigma_lane())
        .into_iter()
        .filter(|t| {
            autogemm_kernelgen::BoundClass::classify(*t, chip)
                == autogemm_kernelgen::BoundClass::Compute
        })
        .map(|t| t.ai_max())
        .fold(None, |acc: Option<f64>, ai| Some(acc.map_or(ai, |a| a.min(ai))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ai_converges_to_ai_max_for_deep_kc() {
        for tile in [MicroTile::new(5, 16), MicroTile::new(8, 8), MicroTile::new(2, 16)] {
            let asymptotic = ai_with_kc(tile, 1 << 20, 4);
            assert!(
                (asymptotic - tile.ai_max()).abs() < 0.01,
                "{tile}: {asymptotic} vs {}",
                tile.ai_max()
            );
        }
    }

    #[test]
    fn ai_is_monotone_increasing_in_kc() {
        let tile = MicroTile::new(5, 16);
        let mut prev = 0.0;
        for kc in [4, 8, 16, 32, 64, 128, 256] {
            let ai = ai_with_kc(tile, kc, 4);
            assert!(ai > prev);
            prev = ai;
        }
    }

    #[test]
    fn small_kc_tiles_are_memory_bound_on_high_sigma_chips() {
        // Fig 2's point: with small k_c even the good tiles fall below
        // σ_AI on a demanding chip like the KP920.
        let kp = autogemm_arch::ChipSpec::kp920();
        let tile = MicroTile::new(5, 16);
        assert!(!meets_sigma_ai(tile, 4, &kp));
        assert!(meets_sigma_ai(tile, 256, &kp));
    }

    #[test]
    fn sigma_ai_split_on_4x16_matches_fig7_26x64_case() {
        // 4×16 (AI 6.4) clears σ_AI on Graviton2 and M2 but not on KP920.
        let t = MicroTile::new(4, 16);
        assert!(tile_meets_sigma_ai(t, &autogemm_arch::ChipSpec::graviton2()));
        assert!(tile_meets_sigma_ai(t, &autogemm_arch::ChipSpec::m2()));
        assert!(!tile_meets_sigma_ai(t, &autogemm_arch::ChipSpec::kp920()));
        // 5×16 (AI 7.62) clears it everywhere the paper says it does.
        let t5 = MicroTile::new(5, 16);
        assert!(tile_meets_sigma_ai(t5, &autogemm_arch::ChipSpec::kp920()));
    }

    #[test]
    fn fig2_series_shape() {
        let s = fig2_series(&[2, 3, 4, 5], &[4, 8, 16, 32, 64]);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|(_, v)| v.len() == 5));
        // Larger m_r dominates at every k_c.
        for i in 0..5 {
            assert!(s[3].1[i] > s[0].1[i]);
        }
    }

    #[test]
    fn derived_threshold_is_finite_and_positive() {
        for chip in autogemm_arch::ChipSpec::all_evaluated() {
            let t = min_compute_bound_ai(&chip).expect("some compute-bound tile");
            assert!(t > 0.0 && t < 16.0, "{}: {t}", chip.name);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn finite_ai_never_exceeds_ai_max(mr in 1usize..9, nrv in 1usize..6, kc in 1usize..512) {
            let tile = MicroTile::new(mr, nrv * 4);
            if tile.feasible(4) {
                let ai = ai_with_kc(tile, kc, 4);
                prop_assert!(ai <= tile.ai_max() + 1e-9);
                prop_assert!(ai > 0.0);
            }
        }
    }
}
