//! # autogemm-perfmodel
//!
//! The analytic performance model of the autoGEMM paper:
//!
//! * [`ai`] — arithmetic-intensity formulas: `AI_max` (Eqn 2, via
//!   `autogemm-kernelgen`), the finite-`k_c` AI of Eqn 3 (the Fig 2
//!   curves), and the `σ_AI` threshold comparison;
//! * [`micro`] — the micro-kernel cycle model: `T_launch + T_prologue +
//!   T_mainloop + T_epilogue` (Eqns 4–8), the rotating-register-allocation
//!   updates (Eqns 9, 10), and epilogue/prologue fusion (Eqn 11);
//! * [`submatrix`] — the cache-block runtime estimate `T_c(m_c, n_c)` of
//!   Eqn 13 used by the tuner to prune its search space (§IV-B);
//! * [`roofline`] — the roofline model of §V-D (peak vs `AI × bandwidth`);
//! * [`elision`] — the packing-elision heuristic of the input-aware
//!   dispatch layer: projected pack traffic vs panel reuse, per operand;
//! * [`projection`] — memoized projection lookups ([`ProjectionTable`])
//!   for joining measured telemetry (`autogemm::telemetry`) against the
//!   model's per-tile cycle counts.
//!
//! The cycle model is cross-validated against the pipeline simulator in
//! this crate's test-suite: both derive from the same Table III parameters,
//! so they must agree within a small tolerance on the paper's worked
//! examples (5×16 and 2×16 on the idealized machine).

pub mod ai;
pub mod elision;
pub mod micro;
pub mod projection;
pub mod roofline;
pub mod submatrix;

pub use ai::{ai_with_kc, meets_sigma_ai};
pub use elision::{route_packing, PackRouting};
pub use micro::{projected_cycles, ModelOpts, Phase, PhaseBreakdown};
pub use projection::ProjectionTable;
pub use roofline::{attainable_gflops, machine_balance, Roofline};
pub use submatrix::region_cycles;
