//! Projection lookup: memoized per-tile cycle projections for joining
//! measured telemetry against the model.
//!
//! The telemetry layer (see `autogemm::telemetry`) records which
//! `(m_r, n_r)` register tiles a GEMM actually dispatched; joining that
//! histogram against the paper's cycle model (Eqns 4–11) requires one
//! [`projected_cycles`] evaluation per distinct `(m_r, n_r, k_c)`. A
//! [`ProjectionTable`] caches those evaluations so a report join — or a
//! whole `gemmtrace` sweep sharing one table — prices each tile shape
//! exactly once.

use crate::micro::{projected_cycles, ModelOpts};
use autogemm_arch::ChipSpec;
use autogemm_kernelgen::MicroTile;
use std::collections::HashMap;

/// Memoized `projected_cycles` lookups for one `(chip, ModelOpts)` pair.
#[derive(Debug)]
pub struct ProjectionTable<'c> {
    chip: &'c ChipSpec,
    opts: ModelOpts,
    cache: HashMap<(usize, usize, usize), f64>,
}

impl<'c> ProjectionTable<'c> {
    /// A table projecting with `opts` on `chip` (use the executed plan's
    /// `ModelOpts` so the projection prices what actually ran).
    pub fn new(chip: &'c ChipSpec, opts: ModelOpts) -> Self {
        ProjectionTable { chip, opts, cache: HashMap::new() }
    }

    /// Projected cycles of one `(tile, k_c)` micro-kernel invocation
    /// (`T_r` of Algorithm 1 / Eqn 13), memoized.
    pub fn cycles(&mut self, tile: MicroTile, kc: usize) -> f64 {
        let key = (tile.mr, tile.nr, kc);
        *self.cache.entry(key).or_insert_with(|| projected_cycles(tile, kc, self.chip, self.opts))
    }

    pub fn chip(&self) -> &ChipSpec {
        self.chip
    }

    pub fn opts(&self) -> ModelOpts {
        self.opts
    }

    /// Distinct `(m_r, n_r, k_c)` shapes priced so far.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_matches_direct_projection_and_memoizes() {
        let chip = ChipSpec::graviton2();
        let opts = ModelOpts { rotate: true, fused: true };
        let mut table = ProjectionTable::new(&chip, opts);
        let tile = MicroTile::new(5, 16);
        let direct = projected_cycles(tile, 64, &chip, opts);
        assert_eq!(table.cycles(tile, 64), direct);
        assert_eq!(table.cycles(tile, 64), direct);
        assert_eq!(table.len(), 1, "repeat lookups hit the cache");
        table.cycles(MicroTile::new(2, 16), 64);
        table.cycles(tile, 32);
        assert_eq!(table.len(), 3);
    }
}
