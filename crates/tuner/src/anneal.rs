//! Simulated-annealing search over the schedule space, guided by the
//! boosted-stumps surrogate — the AutoTVM workflow (§II-B): measure a
//! seed batch, train the cost model, anneal on the model's predictions,
//! verify the short-list with real measurements, retrain, repeat.

use crate::cost::schedule_cost;
use crate::space::{Schedule, SearchSpace};
use crate::surrogate::Surrogate;
use autogemm_arch::ChipSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Annealer configuration.
#[derive(Debug, Clone)]
pub struct AnnealConfig {
    /// Initial random measurements used to seed the surrogate.
    pub seed_batch: usize,
    /// Annealing steps per round.
    pub steps_per_round: usize,
    /// Measure-and-retrain rounds.
    pub rounds: usize,
    /// Initial Metropolis temperature (relative to median cost).
    pub temp0: f64,
    /// RNG seed for reproducibility.
    pub rng_seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            seed_batch: 32,
            steps_per_round: 200,
            rounds: 4,
            temp0: 0.5,
            rng_seed: 0x5eed,
        }
    }
}

/// Move to a neighbouring schedule: re-draw one coordinate.
fn neighbour(space: &SearchSpace, cur: &Schedule, rng: &mut StdRng) -> Schedule {
    let mut next = cur.clone();
    match rng.random_range(0..3) {
        0 => {
            let (mc, nc, kc) =
                space.block_candidates[rng.random_range(0..space.block_candidates.len())];
            next.mc = mc;
            next.nc = nc;
            next.kc = kc;
        }
        1 => {
            next.order = space.orders[rng.random_range(0..space.orders.len())];
        }
        _ => {
            let packings = space.packings();
            next.packing = packings[rng.random_range(0..packings.len())];
        }
    }
    next
}

/// One measure-and-retrain round's log: how far the surrogate's
/// predictions sat from the true cost model on the candidates it was
/// verified against — the tuner-side twin of the telemetry layer's
/// measured-vs-model cycle ratio. A surrogate whose error stays high
/// across rounds is proposing blind; a shrinking error means the
/// retraining loop is converging on the true cost surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundLog {
    /// Measure-and-retrain round index (0-based).
    pub round: usize,
    /// Shortlist candidates verified with the true cost model.
    pub verified: usize,
    /// Mean relative error `|predicted − true| / true` over the
    /// verified shortlist (0 when nothing was verified).
    pub mean_model_error: f64,
    /// Best true cost known after this round.
    pub best_cost: f64,
}

/// Surrogate-guided simulated annealing. Returns the best schedule found
/// by *true-cost* evaluation (the surrogate only proposes).
pub fn anneal(space: &SearchSpace, chip: &ChipSpec, cfg: &AnnealConfig) -> Schedule {
    anneal_logged(space, chip, cfg).0
}

/// [`anneal`] with the per-round search log: every measure-and-retrain
/// round reports the surrogate's model error against the true costs it
/// was verified with (see [`RoundLog`]).
pub fn anneal_logged(
    space: &SearchSpace,
    chip: &ChipSpec,
    cfg: &AnnealConfig,
) -> (Schedule, Vec<RoundLog>) {
    let mut rng = StdRng::seed_from_u64(cfg.rng_seed);

    // Seed batch: random configs, truly measured.
    let mut measured: Vec<(Schedule, f64)> = (0..cfg.seed_batch)
        .map(|_| {
            let s = space.random(&mut rng);
            let c = schedule_cost(&s, chip).total();
            (s, c)
        })
        .collect();

    let mut best = measured.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap().clone();
    let mut log = Vec::with_capacity(cfg.rounds);

    for round in 0..cfg.rounds {
        let model = Surrogate::fit(&measured, 60);
        let mut cur = best.0.clone();
        let mut cur_pred = model.predict(&cur);
        let scale = cur_pred.max(1.0);
        let mut proposals: Vec<Schedule> = Vec::new();

        let mut temp = cfg.temp0;
        for _ in 0..cfg.steps_per_round {
            let cand = neighbour(space, &cur, &mut rng);
            let cand_pred = model.predict(&cand);
            let delta = (cand_pred - cur_pred) / scale;
            if delta <= 0.0 || rng.random::<f64>() < (-delta / temp).exp() {
                cur = cand;
                cur_pred = cand_pred;
                proposals.push(cur.clone());
            }
            temp *= 0.985;
        }

        // Verify the most promising distinct proposals with the true model,
        // logging how far the surrogate's predictions sat from the truth.
        proposals.sort_by(|a, b| model.predict(a).partial_cmp(&model.predict(b)).unwrap());
        proposals.dedup();
        let mut verified = 0usize;
        let mut error_sum = 0.0f64;
        for cand in proposals.into_iter().take(8) {
            let c = schedule_cost(&cand, chip).total();
            if c > 0.0 {
                error_sum += (model.predict(&cand) - c).abs() / c;
                verified += 1;
            }
            if c < best.1 {
                best = (cand.clone(), c);
            }
            measured.push((cand, c));
        }
        log.push(RoundLog {
            round,
            verified,
            mean_model_error: if verified > 0 { error_sum / verified as f64 } else { 0.0 },
            best_cost: best.1,
        });
    }
    (best.0, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anneal_finds_a_schedule_no_worse_than_random_median() {
        let chip = ChipSpec::graviton2();
        let space = SearchSpace::new(128, 784, 128, &chip);
        let cfg = AnnealConfig { rounds: 2, steps_per_round: 80, ..Default::default() };
        let tuned = anneal(&space, &chip, &cfg);
        let tuned_cost = schedule_cost(&tuned, &chip).total();

        let mut rng = StdRng::seed_from_u64(7);
        let mut random_costs: Vec<f64> =
            (0..24).map(|_| schedule_cost(&space.random(&mut rng), &chip).total()).collect();
        random_costs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = random_costs[random_costs.len() / 2];
        assert!(tuned_cost <= median, "tuned {tuned_cost:.0} worse than random median {median:.0}");
    }

    #[test]
    fn anneal_is_deterministic_for_a_seed() {
        let chip = ChipSpec::m2();
        let space = SearchSpace::new(64, 192, 64, &chip);
        let cfg = AnnealConfig { rounds: 1, steps_per_round: 50, ..Default::default() };
        let a = anneal(&space, &chip, &cfg);
        let b = anneal(&space, &chip, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn logged_search_reports_every_round() {
        let chip = ChipSpec::graviton2();
        let space = SearchSpace::new(128, 784, 128, &chip);
        let cfg = AnnealConfig { rounds: 3, steps_per_round: 80, ..Default::default() };
        let (tuned, log) = anneal_logged(&space, &chip, &cfg);
        assert_eq!(log.len(), cfg.rounds);
        for (i, r) in log.iter().enumerate() {
            assert_eq!(r.round, i);
            assert!(r.mean_model_error >= 0.0 && r.mean_model_error.is_finite());
            assert!(r.best_cost > 0.0 && r.best_cost.is_finite());
        }
        // best_cost is monotone non-increasing: rounds only improve it.
        for w in log.windows(2) {
            assert!(w[1].best_cost <= w[0].best_cost);
        }
        assert_eq!(log.last().unwrap().best_cost, schedule_cost(&tuned, &chip).total());
        // The wrapper must agree with the logged variant's winner.
        assert_eq!(anneal(&space, &chip, &cfg), tuned);
    }

    #[test]
    fn neighbour_moves_stay_in_space() {
        let chip = ChipSpec::kp920();
        let space = SearchSpace::new(256, 256, 256, &chip);
        let mut rng = StdRng::seed_from_u64(1);
        let mut cur = space.random(&mut rng);
        for _ in 0..100 {
            cur = neighbour(&space, &cur, &mut rng);
            assert_eq!(256 % cur.mc, 0);
            assert_eq!(256 % cur.nc, 0);
            assert_eq!(256 % cur.kc, 0);
            assert!(cur.order.valid());
        }
    }
}
