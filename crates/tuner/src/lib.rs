//! # autogemm-tuner
//!
//! Schedule auto-tuning — the reproduction's stand-in for the paper's
//! patched TVM + AutoTVM stack (§IV-C).
//!
//! The tuned parameter space is exactly Table III's algorithm half:
//!
//! * **cache blocks** `(m_c, n_c, k_c)` — divisor-constrained candidates
//!   (`M % m_c = 0`, `N % n_c = 0`, `K % k_c = 0`, §IV-C2);
//! * **loop order** `σ_order` — all `5! = 120` permutations of the
//!   `(M_c, N_c, K_c, M_r, N_r)` loops;
//! * **packing** `σ_packing` — `none`, `offline`, or `online`;
//! * **micro-tile** — chosen per block by DMT (Algorithm 1).
//!
//! Components:
//!
//! * [`space`] — candidate enumeration and the [`space::Schedule`] type;
//! * [`cost`] — the pruning cost model: Eqn 13 block cycles + a loop-order
//!   data-traffic model + packing overheads + cache-capacity penalties;
//! * [`surrogate`] — a gradient-boosted-stumps regressor standing in for
//!   AutoTVM's XGBoost cost model;
//! * [`anneal()`] — simulated annealing over the space (AutoTVM's search),
//!   using the surrogate for cheap ranking and the true model for the
//!   short-list;
//! * [`tune`] / [`ScheduleCache`] — the front door: tune a `(chip, M, N,
//!   K)` problem, memoizing results.

pub mod anneal;
pub mod cost;
pub mod space;
pub mod surrogate;

pub use anneal::{anneal, anneal_logged, AnnealConfig, RoundLog};
pub use cost::{schedule_cost, CostBreakdown};
pub use space::{enumerate_blocks, LoopOrder, Packing, Schedule, SearchSpace};

use autogemm_arch::ChipSpec;
use parking_lot::RwLock;
use std::collections::HashMap;

/// Tune a schedule for `C(M×N) += A(M×K)·B(K×N)` on `chip`.
///
/// Exhaustively scores the pruned candidate list with the cost model when
/// it is small, and falls back to surrogate-guided simulated annealing for
/// large spaces — mirroring how the paper uses Eqn 13 to prune before
/// handing the rest to TVM.
pub fn tune(m: usize, n: usize, k: usize, chip: &ChipSpec) -> Schedule {
    tune_with(m, n, k, chip, false)
}

/// [`tune`] with offline packing optionally on the menu (enable it when
/// the packed `B` will be reused across calls, as in the paper's
/// LibShalom-comparable configuration).
pub fn tune_with(m: usize, n: usize, k: usize, chip: &ChipSpec, allow_offline: bool) -> Schedule {
    let mut space = SearchSpace::new(m, n, k, chip);
    if allow_offline {
        space = space.with_offline();
    }
    // The pruned exhaustive pass: every block candidate under the best
    // loop order / packing found per block by local reasoning.
    if space.block_candidates.len() * 6 <= 4096 {
        let mut best: Option<(f64, Schedule)> = None;
        for sched in space.pruned_candidates() {
            let c = schedule_cost(&sched, chip).total();
            if best.as_ref().is_none_or(|(b, _)| c < *b) {
                best = Some((c, sched));
            }
        }
        best.expect("non-empty search space").1
    } else {
        anneal(&space, chip, &AnnealConfig::default())
    }
}

/// Tune under the multi-core constraint the paper inherits from TVM
/// (§V-C): the K loop cannot be parallelized, and in the multi-threaded
/// configuration `k_c` stays consistent with `K` — which is exactly why
/// large-K ResNet layers (L7, L12, L17, L20) lose performance on many
/// cores (Fig 9, lower).
pub fn tune_multicore(
    m: usize,
    n: usize,
    k: usize,
    chip: &ChipSpec,
    allow_offline: bool,
    threads: usize,
) -> Schedule {
    let mut space = SearchSpace::new(m, n, k, chip);
    if allow_offline {
        space = space.with_offline();
    }
    space.block_candidates.retain(|&(_, _, kc)| kc == k);
    // Keep enough C blocks to feed every thread (blocks are the unit of
    // parallel work; K is never split).
    let parallel: Vec<_> = space
        .block_candidates
        .iter()
        .copied()
        .filter(|&(mc, nc, _)| (m / mc) * (n / nc) >= threads)
        .collect();
    if !parallel.is_empty() {
        space.block_candidates = parallel;
    }
    if space.block_candidates.is_empty() {
        // Large K: no kc = K block fits the cache budget — enumerate
        // oversized blocks anyway (this overflow is the performance dip
        // the paper observes).
        let sigma = chip.sigma_lane();
        for &mc in space::divisors(m).iter().filter(|&&mc| mc <= 128) {
            for &nc in
                space::divisors(n).iter().filter(|&&nc| (nc % sigma == 0 && nc <= 512) || nc == n)
            {
                space.block_candidates.push((mc, nc, k));
            }
        }
    }
    // Threads-aware scoring: per-thread compute versus machine-level
    // bandwidth (single-core scoring would never pay for packing that only
    // matters once 70 cores contend for memory).
    let score = |sched: &Schedule| -> f64 {
        let parts = schedule_cost(sched, chip);
        let freq_hz = chip.freq_ghz * 1e9;
        let compute_s = parts.compute / threads as f64 / freq_hz;
        let pack_s = parts.packing / threads as f64 / freq_hz;
        let bytes = cost::traffic_bytes(sched) * cost::no_packing_penalty(sched, chip);
        let bw_s = bytes / (chip.numa.total_bw_gbs() * 1e9);
        compute_s.max(bw_s) + 0.25 * compute_s.min(bw_s) + pack_s
    };
    let mut scored: Vec<(f64, Schedule)> =
        space.pruned_candidates().map(|sched| (score(&sched), sched)).collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    scored.into_iter().map(|(_, s)| s).next().expect("non-empty search space")
}

/// The top-`k` multicore schedule candidates by model score, deduplicated
/// by cache-block shape. The engine verifies these on the simulator and
/// keeps the measured best — the AutoTVM measure-the-shortlist workflow,
/// which matters on chips whose pipelines the analytic model captures
/// imperfectly.
pub fn tune_multicore_topk(
    m: usize,
    n: usize,
    k: usize,
    chip: &ChipSpec,
    allow_offline: bool,
    threads: usize,
    topk: usize,
) -> Vec<Schedule> {
    // Re-run the candidate construction of tune_multicore, keeping the
    // whole ranked list.
    let best = tune_multicore(m, n, k, chip, allow_offline, threads);
    let mut space = SearchSpace::new(m, n, k, chip);
    if allow_offline {
        space = space.with_offline();
    }
    space.block_candidates.retain(|&(_, _, kc)| kc == k);
    let parallel: Vec<_> = space
        .block_candidates
        .iter()
        .copied()
        .filter(|&(mc, nc, _)| (m / mc) * (n / nc) >= threads)
        .collect();
    if !parallel.is_empty() {
        space.block_candidates = parallel;
    }
    if space.block_candidates.is_empty() {
        space.block_candidates.push((best.mc, best.nc, best.kc));
        let sigma = chip.sigma_lane();
        for &mc in space::divisors(m).iter().filter(|&&mc| mc <= 128) {
            for &nc in
                space::divisors(n).iter().filter(|&&nc| (nc % sigma == 0 && nc <= 512) || nc == n)
            {
                space.block_candidates.push((mc, nc, k));
            }
        }
    }
    let score = |sched: &Schedule| -> f64 {
        let parts = schedule_cost(sched, chip);
        let freq_hz = chip.freq_ghz * 1e9;
        let compute_s = parts.compute / threads as f64 / freq_hz;
        let pack_s = parts.packing / threads as f64 / freq_hz;
        let bytes = cost::traffic_bytes(sched) * cost::no_packing_penalty(sched, chip);
        let bw_s = bytes / (chip.numa.total_bw_gbs() * 1e9);
        compute_s.max(bw_s) + 0.25 * compute_s.min(bw_s) + pack_s
    };
    let mut scored: Vec<(f64, Schedule)> =
        space.pruned_candidates().map(|sched| (score(&sched), sched)).collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    // Diversity: at most two shortlist entries per block-area octave, so
    // the simulator sees genuinely different blockings, not six near-twins.
    let mut out: Vec<Schedule> = Vec::new();
    let mut per_bucket: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (_, s) in &scored {
        if out.iter().any(|o| (o.mc, o.nc, o.kc) == (s.mc, s.nc, s.kc)) {
            continue;
        }
        let bucket = ((s.mc * s.nc).max(1) as f64).log2() as u32;
        let count = per_bucket.entry(bucket).or_insert(0);
        if *count >= 2 {
            continue;
        }
        *count += 1;
        out.push(s.clone());
        if out.len() >= topk {
            break;
        }
    }
    // Always include the largest parallel-feasible block (often what a
    // latency-sensitive pipeline wants even when the model disagrees).
    if let Some((_, big)) = scored.iter().max_by_key(|(_, s)| s.mc * s.nc) {
        if !out.iter().any(|o| (o.mc, o.nc, o.kc) == (big.mc, big.nc, big.kc)) {
            out.push(big.clone());
        }
    }
    out
}

/// A memoizing cache of tuned schedules, keyed by `(chip id, M, N, K)` —
/// the library's equivalent of autoGEMM's generated-kernel package.
#[derive(Default)]
pub struct ScheduleCache {
    inner: RwLock<HashMap<(String, usize, usize, usize), Schedule>>,
}

impl ScheduleCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch a tuned schedule, tuning on miss.
    pub fn get(&self, m: usize, n: usize, k: usize, chip: &ChipSpec) -> Schedule {
        let key = (chip.id.to_string(), m, n, k);
        if let Some(s) = self.inner.read().get(&key) {
            return s.clone();
        }
        let s = tune(m, n, k, chip);
        self.inner.write().insert(key, s.clone());
        s
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_schedule_respects_divisor_constraints() {
        let chip = ChipSpec::graviton2();
        for (m, n, k) in [(64, 64, 64), (256, 3136, 64), (26, 36, 64)] {
            let s = tune(m, n, k, &chip);
            assert_eq!(m % s.mc, 0, "{m}%{}", s.mc);
            assert_eq!(n % s.nc, 0);
            assert_eq!(k % s.kc, 0);
        }
    }

    #[test]
    fn cache_memoizes() {
        let chip = ChipSpec::kp920();
        let cache = ScheduleCache::new();
        let a = cache.get(64, 64, 64, &chip);
        let b = cache.get(64, 64, 64, &chip);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn small_n_prefers_no_packing() {
        // §IV-C2: "When the N dimension is relatively small ... we skip the
        // packing step."
        let chip = ChipSpec::graviton2();
        let small_n = tune(512, 16, 512, &chip);
        assert_eq!(small_n.packing, Packing::None, "small N should skip packing");
    }

    #[test]
    fn big_irregular_shapes_pick_packing() {
        let chip = ChipSpec::graviton2();
        let s = tune(256, 3136, 64, &chip);
        assert_ne!(s.packing, Packing::None, "large N benefits from packing");
        // With reuse promised, offline packing becomes available and wins.
        let off = tune_with(256, 3136, 64, &chip, true);
        assert_eq!(off.packing, Packing::Offline);
    }

    #[test]
    fn tuned_blocks_fit_in_cache() {
        let chip = ChipSpec::kp920();
        let s = tune(256, 3136, 512, &chip);
        // Working set of one block: A(mc×kc) + B(kc×nc) + C(mc×nc).
        let ws = 4 * (s.mc * s.kc + s.kc * s.nc + s.mc * s.nc);
        let l2 = chip.caches[1].size_bytes;
        assert!(ws <= 2 * l2, "block working set {ws} vs L2 {l2}");
    }
}
