//! The schedule cost model used to prune the search space (§IV-B).
//!
//! Three components, all in projected single-core cycles:
//!
//! * **compute** — the DMT plan of one cache block (Eqn 13 with the `σ_AI`
//!   derating), times the number of blocks;
//! * **traffic** — a loop-order-aware data-movement model: each operand
//!   panel is re-streamed once per iteration of every loop that encloses
//!   its reuse region, and the resulting bytes are charged at the cache
//!   level they spill to;
//! * **packing** — `none` pays a strided-access penalty on `B` when the
//!   panel exceeds the private caches; `online` pays an explicit
//!   pack-copy; `offline` is free at run time (paid outside, like
//!   LibShalom's offline packing).

use crate::space::{LoopIndex, Packing, Schedule};
use autogemm_arch::ChipSpec;
use autogemm_perfmodel::ModelOpts;
use autogemm_tiling::plan_dmt;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Process-wide memo of per-block DMT costs: DMT planning is by far the
/// most expensive part of scoring a schedule, and many schedules share the
/// same `(chip, m_c, n_c, k_c)` block.
type BlockCostMap = HashMap<(&'static str, usize, usize, usize), f64>;

fn block_cost_memo() -> &'static Mutex<BlockCostMap> {
    static MEMO: OnceLock<Mutex<BlockCostMap>> = OnceLock::new();
    MEMO.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Effective cycles of one DMT-tiled block, memoized.
fn block_cycles(mc: usize, nc: usize, kc: usize, chip: &ChipSpec, opts: ModelOpts) -> f64 {
    let key = (chip.id, mc, nc, kc);
    if let Some(&c) = block_cost_memo().lock().get(&key) {
        return c;
    }
    let plan = plan_dmt(mc, nc, kc, chip, opts);
    let c = plan.effective_cycles(kc, chip, opts);
    block_cost_memo().lock().insert(key, c);
    c
}

/// Cost components of one schedule (cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    pub compute: f64,
    pub traffic: f64,
    pub packing: f64,
}

impl CostBreakdown {
    /// Total projected cycles: traffic overlaps compute imperfectly, so we
    /// charge the maximum plus a fraction of the loser.
    pub fn total(&self) -> f64 {
        self.compute.max(self.traffic) + 0.25 * self.compute.min(self.traffic) + self.packing
    }
}

/// Which loops each operand's footprint depends on.
fn deps(idx: LoopIndex) -> [bool; 3] {
    // [A, B, C]
    match idx {
        LoopIndex::Mc | LoopIndex::Mr => [true, false, true],
        LoopIndex::Nc | LoopIndex::Nr => [false, true, true],
        LoopIndex::Kc => [true, true, false],
    }
}

fn trips(sched: &Schedule, idx: LoopIndex) -> f64 {
    let (tm, tn, tk) = sched.block_trips();
    match idx {
        LoopIndex::Mc => tm as f64,
        LoopIndex::Nc => tn as f64,
        LoopIndex::Kc => tk as f64,
        // The register loops stream within a cache-resident block; they do
        // not multiply DRAM traffic.
        LoopIndex::Mr | LoopIndex::Nr => 1.0,
    }
}

/// Memory traffic in bytes implied by a loop order: each operand is
/// re-streamed once per combined trip of the loops it does **not** depend
/// on that sit **outside** its innermost dependent loop.
pub fn traffic_bytes(sched: &Schedule) -> f64 {
    let sizes = [
        4.0 * (sched.m * sched.k) as f64, // A
        4.0 * (sched.k * sched.n) as f64, // B
        4.0 * (sched.m * sched.n) as f64, // C
    ];
    let mut total = 0.0;
    for (op, &size) in sizes.iter().enumerate() {
        // Innermost loop position this operand depends on.
        let innermost_dep = sched
            .order
            .0
            .iter()
            .enumerate()
            .filter(|(_, &l)| deps(l)[op])
            .map(|(pos, _)| pos)
            .max()
            .unwrap_or(0);
        let mut reloads = 1.0;
        for (pos, &l) in sched.order.0.iter().enumerate() {
            if pos < innermost_dep && !deps(l)[op] {
                reloads *= trips(sched, l);
            }
        }
        // C is read+written.
        let rw = if op == 2 { 2.0 } else { 1.0 };
        total += size * reloads * rw;
    }
    total
}

/// Cycles to move `bytes` for a single core, at the bandwidth of the cache
/// level the block working set spills to.
pub fn traffic_cycles(sched: &Schedule, chip: &ChipSpec, bytes: f64) -> f64 {
    let ws = sched.block_working_set();
    // Bytes per cycle deliverable to one core from the level that holds
    // the streamed panels: approximate as vector width per rt_load when
    // L1-resident, degrading with depth.
    let vb = chip.simd.vector_bytes() as f64;
    let mut bpc = vb / chip.rt_load as f64;
    for (i, level) in chip.caches.iter().enumerate() {
        if ws > level.size_bytes {
            // Spills past level i: throughput roughly halves per level.
            bpc /= 2.0;
            let _ = i;
        }
    }
    bytes / bpc
}

/// Runtime packing overhead in cycles.
pub fn packing_cycles(sched: &Schedule, chip: &ChipSpec) -> f64 {
    match sched.packing {
        Packing::Offline => 0.0,
        Packing::Online => {
            // Pack A and B panels once per use: ~1 load + 1 store per
            // element, vectorized.
            let elems = (sched.m * sched.k + sched.k * sched.n) as f64;
            2.0 * elems / chip.sigma_lane() as f64 * chip.rt_load as f64
        }
        Packing::None => 0.0,
    }
}

/// Strided-access penalty multiplier applied to traffic when not packing:
/// a `B` panel wider than the lane-friendly layout thrashes the TLB and
/// cache lines once it exceeds the private caches.
pub fn no_packing_penalty(sched: &Schedule, chip: &ChipSpec) -> f64 {
    if sched.packing != Packing::None {
        return 1.0;
    }
    // Row stride of the unpacked B in bytes: beyond a cache line every
    // vector load opens a new line, and beyond a page every row costs a
    // TLB entry.
    let row_stride = 4 * sched.n;
    let b_panel = 4 * sched.kc * sched.n;
    let private: usize = chip.caches.iter().filter(|c| !c.shared).map(|c| c.size_bytes).sum();
    if row_stride > 4096 || b_panel > private {
        2.0
    } else if 4 * sched.kc * sched.nc > chip.l1d_bytes() {
        1.15
    } else {
        1.02
    }
}

/// Score one schedule on one chip (single core).
pub fn schedule_cost(sched: &Schedule, chip: &ChipSpec) -> CostBreakdown {
    let opts = ModelOpts { rotate: true, fused: true };
    let (tm, tn, tk) = sched.block_trips();
    let blocks = (tm * tn * tk) as f64;
    let compute = block_cycles(sched.mc, sched.nc, sched.kc, chip, opts) * blocks;
    let traffic =
        traffic_cycles(sched, chip, traffic_bytes(sched)) * no_packing_penalty(sched, chip);
    let packing = packing_cycles(sched, chip);
    CostBreakdown { compute, traffic, packing }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::LoopOrder;

    fn sched(m: usize, n: usize, k: usize, mc: usize, nc: usize, kc: usize) -> Schedule {
        Schedule { m, n, k, mc, nc, kc, order: LoopOrder::goto(), packing: Packing::Offline }
    }

    #[test]
    fn goto_order_streams_each_operand_once_for_single_block() {
        // One block covering everything: every operand moves exactly once.
        let s = sched(64, 64, 64, 64, 64, 64);
        let bytes = traffic_bytes(&s);
        let expected = 4.0 * ((64 * 64) as f64) * (1.0 + 1.0 + 2.0);
        assert!((bytes - expected).abs() < 1e-6);
    }

    #[test]
    fn bad_loop_order_multiplies_traffic() {
        use LoopIndex::*;
        let good = sched(256, 256, 256, 64, 64, 64);
        let mut bad = good.clone();
        // K innermost of the cache loops: C re-streamed per k-block -- fine;
        // but A and B also get re-streamed by the outer loops they don't
        // depend on.
        bad.order = LoopOrder([Mc, Nc, Kc, Mr, Nr]);
        let mut worst = good.clone();
        worst.order = LoopOrder([Kc, Mc, Nc, Mr, Nr]);
        let tb_good = traffic_bytes(&good);
        let tb_bad = traffic_bytes(&bad);
        let tb_worst = traffic_bytes(&worst);
        assert!(tb_bad >= tb_good);
        assert!(tb_worst > tb_good * 0.99);
    }

    #[test]
    fn compute_dominates_for_cache_resident_blocks() {
        let chip = ChipSpec::graviton2();
        let s = sched(64, 64, 64, 64, 64, 64);
        let c = schedule_cost(&s, &chip);
        assert!(c.compute > 0.0);
        assert!(c.total() >= c.compute);
    }

    #[test]
    fn online_packing_costs_more_than_offline() {
        let chip = ChipSpec::kp920();
        let mut s = sched(256, 784, 128, 64, 112, 64);
        s.packing = Packing::Offline;
        let off = schedule_cost(&s, &chip).total();
        s.packing = Packing::Online;
        let on = schedule_cost(&s, &chip).total();
        assert!(on > off);
    }

    #[test]
    fn unpacked_wide_b_pays_a_penalty() {
        let chip = ChipSpec::kp920();
        let mut s = sched(256, 3136, 64, 64, 3136, 64);
        s.packing = Packing::None;
        let none = schedule_cost(&s, &chip).total();
        s.packing = Packing::Offline;
        let off = schedule_cost(&s, &chip).total();
        assert!(none > off, "unpacked {none:.0} should exceed offline {off:.0}");
    }

    #[test]
    fn smaller_kc_blocks_fit_but_cost_more_overhead() {
        let chip = ChipSpec::graviton2();
        let big = schedule_cost(&sched(256, 256, 256, 64, 64, 256), &chip);
        let small = schedule_cost(&sched(256, 256, 256, 64, 64, 8), &chip);
        assert!(
            small.compute > big.compute,
            "tiny k_c blocks pay prologue/epilogue overhead repeatedly"
        );
    }
}
