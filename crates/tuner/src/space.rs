//! The tuning parameter space (§IV-C2).

use autogemm_arch::ChipSpec;
use serde::{Deserialize, Serialize};

/// The five blocked loops of the GEMM nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoopIndex {
    Mc,
    Nc,
    Kc,
    Mr,
    Nr,
}

/// A permutation of the five loops, outermost first — `σ_order`
/// (`5! = 120` possibilities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoopOrder(pub [LoopIndex; 5]);

impl LoopOrder {
    /// The Goto-style default: `N_c` outermost, then `K_c`, `M_c`, and the
    /// register loops innermost.
    pub fn goto() -> Self {
        use LoopIndex::*;
        LoopOrder([Nc, Kc, Mc, Mr, Nr])
    }

    /// All 120 permutations, deterministic order.
    pub fn all() -> Vec<LoopOrder> {
        use LoopIndex::*;
        let items = [Mc, Nc, Kc, Mr, Nr];
        let mut out = Vec::with_capacity(120);
        let mut idx = [0usize; 5];
        // Simple recursive permutation without allocation churn.
        fn permute(
            items: &[LoopIndex; 5],
            used: &mut [bool; 5],
            cur: &mut [LoopIndex; 5],
            depth: usize,
            out: &mut Vec<LoopOrder>,
        ) {
            if depth == 5 {
                out.push(LoopOrder(*cur));
                return;
            }
            for i in 0..5 {
                if !used[i] {
                    used[i] = true;
                    cur[depth] = items[i];
                    permute(items, used, cur, depth + 1, out);
                    used[i] = false;
                }
            }
        }
        let _ = &mut idx;
        let mut used = [false; 5];
        let mut cur = [Mc; 5];
        permute(&items, &mut used, &mut cur, 0, &mut out);
        out
    }

    /// Position of a loop in the nest (0 = outermost).
    pub fn position(&self, idx: LoopIndex) -> usize {
        self.0.iter().position(|&l| l == idx).unwrap()
    }

    /// Loop orders are only *valid* when the register loops nest inside
    /// their cache loops (a micro-kernel cannot span cache blocks).
    pub fn valid(&self) -> bool {
        self.position(LoopIndex::Mr) > self.position(LoopIndex::Mc)
            && self.position(LoopIndex::Nr) > self.position(LoopIndex::Nc)
            && self.position(LoopIndex::Mr) > self.position(LoopIndex::Kc)
            && self.position(LoopIndex::Nr) > self.position(LoopIndex::Kc)
    }
}

/// `σ_packing`: how operand panels are laid out (§IV-C2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Packing {
    /// Operate on the caller's row-major buffers directly.
    None,
    /// Pack `B` ahead of time, outside the timed region (LibShalom-style).
    Offline,
    /// Pack panels inside the GEMM call; the packing cost is paid at
    /// runtime but amortized over panel reuse.
    Online,
}

impl Packing {
    pub fn all() -> [Packing; 3] {
        [Packing::None, Packing::Offline, Packing::Online]
    }
}

/// One point of the search space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub mc: usize,
    pub nc: usize,
    pub kc: usize,
    pub order: LoopOrder,
    pub packing: Packing,
}

impl Schedule {
    /// Trip counts of the three cache loops.
    pub fn block_trips(&self) -> (usize, usize, usize) {
        (self.m / self.mc, self.n / self.nc, self.k / self.kc)
    }

    /// Bytes of one block's working set (A + B + C panels).
    pub fn block_working_set(&self) -> usize {
        4 * (self.mc * self.kc + self.kc * self.nc + self.mc * self.nc)
    }
}

/// Divisors of `n` (ascending).
pub fn divisors(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut i = 1;
    while i * i <= n {
        if n.is_multiple_of(i) {
            out.push(i);
            if i != n / i {
                out.push(n / i);
            }
        }
        i += 1;
    }
    out.sort_unstable();
    out
}

/// Enumerate cache-block candidates for a problem on a chip: divisor
/// triples, pruned to plausible working sets (fits in the last-level
/// private cache, `n_c` a lane multiple or the whole of N, and blocks at
/// least one register tile tall/wide where possible).
pub fn enumerate_blocks(
    m: usize,
    n: usize,
    k: usize,
    chip: &ChipSpec,
) -> Vec<(usize, usize, usize)> {
    let sigma = chip.sigma_lane();
    let last_private = chip
        .caches
        .iter()
        .rfind(|c| !c.shared)
        .or(chip.caches.last())
        .map(|c| c.size_bytes)
        .unwrap_or(1 << 20);
    let mut out = Vec::new();
    for &mc in &divisors(m) {
        if mc > 512 {
            continue;
        }
        for &nc in &divisors(n) {
            if nc % sigma != 0 && nc != n {
                continue;
            }
            if nc > 4096 {
                continue;
            }
            for &kc in &divisors(k) {
                let ws = 4 * (mc * kc + kc * nc + mc * nc);
                if ws <= 2 * last_private {
                    out.push((mc, nc, kc));
                }
            }
        }
    }
    if out.is_empty() {
        out.push((m, n, k));
    }
    out
}

/// The full search space for a problem.
pub struct SearchSpace {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub block_candidates: Vec<(usize, usize, usize)>,
    pub orders: Vec<LoopOrder>,
    /// Whether offline packing is on the menu. Offline packing moves the
    /// pack cost outside the timed region, so it is only a fair candidate
    /// when the caller actually reuses the packed operand (LibShalom-style
    /// usage); it must be explicitly enabled.
    pub allow_offline: bool,
}

impl SearchSpace {
    pub fn new(m: usize, n: usize, k: usize, chip: &ChipSpec) -> Self {
        let orders = LoopOrder::all().into_iter().filter(LoopOrder::valid).collect();
        SearchSpace {
            m,
            n,
            k,
            block_candidates: enumerate_blocks(m, n, k, chip),
            orders,
            allow_offline: false,
        }
    }

    /// Enable offline packing as a candidate (the caller promises reuse).
    pub fn with_offline(mut self) -> Self {
        self.allow_offline = true;
        self
    }

    /// The packing modes on the menu.
    pub fn packings(&self) -> &'static [Packing] {
        if self.allow_offline {
            &[Packing::None, Packing::Offline, Packing::Online]
        } else {
            &[Packing::None, Packing::Online]
        }
    }

    /// Total unpruned combinations (for reporting the pruning factor).
    pub fn unpruned_size(&self) -> usize {
        // All divisor triples × 120 orders × 3 packing modes.
        self.block_candidates.len() * 120 * 3
    }

    /// The pruned candidate list the exhaustive pass scores: every block
    /// candidate under the Goto order and one N-major alternative, with
    /// all three packing modes.
    pub fn pruned_candidates(&self) -> impl Iterator<Item = Schedule> + '_ {
        use LoopIndex::*;
        let orders = [LoopOrder::goto(), LoopOrder([Kc, Nc, Mc, Mr, Nr])];
        let packings = self.packings();
        self.block_candidates.iter().flat_map(move |&(mc, nc, kc)| {
            orders.into_iter().flat_map(move |order| {
                packings.iter().map(move |&packing| Schedule {
                    m: self.m,
                    n: self.n,
                    k: self.k,
                    mc,
                    nc,
                    kc,
                    order,
                    packing,
                })
            })
        })
    }

    /// A uniformly random schedule (for annealing moves).
    pub fn random(&self, rng: &mut impl rand::Rng) -> Schedule {
        let (mc, nc, kc) = self.block_candidates[rng.random_range(0..self.block_candidates.len())];
        let order = self.orders[rng.random_range(0..self.orders.len())];
        let packings = self.packings();
        let packing = packings[rng.random_range(0..packings.len())];
        Schedule { m: self.m, n: self.n, k: self.k, mc, nc, kc, order, packing }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_120_loop_orders() {
        let all = LoopOrder::all();
        assert_eq!(all.len(), 120);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 120);
    }

    #[test]
    fn valid_orders_keep_register_loops_inside() {
        let valid: Vec<_> = LoopOrder::all().into_iter().filter(LoopOrder::valid).collect();
        assert!(valid.contains(&LoopOrder::goto()));
        assert!(!valid.is_empty() && valid.len() < 120);
        for o in &valid {
            assert!(o.position(LoopIndex::Mr) > o.position(LoopIndex::Mc));
        }
    }

    #[test]
    fn divisors_are_correct() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(64).len(), 7);
        assert_eq!(divisors(1), vec![1]);
    }

    #[test]
    fn block_candidates_satisfy_divisibility_and_capacity() {
        let chip = ChipSpec::kp920();
        let cands = enumerate_blocks(256, 3136, 64, &chip);
        assert!(!cands.is_empty());
        for (mc, nc, kc) in cands {
            assert_eq!(256 % mc, 0);
            assert_eq!(3136 % nc, 0);
            assert_eq!(64 % kc, 0);
            assert!(4 * (mc * kc + kc * nc + mc * nc) <= 2 * (512 << 10));
        }
    }

    #[test]
    fn awkward_primes_still_get_a_candidate() {
        let chip = ChipSpec::m2();
        let cands = enumerate_blocks(13, 17, 19, &chip);
        assert!(!cands.is_empty());
    }

    #[test]
    fn pruning_reduces_the_space_substantially() {
        let chip = ChipSpec::graviton2();
        let space = SearchSpace::new(256, 3136, 64, &chip);
        let pruned = space.pruned_candidates().count();
        assert!(pruned * 10 < space.unpruned_size(), "{pruned} vs {}", space.unpruned_size());
    }
}
