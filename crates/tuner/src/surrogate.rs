//! A gradient-boosted-stumps cost regressor — the reproduction's stand-in
//! for AutoTVM's XGBoost model (§II-B).
//!
//! Each boosting round fits a depth-1 regression tree (a stump: one
//! feature, one threshold, two leaf values) to the residuals, exactly the
//! additive-tree structure XGBoost builds, minus the second-order niceties
//! that don't matter at this scale. Features are simple schedule
//! descriptors; the target is log-cycles from the analytic cost model or a
//! measurement.

use crate::space::{LoopIndex, Packing, Schedule};

/// Number of features extracted from a schedule.
pub const N_FEATURES: usize = 8;

/// Extract the feature vector of a schedule.
pub fn features(s: &Schedule) -> [f64; N_FEATURES] {
    [
        (s.mc as f64).ln(),
        (s.nc as f64).ln(),
        (s.kc as f64).ln(),
        (s.block_working_set() as f64).ln(),
        s.order.position(LoopIndex::Kc) as f64,
        s.order.position(LoopIndex::Mc) as f64 - s.order.position(LoopIndex::Nc) as f64,
        match s.packing {
            Packing::None => 0.0,
            Packing::Offline => 1.0,
            Packing::Online => 2.0,
        },
        ((s.m / s.mc) * (s.n / s.nc) * (s.k / s.kc)) as f64,
    ]
}

#[derive(Debug, Clone, Copy)]
struct Stump {
    feature: usize,
    threshold: f64,
    left: f64,
    right: f64,
}

impl Stump {
    fn predict(&self, x: &[f64; N_FEATURES]) -> f64 {
        if x[self.feature] <= self.threshold {
            self.left
        } else {
            self.right
        }
    }
}

/// The boosted ensemble.
#[derive(Debug, Clone, Default)]
pub struct Surrogate {
    base: f64,
    stumps: Vec<Stump>,
    learning_rate: f64,
}

impl Surrogate {
    /// Fit `rounds` stumps to `(schedule, cost)` pairs. Costs are modelled
    /// in log space (cycle counts span orders of magnitude).
    pub fn fit(samples: &[(Schedule, f64)], rounds: usize) -> Surrogate {
        assert!(!samples.is_empty(), "cannot fit surrogate on no samples");
        let xs: Vec<[f64; N_FEATURES]> = samples.iter().map(|(s, _)| features(s)).collect();
        let ys: Vec<f64> = samples.iter().map(|(_, c)| c.max(1.0).ln()).collect();
        let base = ys.iter().sum::<f64>() / ys.len() as f64;
        let mut model = Surrogate { base, stumps: Vec::new(), learning_rate: 0.3 };
        let mut residuals: Vec<f64> = ys.iter().map(|y| y - base).collect();

        for _ in 0..rounds {
            let Some(stump) = best_stump(&xs, &residuals) else { break };
            for (i, x) in xs.iter().enumerate() {
                residuals[i] -= model.learning_rate * stump.predict(x);
            }
            model.stumps.push(stump);
        }
        model
    }

    /// Predicted cost (cycles) for a schedule.
    pub fn predict(&self, s: &Schedule) -> f64 {
        let x = features(s);
        let mut y = self.base;
        for st in &self.stumps {
            y += self.learning_rate * st.predict(&x);
        }
        y.exp()
    }

    pub fn rounds(&self) -> usize {
        self.stumps.len()
    }
}

/// Exhaustively find the squared-error-optimal stump over all features and
/// candidate thresholds (midpoints of sorted unique values).
fn best_stump(xs: &[[f64; N_FEATURES]], residuals: &[f64]) -> Option<Stump> {
    let n = xs.len();
    let mut best: Option<(f64, Stump)> = None;
    for f in 0..N_FEATURES {
        let mut vals: Vec<f64> = xs.iter().map(|x| x[f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        for w in vals.windows(2) {
            let thr = (w[0] + w[1]) / 2.0;
            let (mut sl, mut nl, mut sr, mut nr) = (0.0, 0usize, 0.0, 0usize);
            for i in 0..n {
                if xs[i][f] <= thr {
                    sl += residuals[i];
                    nl += 1;
                } else {
                    sr += residuals[i];
                    nr += 1;
                }
            }
            if nl == 0 || nr == 0 {
                continue;
            }
            let left = sl / nl as f64;
            let right = sr / nr as f64;
            // Error reduction = sum of squares explained.
            let gain = left * sl + right * sr;
            if best.as_ref().is_none_or(|(g, _)| gain > *g) {
                best = Some((gain, Stump { feature: f, threshold: thr, left, right }));
            }
        }
    }
    best.map(|(_, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::schedule_cost;
    use crate::space::SearchSpace;
    use autogemm_arch::ChipSpec;

    fn training_data(chip: &ChipSpec) -> Vec<(Schedule, f64)> {
        let space = SearchSpace::new(256, 256, 256, chip);
        space
            .pruned_candidates()
            .map(|s| {
                let c = schedule_cost(&s, chip).total();
                (s, c)
            })
            .collect()
    }

    #[test]
    fn surrogate_learns_the_cost_landscape() {
        let chip = ChipSpec::graviton2();
        let data = training_data(&chip);
        assert!(data.len() > 20, "need a meaningful training set");
        let (train, test): (Vec<_>, Vec<_>) =
            data.iter().cloned().enumerate().partition(|(i, _)| i % 3 != 0);
        let train: Vec<_> = train.into_iter().map(|(_, d)| d).collect();
        let test: Vec<_> = test.into_iter().map(|(_, d)| d).collect();
        let model = Surrogate::fit(&train, 60);
        assert!(model.rounds() > 10);

        // Rank correlation on held-out data must be clearly positive.
        let mut concordant = 0i64;
        let mut discordant = 0i64;
        for i in 0..test.len() {
            for j in i + 1..test.len() {
                let d_true = test[i].1 - test[j].1;
                let d_pred = model.predict(&test[i].0) - model.predict(&test[j].0);
                if d_true * d_pred > 0.0 {
                    concordant += 1;
                } else if d_true * d_pred < 0.0 {
                    discordant += 1;
                }
            }
        }
        let tau = (concordant - discordant) as f64 / (concordant + discordant).max(1) as f64;
        assert!(tau > 0.4, "Kendall tau {tau:.2} too weak");
    }

    #[test]
    fn predictions_are_positive_and_finite() {
        let chip = ChipSpec::kp920();
        let data = training_data(&chip);
        let model = Surrogate::fit(&data, 40);
        for (s, _) in &data {
            let p = model.predict(s);
            assert!(p.is_finite() && p > 0.0);
        }
    }

    #[test]
    fn single_sample_fits_constant() {
        let chip = ChipSpec::m2();
        let data = training_data(&chip);
        let one = vec![data[0].clone()];
        let model = Surrogate::fit(&one, 10);
        let p = model.predict(&data[0].0);
        assert!((p.ln() - data[0].1.ln()).abs() < 0.01);
    }
}
