//! Seeded, deterministic fault injection for the native backend.
//!
//! Behind the `faultinject` cargo feature (a no-op when off, like
//! `telemetry`): probes compiled into the hot paths consult a globally
//! armed [`FaultPlan`] and, at the chosen call, either *degrade* (force
//! the graceful-degradation path), *fail* (surface a structured
//! [`GemmError`](crate::error::GemmError)) or *panic* (exercise the
//! worker-panic containment). With the feature off every probe is an
//! `#[inline(always)]` constant `Ok`, so the release hot loops are
//! untouched.
//!
//! Injection sites:
//!
//! * [`FaultSite::PackAlloc`] — panel-buffer acquisition. `Degrade`
//!   forces the unpooled packing path, `Fail` simulates allocation
//!   failure, `Panic` panics mid-setup.
//! * [`FaultSite::KernelDispatch`] — SIMD backend selection per run.
//!   `Degrade` simulates a failed backend probe and routes the run to
//!   the scalar reference kernels; `Panic` panics at dispatch.
//! * [`FaultSite::WorkerStartup`] — entry of each worker's block loop.
//!   Only `Panic` is meaningful here (a worker cannot "degrade" without
//!   silently dropping its share of the work).
//! * [`FaultSite::WorkerHeartbeat`] — a worker's block-boundary
//!   heartbeat. `Stall` wedges the worker there (bounded by the action's
//!   cap and broken early by supervision), exercising the stuck-worker
//!   watchdog; `Panic` kills the worker mid-drain. `Degrade`/`Fail` are
//!   ignored at this site (a heartbeat has no degraded twin).
//! * [`FaultSite::PoolSubmit`] — handing a threaded section to the
//!   persistent worker pool. `Degrade` forces the caller to drain the
//!   section inline on its own thread (the single-thread twin of the
//!   submission), `Fail` simulates submission failure, `Panic` panics at
//!   the submit probe and is contained like any setup panic.
//! * [`FaultSite::KernelCompute`] — the per-unit compute body (a block
//!   of the tiled driver, or a work unit of a GEMV fast path), probed
//!   *after* the unit's stores land. `CorruptOutput` deterministically
//!   perturbs elements of the unit's freshly written `C` region,
//!   simulating a silently-wrong kernel for the
//!   [`verify`](crate::verify) integrity layer to catch; `Panic` panics
//!   inside the unit and is contained like any worker panic.
//!   `Degrade`/`Fail`/`Stall` are ignored here (a finished unit has no
//!   degraded twin).
//!
//! Triggers are counted per site with atomic counters, so a plan like
//! `Nth(3)` at `WorkerStartup` deterministically kills the third worker
//! to reach its loop regardless of scheduling. Arm a plan with
//! [`arm`]; the returned guard disarms on drop, and
//! [`ArmGuard::fired`] reports how many injections actually triggered
//! (chaos tests assert it is non-zero so a probe that moved or vanished
//! fails loudly instead of silently passing).
//!
//! ## Concurrency rule for `#[test]`s
//!
//! The armed plan is process-global, so two concurrently-running tests
//! must never both arm one. [`arm`] enforces this itself: it blocks on a
//! private serialization mutex that the returned [`ArmGuard`] holds
//! until drop, so a second `arm` simply waits for the first guard to be
//! dropped instead of observing (or clobbering) a foreign plan. Tests
//! need no external lock of their own for *arming*; a suite-level lock
//! is still useful when a test wants to assert global side effects (the
//! chaos suite keeps one to scope its panic-hook silencer).
//!
//! Note `FaultPlan::seeded` deliberately draws only from the three
//! original sites — never `WorkerHeartbeat`, `PoolSubmit` or
//! `KernelCompute` — so seeded chaos sweeps keep their historical
//! determinism and can never wedge a run on a `Stall` or silently
//! corrupt output; stalls, pool-submission faults and output corruption
//! are exercised by dedicated watchdog/pool/integrity tests and the
//! soak driver.

/// A place in the native backend where a fault can be injected.
///
/// Marked `#[non_exhaustive]`: new probe sites are added as subsystems
/// grow, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultSite {
    /// Panel-buffer acquisition (pool or fresh allocation).
    PackAlloc,
    /// SIMD backend selection at the start of a run.
    KernelDispatch,
    /// Entry of a worker's block loop.
    WorkerStartup,
    /// A worker's block-boundary heartbeat (see the module docs; the
    /// `Stall` action is only meaningful here).
    WorkerHeartbeat,
    /// Handing a threaded section to the persistent worker pool.
    /// `Degrade` reroutes the caller to an inline drain.
    PoolSubmit,
    /// The per-unit compute body, probed after the unit's `C` stores
    /// land. `CorruptOutput` perturbs the unit's output region (see the
    /// module docs); only `CorruptOutput` and `Panic` are meaningful
    /// here.
    KernelCompute,
}

impl FaultSite {
    #[cfg_attr(not(feature = "faultinject"), allow(dead_code))]
    pub(crate) fn index(self) -> usize {
        match self {
            FaultSite::PackAlloc => 0,
            FaultSite::KernelDispatch => 1,
            FaultSite::WorkerStartup => 2,
            FaultSite::WorkerHeartbeat => 3,
            FaultSite::PoolSubmit => 4,
            FaultSite::KernelCompute => 5,
        }
    }

    /// All sites, in counter order.
    pub const ALL: [FaultSite; 6] = [
        FaultSite::PackAlloc,
        FaultSite::KernelDispatch,
        FaultSite::WorkerStartup,
        FaultSite::WorkerHeartbeat,
        FaultSite::PoolSubmit,
        FaultSite::KernelCompute,
    ];
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            FaultSite::PackAlloc => "pack_alloc",
            FaultSite::KernelDispatch => "kernel_dispatch",
            FaultSite::WorkerStartup => "worker_startup",
            FaultSite::WorkerHeartbeat => "worker_heartbeat",
            FaultSite::PoolSubmit => "pool_submit",
            FaultSite::KernelCompute => "kernel_compute",
        })
    }
}

/// What the injected fault does at its site.
///
/// Marked `#[non_exhaustive]`: new failure modes are added as
/// subsystems grow, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultAction {
    /// Force the graceful-degradation path (unpooled packing, scalar
    /// kernels). The GEMM must still complete with a correct result.
    Degrade,
    /// Report failure: the probe's caller surfaces a structured
    /// `GemmError` instead of computing.
    Fail,
    /// Panic at the probe, exercising containment. The panic message
    /// always contains `"injected fault"`.
    Panic,
    /// Wedge the probing worker for up to the given number of
    /// milliseconds (it resumes early if the run is cancelled, e.g. by
    /// the watchdog). Only meaningful at [`FaultSite::WorkerHeartbeat`];
    /// other sites ignore it.
    Stall(u64),
    /// Deterministically perturb up to `elements` cells of the probing
    /// unit's freshly written `C` region, simulating a silently wrong
    /// kernel. Only meaningful at [`FaultSite::KernelCompute`]; other
    /// sites ignore it.
    CorruptOutput { elements: usize },
}

impl std::fmt::Display for FaultAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultAction::Degrade => f.write_str("degrade"),
            FaultAction::Fail => f.write_str("fail"),
            FaultAction::Panic => f.write_str("panic"),
            FaultAction::Stall(ms) => write!(f, "stall({ms} ms)"),
            FaultAction::CorruptOutput { elements } => {
                write!(f, "corrupt-output({elements} elements)")
            }
        }
    }
}

/// When the fault fires, counted per site across the armed plan's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire exactly once, on the `n`-th probe call at the site (1-based).
    Nth(u64),
    /// Fire on every `k`-th probe call at the site.
    EveryKth(u64),
}

impl Trigger {
    #[cfg_attr(not(feature = "faultinject"), allow(dead_code))]
    fn matches(self, call: u64) -> bool {
        match self {
            Trigger::Nth(n) => call == n.max(1),
            Trigger::EveryKth(k) => call.is_multiple_of(k.max(1)),
        }
    }
}

/// One injection: a site, what to do there, and when.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    pub site: FaultSite,
    pub action: FaultAction,
    pub trigger: Trigger,
}

/// A deterministic set of injections to arm for one test scenario.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with a single injection.
    pub fn single(site: FaultSite, action: FaultAction, trigger: Trigger) -> Self {
        FaultPlan { specs: vec![FaultSpec { site, action, trigger }] }
    }

    /// Derive a 1–3 injection plan deterministically from `seed`
    /// (xorshift64), restricted to site/action combinations that are
    /// meaningful. Seeded plans draw only from the three original sites
    /// (never `WorkerHeartbeat`/`Stall`, never `PoolSubmit`, never
    /// `KernelCompute`) so historical seeds stay deterministic and a
    /// seeded sweep can never wedge or corrupt — see the module docs.
    pub fn seeded(seed: u64) -> Self {
        let mut state = seed | 1; // xorshift must not start at 0
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let count = 1 + (next() % 3) as usize;
        let mut specs = Vec::with_capacity(count);
        for _ in 0..count {
            // `% 3`, not `% ALL.len()`: WorkerHeartbeat, PoolSubmit and
            // KernelCompute are excluded by design.
            let site = FaultSite::ALL[(next() % 3) as usize];
            let action = match site {
                FaultSite::PackAlloc => match next() % 3 {
                    0 => FaultAction::Degrade,
                    1 => FaultAction::Fail,
                    _ => FaultAction::Panic,
                },
                FaultSite::KernelDispatch => {
                    if next() % 2 == 0 {
                        FaultAction::Degrade
                    } else {
                        FaultAction::Panic
                    }
                }
                FaultSite::WorkerStartup => FaultAction::Panic,
                // Unreachable: seeded sites are drawn `% 3` above.
                FaultSite::WorkerHeartbeat | FaultSite::PoolSubmit | FaultSite::KernelCompute => {
                    FaultAction::Panic
                }
            };
            let trigger = if next() % 2 == 0 {
                Trigger::Nth(1 + next() % 3)
            } else {
                Trigger::EveryKth(2 + next() % 3)
            };
            specs.push(FaultSpec { site, action, trigger });
        }
        FaultPlan { specs }
    }
}

/// What a probe told its caller to do. `Panic` never reaches the
/// caller — it is raised inside the probe itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// No fault: proceed normally.
    Ok,
    /// Take the degradation path.
    Degrade,
    /// Surface a structured error.
    Fail,
    /// Wedge here for up to the given milliseconds (heartbeat site only;
    /// other sites treat it as `Ok`).
    Stall(u64),
    /// Perturb up to `elements` cells of the probing unit's output
    /// region (kernel-compute site only; other sites treat it as `Ok`).
    Corrupt { elements: usize },
}

#[cfg(feature = "faultinject")]
mod armed {
    use super::{FaultAction, FaultPlan, FaultSite, Probe};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    pub(super) struct ArmedState {
        plan: FaultPlan,
        calls: [AtomicU64; 6],
        fired: AtomicU64,
    }

    static ANY_ARMED: AtomicBool = AtomicBool::new(false);
    static STATE: Mutex<Option<Arc<ArmedState>>> = Mutex::new(None);
    /// Serializes armed plans across threads: held (via the `ArmGuard`)
    /// from `arm` until the guard drops, so concurrently-running tests
    /// queue up instead of observing each other's plans.
    static ARM_SERIAL: Mutex<()> = Mutex::new(());

    /// Disarms the global plan on drop; reports how many faults fired.
    ///
    /// Holds the arming serialization lock for its whole lifetime (see
    /// the module-docs concurrency rule), so at most one plan is ever
    /// visible to the probes and a second `arm` blocks rather than
    /// clobbering it. Consequence: never call `arm` twice on the same
    /// thread while a guard is alive — that self-deadlocks by design.
    pub struct ArmGuard {
        state: Arc<ArmedState>,
        _serial: std::sync::MutexGuard<'static, ()>,
    }

    impl ArmGuard {
        /// How many injections have actually triggered so far.
        pub fn fired(&self) -> u64 {
            self.state.fired.load(Ordering::Relaxed)
        }
    }

    impl Drop for ArmGuard {
        fn drop(&mut self) {
            let mut slot = STATE.lock().unwrap_or_else(|e| e.into_inner());
            ANY_ARMED.store(false, Ordering::SeqCst);
            *slot = None;
            // `_serial` is released after this, once the plan is gone.
        }
    }

    /// Arm `plan` globally. The returned guard disarms on drop. Arming
    /// is serialized: if another guard is alive (on any thread), this
    /// call blocks until it drops — concurrent `#[test]`s can therefore
    /// arm freely without observing each other's plans.
    pub fn arm(plan: FaultPlan) -> ArmGuard {
        let serial = ARM_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let state = Arc::new(ArmedState {
            plan,
            calls: std::array::from_fn(|_| AtomicU64::new(0)),
            fired: AtomicU64::new(0),
        });
        let mut slot = STATE.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(slot.is_none(), "serialization lock held but a plan is armed");
        *slot = Some(Arc::clone(&state));
        ANY_ARMED.store(true, Ordering::SeqCst);
        drop(slot);
        ArmGuard { state, _serial: serial }
    }

    #[inline]
    pub(crate) fn probe(site: FaultSite) -> Probe {
        if !ANY_ARMED.load(Ordering::Relaxed) {
            return Probe::Ok;
        }
        probe_armed(site)
    }

    #[cold]
    fn probe_armed(site: FaultSite) -> Probe {
        let state = {
            let slot = STATE.lock().unwrap_or_else(|e| e.into_inner());
            match slot.as_ref() {
                Some(s) => Arc::clone(s),
                None => return Probe::Ok,
            }
        };
        let call = state.calls[site.index()].fetch_add(1, Ordering::SeqCst) + 1;
        for spec in &state.plan.specs {
            if spec.site == site && spec.trigger.matches(call) {
                state.fired.fetch_add(1, Ordering::SeqCst);
                match spec.action {
                    FaultAction::Degrade => return Probe::Degrade,
                    FaultAction::Fail => return Probe::Fail,
                    FaultAction::Panic => {
                        panic!("injected fault at {site:?} (call {call})")
                    }
                    FaultAction::Stall(ms) => return Probe::Stall(ms),
                    FaultAction::CorruptOutput { elements } => return Probe::Corrupt { elements },
                }
            }
        }
        Probe::Ok
    }
}

#[cfg(feature = "faultinject")]
pub use armed::{arm, ArmGuard};

/// Consult the armed plan at `site`. With the `faultinject` feature off
/// this is a constant `Probe::Ok` the optimizer erases.
#[inline(always)]
pub(crate) fn probe(site: FaultSite) -> Probe {
    #[cfg(feature = "faultinject")]
    {
        armed::probe(site)
    }
    #[cfg(not(feature = "faultinject"))]
    {
        let _ = site;
        Probe::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        for seed in 0..64u64 {
            let p1 = FaultPlan::seeded(seed);
            let p2 = FaultPlan::seeded(seed);
            assert_eq!(p1, p2, "seed {seed} not deterministic");
            assert!(!p1.specs.is_empty() && p1.specs.len() <= 3);
            for spec in &p1.specs {
                if spec.site == FaultSite::WorkerStartup {
                    assert_eq!(spec.action, FaultAction::Panic);
                }
                if spec.site == FaultSite::KernelDispatch {
                    assert_ne!(spec.action, FaultAction::Fail);
                }
                match spec.trigger {
                    Trigger::Nth(n) => assert!(n >= 1),
                    Trigger::EveryKth(k) => assert!(k >= 2),
                }
            }
        }
    }

    #[test]
    fn trigger_matching() {
        assert!(Trigger::Nth(3).matches(3));
        assert!(!Trigger::Nth(3).matches(2));
        assert!(!Trigger::Nth(3).matches(4));
        assert!(Trigger::EveryKth(2).matches(2));
        assert!(Trigger::EveryKth(2).matches(4));
        assert!(!Trigger::EveryKth(2).matches(3));
        // Degenerate parameters clamp instead of panicking.
        assert!(Trigger::Nth(0).matches(1));
        assert!(Trigger::EveryKth(0).matches(5));
    }

    #[test]
    fn probe_is_ok_when_disarmed() {
        assert_eq!(probe(FaultSite::PackAlloc), Probe::Ok);
        assert_eq!(probe(FaultSite::KernelDispatch), Probe::Ok);
        assert_eq!(probe(FaultSite::WorkerStartup), Probe::Ok);
        assert_eq!(probe(FaultSite::WorkerHeartbeat), Probe::Ok);
        assert_eq!(probe(FaultSite::PoolSubmit), Probe::Ok);
        assert_eq!(probe(FaultSite::KernelCompute), Probe::Ok);
    }

    #[test]
    fn seeded_plans_never_use_the_heartbeat_or_pool_submit_sites() {
        for seed in 0..256u64 {
            for spec in &FaultPlan::seeded(seed).specs {
                assert_ne!(spec.site, FaultSite::WorkerHeartbeat, "seed {seed}");
                assert_ne!(spec.site, FaultSite::PoolSubmit, "seed {seed}");
                assert_ne!(spec.site, FaultSite::KernelCompute, "seed {seed}");
            }
        }
    }

    #[test]
    fn sites_and_actions_display_stable_names() {
        assert_eq!(FaultSite::KernelCompute.to_string(), "kernel_compute");
        assert_eq!(FaultSite::PackAlloc.to_string(), "pack_alloc");
        assert_eq!(FaultAction::Stall(250).to_string(), "stall(250 ms)");
        assert_eq!(
            FaultAction::CorruptOutput { elements: 3 }.to_string(),
            "corrupt-output(3 elements)"
        );
    }

    /// The satellite fix for ISSUE 5: two threads arming concurrently
    /// serialize — neither ever observes (or clobbers) the other's plan.
    #[cfg(feature = "faultinject")]
    #[test]
    fn concurrent_arming_serializes_instead_of_clobbering() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let live = Arc::clone(&live);
            let peak = Arc::clone(&peak);
            handles.push(std::thread::spawn(move || {
                let plan = FaultPlan::single(
                    FaultSite::PackAlloc,
                    FaultAction::Degrade,
                    Trigger::Nth(1 + i),
                );
                let guard = arm(plan);
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                live.fetch_sub(1, Ordering::SeqCst);
                drop(guard);
            }));
        }
        for h in handles {
            h.join().expect("arming thread panicked");
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "two plans were armed at once");
        // Everything disarmed afterwards.
        assert_eq!(probe(FaultSite::PackAlloc), Probe::Ok);
    }
}
