//! Simulated execution backend: runs the generated virtual-ISA kernels on
//! the cycle-level machine model of `autogemm-sim`, block by block.
//!
//! One interior cache block is simulated as a fused micro-kernel chain
//! (§III-C2) against the chip's cache hierarchy; its cycle count is
//! memoized per `(m_c, n_c, k_c, warmth)` and composed over the block grid
//! analytically — the hybrid simulation strategy described in DESIGN.md.
//! Long chains are sampled: the steady-state per-tile cost is measured
//! over a window and extrapolated, which keeps ResNet-scale problems
//! simulable in milliseconds without losing the warm-up transient.

use crate::plan::ExecutionPlan;
use autogemm_arch::ChipSpec;
use autogemm_kernelgen::{MicroKernelSpec, PipelineOpts, Strides, TileInvocation};
use autogemm_sim::{run_chain, run_unfused, KernelBuffers, ThreadWork, Warmth};
use autogemm_tuner::cost::{no_packing_penalty, packing_cycles};
use autogemm_tuner::{Packing, Schedule};

/// Simulated cost of one interior cache block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockCost {
    pub cycles: u64,
    /// Micro-kernel launches charged.
    pub tiles: u64,
}

/// Maximum tiles simulated per chain before extrapolating (adapted down
/// for very deep kernels so a block simulation stays in the low millions
/// of instructions).
const SAMPLE_TILES: usize = 512;
/// Instruction budget for one block simulation.
const SAMPLE_INSTR_BUDGET: usize = 4_000_000;

/// Build the fused-chain invocations of a block plan, plus the element
/// size of the `B` buffer the chain addresses.
///
/// With packing enabled, `B` is laid out the way a packed GEMM stores it:
/// one contiguous `(k_c + 2) × n_r` panel per distinct tile column, so the
/// kernels' `B` walk is perfectly sequential (and caught by the hardware
/// stream prefetcher), exactly as in the real library. Without packing the
/// kernels stride the row-major block (`ldb = n_c`), whose TLB/line cost
/// the cost model penalizes separately.
fn chain_invocations(
    plan: &ExecutionPlan,
    accumulate: bool,
    lda: usize,
) -> (Vec<TileInvocation>, usize) {
    use std::collections::HashMap;
    let s = &plan.schedule;
    let packed = plan.schedule.packing != autogemm_tuner::Packing::None;
    let mut panel_offsets: HashMap<(usize, usize), usize> = HashMap::new();
    let mut b_elems = if packed { 0 } else { (s.kc + 2) * s.nc };

    let invocations = plan
        .block_plan
        .placements
        .iter()
        .map(|p| {
            let (b_off, ldb) = if packed {
                let key = (p.col, p.tile.nr);
                let off = *panel_offsets.entry(key).or_insert_with(|| {
                    let o = b_elems;
                    b_elems += (s.kc + 2) * p.tile.nr;
                    o
                });
                (off, p.tile.nr)
            } else {
                (p.col, s.nc)
            };
            TileInvocation {
                spec: MicroKernelSpec {
                    tile: p.tile,
                    kc: s.kc,
                    sigma_lane: plan.sigma_lane,
                    accumulate,
                    strides: Strides::Static { lda, ldb, ldc: s.nc },
                    opts: PipelineOpts { rotate: plan.opts.rotate, prefetch: true },
                },
                a_off: p.row * lda,
                b_off,
                c_off: p.row * s.nc + p.col,
            }
        })
        .collect();
    (invocations, b_elems)
}

/// Allocate chain buffers with a custom-width flat `B` region.
///
/// `A` and `C` carry eight extra (zeroed) rows so padded tile plans — the
/// OpenBLAS-style strategy runs full kernels against padded buffers — stay
/// within mapped memory.
fn chain_buffers(plan: &ExecutionPlan, b_elems: usize) -> KernelBuffers {
    let s = &plan.schedule;
    let lda = s.kc + 2 * plan.sigma_lane;
    const PAD_ROWS: usize = 8;
    let mut mem = autogemm_sim::Memory::new();
    let a = mem.alloc(s.mc + PAD_ROWS, s.kc, lda);
    let b = mem.alloc(1, b_elems, b_elems);
    let c = mem.alloc(s.mc + PAD_ROWS, s.nc, s.nc);
    KernelBuffers { mem, a, b, c }
}

/// Cache residency of the packed panels when a block's kernels start.
fn block_warmth(plan: &ExecutionPlan, chip: &ChipSpec) -> Warmth {
    if let Some(w) = plan.warmth {
        return w;
    }
    let ws = plan.schedule.block_working_set();
    if ws <= chip.l1d_bytes() {
        Warmth::L1
    } else if chip.caches.get(1).map(|c| ws <= c.size_bytes).unwrap_or(false) {
        Warmth::L2
    } else {
        Warmth::LastLevel
    }
}

/// Simulate one interior block of the plan on the chip.
///
/// Blocks with many tiles are sampled: the first `SAMPLE_TILES` run on the
/// simulator and the steady-state tail (the second half of the sample) is
/// extrapolated over the remaining tiles.
pub fn simulate_block(plan: &ExecutionPlan, chip: &ChipSpec, accumulate: bool) -> BlockCost {
    let s = &plan.schedule;
    let lda = s.kc + 2 * plan.sigma_lane;
    let (invocations, b_elems) = chain_invocations(plan, accumulate, lda);
    let total = invocations.len();
    assert!(total > 0, "empty block plan");
    let warmth = block_warmth(plan, chip);
    // Adapt the sample window to the per-tile instruction weight.
    let instrs_per_tile = plan
        .block_plan
        .placements
        .iter()
        .map(|p| 2 * p.tile.mr * p.tile.nr_vec(plan.sigma_lane) * s.kc)
        .sum::<usize>()
        / total
        + 1;
    let sample_tiles = (SAMPLE_INSTR_BUDGET / instrs_per_tile).clamp(8, SAMPLE_TILES);

    // Fused plans execute each block as one program (§III-C2); unfused
    // plans (the static baselines) pay a launch per kernel.
    let run = |invs: &[TileInvocation], bufs: &mut KernelBuffers| {
        if plan.opts.fused {
            run_chain(invs, chip, bufs, warmth)
        } else {
            run_unfused(invs, chip, bufs, warmth)
        }
    };

    if total <= sample_tiles {
        let mut bufs = chain_buffers(plan, b_elems);
        let report = run(&invocations, &mut bufs);
        return BlockCost { cycles: report.cycles, tiles: total as u64 };
    }

    // Sampled simulation: full-chain prefix, steady-state extrapolation,
    // floored at the FMA-issue bound (no schedule can beat issuing every
    // FMA at the port's reciprocal throughput).
    let half = sample_tiles / 2;
    let mut bufs = chain_buffers(plan, b_elems);
    let head = run(&invocations[..half], &mut bufs);
    let mut bufs2 = chain_buffers(plan, b_elems);
    let full = run(&invocations[..sample_tiles], &mut bufs2);
    let steady_per_tile =
        (full.cycles.saturating_sub(head.cycles)) as f64 / (sample_tiles - half) as f64;
    let cycles = full.cycles as f64 + steady_per_tile * (total - sample_tiles) as f64;
    let fma_instrs: u64 = plan
        .block_plan
        .placements
        .iter()
        .map(|p| (p.tile.mr * p.tile.nr_vec(plan.sigma_lane) * s.kc) as u64)
        .sum();
    let floor = fma_instrs * chip.rt_fma;
    BlockCost { cycles: (cycles.round() as u64).max(floor), tiles: total as u64 }
}

/// Simulated single-thread cost of the whole GEMM: the simulated block
/// compute, combined with the loop-order traffic model and packing costs
/// using the same composition rule as the tuner's pruning cost — so the
/// schedule the tuner picks is scored the way it will be charged.
pub fn single_core_cycles(plan: &ExecutionPlan, chip: &ChipSpec, block: BlockCost) -> f64 {
    let sched = &plan.schedule;
    let (tm, tn, tk) = plan.grid();
    let blocks = (tm * tn * tk) as f64;
    let compute = block.cycles as f64 * blocks;
    let pack = packing_cycles(sched, chip);
    let bytes = autogemm_tuner::cost::traffic_bytes(sched) * no_packing_penalty(sched, chip);
    let traffic = autogemm_tuner::cost::traffic_cycles(sched, chip, bytes);
    compute.max(traffic) + 0.25 * compute.min(traffic) + pack
}

/// Partition the block grid over `threads` workers (no K split, §V-C) and
/// produce per-thread work for the multicore makespan model.
pub fn thread_works(
    plan: &ExecutionPlan,
    chip: &ChipSpec,
    block: BlockCost,
    threads: usize,
) -> Vec<ThreadWork> {
    let (tm, tn, tk) = plan.grid();
    let c_blocks = tm * tn;
    let threads = threads.max(1).min(chip.cores);
    let sched = &plan.schedule;
    // DRAM bytes for the whole problem from the loop-order traffic model,
    // split evenly per C block.
    let total_bytes = autogemm_tuner::cost::traffic_bytes(sched) * no_packing_penalty(sched, chip);
    let bytes_per_block = total_bytes / c_blocks as f64;
    let pack_cycles_per_thread = packing_cycles(sched, chip) / threads as f64;

    (0..threads)
        .map(|t| {
            let my_blocks = (c_blocks + threads - 1 - t) / threads; // round-robin share
            let compute = my_blocks as f64 * tk as f64 * block.cycles as f64;
            ThreadWork {
                cycles: (compute + pack_cycles_per_thread) as u64,
                dram_bytes: (my_blocks as f64 * bytes_per_block) as u64,
            }
        })
        .collect()
}

/// Per-thread work for a library that threads *inside* its own GEMM
/// driver (the classic BLAS fork-join model): the block work divides
/// evenly over threads regardless of the cache-block grid, with a small
/// imbalance factor, and traffic splits evenly too.
pub fn thread_works_even(
    plan: &ExecutionPlan,
    chip: &ChipSpec,
    block: BlockCost,
    threads: usize,
) -> Vec<ThreadWork> {
    let (tm, tn, tk) = plan.grid();
    let blocks = (tm * tn * tk) as u64;
    let threads = threads.max(1).min(chip.cores);
    let sched = &plan.schedule;
    let total_cycles = (blocks * block.cycles) as f64 * 1.05 / threads as f64;
    let total_bytes = autogemm_tuner::cost::traffic_bytes(sched) * no_packing_penalty(sched, chip);
    let pack = packing_cycles(sched, chip) / threads as f64;
    (0..threads)
        .map(|_| ThreadWork {
            cycles: (total_cycles + pack) as u64,
            dram_bytes: (total_bytes / threads as f64) as u64,
        })
        .collect()
}

/// Force the multi-core `k_c = K` constraint onto a schedule (§V-C).
pub fn multicore_schedule(
    m: usize,
    n: usize,
    k: usize,
    chip: &ChipSpec,
    offline: bool,
    threads: usize,
) -> Schedule {
    autogemm_tuner::tune_multicore(m, n, k, chip, offline, threads)
}

/// Effective packing mode of a plan (exposed for reports).
pub fn packing_of(plan: &ExecutionPlan) -> Packing {
    plan.schedule.packing
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_tuner::tune;

    fn plan_for(m: usize, n: usize, k: usize, chip: &ChipSpec) -> ExecutionPlan {
        ExecutionPlan::from_schedule(tune(m, n, k, chip), chip)
    }

    #[test]
    fn block_simulation_produces_cycles() {
        let chip = ChipSpec::graviton2();
        let plan = plan_for(26, 36, 64, &chip);
        let cost = simulate_block(&plan, &chip, false);
        assert!(cost.cycles > 0);
        assert_eq!(cost.tiles as usize, plan.block_plan.tile_count());
    }

    #[test]
    fn sampled_blocks_scale_with_tile_count() {
        // A plan with many tiles must cost roughly proportionally more
        // than a smaller one with the same tile shapes.
        let chip = ChipSpec::graviton2();
        let small = plan_for(40, 64, 32, &chip);
        let small_cost = simulate_block(&small, &chip, true);
        let big = plan_for(80, 128, 32, &chip);
        let big_cost = simulate_block(&big, &chip, true);
        if big.schedule.mc == 80 && big.schedule.nc == 128 && small.schedule.mc == 40 {
            let ratio = big_cost.cycles as f64 / small_cost.cycles as f64;
            assert!(ratio > 2.0, "ratio {ratio:.2}");
        }
    }

    #[test]
    fn thread_works_partition_all_blocks() {
        let chip = ChipSpec::kp920();
        let plan = plan_for(64, 128, 64, &chip);
        let block = BlockCost { cycles: 1000, tiles: 10 };
        let works = thread_works(&plan, &chip, block, 4);
        assert_eq!(works.len(), 4.min(chip.cores));
        let (tm, tn, tk) = plan.grid();
        let total_cycles: u64 = works.iter().map(|w| w.cycles).sum();
        // Every block appears exactly once across threads (ignoring the
        // small packing share).
        assert!(total_cycles >= (tm * tn * tk) as u64 * 1000);
    }

    #[test]
    fn multicore_schedule_pins_kc_to_k() {
        let chip = ChipSpec::graviton2();
        for (m, n, k) in [(128, 784, 1152), (64, 3136, 64)] {
            let s = multicore_schedule(m, n, k, &chip, false, 4);
            assert_eq!(s.kc, k, "multi-core k_c must equal K (TVM limitation)");
        }
    }
}
