//! The explicit SIMD lane layer: a 4-lane `f32` vector ([`F32x4`])
//! matching the paper's `σ_lane = 4` NEON register model, plus the
//! runtime backend selection the micro-kernels dispatch on.
//!
//! ## Backends
//!
//! * **aarch64** — `core::arch::aarch64` NEON intrinsics
//!   (`vld1q_f32` / `vfmaq_f32` / `vst1q_f32`). NEON is baseline on
//!   aarch64, so this backend needs no runtime detection and multiplies
//!   are always fused.
//! * **x86_64** — `core::arch::x86_64` SSE2 intrinsics (baseline on
//!   x86_64). The fused path (`_mm_fmadd_ps`) additionally requires the
//!   FMA extension, which is probed **at runtime** with
//!   `is_x86_feature_detected!("fma")`; kernels compiled for it carry
//!   `#[target_feature(enable = "fma")]` and are only reachable through
//!   the probe (see [`SimdBackend::detect`]).
//! * **scalar** — a `[f32; 4]` array fallback for every other
//!   architecture, and for any architecture when the `force-scalar`
//!   cargo feature is on (CI builds it so the fallback cannot rot). It
//!   uses `f32::mul_add`, so its results are bit-identical to the fused
//!   vector backends and to the scalar reference kernel.
//!
//! ## Alignment contract
//!
//! Loads and stores use the unaligned-tolerant instructions
//! (`_mm_loadu_ps`, `vld1q_f32`), so correctness never depends on
//! alignment; packed panels are nevertheless 64-byte aligned by
//! [`crate::packing::AlignedVec`] so vector loads of panel rows never
//! split a cache line at the panel base (asserted in debug builds).

#![allow(clippy::missing_safety_doc)]

use std::sync::atomic::{AtomicU8, Ordering};

/// Lanes per vector register — the paper's NEON `σ_lane`.
pub const LANES: usize = 4;

/// Which micro-kernel flavour [`detect`](SimdBackend::detect) resolved
/// to on this host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdBackend {
    /// aarch64 NEON: `vfmaq_f32` main loop (always fused).
    Neon,
    /// x86_64 with the FMA extension: `_mm_fmadd_ps` main loop.
    X86Fma,
    /// x86_64 baseline: SSE2 `_mm_mul_ps` + `_mm_add_ps` (not fused).
    X86Sse2,
    /// Portable `[f32; 4]` arrays with `f32::mul_add` (fused).
    Scalar,
}

impl SimdBackend {
    /// Probe the host once and cache the answer (relaxed atomic — the
    /// probe is idempotent, so a benign race only repeats it).
    pub fn detect() -> SimdBackend {
        const UNKNOWN: u8 = 0xff;
        static CACHE: AtomicU8 = AtomicU8::new(UNKNOWN);
        let cached = CACHE.load(Ordering::Relaxed);
        if cached != UNKNOWN {
            return Self::from_u8(cached);
        }
        let detected = Self::probe();
        CACHE.store(detected as u8, Ordering::Relaxed);
        detected
    }

    #[cfg(simd_scalar)]
    fn probe() -> SimdBackend {
        SimdBackend::Scalar
    }

    #[cfg(simd_neon)]
    fn probe() -> SimdBackend {
        SimdBackend::Neon
    }

    #[cfg(simd_x86)]
    fn probe() -> SimdBackend {
        if std::arch::is_x86_feature_detected!("fma") {
            SimdBackend::X86Fma
        } else {
            SimdBackend::X86Sse2
        }
    }

    fn from_u8(v: u8) -> SimdBackend {
        match v {
            x if x == SimdBackend::Neon as u8 => SimdBackend::Neon,
            x if x == SimdBackend::X86Fma as u8 => SimdBackend::X86Fma,
            x if x == SimdBackend::X86Sse2 as u8 => SimdBackend::X86Sse2,
            _ => SimdBackend::Scalar,
        }
    }

    /// Whether the backend's multiply-accumulate rounds once (hardware
    /// FMA). Fused backends are bit-identical to the scalar reference
    /// kernel; [`SimdBackend::X86Sse2`] rounds twice and only matches it
    /// within tolerance.
    pub fn fused(self) -> bool {
        !matches!(self, SimdBackend::X86Sse2)
    }

    /// Stable name for bench artifacts and logs.
    pub fn name(self) -> &'static str {
        match self {
            SimdBackend::Neon => "neon",
            SimdBackend::X86Fma => "x86_fma",
            SimdBackend::X86Sse2 => "x86_sse2",
            SimdBackend::Scalar => "scalar",
        }
    }
}

// The three mutually exclusive representation cfgs are spelled out by
// build.rs as `simd_neon` / `simd_x86` / `simd_scalar` so every cfg'd
// item below names exactly one condition (`force-scalar` beats both
// architecture cfgs).

#[cfg(simd_neon)]
use core::arch::aarch64 as arch;
#[cfg(simd_x86)]
use core::arch::x86_64 as arch;

#[cfg(simd_neon)]
type Repr = arch::float32x4_t;
#[cfg(simd_x86)]
type Repr = arch::__m128;
#[cfg(simd_scalar)]
type Repr = [f32; LANES];

/// Four `f32` lanes — one NEON/SSE vector register, or a plain array on
/// the scalar fallback. All operations are `#[inline(always)]` so the
/// micro-kernels see straight-line vector code after monomorphization.
#[derive(Clone, Copy)]
pub struct F32x4(Repr);

impl F32x4 {
    /// All lanes zero.
    #[inline(always)]
    pub fn zero() -> F32x4 {
        F32x4::splat(0.0)
    }

    /// Broadcast `v` to every lane (the kernels' A-element broadcast).
    #[inline(always)]
    pub fn splat(v: f32) -> F32x4 {
        #[cfg(simd_neon)]
        // SAFETY: NEON is baseline on aarch64.
        unsafe {
            F32x4(arch::vdupq_n_f32(v))
        }
        #[cfg(simd_x86)]
        // SAFETY: SSE2 is baseline on x86_64.
        unsafe {
            F32x4(arch::_mm_set1_ps(v))
        }
        #[cfg(simd_scalar)]
        F32x4([v; LANES])
    }

    /// Load four lanes from `ptr` (unaligned tolerated).
    ///
    /// # Safety
    /// `ptr` must be valid for reading 4 consecutive `f32`s.
    #[inline(always)]
    pub unsafe fn load(ptr: *const f32) -> F32x4 {
        #[cfg(simd_neon)]
        return F32x4(arch::vld1q_f32(ptr));
        #[cfg(simd_x86)]
        return F32x4(arch::_mm_loadu_ps(ptr));
        #[cfg(simd_scalar)]
        return F32x4([*ptr, *ptr.add(1), *ptr.add(2), *ptr.add(3)]);
    }

    /// Store four lanes to `ptr` (unaligned tolerated).
    ///
    /// # Safety
    /// `ptr` must be valid for writing 4 consecutive `f32`s.
    #[inline(always)]
    pub unsafe fn store(self, ptr: *mut f32) {
        #[cfg(simd_neon)]
        arch::vst1q_f32(ptr, self.0);
        #[cfg(simd_x86)]
        arch::_mm_storeu_ps(ptr, self.0);
        #[cfg(simd_scalar)]
        for (i, v) in self.0.iter().enumerate() {
            *ptr.add(i) = *v;
        }
    }

    /// Lane-wise `self + o` (also available as the `+` operator).
    #[inline(always)]
    fn add_impl(self, o: F32x4) -> F32x4 {
        #[cfg(simd_neon)]
        // SAFETY: NEON is baseline on aarch64.
        unsafe {
            F32x4(arch::vaddq_f32(self.0, o.0))
        }
        #[cfg(simd_x86)]
        // SAFETY: SSE2 is baseline on x86_64.
        unsafe {
            F32x4(arch::_mm_add_ps(self.0, o.0))
        }
        #[cfg(simd_scalar)]
        {
            let mut r = self.0;
            for (a, b) in r.iter_mut().zip(o.0) {
                *a += b;
            }
            F32x4(r)
        }
    }

    /// Lane-wise `self * o` (also available as the `*` operator).
    #[inline(always)]
    fn mul_impl(self, o: F32x4) -> F32x4 {
        #[cfg(simd_neon)]
        // SAFETY: NEON is baseline on aarch64.
        unsafe {
            F32x4(arch::vmulq_f32(self.0, o.0))
        }
        #[cfg(simd_x86)]
        // SAFETY: SSE2 is baseline on x86_64.
        unsafe {
            F32x4(arch::_mm_mul_ps(self.0, o.0))
        }
        #[cfg(simd_scalar)]
        {
            let mut r = self.0;
            for (a, b) in r.iter_mut().zip(o.0) {
                *a *= b;
            }
            F32x4(r)
        }
    }

    /// Baseline multiply-accumulate `self + a*b`: fused on NEON
    /// (`vfmaq_f32`) and the scalar fallback (`f32::mul_add`), two
    /// roundings on plain SSE2.
    #[inline(always)]
    pub fn mul_acc(self, a: F32x4, b: F32x4) -> F32x4 {
        #[cfg(simd_neon)]
        // SAFETY: NEON is baseline on aarch64.
        unsafe {
            F32x4(arch::vfmaq_f32(self.0, a.0, b.0))
        }
        #[cfg(simd_x86)]
        {
            self + a * b
        }
        #[cfg(simd_scalar)]
        {
            let mut r = self.0;
            for ((acc, x), y) in r.iter_mut().zip(a.0).zip(b.0) {
                *acc = x.mul_add(y, *acc);
            }
            F32x4(r)
        }
    }

    /// Fused multiply-accumulate `self + a*b` via `_mm_fmadd_ps`.
    ///
    /// # Safety
    /// The host must support the FMA extension ([`SimdBackend::X86Fma`]),
    /// and the caller must sit (after inlining) inside a
    /// `#[target_feature(enable = "fma")]` region so the intrinsic is
    /// inlined rather than called.
    #[cfg(simd_x86)]
    #[inline(always)]
    pub unsafe fn mul_acc_fma(self, a: F32x4, b: F32x4) -> F32x4 {
        F32x4(arch::_mm_fmadd_ps(a.0, b.0, self.0))
    }

    /// Copy the lanes out to an array (edge-tile scalar stores).
    #[inline(always)]
    pub fn to_array(self) -> [f32; LANES] {
        let mut out = [0.0f32; LANES];
        // SAFETY: `out` has exactly LANES writable f32s.
        unsafe { self.store(out.as_mut_ptr()) };
        out
    }

    /// Build a vector from an array (edge-tile scalar loads).
    #[inline(always)]
    pub fn from_array(v: [f32; LANES]) -> F32x4 {
        // SAFETY: `v` has exactly LANES readable f32s.
        unsafe { F32x4::load(v.as_ptr()) }
    }
}

impl std::ops::Add for F32x4 {
    type Output = F32x4;
    #[inline(always)]
    fn add(self, o: F32x4) -> F32x4 {
        self.add_impl(o)
    }
}

impl std::ops::Mul for F32x4 {
    type Output = F32x4;
    #[inline(always)]
    fn mul(self, o: F32x4) -> F32x4 {
        self.mul_impl(o)
    }
}

impl std::fmt::Debug for F32x4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F32x4({:?})", self.to_array())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splat_load_store_roundtrip() {
        let src = [1.0f32, -2.5, 3.25, 0.0];
        let v = F32x4::from_array(src);
        assert_eq!(v.to_array(), src);
        assert_eq!(F32x4::splat(7.0).to_array(), [7.0; 4]);
    }

    #[test]
    fn arithmetic_lanes_are_independent() {
        let a = F32x4::from_array([1.0, 2.0, 3.0, 4.0]);
        let b = F32x4::from_array([10.0, 20.0, 30.0, 40.0]);
        assert_eq!((a + b).to_array(), [11.0, 22.0, 33.0, 44.0]);
        assert_eq!((a * b).to_array(), [10.0, 40.0, 90.0, 160.0]);
        let acc = F32x4::splat(1.0);
        assert_eq!(acc.mul_acc(a, b).to_array(), [11.0, 41.0, 91.0, 161.0]);
    }

    #[test]
    fn detect_is_stable_and_consistent_with_arch() {
        let b = SimdBackend::detect();
        assert_eq!(b, SimdBackend::detect(), "cached probe must be stable");
        #[cfg(simd_scalar)]
        assert_eq!(b, SimdBackend::Scalar);
        #[cfg(simd_neon)]
        assert_eq!(b, SimdBackend::Neon);
        #[cfg(simd_x86)]
        assert!(matches!(b, SimdBackend::X86Fma | SimdBackend::X86Sse2));
    }

    #[cfg(simd_x86)]
    #[test]
    fn fma_path_matches_mul_acc_when_available() {
        if SimdBackend::detect() != SimdBackend::X86Fma {
            return;
        }
        #[target_feature(enable = "fma")]
        unsafe fn fused(acc: F32x4, a: F32x4, b: F32x4) -> F32x4 {
            acc.mul_acc_fma(a, b)
        }
        let a = F32x4::from_array([1.5, 2.5, -3.0, 4.0]);
        let b = F32x4::from_array([2.0, -1.0, 0.5, 3.0]);
        let acc = F32x4::splat(1.0);
        // Products here are exact, so fused and unfused agree bitwise.
        let got = unsafe { fused(acc, a, b) };
        assert_eq!(got.to_array(), acc.mul_acc(a, b).to_array());
    }
}
