//! Degenerate-shape fast paths: GEMV and small-`k` GEMM without the
//! block driver.
//!
//! The Table V workloads include shapes where the GotoBLAS machinery is
//! pure overhead: `m = 1` (a row GEMV), `n = 1` (a column GEMV) and
//! very small `k`, where cache-blocking buys nothing (the whole K
//! extent fits a handful of registers) and packing both operands costs
//! more traffic than the kernel reads. These routes skip planning,
//! packing and the block grid entirely and stream the operands from the
//! caller's row-major memory.
//!
//! ## Bit-identity with the block driver
//!
//! Every stored `C` cell still accumulates its `k` products in
//! ascending order with fused multiply-adds, exactly like the menu SIMD
//! kernels and the scalar reference ([`micro_kernel_ref`]):
//!
//! * the row route computes `C`'s single row in menu-width column
//!   chunks of [`micro_kernel_simd`]`::<1, N̄R>` plus a zero-padded
//!   `(1, 4)` tile for a lane tail — per-cell chains are independent of
//!   the chunking;
//! * the column route is the lane-0 chain of the `(m_r, 4)` tiles the
//!   block driver would run against a zero-padded `B` panel;
//! * the small-`k` route is the row route applied per row.
//!
//! So on fused backends the fast paths match the block driver
//! bit-for-bit; on the unfused SSE2 fallback they match within rounding
//! (the same contract the packed edge kernels already carry).
//!
//! ## Supervision
//!
//! The routes run under the same machinery as the block driver: the
//! dispatch probe ([`RunConfig::probe`], honouring breaker reroutes and
//! `faultinject` degradation to the scalar reference), per-worker
//! startup probes, heartbeat checkpoints for the watchdog, cancellation
//! checks between work units, and panic containment with the
//! partial-`C` write contract (units are written whole).

use crate::error::GemmError;
use crate::faultinject::{self, FaultSite};
use crate::kernels::micro_kernel_simd;
use crate::native::{contain, heartbeat, micro_kernel_ref, CTile, Poison, RunConfig};
use crate::runtime::Exec;
use crate::supervisor::{BreakerPath, RunMonitor, Supervision};
use crate::telemetry::clock::Stamp;
use crate::telemetry::report::{GemmReport, PhaseProfile, PhaseTimes, ThreadProfile};
use crate::telemetry::session::{self, Session};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Largest `k` the small-`k` route takes over from the block driver: at
/// or below this the whole K extent fits the kernel's accumulator pass
/// and a packed panel can never amortize (`t_k = 1` for every feasible
/// `k_c`).
pub(crate) const SMALL_K_MAX: usize = 8;

/// Columns claimed per work unit by the row-GEMV route.
const COL_CHUNK: usize = 512;
/// Rows claimed per work unit by the column-GEMV route.
const ROW_CHUNK: usize = 64;
/// Rows claimed per work unit by the small-`k` route.
const SMALLK_ROWS: usize = 32;

/// Which degenerate-shape fast path a problem takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FastRoute {
    /// `m == 1`: one row of `C`, computed in menu-width column chunks.
    RowGemv,
    /// `n == 1`: one column of `C`, computed in `(m_r, 4)` tiles
    /// against the lane-padded column (one fused dot chain per row).
    ColGemv,
    /// `k <= SMALL_K_MAX`: the row route applied per row of `C`.
    SmallK,
}

impl FastRoute {
    /// Stable name for telemetry (`GemmReport::dispatch`).
    pub(crate) fn name(self) -> &'static str {
        match self {
            FastRoute::RowGemv => "gemv_row",
            FastRoute::ColGemv => "gemv_col",
            FastRoute::SmallK => "small_k",
        }
    }
}

/// Classify a (non-degenerate) problem shape. `None` means the block
/// driver is the right tool; zero-sized dimensions are the engine's
/// degenerate path, not a fast route.
pub(crate) fn fast_route(m: usize, n: usize, k: usize) -> Option<FastRoute> {
    if m == 0 || n == 0 || k == 0 {
        return None;
    }
    if m == 1 {
        return Some(FastRoute::RowGemv);
    }
    if n == 1 {
        return Some(FastRoute::ColGemv);
    }
    if k <= SMALL_K_MAX {
        return Some(FastRoute::SmallK);
    }
    None
}

/// One menu-width chunk of a row GEMV, dispatched to the SIMD kernel or
/// the scalar reference (the degraded-dispatch path) — the `MR = 1`
/// column of the block driver's dispatch table.
fn row_chunk<const NRV: usize, const NR: usize>(
    reference: bool,
    k: usize,
    a_row: &[f32],
    b: &[f32],
    n: usize,
    c: CTile,
) {
    session::record_tile(1, NR);
    if reference {
        micro_kernel_ref::<1, NR>(k, a_row, k, b, n, c, false, 1, NR);
    } else {
        micro_kernel_simd::<1, NRV>(k, a_row, k, b, n, c, false, 1, NR);
    }
}

/// Compute columns `[j0, j1)` of one `C` row: `c_row = a_row · B`.
/// Greedy menu-width chunks (multiples of σ_lane), then a zero-padded
/// `(1, 4)` tile for the last `< 4` columns — the same per-cell chains
/// as the block driver's lane-rounded edge tiles.
#[allow(clippy::too_many_arguments)]
fn row_gemv_range(
    reference: bool,
    k: usize,
    a_row: &[f32],
    b: &[f32],
    n: usize,
    c_row: CTile,
    j0: usize,
    j1: usize,
    tail_pad: Option<&[f32]>,
) {
    let mut j = j0;
    while j1 - j >= 4 {
        let rem = j1 - j;
        // SAFETY: this worker owns columns [j0, j1) of the row.
        let c = unsafe { c_row.offset(0, j) };
        let bj = &b[j..];
        let taken = match rem {
            r if r >= 28 => {
                row_chunk::<7, 28>(reference, k, a_row, bj, n, c);
                28
            }
            r if r >= 24 => {
                row_chunk::<6, 24>(reference, k, a_row, bj, n, c);
                24
            }
            r if r >= 20 => {
                row_chunk::<5, 20>(reference, k, a_row, bj, n, c);
                20
            }
            r if r >= 16 => {
                row_chunk::<4, 16>(reference, k, a_row, bj, n, c);
                16
            }
            r if r >= 12 => {
                row_chunk::<3, 12>(reference, k, a_row, bj, n, c);
                12
            }
            r if r >= 8 => {
                row_chunk::<2, 8>(reference, k, a_row, bj, n, c);
                8
            }
            _ => {
                row_chunk::<1, 4>(reference, k, a_row, bj, n, c);
                4
            }
        };
        j += taken;
    }
    let rem = j1 - j;
    if rem > 0 {
        // Fewer than σ_lane columns remain — only possible at the
        // matrix edge, since chunks advance in lane multiples. Widen
        // the tail into a zero-padded panel and run the (1, 4) tile:
        // the same fused ascending-k chain per stored cell as the wide
        // chunks, without the libm `fmaf` a scalar loop would pay.
        // Callers looping over many rows build the pad once and pass it
        // in; one-shot callers let this call build its own.
        let owned;
        let pad = match tail_pad {
            Some(p) => p,
            None => {
                owned = pad_lane_tail(k, b, n, j, rem);
                &owned[..]
            }
        };
        session::record_tile(1, 4);
        // SAFETY: this worker owns columns [j0, j1) of the row.
        let c = unsafe { c_row.offset(0, j) };
        if reference {
            micro_kernel_ref::<1, 4>(k, a_row, k, pad, 4, c, false, 1, rem);
        } else {
            micro_kernel_simd::<1, 1>(k, a_row, k, pad, 4, c, false, 1, rem);
        }
    }
}

/// Rows per `(m_r, 4)` tile on the column route — the widest menu tile
/// height, keeping eight independent accumulator chains in flight.
const COL_MR: usize = 8;

/// Widen `w < σ_lane` columns `[j, j + w)` of row-major `B` (`k × n`)
/// into a zero-padded `k × σ_lane` panel — exactly the padding a packed
/// B panel carries, which is what makes the vector kernels' full-width
/// loads legal at the matrix edge. The zero lanes are computed and
/// discarded by the `eff_cols` store mask, so no stored cell's
/// accumulation chain sees them.
fn pad_lane_tail(k: usize, b: &[f32], n: usize, j: usize, w: usize) -> Vec<f32> {
    let mut pad = vec![0.0f32; k * 4];
    for p in 0..k {
        pad[p * 4..p * 4 + w].copy_from_slice(&b[p * n + j..p * n + j + w]);
    }
    pad
}

/// One `(MR, 4)` tile of the column route: `MR` real rows of A against
/// the lane-padded column, storing lane 0 only.
fn col_tile<const MR: usize>(reference: bool, k: usize, a: &[f32], b_pad: &[f32], c: CTile) {
    session::record_tile(MR, 4);
    if reference {
        micro_kernel_ref::<MR, 4>(k, a, k, b_pad, 4, c, false, MR, 1);
    } else {
        micro_kernel_simd::<MR, 1>(k, a, k, b_pad, 4, c, false, MR, 1);
    }
}

/// Compute rows `[i0, i1)` of the single `C` column with the `(m_r, 4)`
/// vector tiles the block driver would use, run against the `k × 1`
/// column widened to a zero-padded lane-width panel
/// ([`pad_lane_tail`]). Each stored cell is the tile's lane-0 chain —
/// its `k` products accumulated in ascending order with fused
/// multiply-adds, identical to a row-at-a-time fused dot product. (A
/// scalar dot per row bottlenecks on the FMA *call*: without a
/// compile-time FMA target `f32::mul_add` lowers to libm `fmaf`, which
/// no amount of interleaving hides; the tile's intrinsics dispatch on
/// the runtime-detected backend like every other kernel.)
///
/// The SIMD kernels read all `MR` rows (only stores are masked), so the
/// row count descends 8 → 4 → 2 → 1 full tiles rather than masking a
/// partial last group — every tile's rows are real rows of A.
fn col_gemv_rows(
    reference: bool,
    k: usize,
    a: &[f32],
    b: &[f32],
    c_root: CTile,
    i0: usize,
    i1: usize,
) {
    let b_pad = pad_lane_tail(k, b, 1, 0, 1);
    let mut i = i0;
    while i < i1 {
        let rem = i1 - i;
        let a_sl = &a[i * k..];
        // SAFETY: this worker owns rows [i0, i1) of the column.
        let c = unsafe { c_root.offset(i, 0) };
        i += match rem {
            r if r >= COL_MR => {
                col_tile::<COL_MR>(reference, k, a_sl, &b_pad, c);
                COL_MR
            }
            r if r >= 4 => {
                col_tile::<4>(reference, k, a_sl, &b_pad, c);
                4
            }
            r if r >= 2 => {
                col_tile::<2>(reference, k, a_sl, &b_pad, c);
                2
            }
            _ => {
                col_tile::<1>(reference, k, a_sl, &b_pad, c);
                1
            }
        };
    }
}

/// Number of claimable work units for a route over an `m × n` problem.
fn unit_count(route: FastRoute, m: usize, n: usize) -> usize {
    match route {
        FastRoute::RowGemv => n.div_ceil(COL_CHUNK).max(1),
        FastRoute::ColGemv => m.div_ceil(ROW_CHUNK).max(1),
        FastRoute::SmallK => m.div_ceil(SMALLK_ROWS).max(1),
    }
}

/// Execute one claimed unit. Units partition `C` (column ranges of the
/// single row, or disjoint row ranges), so the [`CTile`] ownership
/// contract holds per unit.
#[allow(clippy::too_many_arguments)]
fn run_unit(
    route: FastRoute,
    u: usize,
    reference: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c_root: CTile,
) {
    match route {
        FastRoute::RowGemv => {
            let j0 = u * COL_CHUNK;
            let j1 = (j0 + COL_CHUNK).min(n);
            row_gemv_range(reference, k, &a[..k], b, n, c_root, j0, j1, None);
        }
        FastRoute::ColGemv => {
            let i0 = u * ROW_CHUNK;
            let i1 = (i0 + ROW_CHUNK).min(m);
            col_gemv_rows(reference, k, a, b, c_root, i0, i1);
        }
        FastRoute::SmallK => {
            let i0 = u * SMALLK_ROWS;
            let i1 = (i0 + SMALLK_ROWS).min(m);
            smallk_rows(reference, m, n, k, a, b, c_root, i0, i1);
        }
    }
    // Chaos hook: `FaultSite::KernelCompute` fires after the unit's
    // stores land, perturbing cells inside the unit's owned region of
    // `C` for the integrity layer to catch (same contract as the block
    // driver's hook in [`crate::native`]).
    if let faultinject::Probe::Corrupt { elements } = faultinject::probe(FaultSite::KernelCompute) {
        let salt = 0x4745_4D56_0000_0000 | u as u64;
        match route {
            FastRoute::RowGemv => {
                let j0 = u * COL_CHUNK;
                let j1 = (j0 + COL_CHUNK).min(n);
                // SAFETY: cols [j0, j1) of the single row are owned by
                // this unit.
                let region = unsafe { c_root.offset(0, j0) };
                crate::native::corrupt_c_region(&region, 1, j1 - j0, elements, salt);
            }
            FastRoute::ColGemv => {
                let i0 = u * ROW_CHUNK;
                let i1 = (i0 + ROW_CHUNK).min(m);
                // SAFETY: rows [i0, i1) are owned by this unit.
                let region = unsafe { c_root.offset(i0, 0) };
                crate::native::corrupt_c_region(&region, i1 - i0, 1, elements, salt);
            }
            FastRoute::SmallK => {
                let i0 = u * SMALLK_ROWS;
                let i1 = (i0 + SMALLK_ROWS).min(m);
                // SAFETY: rows [i0, i1) are owned by this unit.
                let region = unsafe { c_root.offset(i0, 0) };
                crate::native::corrupt_c_region(&region, i1 - i0, n, elements, salt);
            }
        }
    }
}

/// The SmallK unit body: rows `[i0, i1)` of the `m×n` product, each a
/// row-GEMV over the shared lane-tail padding.
#[allow(clippy::too_many_arguments)]
fn smallk_rows(
    reference: bool,
    _m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c_root: CTile,
    i0: usize,
    i1: usize,
) {
    // Every row shares the same lane tail of B — pad it once
    // for the whole unit, not once per row.
    let tail = n % 4;
    let pad = (tail != 0).then(|| pad_lane_tail(k, b, n, n - tail, tail));
    for i in i0..i1 {
        // SAFETY: rows [i0, i1) are owned by this unit.
        let c_row = unsafe { c_root.offset(i, 0) };
        row_gemv_range(reference, k, &a[i * k..i * k + k], b, n, c_row, 0, n, pad.as_deref());
    }
}

/// Run `f` inside `sess` when tracing, bare otherwise.
fn with_optional_session(sess: Option<&Arc<Session>>, f: impl FnOnce()) {
    match sess {
        Some(s) => session::with_session(s, f),
        None => f(),
    }
}

/// Drain the unit list through a shared atomic cursor with the block
/// driver's worker discipline: startup probe, heartbeat per claim,
/// cancellation polls, panic containment via [`Poison`], and per-worker
/// busy/drain profiles for the traced twin. Ends with the phase
/// resolution (`monitor.outcome("kernel", units)`).
#[allow(clippy::too_many_arguments)]
fn try_run_units(
    route: FastRoute,
    reference: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c_root: CTile,
    threads: usize,
    sess: Option<&Arc<Session>>,
    exec: &Exec,
    monitor: &RunMonitor,
) -> Result<(Vec<ThreadProfile>, PhaseTimes, PhaseTimes), GemmError> {
    let units = unit_count(route, m, n);
    let threads = threads.max(1).min(units);
    let section0 = Stamp::now();
    let mut finished: Vec<(ThreadProfile, Stamp)> = Vec::with_capacity(threads);
    if threads == 1 {
        let mut prof = ThreadProfile { thread: 0, ..ThreadProfile::default() };
        let s0 = exec.trace_begin();
        contain(|| {
            with_optional_session(sess, || {
                faultinject::probe(FaultSite::WorkerStartup);
                for u in 0..units {
                    if monitor.should_stop() || !heartbeat(monitor, 0) {
                        break;
                    }
                    let u0 = Stamp::now();
                    run_unit(route, u, reference, m, n, k, a, b, c_root);
                    prof.busy += u0.elapsed();
                    prof.blocks += 1;
                    monitor.note_done();
                }
            })
        })?;
        exec.trace_phase(0, "kernel", s0);
        finished.push((prof, Stamp::now()));
    } else {
        let cursor = AtomicUsize::new(0);
        let poison = Poison::new();
        let collected: Mutex<Vec<(ThreadProfile, Stamp)>> = Mutex::new(Vec::with_capacity(threads));
        let body = |t: usize| {
            let mut prof = ThreadProfile { thread: t, ..ThreadProfile::default() };
            let run = catch_unwind(AssertUnwindSafe(|| {
                with_optional_session(sess, || {
                    faultinject::probe(FaultSite::WorkerStartup);
                    loop {
                        if poison.is_poisoned() || monitor.should_stop() {
                            break;
                        }
                        let u = cursor.fetch_add(1, Ordering::Relaxed);
                        if u >= units {
                            break;
                        }
                        if !heartbeat(monitor, t) {
                            break;
                        }
                        let u0 = Stamp::now();
                        run_unit(route, u, reference, m, n, k, a, b, c_root);
                        prof.busy += u0.elapsed();
                        prof.blocks += 1;
                        monitor.note_done();
                    }
                })
            }));
            if let Err(payload) = run {
                poison.record(t, payload);
            }
            collected.lock().push((prof, Stamp::now()));
        };
        exec.run_section_traced(threads, "kernel", &body);
        poison.into_result()?;
        finished = collected.into_inner();
        finished.sort_by_key(|(p, _)| p.thread);
    }
    monitor.outcome("kernel", units)?;
    let end = Stamp::now();
    let kernel = section0.delta_to(end);
    let mut drain_total = PhaseTimes::default();
    let profiles = finished
        .into_iter()
        .map(|(mut p, f)| {
            p.drain = f.delta_to(end);
            drain_total += p.drain;
            p
        })
        .collect();
    Ok((profiles, kernel, drain_total))
}

/// Execute a fast route under a [`Supervision`] bundle. The caller (the
/// engine front door) has already validated the operands and handled
/// zero-sized dimensions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_fast_supervised(
    route: FastRoute,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    sup: &Supervision,
) -> Result<(), GemmError> {
    let cfg = RunConfig::probe(sup, threads)?;
    let exec = Exec::new(sup, cfg.pool_inline);
    // SAFETY: units partition C's cells; each is claimed by one worker.
    let c_root = unsafe { CTile::new(c.as_mut_ptr(), n, c.len()) };
    let monitor = RunMonitor::new(sup, threads.max(1));
    let watchdog = exec.runtime().watch(&monitor);
    monitor.begin_phase();
    let result =
        try_run_units(route, cfg.reference, m, n, k, a, b, c_root, threads, None, &exec, &monitor)
            .map(|_| ());
    monitor.finish();
    drop(watchdog);
    if matches!(result, Err(GemmError::WorkerPanicked { .. }) | Err(GemmError::Stalled { .. })) {
        sup.observe_fault(BreakerPath::ThreadedDriver);
    }
    result
}

/// The traced twin of [`try_fast_supervised`]: the same numeric path
/// and supervision checkpoints, returning a [`GemmReport`]. The fast
/// routes have no cache blocking, so the report's `mc/nc/kc` echo the
/// problem shape, and no packing, so the pack phase times and counters
/// stay zero. The engine stamps `dispatch` and `health` after the call.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_fast_traced_supervised(
    route: FastRoute,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    sup: &Supervision,
) -> Result<GemmReport, GemmError> {
    let cfg = RunConfig::probe(sup, threads)?;
    let exec = Exec::new(sup, cfg.pool_inline);
    let sess = Arc::new(Session::new());
    let t0 = Stamp::now();
    // SAFETY: units partition C's cells; each is claimed by one worker.
    let c_root = unsafe { CTile::new(c.as_mut_ptr(), n, c.len()) };
    let monitor = RunMonitor::new(sup, threads.max(1));
    let watchdog = exec.runtime().watch(&monitor);
    monitor.begin_phase();
    let result = try_run_units(
        route,
        cfg.reference,
        m,
        n,
        k,
        a,
        b,
        c_root,
        threads,
        Some(&sess),
        &exec,
        &monitor,
    );
    monitor.finish();
    drop(watchdog);
    if matches!(result, Err(GemmError::WorkerPanicked { .. }) | Err(GemmError::Stalled { .. })) {
        sup.observe_fault(BreakerPath::ThreadedDriver);
    }
    let (thread_profiles, kernel, drain) = result?;
    let wall = t0.elapsed();
    let stats = sess.take();
    Ok(GemmReport {
        m,
        n,
        k,
        threads: thread_profiles.len(),
        mc: m,
        nc: n,
        kc: k,
        wall,
        phases: PhaseProfile { kernel, drain, ..PhaseProfile::default() },
        tiles: stats.tile_counts(),
        thread_profiles,
        fallbacks: cfg.fallbacks,
        ..GemmReport::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_classify_degenerate_shapes() {
        assert_eq!(fast_route(1, 64, 128), Some(FastRoute::RowGemv));
        assert_eq!(fast_route(64, 1, 128), Some(FastRoute::ColGemv));
        // m == n == 1 is still a (1-element) row GEMV.
        assert_eq!(fast_route(1, 1, 128), Some(FastRoute::RowGemv));
        assert_eq!(fast_route(40, 36, SMALL_K_MAX), Some(FastRoute::SmallK));
        assert_eq!(fast_route(40, 36, SMALL_K_MAX + 1), None);
        assert_eq!(fast_route(0, 36, 24), None);
        assert_eq!(fast_route(40, 0, 24), None);
        assert_eq!(fast_route(40, 36, 0), None);
    }

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn fill(v: &mut [f32], seed: u32) {
        // Exactly representable values: small integers scaled by powers
        // of two, so fused and unfused accumulation agree bit-for-bit.
        let mut s = seed;
        for x in v.iter_mut() {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            *x = ((s >> 24) as i32 - 128) as f32 * 0.25;
        }
    }

    #[test]
    fn fast_routes_match_the_naive_oracle() {
        for &(m, n, k) in &[
            (1usize, 1usize, 1usize),
            (1, 97, 64),
            (1, 513, 8),
            (97, 1, 64),
            (129, 1, 3),
            (40, 36, 8),
            (33, 517, 1),
            (65, 5, 7),
        ] {
            let route = fast_route(m, n, k).expect("fast shape");
            let (mut a, mut b) = (vec![0.0f32; m * k], vec![0.0f32; k * n]);
            fill(&mut a, 1 + m as u32);
            fill(&mut b, 7 + n as u32);
            for threads in [1usize, 3] {
                let mut c = vec![f32::NAN; m * n];
                try_fast_supervised(route, m, n, k, &a, &b, &mut c, threads, &Supervision::none())
                    .expect("fast route runs");
                assert_eq!(c, naive(m, n, k, &a, &b), "({m},{n},{k}) t{threads} {route:?}");
            }
        }
    }

    #[test]
    fn traced_fast_route_is_bit_identical_and_structured() {
        let (m, n, k) = (1usize, 200usize, 48usize);
        let (mut a, mut b) = (vec![0.0f32; m * k], vec![0.0f32; k * n]);
        fill(&mut a, 3);
        fill(&mut b, 11);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        try_fast_supervised(FastRoute::RowGemv, m, n, k, &a, &b, &mut c1, 2, &Supervision::none())
            .expect("plain");
        let report = try_fast_traced_supervised(
            FastRoute::RowGemv,
            m,
            n,
            k,
            &a,
            &b,
            &mut c2,
            2,
            &Supervision::none(),
        )
        .expect("traced");
        assert_eq!(c1, c2, "tracing must not change bits");
        assert_eq!((report.m, report.n, report.k), (m, n, k));
        assert_eq!((report.mc, report.nc, report.kc), (m, n, k), "no cache blocking");
        assert_eq!(report.packs.a_packs + report.packs.b_packs, 0, "no packing");
        assert!(report.threads >= 1);
    }
}
