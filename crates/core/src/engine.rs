//! The [`AutoGemm`] engine: the library's front door.

use crate::batch::GemmBatch;
use crate::error::{self, GemmError};
use crate::native;
use crate::plan::{ExecutionPlan, OperandRouting};
use crate::plancache::{PlanCache, PlanCacheStats, PlanKey};
use crate::runtime::{PoolStats, Runtime};
use crate::simexec::{self, BlockCost};
use crate::supervisor::{
    is_retryable, Admission, Breaker, BreakerConfig, BreakerPath, GemmOptions, ResilientMode,
    ResilientReport, Supervision,
};
use crate::telemetry::metrics::{CallOutcome, Counter, MetricsRegistry, MetricsSnapshot};
use crate::telemetry::{DispatchStats, HealthReport, IntegrityReport, TraceBuf};
use crate::verify::{self, VerifyPolicy};
use autogemm_arch::ChipSpec;
use autogemm_sim::Warmth;
use autogemm_tuner::{tune_with, Packing, Schedule};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Result of a simulated GEMM run on the modelled chip.
#[derive(Debug, Clone, Copy)]
pub struct SimGemmReport {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub threads: usize,
    /// Wall-clock seconds on the modelled chip.
    pub seconds: f64,
    pub gflops: f64,
    /// Fraction of the configuration's peak (threads × core peak).
    pub efficiency: f64,
    /// Whether memory bandwidth limited the run.
    pub bw_limited: bool,
    /// Packing mode the tuner chose.
    pub packing: Packing,
}

/// The autoGEMM engine for one target chip: tunes schedules on first use,
/// memoizes per-block simulations, and executes natively or on the
/// simulator.
pub struct AutoGemm {
    chip: ChipSpec,
    allow_offline: bool,
    cmg_replication: bool,
    /// Shape-keyed plan cache in front of the tuner: a repeated
    /// `(m, n, k, threads, backend)` skips tuning, DMT planning and the
    /// elision heuristic entirely (see [`crate::plancache`]).
    plans: PlanCache,
    block_sims: Mutex<HashMap<(usize, usize, usize, bool), BlockCost>>,
    /// Recycles panel buffers across native GEMM calls: the engine's
    /// steady state packs into warm allocations instead of fresh `vec!`s.
    panel_pool: crate::packing::PanelPool,
    /// Backend-quarantine circuit breaker shared by every native call
    /// through this engine (see [`crate::supervisor`]).
    breaker: Breaker,
    /// The persistent worker-pool runtime every threaded call through
    /// this engine submits to (the process-wide pool by default; see
    /// [`crate::runtime`]). Requested thread counts are clamped to its
    /// capacity.
    runtime: Arc<Runtime>,
    /// Engine-lifetime metrics registry: call latency/throughput
    /// histograms and outcome/breaker/plan-cache counters, accumulated
    /// across every front-door call (see [`crate::telemetry::metrics`]).
    /// Shared with the plan cache and breaker via one-time hooks.
    metrics: Arc<MetricsRegistry>,
    /// Optional cross-worker span recorder ([`Self::with_tracing`]):
    /// pack/kernel/submit/wake/drain spans land here, exported as a
    /// Chrome trace-event timeline by [`Self::trace_export`].
    tracer: Option<Arc<TraceBuf>>,
    /// Engine-default output-integrity policy ([`Self::with_verify_policy`]);
    /// a non-`Off` per-call [`GemmOptions::verify`] overrides it.
    verify_default: VerifyPolicy,
    /// Monotone sequence the `Sample` policy's deterministic 1-in-`rate`
    /// selection counts on (bumped only by sampled calls, so `Always`
    /// bursts don't skew the cadence).
    verify_seq: AtomicU64,
}

impl AutoGemm {
    /// Create an engine targeting `chip`.
    pub fn new(chip: ChipSpec) -> Self {
        let metrics = Arc::new(MetricsRegistry::new());
        let plans = PlanCache::new();
        plans.attach_metrics(Arc::clone(&metrics));
        let breaker = Breaker::default();
        breaker.attach_metrics(Arc::clone(&metrics));
        AutoGemm {
            chip,
            allow_offline: false,
            cmg_replication: false,
            plans,
            block_sims: Mutex::new(HashMap::new()),
            panel_pool: crate::packing::PanelPool::new(),
            breaker,
            runtime: Runtime::global(),
            metrics,
            tracer: None,
            verify_default: VerifyPolicy::Off,
            verify_seq: AtomicU64::new(0),
        }
    }

    /// Set the engine-default output-integrity policy: every supervised
    /// call whose [`GemmOptions::verify`] is `Off` inherits it. See
    /// [`crate::verify`] for the check and its cost model.
    pub fn with_verify_policy(mut self, policy: VerifyPolicy) -> Self {
        self.verify_default = policy;
        self
    }

    /// The engine-default output-integrity policy.
    pub fn verify_policy(&self) -> VerifyPolicy {
        self.verify_default
    }

    /// Submit this engine's threaded sections to `rt` instead of the
    /// process-wide pool — isolation for services that want per-tenant
    /// worker budgets, or tests that need a private pool to observe.
    pub fn with_runtime(mut self, rt: Arc<Runtime>) -> Self {
        self.runtime = rt;
        self
    }

    /// The worker-pool runtime this engine submits to.
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// Lifetime counters of the engine's worker-pool runtime
    /// (submissions, wake latency, busy/park time, clamp events); also
    /// stamped on every traced report's schema-v4 `pool` section.
    pub fn pool_stats(&self) -> PoolStats {
        self.runtime.stats()
    }

    /// Engine-lifetime metrics snapshot: call-latency and throughput
    /// quantiles (p50/p95/p99), outcome counters, breaker transitions,
    /// plan-cache hit/miss/eviction counts, and the runtime's pool
    /// wake/busy/park histograms — everything accumulated since the
    /// engine (and its runtime) were created. The snapshot serializes to
    /// the schema-v5 `metrics` report section and to Prometheus text
    /// exposition via [`MetricsSnapshot::to_prometheus`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        // Pool instrumentation lives in the runtime's registry (workers
        // outlive any one engine); merge its histograms into the view.
        let pool = self.runtime.metrics().snapshot();
        snap.pool_wake_ns = pool.pool_wake_ns;
        snap.pool_busy_ns = pool.pool_busy_ns;
        snap.pool_park_ns = pool.pool_park_ns;
        snap
    }

    /// Toggle metrics recording at runtime. Disabled, every front-door
    /// call pays exactly one relaxed atomic load (the `RunMonitor`
    /// passive-path contract); counters and histograms freeze at their
    /// current values and [`Self::metrics`] still snapshots them.
    pub fn set_metrics_enabled(&self, enabled: bool) {
        self.metrics.set_enabled(enabled);
        self.runtime.metrics().set_enabled(enabled);
    }

    /// Whether the engine registry is currently recording.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_enabled()
    }

    /// Attach a cross-worker span recorder holding up to
    /// `spans_per_track` recent spans for each of the runtime's worker
    /// tracks (plus the caller track). Supervised calls then emit
    /// pack/kernel phase spans and submit/wake/drain pool spans;
    /// [`Self::trace_export`] renders them as a Chrome trace-event
    /// timeline loadable in Perfetto or `chrome://tracing`.
    pub fn with_tracing(mut self, spans_per_track: usize) -> Self {
        self.tracer = Some(Arc::new(TraceBuf::new(self.runtime.capacity(), spans_per_track)));
        self
    }

    /// The attached span recorder, if tracing was enabled.
    pub fn tracer(&self) -> Option<&Arc<TraceBuf>> {
        self.tracer.as_ref()
    }

    /// Export the recorded span timeline as Chrome trace-event JSON
    /// (`None` unless built [`Self::with_tracing`]).
    pub fn trace_export(&self) -> Option<String> {
        self.tracer.as_ref().map(|t| t.export_chrome_json())
    }

    /// Clamp a requested worker count to what the runtime can actually
    /// engage (pool workers + the calling thread), recording the
    /// fallback in the pool counters when it bites.
    fn clamp_threads(&self, requested: usize) -> usize {
        let threads = requested.max(1);
        let cap = self.runtime.capacity();
        if threads > cap {
            self.runtime.note_clamped();
            return cap;
        }
        threads
    }

    /// Replace the circuit breaker's count thresholds (chaos tests and
    /// services with unusual call rates; the defaults suit steady
    /// request streams).
    pub fn with_breaker_config(mut self, cfg: BreakerConfig) -> Self {
        self.breaker = Breaker::new(cfg);
        // The replacement breaker must keep feeding the engine registry.
        self.breaker.attach_metrics(Arc::clone(&self.metrics));
        self
    }

    /// Enable CMG-aware operand placement: shared panels are packed once
    /// per NUMA domain, eliminating cross-domain traffic at the cost of
    /// replicated packing — the SVE multi-core optimization the paper
    /// names as future work (§V-C/E). Only affects multi-domain chips.
    pub fn with_cmg_replication(mut self) -> Self {
        self.cmg_replication = true;
        self
    }

    /// Allow offline packing (the caller promises `B` reuse across calls,
    /// matching the paper's LibShalom-comparable configuration in Fig 9).
    pub fn with_offline_packing(mut self) -> Self {
        self.allow_offline = true;
        self
    }

    pub fn chip(&self) -> &ChipSpec {
        &self.chip
    }

    /// Tune a schedule for one shape and thread budget. Memoization
    /// lives one layer up, in the shape-keyed plan cache consulted by
    /// [`Self::plan_dispatch`] — this function always runs the tuner.
    fn tuned_schedule(&self, m: usize, n: usize, k: usize, threads: usize) -> Schedule {
        if m == 0 || n == 0 || k == 0 {
            // The tuner's cost model divides by block trip counts, so a
            // degenerate dim cannot be tuned directly. Tune the clamped
            // shape and restore the true dims: such a plan is only ever
            // used for validation (every driver early-returns on a zero
            // dim before touching the block grid).
            let mut s = self.tuned_schedule(m.max(1), n.max(1), k.max(1), threads);
            s.m = m;
            s.n = n;
            s.k = k;
            return s;
        }
        if threads > 1 {
            // Model-ranked shortlist, verified on the simulator — the
            // AutoTVM measure-the-shortlist workflow (§IV-C).
            let candidates = autogemm_tuner::tune_multicore_topk(
                m,
                n,
                k,
                &self.chip,
                self.allow_offline,
                threads,
                6,
            );
            let mut best: Option<(f64, Schedule)> = None;
            for cand in candidates {
                let plan = ExecutionPlan::from_schedule(cand.clone(), &self.chip);
                let block = self.block_cost(&plan, true);
                let works = simexec::thread_works(&plan, &self.chip, block, threads);
                let seconds = autogemm_sim::makespan(&self.chip, &works).seconds;
                if best.as_ref().is_none_or(|(b, _)| seconds < *b) {
                    best = Some((seconds, cand));
                }
            }
            match best {
                Some((_, cand)) => cand,
                // An empty shortlist (degenerate shape, pathological
                // model output) falls back to the single-core tuner
                // instead of panicking.
                None => tune_with(m, n, k, &self.chip, self.allow_offline),
            }
        } else {
            tune_with(m, n, k, &self.chip, self.allow_offline)
        }
    }

    /// The dispatch-facing plan lookup: consult the shape-keyed plan
    /// cache, tuning + DMT-planning + applying the packing-elision
    /// routing ([`autogemm_perfmodel::route_packing`]) only on a miss.
    /// Returns the shared plan and whether this call hit the cache.
    fn plan_dispatch(
        &self,
        m: usize,
        n: usize,
        k: usize,
        tuner_threads: usize,
    ) -> (Arc<ExecutionPlan>, bool) {
        let key = PlanKey {
            m,
            n,
            k,
            threads: tuner_threads,
            backend: crate::simd::SimdBackend::detect().name(),
        };
        self.plans.get_or_build(key, || {
            let plan = ExecutionPlan::from_schedule(
                self.tuned_schedule(m, n, k, tuner_threads),
                &self.chip,
            );
            let (tm, tn, _) = plan.grid();
            let r = autogemm_perfmodel::route_packing(m, n, k, tm, tn);
            plan.with_routing(OperandRouting { pack_a: r.pack_a, pack_b: r.pack_b })
        })
    }

    /// Cumulative hit/miss/eviction counters of the engine's shape-keyed
    /// plan cache (hits and misses are also stamped on every traced
    /// report's `dispatch` section). The cache is bounded at
    /// [`crate::PLAN_CACHE_CAPACITY`] entries with LRU eviction.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// The execution plan the engine would use for a problem.
    ///
    /// Returned plans always carry fully *packed* operand routing: the
    /// plan-level public drivers ([`crate::offline`] prepacked entry
    /// points, `gemm_with_plan*`) and the batch path require packed
    /// panels (offline `B` reuse, shared-`B` reuse across batch items).
    /// Packing elision is an engine-internal dispatch decision.
    pub fn plan(&self, m: usize, n: usize, k: usize) -> ExecutionPlan {
        let (plan, _) = self.plan_dispatch(m, n, k, 1);
        (*plan).clone().with_routing(OperandRouting::packed())
    }

    /// Plan under the multi-core `k_c = K` constraint (§V-C), with enough
    /// parallel blocks for `threads` workers. Packed routing, as
    /// [`Self::plan`].
    pub fn plan_multicore(&self, m: usize, n: usize, k: usize, threads: usize) -> ExecutionPlan {
        let (plan, _) = self.plan_dispatch(m, n, k, threads.max(2));
        (*plan).clone().with_routing(OperandRouting::packed())
    }

    /// Native single-threaded GEMM on the host: `C = A·B`, row-major.
    /// Panel buffers are recycled through the engine's pool.
    ///
    /// Panics with the structured [`GemmError`] message on invalid
    /// operands or a contained worker panic; [`Self::try_gemm`] is the
    /// non-panicking form.
    pub fn gemm(&self, m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        if let Err(e) = self.try_gemm(m, n, k, a, b, c) {
            panic!("{e}");
        }
    }

    /// Fallible [`Self::gemm`]: operand mismatches come back as `Err`
    /// before any plan is tuned, degenerate shapes (`m`, `n` or `k`
    /// zero) early-return, and worker panics are contained per the
    /// [`crate::error`] policy.
    pub fn try_gemm(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) -> Result<(), GemmError> {
        self.try_gemm_opts(m, n, k, a, b, c, &GemmOptions::new().threads(1))
    }

    /// Native multi-threaded GEMM on the host (panel-cache driver: each
    /// operand panel packed once, blocks drained from the shared work
    /// queue, buffers recycled through the engine's pool).
    ///
    /// Panics with the structured [`GemmError`] message;
    /// [`Self::try_gemm_threaded`] is the non-panicking form.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_threaded(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        threads: usize,
    ) {
        if let Err(e) = self.try_gemm_threaded(m, n, k, a, b, c, threads) {
            panic!("{e}");
        }
    }

    /// Fallible [`Self::gemm_threaded`]. A panicking worker poisons the
    /// run: survivors drain the queue cursor and exit cleanly, and the
    /// first panic comes back as [`GemmError::WorkerPanicked`].
    #[allow(clippy::too_many_arguments)]
    pub fn try_gemm_threaded(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        threads: usize,
    ) -> Result<(), GemmError> {
        self.try_gemm_opts(m, n, k, a, b, c, &GemmOptions::new().threads(threads))
    }

    /// [`Self::try_gemm_threaded`] with a relative deadline: the run
    /// stops cooperatively at the next panel/block boundary once
    /// `deadline` has elapsed and reports
    /// [`GemmError::Cancelled`] with its progress. A deadline that never
    /// fires costs one clock read per claimed block; see
    /// [`crate::supervisor`] for the overhead contract.
    #[allow(clippy::too_many_arguments)]
    pub fn try_gemm_deadline(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        threads: usize,
        deadline: Duration,
    ) -> Result<(), GemmError> {
        self.try_gemm_opts(
            m,
            n,
            k,
            a,
            b,
            c,
            &GemmOptions::new().threads(threads).deadline(deadline),
        )
    }

    /// The supervised front door: execute with per-call [`GemmOptions`]
    /// (threads, deadline, cancel token, watchdog). All plain `try_gemm*`
    /// entry points funnel through here, so every native call consults
    /// the engine's circuit breaker: quarantined paths are rerouted
    /// (scalar kernels / transient buffers / single thread) and call
    /// outcomes advance the breaker state machine. Cancelled calls are
    /// neutral — they never move the breaker.
    #[allow(clippy::too_many_arguments)]
    pub fn try_gemm_opts(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        opts: &GemmOptions,
    ) -> Result<(), GemmError> {
        self.run_supervised(m, n, k, a, b, c, opts, false, false, false)
    }

    /// [`Self::try_gemm_opts`] with one bounded retry-with-degradation
    /// ladder for *retryable* failures (worker panic, allocation
    /// failure, stall): as requested → single thread → single thread
    /// with scalar kernels and transient buffers. Deliberate stops
    /// (`Cancelled`) and caller mistakes (shape/plan errors) are never
    /// retried. Returns which rung succeeded; the terminal error of the
    /// last rung otherwise.
    ///
    /// The deadline budget spans the whole ladder: time a failed rung
    /// consumed is deducted before the next rung runs, and a budget
    /// exhausted between rungs surfaces as [`GemmError::Cancelled`]
    /// (`phase: "retry"`) instead of granting each rung a fresh full
    /// deadline.
    #[allow(clippy::too_many_arguments)]
    pub fn try_gemm_resilient(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        opts: &GemmOptions,
    ) -> Result<ResilientReport, GemmError> {
        let start = std::time::Instant::now();
        let err = match self.run_supervised(m, n, k, a, b, c, opts, false, false, false) {
            Ok(()) => return Ok(ResilientReport { attempts: 1, mode: ResilientMode::AsRequested }),
            Err(e) => e,
        };
        if matches!(err, GemmError::IntegrityViolation { .. }) {
            // The verified-reexecution rung: the computed output failed
            // the integrity check, so re-run on the trusted scalar
            // reference path (single thread, transient buffers) and
            // verify that result too — the caller gets either a checked
            // `C` or the violation, never a silently wrong answer. `C`
            // is fully overwritten by the re-run (drivers write, not
            // accumulate), so the corrupted buffer needs no reset.
            let rung_opts = Self::deduct_deadline(opts, start)?.verify(VerifyPolicy::Always);
            self.metrics.add(Counter::VerifyReexecutions, 1);
            return self.run_supervised(m, n, k, a, b, c, &rung_opts, true, true, true).map(|()| {
                ResilientReport { attempts: 2, mode: ResilientMode::VerifiedReexecution }
            });
        }
        if !is_retryable(&err) {
            return Err(err);
        }
        let rung_opts = Self::deduct_deadline(opts, start)?;
        self.metrics.add(Counter::RetryAttempts, 1);
        match self.run_supervised(m, n, k, a, b, c, &rung_opts, false, false, true) {
            Ok(()) => {
                return Ok(ResilientReport { attempts: 2, mode: ResilientMode::SingleThread })
            }
            Err(e) if !is_retryable(&e) => return Err(e),
            Err(_) => {}
        }
        let rung_opts = Self::deduct_deadline(opts, start)?;
        self.metrics.add(Counter::RetryAttempts, 1);
        self.run_supervised(m, n, k, a, b, c, &rung_opts, true, true, true)
            .map(|()| ResilientReport { attempts: 3, mode: ResilientMode::ScalarTransient })
    }

    /// The per-rung options of the resilient ladder: the original
    /// options with the elapsed ladder time deducted from the deadline
    /// budget. A budget already spent is a cancellation, not a retry.
    fn deduct_deadline(
        opts: &GemmOptions,
        start: std::time::Instant,
    ) -> Result<GemmOptions, GemmError> {
        let Some(budget) = opts.deadline else { return Ok(opts.clone()) };
        let remaining = budget.saturating_sub(start.elapsed());
        if remaining.is_zero() {
            return Err(GemmError::Cancelled { phase: "retry", blocks_done: 0, blocks_total: 0 });
        }
        Ok(opts.clone().deadline(remaining))
    }

    /// Current circuit-breaker health snapshot (empty transition list —
    /// per-call transitions ride on traced reports).
    pub fn health(&self) -> HealthReport {
        self.breaker.health_report(Vec::new())
    }

    /// The engine's circuit breaker, for state inspection.
    pub fn breaker(&self) -> &Breaker {
        &self.breaker
    }

    /// Classify a call result for the metrics registry: cancellation is
    /// its own outcome (deliberate, not a fault), everything else `Err`
    /// counts as an error.
    fn call_outcome<T>(result: &Result<T, GemmError>) -> CallOutcome {
        match result {
            Ok(_) => CallOutcome::Ok,
            Err(GemmError::Cancelled { .. }) => CallOutcome::Cancelled,
            Err(_) => CallOutcome::Error,
        }
    }

    /// `2·m·n·k` saturated to `u64` — the FLOP count the throughput
    /// histogram divides by call latency.
    fn call_flops(m: usize, n: usize, k: usize) -> u64 {
        2u64.saturating_mul(m as u64).saturating_mul(n as u64).saturating_mul(k as u64)
    }

    /// Shared implementation of every supervised native call: breaker
    /// admission → supervision bundle → plan → driver → breaker record.
    /// `force_*` flags are the resilient ladder's degradations, OR-ed
    /// with whatever the breaker quarantines. Wraps the whole call in
    /// the registry's latency/throughput measurement.
    #[allow(clippy::too_many_arguments)]
    fn run_supervised(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        opts: &GemmOptions,
        force_reference: bool,
        force_transient: bool,
        force_single_thread: bool,
    ) -> Result<(), GemmError> {
        let t0 = self.metrics.call_begin();
        let result = self.run_supervised_inner(
            m,
            n,
            k,
            a,
            b,
            c,
            opts,
            force_reference,
            force_transient,
            force_single_thread,
        );
        self.metrics.call_end(t0, Self::call_flops(m, n, k), Self::call_outcome(&result));
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn run_supervised_inner(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        opts: &GemmOptions,
        force_reference: bool,
        force_transient: bool,
        force_single_thread: bool,
    ) -> Result<(), GemmError> {
        error::check_operands(m, n, k, a, b, c)?;
        if m == 0 || n == 0 {
            return Ok(());
        }
        if k == 0 {
            c.fill(0.0);
            return Ok(());
        }
        // Admission happens before plan selection: a ThreadedDriver
        // quarantine changes the plan (single-thread k_c), not just the
        // worker count.
        let adm = self.breaker.admit();
        let reroute = adm.reroute;
        let mut sup = Supervision::from_options(opts).with_runtime(self.runtime.clone());
        if let Some(t) = &self.tracer {
            sup = sup.with_tracer(Arc::clone(t));
        }
        // A quarantined verify_integrity path reroutes to the trusted
        // scalar reference kernels — same degraded twin as a SIMD
        // quarantine, because a silently wrong answer implicates the
        // fast compute path.
        sup.set_force_reference(
            force_reference
                || reroute[BreakerPath::SimdDispatch.index()]
                || reroute[BreakerPath::VerifyIntegrity.index()],
        );
        sup.set_force_transient(force_transient || reroute[BreakerPath::PoolAlloc.index()]);
        sup.set_force_inline(reroute[BreakerPath::PoolSubmit.index()]);
        let mut threads = self.clamp_threads(opts.threads);
        if force_single_thread || reroute[BreakerPath::ThreadedDriver.index()] {
            threads = 1;
        }
        // Degenerate shapes (m = 1, n = 1, tiny k) skip the tuner and the
        // block driver entirely: the GEMV/small-k fast paths produce
        // bit-identical output with none of the planning or packing cost.
        if let Some(route) = crate::gemv::fast_route(m, n, k) {
            let mut result =
                crate::gemv::try_fast_supervised(route, m, n, k, a, b, c, threads, &sup);
            let verified = self.maybe_verify(m, n, k, a, b, c, opts, &sup, &adm, &mut result);
            self.breaker_record(&sup, &adm, threads, &result, verified);
            return result;
        }
        let tuner_threads = if threads > 1 { threads.max(2) } else { 1 };
        let (plan, _) = self.plan_dispatch(m, n, k, tuner_threads);
        let mut result =
            native::try_gemm_with_plan_supervised(&plan, a, b, c, threads, &self.panel_pool, &sup);
        let verified = self.maybe_verify(m, n, k, a, b, c, opts, &sup, &adm, &mut result);
        self.breaker_record(&sup, &adm, threads, &result, verified);
        result
    }

    /// The verify policy governing one call: a non-`Off` per-call policy
    /// wins, then the engine default. (Tenant policies are injected into
    /// the per-call options by [`GemmService`](crate::service::GemmService)
    /// before the call reaches the engine.)
    fn resolve_verify(&self, opts: &GemmOptions) -> VerifyPolicy {
        if opts.verify != VerifyPolicy::Off {
            opts.verify
        } else {
            self.verify_default
        }
    }

    /// Run post-execution output verification when the resolved policy
    /// (or a HalfOpen `verify_integrity` probe) selects this call.
    /// Returns whether the check actually ran — unverified calls leave
    /// the `verify_integrity` breaker path unexercised. On mismatch the
    /// `Ok` result is replaced with the
    /// [`GemmError::IntegrityViolation`] and a fault is recorded on the
    /// path; `C` then holds the untrusted output per the error's
    /// contract.
    #[allow(clippy::too_many_arguments)]
    fn maybe_verify(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &[f32],
        opts: &GemmOptions,
        sup: &Supervision,
        adm: &Admission,
        result: &mut Result<(), GemmError>,
    ) -> bool {
        if result.is_err() {
            // The driver already failed structurally; there is no
            // completed output to attest.
            return false;
        }
        let policy = self.resolve_verify(opts);
        // A HalfOpen probe call must produce a verdict regardless of the
        // sampling cadence — otherwise a `Sample` policy could starve
        // the path of probes and wedge it HalfOpen.
        let must = adm.probe[BreakerPath::VerifyIntegrity.index()];
        let sampled = match policy {
            VerifyPolicy::Off => false,
            VerifyPolicy::Always => true,
            VerifyPolicy::Sample { .. } => {
                policy.should_run(self.verify_seq.fetch_add(1, Ordering::Relaxed))
            }
        };
        if !must && !sampled {
            return false;
        }
        let t0 = std::time::Instant::now();
        let check = verify::verify_output(m, n, k, a, b, c);
        self.metrics.add(Counter::VerifyRuns, 1);
        self.metrics.record(&self.metrics.verify_ns, t0.elapsed().as_nanos() as u64);
        match check {
            Ok(()) => self.metrics.add(Counter::VerifyPasses, 1),
            Err(e) => {
                self.metrics.add(Counter::VerifyFailures, 1);
                sup.observe_fault(BreakerPath::VerifyIntegrity);
                *result = Err(e);
            }
        }
        true
    }

    /// Feed one call's outcome to the breaker. Paths the call did not
    /// exercise (rerouted, forced degraded, single-threaded for the
    /// threaded-driver path, or unverified for the verify-integrity
    /// path) are neither successes nor faults; `Cancelled` calls are
    /// neutral.
    fn breaker_record<T>(
        &self,
        sup: &Supervision,
        adm: &Admission,
        threads: usize,
        result: &Result<T, GemmError>,
        verified: bool,
    ) -> Vec<String> {
        let mut reroute = adm.reroute;
        if sup.force_reference {
            reroute[BreakerPath::SimdDispatch.index()] = true;
        }
        if !verified {
            // Calls the policy did not sample (or that failed before
            // producing output) never exercised the integrity check.
            reroute[BreakerPath::VerifyIntegrity.index()] = true;
        }
        if sup.force_transient {
            reroute[BreakerPath::PoolAlloc.index()] = true;
        }
        if sup.force_inline {
            reroute[BreakerPath::PoolSubmit.index()] = true;
        }
        if threads <= 1 {
            // A single-threaded call exercises neither the threaded
            // driver nor the pool-submit path.
            reroute[BreakerPath::ThreadedDriver.index()] = true;
            reroute[BreakerPath::PoolSubmit.index()] = true;
        }
        let neutral = matches!(result, Err(GemmError::Cancelled { .. }));
        // The probe flags travel back so the breaker can release the
        // path's single HalfOpen probe slot even on neutral calls.
        self.breaker.record(&sup.observed, reroute, adm.probe, neutral)
    }

    /// [`Self::gemm_threaded`] with per-call telemetry: runs the same
    /// plan through the traced panel-cache driver and returns the
    /// [`crate::GemmReport`] — phase breakdown, pack stats, per-thread
    /// busy profiles and the dispatched kernel-shape histogram. Output
    /// `C` is bit-identical to the untraced call; without the
    /// `telemetry` feature the report's timings and counters are zero.
    ///
    /// Panics with the structured [`GemmError`] message;
    /// [`Self::try_gemm_traced`] is the non-panicking form.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_traced(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        threads: usize,
    ) -> crate::GemmReport {
        match self.try_gemm_traced(m, n, k, a, b, c, threads) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Self::gemm_traced`]. The report's
    /// [`crate::telemetry::FallbackStats`] records any graceful
    /// degradation (unpooled packing, scalar-kernel reroute) the run
    /// took, and [`crate::telemetry::GemmReport::health`] carries the
    /// breaker snapshot with this call's transitions.
    #[allow(clippy::too_many_arguments)]
    pub fn try_gemm_traced(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        threads: usize,
    ) -> Result<crate::GemmReport, GemmError> {
        self.try_gemm_traced_opts(m, n, k, a, b, c, &GemmOptions::new().threads(threads))
    }

    /// [`Self::try_gemm_traced`] with per-call [`GemmOptions`]: the
    /// traced twin of [`Self::try_gemm_opts`], with identical breaker
    /// and supervision semantics. The returned report's `health` section
    /// holds the post-call breaker snapshot plus every transition this
    /// call performed.
    #[allow(clippy::too_many_arguments)]
    pub fn try_gemm_traced_opts(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        opts: &GemmOptions,
    ) -> Result<crate::GemmReport, GemmError> {
        let t0 = self.metrics.call_begin();
        let result = self.try_gemm_traced_inner(m, n, k, a, b, c, opts);
        self.metrics.call_end(t0, Self::call_flops(m, n, k), Self::call_outcome(&result));
        // Stamp the post-call registry view on the report (schema-v5
        // `metrics` section) so committed artifacts carry it.
        result.map(|mut report| {
            report.metrics = Some(self.metrics());
            report
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn try_gemm_traced_inner(
        &self,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        opts: &GemmOptions,
    ) -> Result<crate::GemmReport, GemmError> {
        error::check_operands(m, n, k, a, b, c)?;
        if m == 0 || n == 0 || k == 0 {
            // Degenerate shapes never reach the tuner (and are neutral
            // for the breaker); report the shape with an otherwise-empty
            // profile.
            if k == 0 && m > 0 && n > 0 {
                c.fill(0.0);
            }
            return Ok(crate::GemmReport { m, n, k, ..crate::GemmReport::default() });
        }
        let adm = self.breaker.admit();
        let reroute = adm.reroute;
        let mut events = adm.events.clone();
        let mut sup = Supervision::from_options(opts).with_runtime(self.runtime.clone());
        if let Some(t) = &self.tracer {
            sup = sup.with_tracer(Arc::clone(t));
        }
        sup.set_force_reference(
            reroute[BreakerPath::SimdDispatch.index()]
                || reroute[BreakerPath::VerifyIntegrity.index()],
        );
        sup.set_force_transient(reroute[BreakerPath::PoolAlloc.index()]);
        sup.set_force_inline(reroute[BreakerPath::PoolSubmit.index()]);
        let mut threads = self.clamp_threads(opts.threads);
        if reroute[BreakerPath::ThreadedDriver.index()] {
            threads = 1;
        }
        if let Some(route) = crate::gemv::fast_route(m, n, k) {
            let mut result =
                crate::gemv::try_fast_traced_supervised(route, m, n, k, a, b, c, threads, &sup);
            let mut unit = result.as_ref().map(|_| ()).map_err(GemmError::clone);
            let verified = self.maybe_verify(m, n, k, a, b, c, opts, &sup, &adm, &mut unit);
            if let Err(e) = unit {
                result = Err(e);
            }
            events.extend(self.breaker_record(&sup, &adm, threads, &result, verified));
            let stats = self.plans.stats();
            let integrity = self.integrity_section(opts, verified);
            return result.map(|mut report| {
                report.health = self.breaker.health_report(events);
                report.pool = self.runtime.stats();
                report.integrity = Some(integrity);
                report.dispatch = DispatchStats {
                    route: route.name().to_string(),
                    packed_a: false,
                    packed_b: false,
                    plan_cache_hit: false,
                    plan_cache_hits: stats.hits,
                    plan_cache_misses: stats.misses,
                };
                report
            });
        }
        let tuner_threads = if threads > 1 { threads.max(2) } else { 1 };
        let (plan, cache_hit) = self.plan_dispatch(m, n, k, tuner_threads);
        let mut result = native::try_gemm_with_plan_traced_supervised(
            &plan,
            a,
            b,
            c,
            threads,
            &self.panel_pool,
            &sup,
        );
        let mut unit = result.as_ref().map(|_| ()).map_err(GemmError::clone);
        let verified = self.maybe_verify(m, n, k, a, b, c, opts, &sup, &adm, &mut unit);
        if let Err(e) = unit {
            result = Err(e);
        }
        events.extend(self.breaker_record(&sup, &adm, threads, &result, verified));
        let stats = self.plans.stats();
        let integrity = self.integrity_section(opts, verified);
        result.map(|mut report| {
            report.health = self.breaker.health_report(events);
            report.pool = self.runtime.stats();
            report.integrity = Some(integrity);
            report.dispatch = DispatchStats {
                route: "block".to_string(),
                packed_a: plan.routing.pack_a,
                packed_b: plan.routing.pack_b,
                plan_cache_hit: cache_hit,
                plan_cache_hits: stats.hits,
                plan_cache_misses: stats.misses,
            };
            report
        })
    }

    /// The schema-v7 `integrity` report section: this call's resolved
    /// policy plus the engine-lifetime verification counters and timing.
    fn integrity_section(&self, opts: &GemmOptions, verified: bool) -> IntegrityReport {
        let policy = self.resolve_verify(opts);
        IntegrityReport {
            policy: policy.name().to_string(),
            sample_rate: policy.sample_rate(),
            verified,
            verify_runs_total: self.metrics.counter(Counter::VerifyRuns),
            verify_passes_total: self.metrics.counter(Counter::VerifyPasses),
            verify_failures_total: self.metrics.counter(Counter::VerifyFailures),
            verify_reexecutions_total: self.metrics.counter(Counter::VerifyReexecutions),
            verify_ns: self.metrics.verify_ns.snapshot(),
        }
    }

    /// Batched same-shape GEMM through the engine: tunes the shape once
    /// and spreads items over `threads` workers (each item runs
    /// single-threaded on its own disjoint output slice).
    ///
    /// Panics with the structured [`GemmError`] message;
    /// [`Self::try_gemm_batch`] is the non-panicking form.
    pub fn gemm_batch(&self, batch: &GemmBatch, c: &mut [f32], threads: usize) {
        if let Err(e) = self.try_gemm_batch(batch, c, threads) {
            panic!("{e}");
        }
    }

    /// Fallible [`Self::gemm_batch`]: output-length mismatches and size
    /// overflows come back as `Err` before any plan is tuned; item
    /// failures come back as [`GemmError::InBatch`] naming the failing
    /// index, per [`crate::batch::try_gemm_batch`].
    pub fn try_gemm_batch(
        &self,
        batch: &GemmBatch,
        c: &mut [f32],
        threads: usize,
    ) -> Result<(), GemmError> {
        self.try_gemm_batch_opts(batch, c, &GemmOptions::new().threads(threads))
    }

    /// [`Self::try_gemm_batch`] with per-call [`GemmOptions`]: the batch
    /// honours the deadline/watchdog at item boundaries (reporting
    /// `phase: "batch"` with item counts) and a cancel token inside the
    /// in-flight items too; breaker reroutes apply to every item.
    pub fn try_gemm_batch_opts(
        &self,
        batch: &GemmBatch,
        c: &mut [f32],
        opts: &GemmOptions,
    ) -> Result<(), GemmError> {
        let t0 = self.metrics.call_begin();
        let result = self.try_gemm_batch_inner(batch, c, opts);
        let flops = Self::call_flops(batch.m, batch.n, batch.k).saturating_mul(batch.len() as u64);
        self.metrics.call_end(t0, flops, Self::call_outcome(&result));
        result
    }

    fn try_gemm_batch_inner(
        &self,
        batch: &GemmBatch,
        c: &mut [f32],
        opts: &GemmOptions,
    ) -> Result<(), GemmError> {
        let (m, n, k) = (batch.m, batch.n, batch.k);
        let item = error::checked_size("m*n", m, n)?;
        let expected = item.checked_mul(batch.len()).ok_or(GemmError::SizeOverflow {
            what: "len*m*n",
            lhs: batch.len(),
            rhs: item,
        })?;
        if c.len() != expected {
            return Err(GemmError::SliceLen {
                operand: error::Operand::C,
                expected,
                got: c.len(),
                dims: "len*m*n",
            });
        }
        if batch.is_empty() || item == 0 {
            return Ok(());
        }
        if k == 0 {
            c.fill(0.0);
            return Ok(());
        }
        let adm = self.breaker.admit();
        let reroute = adm.reroute;
        let mut sup = Supervision::from_options(opts).with_runtime(self.runtime.clone());
        if let Some(t) = &self.tracer {
            sup = sup.with_tracer(Arc::clone(t));
        }
        sup.set_force_reference(reroute[BreakerPath::SimdDispatch.index()]);
        sup.set_force_transient(reroute[BreakerPath::PoolAlloc.index()]);
        sup.set_force_inline(reroute[BreakerPath::PoolSubmit.index()]);
        let mut threads = self.clamp_threads(opts.threads);
        if reroute[BreakerPath::ThreadedDriver.index()] {
            threads = 1;
        }
        // Items run single-threaded (parallelism is across items), so
        // the per-item plan is the single-thread plan.
        let plan = self.plan(m, n, k);
        let result = crate::batch::try_gemm_batch_supervised(&plan, batch, c, threads, &sup);
        if matches!(result, Err(GemmError::WorkerPanicked { .. }) | Err(GemmError::Stalled { .. }))
        {
            sup.observe_fault(BreakerPath::ThreadedDriver);
        }
        // Batched calls do not run the integrity check (no per-item
        // policy resolution yet), so the verify path stays unexercised.
        self.breaker_record(&sup, &adm, threads, &result, false);
        result
    }

    /// Drop the engine's pooled panel buffers (memory release valve after
    /// a large shape has been through the native path).
    pub fn clear_panel_pool(&self) {
        self.panel_pool.clear();
    }

    /// The engine's panel pool — exposes the outstanding/high-water leak
    /// gauges that soak runs assert on.
    pub fn panel_pool(&self) -> &crate::packing::PanelPool {
        &self.panel_pool
    }

    fn block_cost(&self, plan: &ExecutionPlan, multicore: bool) -> BlockCost {
        let s = &plan.schedule;
        let key = (s.mc, s.nc, s.kc, multicore);
        if let Some(c) = self.block_sims.lock().get(&key) {
            return *c;
        }
        let c = simexec::simulate_block(plan, &self.chip, true);
        self.block_sims.lock().insert(key, c);
        c
    }

    /// Run the GEMM on the cycle-level chip model and report performance —
    /// the numbers every paper figure is built from. Single-threaded runs
    /// use the full single-core accounting (simulated block compute
    /// combined with the loop-order traffic model); multi-threaded runs go
    /// through the makespan model.
    pub fn simulate(&self, m: usize, n: usize, k: usize, threads: usize) -> SimGemmReport {
        if threads > 1 {
            let plan = self.plan_multicore(m, n, k, threads);
            return self.simulate_with_plan(&plan, threads);
        }
        let plan = self.plan(m, n, k);
        let block = self.block_cost(&plan, false);
        let cycles = simexec::single_core_cycles(&plan, &self.chip, block);
        let seconds = cycles / (self.chip.freq_ghz * 1e9);
        let flops = plan.flops();
        let gflops = flops as f64 / seconds / 1e9;
        SimGemmReport {
            m,
            n,
            k,
            threads: 1,
            seconds,
            gflops,
            efficiency: gflops / self.chip.peak_gflops_core(),
            bw_limited: false,
            packing: plan.packing(),
        }
    }

    /// Simulate a specific plan at a given thread count, always through
    /// the multi-core makespan model (consistent accounting at every point
    /// of a strong-scaling curve, including threads = 1). Used by the
    /// scaling figure, which holds the plan fixed while varying threads
    /// (the paper scales one binary, not one tuning per point).
    pub fn simulate_with_plan(&self, plan: &ExecutionPlan, threads: usize) -> SimGemmReport {
        let block = self.block_cost(plan, threads > 1);
        let flops = plan.flops();
        let (m, n, k) = (plan.schedule.m, plan.schedule.n, plan.schedule.k);

        let mut works = simexec::thread_works(plan, &self.chip, block, threads);
        if self.cmg_replication {
            // Replicated packing: each populated domain re-packs the
            // shared panels; charge the extra pack time to every thread.
            let domains = threads
                .div_ceil(self.chip.numa.cores_per_domain.max(1))
                .min(self.chip.numa.domains.max(1));
            if domains > 1 {
                let extra = autogemm_tuner::cost::packing_cycles(&plan.schedule, &self.chip)
                    * (domains as f64 - 1.0)
                    / threads as f64;
                for w in &mut works {
                    w.cycles += extra as u64;
                }
            }
        }
        let used = works.len();
        let r = autogemm_sim::makespan_with_placement(&self.chip, &works, self.cmg_replication);
        let (seconds, bw_limited, threads_used) = (r.seconds, r.bw_limited, used);

        let gflops = flops as f64 / seconds / 1e9;
        let peak = self.chip.peak_gflops_core() * threads_used as f64;
        SimGemmReport {
            m,
            n,
            k,
            threads: threads_used,
            seconds,
            gflops,
            efficiency: gflops / peak,
            bw_limited,
            packing: plan.packing(),
        }
    }

    /// Simulate one bare micro-kernel (used by the step-wise figures).
    pub fn simulate_micro_kernel(
        &self,
        spec: &autogemm_kernelgen::MicroKernelSpec,
        warmth: Warmth,
    ) -> autogemm_sim::SimReport {
        let (mr, nr, kc) = (spec.tile.mr, spec.tile.nr, spec.kc);
        let a = vec![1.0f32; mr * kc];
        let b = vec![1.0f32; kc * nr];
        let mut c = vec![0.0f32; mr * nr];
        autogemm_sim::run_micro_kernel(spec, &self.chip, &a, &b, &mut c, warmth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_small_gemm_reaches_high_efficiency() {
        // Table I / Fig 8 headline: near-peak at M=N=K=64 on a single core.
        let engine = AutoGemm::new(ChipSpec::graviton2());
        let r = engine.simulate(64, 64, 64, 1);
        assert!(
            r.efficiency > 0.80,
            "efficiency {:.3} too low for 64³ (paper: ~0.98)",
            r.efficiency
        );
        assert!(r.gflops > 0.0);
    }

    #[test]
    fn tiny_gemm_efficiency_is_lower() {
        let engine = AutoGemm::new(ChipSpec::graviton2());
        let tiny = engine.simulate(8, 8, 8, 1);
        let small = engine.simulate(64, 64, 64, 1);
        assert!(tiny.efficiency < small.efficiency);
    }

    #[test]
    fn native_gemm_is_correct_via_engine() {
        let engine = AutoGemm::new(ChipSpec::m2());
        let (m, n, k) = (26, 36, 19);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 - 2.0).collect();
        let mut c = vec![0.0f32; m * n];
        engine.gemm(m, n, k, &a, &b, &mut c);
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    want[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        assert_eq!(c, want);
    }

    #[test]
    fn multicore_uses_threads_and_speeds_up() {
        let engine = AutoGemm::new(ChipSpec::graviton2());
        let single = engine.simulate(64, 3136, 64, 1);
        let multi = engine.simulate(64, 3136, 64, 8);
        assert_eq!(multi.threads, 8);
        assert!(
            multi.seconds < single.seconds,
            "8 threads {}s !< 1 thread {}s",
            multi.seconds,
            single.seconds
        );
    }

    #[test]
    fn traced_engine_call_matches_untraced_bitwise() {
        let engine = AutoGemm::new(ChipSpec::graviton2());
        let (m, n, k) = (31, 44, 29);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32 - 3.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 - 2.0).collect();
        for threads in [1usize, 3] {
            let mut c_plain = vec![0.0f32; m * n];
            engine.gemm_threaded(m, n, k, &a, &b, &mut c_plain, threads);
            let mut c_traced = vec![0.0f32; m * n];
            let report = engine.gemm_traced(m, n, k, &a, &b, &mut c_traced, threads);
            assert_eq!(c_traced, c_plain, "t{threads}: traced front door diverged");
            assert_eq!((report.m, report.n, report.k), (m, n, k));
            assert!(!report.thread_profiles.is_empty());
        }
    }

    #[test]
    fn block_simulations_are_memoized() {
        let engine = AutoGemm::new(ChipSpec::kp920());
        engine.simulate(64, 64, 64, 1);
        let n1 = engine.block_sims.lock().len();
        engine.simulate(64, 64, 64, 1);
        assert_eq!(engine.block_sims.lock().len(), n1);
    }
}
