//! The structured error model of the fallible GEMM front door.
//!
//! Every native entry point has a `try_*` form returning
//! `Result<_, GemmError>`; the historical infallible names are thin
//! wrappers that panic with the *same* structured message
//! ([`GemmError`]'s `Display`), so a caller that prefers aborting loses
//! nothing, and a caller serving traffic can degrade gracefully the way
//! the production BLAS libraries the paper benchmarks against do (§V).
//!
//! ## Panic policy
//!
//! * **Boundary conditions are `Err`, never `panic!`.** Slice-length
//!   mismatches, size-computation overflow and plan mismatches are
//!   reported with expected-vs-got detail before any work starts.
//! * **Degenerate shapes are `Ok`.** `m == 0 || n == 0` is an empty
//!   problem (nothing to write); `k == 0` writes `C = 0` (the empty sum),
//!   both without planning.
//! * **Worker panics are contained.** A panic inside a worker thread
//!   poisons the run: surviving workers drain the work queue without
//!   executing further blocks and exit cleanly, and the caller gets
//!   [`GemmError::WorkerPanicked`] with the panicking worker's index and
//!   payload — no deadlock, no abort, no unsoundness.
//! * **Internal invariants may still `debug_assert!`.** Those guard
//!   library bugs, not caller mistakes, and compile out of release
//!   builds.
//!
//! ## The untouched-`C` guarantee
//!
//! On every error *except* [`GemmError::WorkerPanicked`], `C` has not
//! been written at all: validation runs before the first store. On
//! `WorkerPanicked`, `C` may hold a mix of original and partially
//! updated blocks — every element is a value some complete micro-kernel
//! store produced or the original contents (tiles are written whole, so
//! no torn element is observable) — and the buffer is safe to reuse
//! after re-running the GEMM.

/// Which operand a length/shape complaint refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    A,
    B,
    C,
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::A => f.write_str("A"),
            Operand::B => f.write_str("B"),
            Operand::C => f.write_str("C"),
        }
    }
}

/// A structured GEMM failure. See the module docs for the panic policy
/// and the untouched-`C` guarantee.
#[derive(Debug, Clone, PartialEq)]
pub enum GemmError {
    /// An operand slice's length does not match the problem shape.
    SliceLen {
        operand: Operand,
        /// `rows × cols` the shape implies.
        expected: usize,
        got: usize,
        /// The dimension product as written, e.g. `"M*K"`.
        dims: &'static str,
    },
    /// A size computation overflowed `usize` (e.g. `m * k` on a
    /// pathological shape); no buffer of that size can exist, so the
    /// operands cannot match it either.
    SizeOverflow { what: &'static str, lhs: usize, rhs: usize },
    /// A worker thread panicked and the run was poisoned. `thread` is
    /// the worker's index in the pool (the caller thread is worker 0 on
    /// single-threaded runs); `detail` carries the panic payload when it
    /// was a string.
    WorkerPanicked { thread: usize, detail: String },
    /// Panel-buffer allocation failed in the named phase (pool and
    /// unpooled fallback both unavailable — in practice only reachable
    /// through the `faultinject` feature, since Rust aborts on true OOM).
    AllocFailed { phase: &'static str },
    /// A prepacked operand was built for a different plan.
    PlanMismatch {
        /// `(m, n, k)` the packed operand was built for.
        expected: (usize, usize, usize),
        got: (usize, usize, usize),
    },
    /// The run was cancelled cooperatively (explicit
    /// [`CancelToken`](crate::supervisor::CancelToken) or an expired
    /// deadline) before the named phase finished. Buffers are released
    /// and the engine is immediately reusable; `C` follows the same
    /// partial-write contract as [`GemmError::WorkerPanicked`] when the
    /// kernel phase had started, and is untouched otherwise.
    Cancelled {
        /// Phase that was interrupted: `"pack A"`, `"pack B"`,
        /// `"kernel"` or `"batch"`.
        phase: &'static str,
        /// Work units (panels, blocks or batch items) completed in that
        /// phase before the stop.
        blocks_done: usize,
        /// Work units the phase had in total.
        blocks_total: usize,
    },
    /// The stuck-worker watchdog observed no heartbeat progress for its
    /// quiescence window and stopped the run. Same buffer/`C` contract
    /// as [`GemmError::Cancelled`].
    Stalled {
        /// Phase in which the stall was detected.
        phase: &'static str,
        /// The configured quiescence window, in milliseconds.
        quiescence_ms: u64,
        /// Per-worker heartbeat counters at the moment of the verdict.
        heartbeats: Vec<u64>,
    },
    /// An item of a [`gemm_batch`](crate::batch::try_gemm_batch) call
    /// failed; `index` is its position in the batch and `source` the
    /// underlying error. Other items may have completed (their `C`
    /// chunks are valid); the failed item's chunk follows `source`'s
    /// own contract.
    InBatch { index: usize, source: Box<GemmError> },
    /// The [`GemmService`](crate::service::GemmService) admission layer
    /// refused the request before any engine work started: `C` is
    /// untouched and no queue or execution slot is held. `queue_depth`
    /// is the number of requests waiting at the moment of the verdict.
    Rejected { reason: RejectReason, queue_depth: usize },
    /// A request admitted by the service failed during execution on the
    /// named tenant's engine; `source` is the underlying engine error
    /// and governs the `C` contract.
    InService { tenant: String, source: Box<GemmError> },
    /// The output-integrity layer ([`verify`](crate::verify)) rejected
    /// the computed `C`. `check` names the detector (`"freivalds"` or
    /// `"non_finite"`), `round` the Freivalds round that tripped (0 for
    /// the non-finite scan), and `max_residual` the largest
    /// `|C·x − A·(B·x)|` component observed. `C` holds the untrusted
    /// result — callers must either discard it or re-run (which
    /// [`try_gemm_resilient`](crate::engine::AutoGemm::try_gemm_resilient)
    /// does automatically on its verified-reexecution rung).
    IntegrityViolation { check: &'static str, round: u32, max_residual: f64 },
}

/// Why the service admission layer refused a request (the `reason` of
/// [`GemmError::Rejected`]).
///
/// Marked `#[non_exhaustive]`: future admission policies may add
/// reasons, so downstream matches need a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// The bounded admission queue was at its configured depth.
    QueueFull,
    /// The tenant already held its maximum share of the queue.
    TenantQueueShare,
    /// The remaining deadline budget was provably insufficient
    /// (perfmodel floor, or observed p95 once warmed) — shed at
    /// admission instead of wasting pool time.
    DeadlineUnmeetable,
    /// The deadline expired while the request was still queued.
    ExpiredInQueue,
    /// The service had been closed; no new work is accepted.
    ServiceClosed,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull => f.write_str("admission queue full"),
            RejectReason::TenantQueueShare => f.write_str("tenant queue share exhausted"),
            RejectReason::DeadlineUnmeetable => {
                f.write_str("remaining deadline budget provably insufficient")
            }
            RejectReason::ExpiredInQueue => f.write_str("deadline expired while queued"),
            RejectReason::ServiceClosed => f.write_str("service closed"),
        }
    }
}

impl std::fmt::Display for GemmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GemmError::SliceLen { operand, expected, got, dims } => {
                write!(f, "autogemm: {operand} must hold {dims} = {expected} elements, got {got}")
            }
            GemmError::SizeOverflow { what, lhs, rhs } => {
                write!(f, "autogemm: size computation {what} = {lhs} * {rhs} overflows usize")
            }
            GemmError::WorkerPanicked { thread, detail } => {
                write!(f, "autogemm: worker thread {thread} panicked: {detail}")
            }
            GemmError::AllocFailed { phase } => {
                write!(f, "autogemm: panel allocation failed during {phase}")
            }
            GemmError::PlanMismatch { expected, got } => write!(
                f,
                "autogemm: packed operand was built for a different plan \
                 (packed for {}x{}x{}, plan is {}x{}x{})",
                expected.0, expected.1, expected.2, got.0, got.1, got.2
            ),
            GemmError::Cancelled { phase, blocks_done, blocks_total } => write!(
                f,
                "autogemm: cancelled during {phase} ({blocks_done}/{blocks_total} blocks done)"
            ),
            GemmError::Stalled { phase, quiescence_ms, heartbeats } => write!(
                f,
                "autogemm: stalled during {phase}: no worker heartbeat for {quiescence_ms} ms \
                 (heartbeats {heartbeats:?})"
            ),
            GemmError::InBatch { index, source } => {
                write!(f, "autogemm: batch item {index} failed: {source}")
            }
            GemmError::Rejected { reason, queue_depth } => {
                write!(f, "autogemm: request rejected ({reason}; {queue_depth} queued)")
            }
            GemmError::InService { tenant, source } => {
                write!(f, "autogemm: tenant {tenant:?} call failed: {source}")
            }
            GemmError::IntegrityViolation { check, round, max_residual } => write!(
                f,
                "autogemm: output integrity check {check} failed \
                 (round {round}, max residual {max_residual:e})"
            ),
        }
    }
}

impl std::error::Error for GemmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GemmError::InBatch { source, .. } | GemmError::InService { source, .. } => {
                Some(source.as_ref())
            }
            _ => None,
        }
    }
}

/// `rows * cols`, or [`GemmError::SizeOverflow`] naming the computation.
pub(crate) fn checked_size(
    what: &'static str,
    rows: usize,
    cols: usize,
) -> Result<usize, GemmError> {
    rows.checked_mul(cols).ok_or(GemmError::SizeOverflow { what, lhs: rows, rhs: cols })
}

/// Validate one operand slice against its `rows × cols` shape.
pub(crate) fn check_len(
    operand: Operand,
    dims: &'static str,
    len: usize,
    rows: usize,
    cols: usize,
) -> Result<(), GemmError> {
    let expected = checked_size(dims, rows, cols)?;
    if len != expected {
        return Err(GemmError::SliceLen { operand, expected, got: len, dims });
    }
    Ok(())
}

/// Validate the three `C (M×N) = A (M×K) · B (K×N)` operands at once.
pub(crate) fn check_operands(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &[f32],
) -> Result<(), GemmError> {
    check_len(Operand::A, "M*K", a.len(), m, k)?;
    check_len(Operand::B, "K*N", b.len(), k, n)?;
    check_len(Operand::C, "M*N", c.len(), m, n)
}

/// Render a panic payload for [`GemmError::WorkerPanicked`].
pub(crate) fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_expected_vs_got() {
        let e = GemmError::SliceLen { operand: Operand::A, expected: 12, got: 7, dims: "M*K" };
        let msg = e.to_string();
        assert!(msg.contains("A must hold M*K = 12 elements, got 7"), "{msg}");
    }

    #[test]
    fn overflow_is_reported_not_panicked() {
        let e = checked_size("M*K", usize::MAX, 2).unwrap_err();
        assert!(matches!(e, GemmError::SizeOverflow { what: "M*K", .. }));
        assert!(e.to_string().contains("overflows usize"));
    }

    #[test]
    fn check_operands_names_the_offender() {
        let a = vec![0.0f32; 6];
        let b = vec![0.0f32; 6];
        let c = vec![0.0f32; 3];
        let e = check_operands(2, 2, 3, &a, &b, &c).unwrap_err();
        assert_eq!(
            e,
            GemmError::SliceLen { operand: Operand::C, expected: 4, got: 3, dims: "M*N" }
        );
    }

    #[test]
    fn panic_detail_downcasts_strings() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_detail(s.as_ref()), "boom");
        let s: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_detail(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_detail(s.as_ref()), "non-string panic payload");
    }

    #[test]
    fn plan_mismatch_mentions_different_plan() {
        let e = GemmError::PlanMismatch { expected: (1, 2, 3), got: (4, 5, 6) };
        assert!(e.to_string().contains("different plan"));
    }

    #[test]
    fn cancelled_and_stalled_carry_progress_detail() {
        let e = GemmError::Cancelled { phase: "kernel", blocks_done: 3, blocks_total: 12 };
        assert!(e.to_string().contains("cancelled during kernel (3/12 blocks done)"));
        let e = GemmError::Stalled { phase: "kernel", quiescence_ms: 250, heartbeats: vec![4, 0] };
        let msg = e.to_string();
        assert!(msg.contains("stalled during kernel"), "{msg}");
        assert!(msg.contains("250 ms"), "{msg}");
        assert!(msg.contains("[4, 0]"), "{msg}");
    }

    #[test]
    fn in_batch_names_the_index_and_chains_the_source() {
        use std::error::Error as _;
        let inner = GemmError::AllocFailed { phase: "pack B" };
        let e = GemmError::InBatch { index: 7, source: Box::new(inner.clone()) };
        let msg = e.to_string();
        assert!(msg.contains("batch item 7 failed"), "{msg}");
        assert!(msg.contains("pack B"), "{msg}");
        let chained = e.source().and_then(|s| s.downcast_ref::<GemmError>());
        assert_eq!(chained, Some(&inner));
    }

    #[test]
    fn rejected_names_reason_and_depth() {
        let e = GemmError::Rejected { reason: RejectReason::QueueFull, queue_depth: 64 };
        let msg = e.to_string();
        assert!(msg.contains("rejected"), "{msg}");
        assert!(msg.contains("admission queue full"), "{msg}");
        assert!(msg.contains("64 queued"), "{msg}");
        use std::error::Error as _;
        assert!(e.source().is_none(), "Rejected is terminal: no inner error");
    }

    /// The satellite source-chain contract: a service wrapper around a
    /// batch failure walks `InService → InBatch → AllocFailed` through
    /// plain `std::error::Error::source`, so `anyhow`-style consumers
    /// see the whole causal chain.
    #[test]
    fn in_service_chains_through_in_batch_to_the_root_cause() {
        use std::error::Error as _;
        let root = GemmError::AllocFailed { phase: "pack A" };
        let batch = GemmError::InBatch { index: 2, source: Box::new(root.clone()) };
        let svc = GemmError::InService { tenant: "acme".into(), source: Box::new(batch.clone()) };
        assert!(svc.to_string().contains("tenant \"acme\""), "{svc}");

        let mut chain = Vec::new();
        let mut cur: Option<&(dyn std::error::Error + 'static)> = Some(&svc);
        while let Some(e) = cur {
            chain.push(e.to_string());
            cur = e.source();
        }
        assert_eq!(chain.len(), 3, "chain was {chain:?}");
        assert!(chain[1].contains("batch item 2"), "{chain:?}");
        assert!(chain[2].contains("pack A"), "{chain:?}");
        let leaf = svc.source().and_then(|s| s.source()).and_then(|s| s.downcast_ref());
        assert_eq!(leaf, Some(&root));
    }

    /// An integrity violation surfacing through the service and batch
    /// wrappers must stay reachable via `source()`: the 3-deep walk
    /// `InService → InBatch → IntegrityViolation` terminates at the
    /// integrity root with its detector detail intact.
    #[test]
    fn integrity_violation_walks_through_service_and_batch_wrappers() {
        use std::error::Error as _;
        let root =
            GemmError::IntegrityViolation { check: "freivalds", round: 1, max_residual: 42.5 };
        let batch = GemmError::InBatch { index: 4, source: Box::new(root.clone()) };
        let svc = GemmError::InService { tenant: "acme".into(), source: Box::new(batch) };

        let mut chain = Vec::new();
        let mut cur: Option<&(dyn std::error::Error + 'static)> = Some(&svc);
        while let Some(e) = cur {
            chain.push(e.to_string());
            cur = e.source();
        }
        assert_eq!(chain.len(), 3, "chain was {chain:?}");
        assert!(chain[1].contains("batch item 4"), "{chain:?}");
        assert!(chain[2].contains("integrity check freivalds failed"), "{chain:?}");
        assert!(chain[2].contains("round 1"), "{chain:?}");
        let leaf = svc.source().and_then(|s| s.source()).and_then(|s| s.downcast_ref());
        assert_eq!(leaf, Some(&root));
    }

    #[test]
    fn integrity_violation_display_names_check_round_and_residual() {
        let e = GemmError::IntegrityViolation {
            check: "non_finite",
            round: 0,
            max_residual: f64::INFINITY,
        };
        let msg = e.to_string();
        assert!(msg.contains("integrity check non_finite failed"), "{msg}");
        assert!(msg.contains("round 0"), "{msg}");
    }
}
