//! Offline packing (§IV-C2, §V-C): pack `B` once, outside the timed
//! region, and reuse the packed form across many GEMM calls — what
//! LibShalom does for large matrices and what autoGEMM "is also flexible
//! in enabling" for the Fig 9 comparison.
//!
//! The packed form stores one padded `(k_c+2) × n_c` panel per cache
//! block of `B`, in block order, so the run-time loop does zero copies.

use crate::error::{self, GemmError, Operand};
use crate::packing::{pack_b, PackedBlock};
use crate::plan::ExecutionPlan;
use crate::supervisor::{BreakerPath, RunMonitor, Supervision};

/// `B`, packed offline for a specific execution plan.
pub struct PackedB {
    /// Panels indexed `[kb * tn + bj]`.
    panels: Vec<PackedBlock>,
    tn: usize,
    /// Shape fingerprint to catch plan mismatches.
    shape: (usize, usize, usize, usize, usize),
}

impl PackedB {
    /// Pack `b` (row-major `k × n`) for `plan`. Do this once per weight
    /// matrix; the cost is excluded from run-time, exactly like the
    /// paper's offline mode.
    pub fn new(plan: &ExecutionPlan, b: &[f32]) -> Self {
        let s = &plan.schedule;
        assert_eq!(b.len(), s.k * s.n, "B must be K*N");
        let (_, tn, tk) = plan.grid();
        let mut panels = Vec::with_capacity(tk * tn);
        for kb in 0..tk {
            for bj in 0..tn {
                panels.push(pack_b(b, s.n, kb * s.kc, bj * s.nc, s.kc, s.nc, plan.sigma_lane));
            }
        }
        PackedB { panels, tn, shape: (s.m, s.n, s.k, s.nc, s.kc) }
    }

    /// The packed panel for k-block `kb`, column block `bj`.
    pub fn panel(&self, kb: usize, bj: usize) -> &PackedBlock {
        &self.panels[kb * self.tn + bj]
    }

    /// Total packed bytes (for traffic accounting / memory budgeting).
    pub fn bytes(&self) -> usize {
        self.panels.iter().map(|p| p.data.len() * 4).sum()
    }

    pub(crate) fn check(&self, plan: &ExecutionPlan) -> Result<(), GemmError> {
        let s = &plan.schedule;
        if self.shape != (s.m, s.n, s.k, s.nc, s.kc) {
            return Err(GemmError::PlanMismatch {
                expected: (self.shape.0, self.shape.1, self.shape.2),
                got: (s.m, s.n, s.k),
            });
        }
        Ok(())
    }
}

/// `C = A · B` with `B` pre-packed offline.
///
/// The packed panels feed the shared panel-cache driver **zero-copy**
/// ([`crate::native`]'s `BPanels::Prepacked` borrows them in place): only
/// the A panels are packed at call time (once each, `tm·tk` packs), and
/// blocks are drained from the same atomic work queue as
/// [`crate::native::gemm_with_plan`].
pub fn gemm_prepacked(
    plan: &ExecutionPlan,
    a: &[f32],
    packed_b: &PackedB,
    c: &mut [f32],
    threads: usize,
) {
    if let Err(e) = try_gemm_prepacked(plan, a, packed_b, c, threads) {
        panic!("{e}");
    }
}

/// Fallible [`gemm_prepacked`]: plan-mismatch and operand validation as
/// `Err` instead of panics, worker panics contained (see
/// [`crate::error`]).
pub fn try_gemm_prepacked(
    plan: &ExecutionPlan,
    a: &[f32],
    packed_b: &PackedB,
    c: &mut [f32],
    threads: usize,
) -> Result<(), GemmError> {
    let pool = crate::packing::PanelPool::new();
    try_gemm_prepacked_pooled(plan, a, packed_b, c, threads, &pool)
}

/// [`gemm_prepacked`] recycling A-panel buffers through `pool`.
pub fn gemm_prepacked_pooled(
    plan: &ExecutionPlan,
    a: &[f32],
    packed_b: &PackedB,
    c: &mut [f32],
    threads: usize,
    pool: &crate::packing::PanelPool,
) {
    if let Err(e) = try_gemm_prepacked_pooled(plan, a, packed_b, c, threads, pool) {
        panic!("{e}");
    }
}

/// Fallible [`gemm_prepacked_pooled`].
pub fn try_gemm_prepacked_pooled(
    plan: &ExecutionPlan,
    a: &[f32],
    packed_b: &PackedB,
    c: &mut [f32],
    threads: usize,
    pool: &crate::packing::PanelPool,
) -> Result<(), GemmError> {
    try_gemm_prepacked_supervised(plan, a, packed_b, c, threads, pool, &Supervision::none())
}

/// [`try_gemm_prepacked_pooled`] under a [`Supervision`] bundle: the
/// offline path gets the same cancellation points (pack-A slots, kernel
/// block claims), watchdog heartbeats and error attribution as the
/// online driver. The pre-packed `B` panels are caller-owned and never
/// touched on the error paths.
pub fn try_gemm_prepacked_supervised(
    plan: &ExecutionPlan,
    a: &[f32],
    packed_b: &PackedB,
    c: &mut [f32],
    threads: usize,
    pool: &crate::packing::PanelPool,
    sup: &Supervision,
) -> Result<(), GemmError> {
    packed_b.check(plan)?;
    let s = &plan.schedule;
    let (m, n, k) = (s.m, s.n, s.k);
    error::check_len(Operand::A, "M*K", a.len(), m, k)?;
    error::check_len(Operand::C, "M*N", c.len(), m, n)?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    if k == 0 {
        c.fill(0.0);
        return Ok(());
    }
    let exec = crate::runtime::Exec::new(sup, false);
    let monitor = RunMonitor::new(sup, threads.max(1));
    let watchdog = exec.runtime().watch(&monitor);
    let result = (|| {
        monitor.begin_phase();
        let a_panels =
            crate::native::try_pack_a_panels_supervised(plan, a, threads, pool, &exec, &monitor)?;
        monitor.begin_phase();
        let b_panels = crate::native::BPanels::Prepacked(packed_b);
        let run = crate::native::try_run_blocks_cached(
            plan,
            &crate::native::ASource::Packed(&a_panels),
            &crate::native::BSource::Packed(&b_panels),
            c,
            threads,
            false,
            &exec,
            &monitor,
        );
        pool.release_blocks(a_panels);
        run
    })();
    monitor.finish();
    drop(watchdog);
    if matches!(result, Err(GemmError::WorkerPanicked { .. }) | Err(GemmError::Stalled { .. })) {
        sup.observe_fault(BreakerPath::ThreadedDriver);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AutoGemm;
    use autogemm_arch::ChipSpec;

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn prepacked_matches_naive() {
        let engine = AutoGemm::new(ChipSpec::graviton2()).with_offline_packing();
        let (m, n, k) = (48, 96, 32);
        let plan = engine.plan(m, n, k);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 7) % 13) as f32 - 6.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 3) % 11) as f32 - 5.0).collect();
        let packed = PackedB::new(&plan, &b);
        let mut c = vec![0.0f32; m * n];
        gemm_prepacked(&plan, &a, &packed, &mut c, 1);
        assert_eq!(c, naive(m, n, k, &a, &b));
    }

    #[test]
    fn prepacked_reuse_across_calls() {
        // The LibShalom pattern: one packed weight matrix, many activations.
        let engine = AutoGemm::new(ChipSpec::kp920());
        let (m, n, k) = (26, 36, 24);
        let plan = engine.plan(m, n, k);
        let b: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32).collect();
        let packed = PackedB::new(&plan, &b);
        assert!(packed.bytes() >= 4 * k * n);
        for seed in 0..3 {
            let a: Vec<f32> = (0..m * k).map(|i| ((i + seed) % 7) as f32 - 3.0).collect();
            let mut c = vec![0.0f32; m * n];
            gemm_prepacked(&plan, &a, &packed, &mut c, 2);
            assert_eq!(c, naive(m, n, k, &a, &b), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "different plan")]
    fn plan_mismatch_is_caught() {
        let engine = AutoGemm::new(ChipSpec::m2());
        let plan_a = engine.plan(16, 16, 16);
        let plan_b = engine.plan(32, 32, 32);
        let b: Vec<f32> = vec![0.0; 16 * 16];
        let packed = PackedB::new(&plan_a, &b);
        let a = vec![0.0f32; 32 * 32];
        let mut c = vec![0.0f32; 32 * 32];
        gemm_prepacked(&plan_b, &a, &packed, &mut c, 1);
    }
}
