//! Explicit-SIMD micro-kernels over the [`crate::simd`] lane layer.
//!
//! Each kernel is the paper's generated-kernel main loop (§III-A) made
//! explicit: an `(m_r, n̄_r)` register tile of [`F32x4`] accumulators —
//! `NRV = n̄_r` vector columns per row, mirroring Table II — fed by a
//! broadcast-A / vector-B FMA chain. The structure maps one-to-one onto
//! the perfmodel's Eqn 6/8 cycle counts: `m_r · n̄_r` FMA issues plus
//! `m_r` A broadcasts and `n̄_r` B loads per k-step, so achieved-vs-
//! predicted ratios measured by the `microkernel` bench bin are
//! apples-to-apples per tile shape.
//!
//! Two code paths per kernel:
//!
//! * **full tile** (`eff_rows == MR`, `eff_cols == NR`): no bounds
//!   handling at all; `C` is read and written with vector loads/stores.
//! * **edge tile**: the same main loop (A/B reads are always in-bounds
//!   for the *full* tile by the packing contract — see
//!   [`crate::packing`]), but `C` is gathered/scattered element-wise over
//!   the effective region only.
//!
//! The k-loop is unrolled by 4; instruction-level parallelism comes from
//! the `MR·NRV` independent accumulator chains (the register tile), so
//! each `(i, j̄)` accumulator still sums its products in ascending-`k`
//! order — on fused backends the results are bit-identical to the scalar
//! reference kernel ([`crate::native::micro_kernel_ref`]).
//!
//! Runtime dispatch: [`micro_kernel_simd`] probes [`SimdBackend`] once
//! and routes to the baseline build (NEON / SSE2 / scalar — whatever the
//! compile target guarantees) or to the `#[target_feature(enable =
//! "fma")]` build, which is only reachable after
//! `is_x86_feature_detected!("fma")` has confirmed the host.

use crate::native::CTile;
use crate::simd::{F32x4, SimdBackend, LANES};

/// One input operand as the kernel layer sees it: a packed panel, or a
/// strided row-major window of the caller's matrix (packing elided by
/// the input-aware dispatch layer).
///
/// The micro-kernels themselves are stride-generic — they always read
/// `a[i·lda + p]` and `b[p·ldb + j]` — so the two forms differ only in
/// their *bounds contract*:
///
/// * **Packed** panels are padded by [`crate::packing`] so a full
///   `(m_r, n_r)` tile's reads are in bounds even on edge tiles; any
///   menu kernel may run against them unconditionally.
/// * **Unpacked** windows expose exactly `avail` valid rows (for A) or
///   columns (for B) from their origin. A vector kernel whose full tile
///   would read past `avail` must be rerouted to a bounds-exact edge
///   kernel by the dispatcher ([`crate::native`] does this per
///   placement).
#[derive(Clone, Copy)]
pub enum Operand<'a> {
    /// Packed panel (leading dimension `ld`), padded per the packing
    /// contract: full-tile reads never go out of bounds.
    Packed { data: &'a [f32], ld: usize },
    /// Strided row-major window with `avail` valid rows (A operand) or
    /// columns (B operand) from its origin.
    Unpacked { data: &'a [f32], ld: usize, avail: usize },
}

impl<'a> Operand<'a> {
    #[inline(always)]
    pub fn data(&self) -> &'a [f32] {
        match self {
            Operand::Packed { data, .. } | Operand::Unpacked { data, .. } => data,
        }
    }

    #[inline(always)]
    pub fn ld(&self) -> usize {
        match self {
            Operand::Packed { ld, .. } | Operand::Unpacked { ld, .. } => *ld,
        }
    }

    /// Rows (A) or columns (B) a kernel may read from the origin without
    /// leaving the operand. Packed panels are padded for any menu tile,
    /// so their extent is unbounded for dispatch purposes.
    #[inline(always)]
    pub fn avail(&self) -> usize {
        match self {
            Operand::Packed { .. } => usize::MAX,
            Operand::Unpacked { avail, .. } => *avail,
        }
    }

    pub fn is_packed(&self) -> bool {
        matches!(self, Operand::Packed { .. })
    }
}

/// Multiply-accumulate step parameterized by the FMA dispatch decision.
///
/// # Safety
/// With `FMA = true` (x86_64 only) the caller must be inside a
/// `target_feature(enable = "fma")` region on an FMA-capable host.
#[inline(always)]
unsafe fn fmadd<const FMA: bool>(acc: F32x4, a: F32x4, b: F32x4) -> F32x4 {
    #[cfg(simd_x86)]
    if FMA {
        return acc.mul_acc_fma(a, b);
    }
    acc.mul_acc(a, b)
}

/// One k-step: broadcast `a[i * lda + p]` per row, load the `NRV` B
/// vectors of row `p`, and accumulate the outer product.
///
/// # Safety
/// `a` must be readable at `i * lda + p` for all `i < MR`; `b` must be
/// readable for `NRV * LANES` elements from `p * ldb`. See `FMA` note on
/// [`fmadd`].
#[inline(always)]
unsafe fn kstep<const MR: usize, const NRV: usize, const FMA: bool>(
    acc: &mut [[F32x4; NRV]; MR],
    a: *const f32,
    lda: usize,
    b: *const f32,
    ldb: usize,
    p: usize,
) {
    let brow = b.add(p * ldb);
    let mut bv = [F32x4::zero(); NRV];
    for (jv, v) in bv.iter_mut().enumerate() {
        *v = F32x4::load(brow.add(jv * LANES));
    }
    for (i, row) in acc.iter_mut().enumerate() {
        let ai = F32x4::splat(*a.add(i * lda + p));
        for (jv, cell) in row.iter_mut().enumerate() {
            *cell = fmadd::<FMA>(*cell, ai, bv[jv]);
        }
    }
}

/// The generic kernel body, monomorphized per `(MR, NRV, FMA)`.
///
/// # Safety
/// The packing contract of [`crate::packing`] must hold: `a` readable for
/// `MR` rows of `kc` elements at stride `lda`, `b` readable for `kc` rows
/// of `NRV * LANES` elements at stride `ldb`, and `c`'s effective cells
/// owned by this thread. See `FMA` note on [`fmadd`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
unsafe fn kernel_body<const MR: usize, const NRV: usize, const FMA: bool>(
    kc: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: CTile,
    accumulate: bool,
    eff_rows: usize,
    eff_cols: usize,
) {
    debug_assert!(MR == 0 || a.len() >= (MR - 1) * lda + kc, "A panel too short for {MR} rows");
    debug_assert!(
        kc == 0 || b.len() >= (kc - 1) * ldb + NRV * LANES,
        "B panel too short for {NRV} lane columns"
    );
    debug_assert!(eff_rows <= MR && eff_cols <= NRV * LANES);
    let full = eff_rows == MR && eff_cols == NRV * LANES;
    let mut acc = [[F32x4::zero(); NRV]; MR];
    if accumulate {
        if full {
            for (i, row) in acc.iter_mut().enumerate() {
                for (jv, cell) in row.iter_mut().enumerate() {
                    *cell = F32x4::load(c.lanes_ptr(i, jv * LANES));
                }
            }
        } else {
            let mut stage = [[[0.0f32; LANES]; NRV]; MR];
            for (i, srow) in stage.iter_mut().enumerate().take(eff_rows) {
                for j in 0..eff_cols {
                    srow[j / LANES][j % LANES] = c.get(i, j);
                }
            }
            for (i, row) in acc.iter_mut().enumerate() {
                for (jv, cell) in row.iter_mut().enumerate() {
                    *cell = F32x4::from_array(stage[i][jv]);
                }
            }
        }
    }

    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut p = 0usize;
    while p + 4 <= kc {
        kstep::<MR, NRV, FMA>(&mut acc, ap, lda, bp, ldb, p);
        kstep::<MR, NRV, FMA>(&mut acc, ap, lda, bp, ldb, p + 1);
        kstep::<MR, NRV, FMA>(&mut acc, ap, lda, bp, ldb, p + 2);
        kstep::<MR, NRV, FMA>(&mut acc, ap, lda, bp, ldb, p + 3);
        p += 4;
    }
    while p < kc {
        kstep::<MR, NRV, FMA>(&mut acc, ap, lda, bp, ldb, p);
        p += 1;
    }

    if full {
        for (i, row) in acc.iter().enumerate() {
            for (jv, cell) in row.iter().enumerate() {
                cell.store(c.lanes_ptr(i, jv * LANES));
            }
        }
    } else {
        for (i, row) in acc.iter().enumerate().take(eff_rows) {
            for (jv, cell) in row.iter().enumerate() {
                if jv * LANES >= eff_cols {
                    break;
                }
                let lane = cell.to_array();
                for (l, &v) in lane.iter().enumerate() {
                    let j = jv * LANES + l;
                    if j < eff_cols {
                        c.set(i, j, v);
                    }
                }
            }
        }
    }
}

/// Baseline build: whatever vector ISA the compile target guarantees
/// (NEON on aarch64, SSE2 on x86_64, the array fallback elsewhere).
#[allow(clippy::too_many_arguments)]
fn kernel_base<const MR: usize, const NRV: usize>(
    kc: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: CTile,
    accumulate: bool,
    eff_rows: usize,
    eff_cols: usize,
) {
    // SAFETY: packing contract (see `kernel_body`); FMA=false needs no
    // extra target features.
    unsafe { kernel_body::<MR, NRV, false>(kc, a, lda, b, ldb, c, accumulate, eff_rows, eff_cols) }
}

/// FMA build: the whole body is re-monomorphized under
/// `target_feature(enable = "fma")` so `_mm_fmadd_ps` inlines into the
/// main loop.
///
/// # Safety
/// Host must support FMA — only reachable via [`micro_kernel_simd`]'s
/// [`SimdBackend::X86Fma`] arm, which is gated on runtime detection.
#[cfg(simd_x86)]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "fma")]
unsafe fn kernel_x86_fma<const MR: usize, const NRV: usize>(
    kc: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: CTile,
    accumulate: bool,
    eff_rows: usize,
    eff_cols: usize,
) {
    kernel_body::<MR, NRV, true>(kc, a, lda, b, ldb, c, accumulate, eff_rows, eff_cols)
}

/// The dispatched SIMD micro-kernel:
/// `C[0..eff_rows][0..eff_cols] (+)= A[0..MR][0..kc] · B[0..kc][0..NRV*4]`.
///
/// Drop-in replacement for the scalar reference kernel (same contract as
/// [`crate::native::micro_kernel_ref`], with `NR` expressed as `NRV`
/// vector registers). The backend probe is one cached atomic load per
/// call — noise next to the `2·MR·NRV·4·kc` flops it dispatches.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn micro_kernel_simd<const MR: usize, const NRV: usize>(
    kc: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: CTile,
    accumulate: bool,
    eff_rows: usize,
    eff_cols: usize,
) {
    match SimdBackend::detect() {
        #[cfg(simd_x86)]
        // SAFETY: the detect() probe confirmed FMA on this host.
        SimdBackend::X86Fma => unsafe {
            kernel_x86_fma::<MR, NRV>(kc, a, lda, b, ldb, c, accumulate, eff_rows, eff_cols)
        },
        _ => kernel_base::<MR, NRV>(kc, a, lda, b, ldb, c, accumulate, eff_rows, eff_cols),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::micro_kernel_ref;

    fn data(len: usize, seed: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) >> 16) as f32 / 8192.0 - 4.0
            })
            .collect()
    }

    fn run_pair<const MR: usize, const NRV: usize, const NR: usize>(
        kc: usize,
        accumulate: bool,
        eff_rows: usize,
        eff_cols: usize,
    ) {
        let lda = kc + 8;
        let a = data(MR * lda, 1);
        let ldb = NR + 4;
        let b = data((kc + 2) * ldb, 2);
        let c0 = data(MR * NR, 3);
        let mut c_simd = c0.clone();
        let mut c_ref = c0.clone();
        let t_simd = unsafe { CTile::new(c_simd.as_mut_ptr(), NR, c_simd.len()) };
        let t_ref = unsafe { CTile::new(c_ref.as_mut_ptr(), NR, c_ref.len()) };
        micro_kernel_simd::<MR, NRV>(kc, &a, lda, &b, ldb, t_simd, accumulate, eff_rows, eff_cols);
        micro_kernel_ref::<MR, NR>(kc, &a, lda, &b, ldb, t_ref, accumulate, eff_rows, eff_cols);
        for (i, (&got, &want)) in c_simd.iter().zip(&c_ref).enumerate() {
            let tol = if SimdBackend::detect().fused() { 0.0 } else { 1e-3 * want.abs().max(1.0) };
            assert!(
                (got - want).abs() <= tol,
                "{MR}x{NR} kc={kc} acc={accumulate} eff=({eff_rows},{eff_cols}) \
                 C[{i}]: {got} vs {want}"
            );
        }
    }

    #[test]
    fn full_tiles_match_reference() {
        for kc in [1, 3, 4, 7, 17, 64] {
            run_pair::<8, 2, 8>(kc, false, 8, 8);
            run_pair::<5, 4, 16>(kc, true, 5, 16);
            run_pair::<4, 5, 20>(kc, true, 4, 20);
            run_pair::<1, 7, 28>(kc, false, 1, 28);
        }
    }

    #[test]
    fn edge_tiles_match_reference() {
        for (er, ec) in [(1, 1), (3, 5), (8, 7), (2, 8), (7, 3)] {
            run_pair::<8, 2, 8>(13, true, er, ec);
        }
        run_pair::<6, 3, 12>(9, false, 4, 10);
        run_pair::<5, 4, 16>(21, true, 5, 13);
    }

    #[test]
    fn edge_stores_leave_rest_of_c_untouched() {
        let kc = 4;
        let a = vec![1.0f32; 5 * (kc + 8)];
        let b = vec![1.0f32; (kc + 2) * 16];
        let mut c = vec![7.0f32; 5 * 16];
        let tile = unsafe { CTile::new(c.as_mut_ptr(), 16, c.len()) };
        micro_kernel_simd::<5, 4>(kc, &a, kc + 8, &b, 16, tile, false, 2, 3);
        assert_eq!(c[0], kc as f32);
        assert_eq!(c[2], kc as f32);
        assert_eq!(c[3], 7.0, "col 3 out of eff_cols must be untouched");
        assert_eq!(c[2 * 16], 7.0, "row 2 out of eff_rows must be untouched");
    }

    #[test]
    fn zero_kc_only_handles_accumulate() {
        let a = vec![0.0f32; 8];
        let b = vec![0.0f32; 8];
        let mut c = vec![3.0f32; 2 * 4];
        let tile = unsafe { CTile::new(c.as_mut_ptr(), 4, c.len()) };
        micro_kernel_simd::<2, 1>(0, &a, 4, &b, 4, tile, false, 2, 4);
        assert!(c.iter().all(|&v| v == 0.0), "kc=0 without accumulate zeroes C");
    }
}
