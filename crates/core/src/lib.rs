//! # autogemm
//!
//! The autoGEMM library: auto-generated, auto-tuned single-precision GEMM
//! for irregular matrix shapes on Arm architectures — a faithful Rust
//! reproduction of the SC'24 paper's open-source library, running against
//! the cycle-level Arm machine models of `autogemm-sim` (see the
//! repository's DESIGN.md for the hardware-substitution rationale).
//!
//! ## Quick start
//!
//! ```
//! use autogemm::AutoGemm;
//! use autogemm_arch::ChipSpec;
//!
//! let engine = AutoGemm::new(ChipSpec::graviton2());
//! let (m, n, k) = (26, 36, 64);
//! let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.01).collect();
//! let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32).collect();
//! let mut c = vec![0.0f32; m * n];
//!
//! // Native execution on the host (correctness + wall-clock benches).
//! engine.gemm(m, n, k, &a, &b, &mut c);
//!
//! // Cycle-accurate execution on the modelled chip (the paper's numbers).
//! let report = engine.simulate(m, n, k, 1);
//! println!("{:.1} GFLOPS ({:.1}% of peak)", report.gflops, report.efficiency * 100.0);
//! ```
//!
//! ## Architecture
//!
//! * [`engine`] — [`AutoGemm`]: shape-keyed plan cache → execution plan
//!   (with input-aware operand routing) → native or simulated backends,
//!   with GEMV/small-k fast paths dispatched before the tuner for
//!   degenerate shapes (`m = 1`, `n = 1`, tiny `k`);
//! * [`plan`] — the execution plan: cache blocking + per-block DMT tile
//!   plans, shared by both backends;
//! * [`packing`] — operand packing (`none` / `offline` / `online`) with the
//!   generated kernels' padding contract plus the panel buffer pool
//!   (pack-call accounting lives in the telemetry session);
//! * [`simd`] — the explicit SIMD lane layer: a 4-lane `f32` vector
//!   over NEON (aarch64), SSE2/FMA (x86_64, FMA runtime-detected) or a
//!   portable array fallback, plus the cached backend probe;
//! * [`kernels`] — the vector micro-kernels built on it: `(m_r, n̄_r)`
//!   register tiles of `F32x4` accumulators with a 4×-unrolled FMA main
//!   loop, full-tile fast path and masked edge path;
//! * [`native`] — the kernel dispatch table (monomorphized for every
//!   Table II shape, scalar reference retained as oracle/baseline) and
//!   the panel-cache block driver: every operand panel packed exactly
//!   once per GEMM — or streamed unpacked straight from the caller's
//!   row-major matrix when the engine's elision heuristic decides a
//!   panel cannot amortize its pack copy — blocks drained from an
//!   atomic work queue by the persistent worker-pool runtime (the K
//!   dimension is never parallelized, matching the TVM limitation the
//!   paper reports in §V-C);
//! * [`runtime`] — the persistent execution runtime: a process-wide (or
//!   per-engine) pool of long-lived workers parked between submissions —
//!   no per-call thread spawn on the threaded hot path — plus the shared
//!   watchdog-hub monitor thread serving per-run heartbeat
//!   registrations; pool counters surface in the schema-v4 `pool`
//!   report section and [`AutoGemm::pool_stats`];
//! * [`simexec`] — the simulated backend: executes the generated virtual-ISA
//!   kernels block-by-block on the pipeline model, memoizing per-block
//!   cycle counts, and composes multi-core makespans;
//! * [`telemetry`] — the per-GEMM observability layer: scoped wall/cycle
//!   timers behind the `telemetry` feature, per-phase and per-thread
//!   profiles from the traced drivers, the dispatched kernel-shape
//!   histogram, and versioned-JSON [`telemetry::GemmReport`]s joined
//!   against the perfmodel projection (the measured-vs-model feedback
//!   loop every perf PR cites) — plus the always-available engine-
//!   lifetime layer: the [`telemetry::MetricsRegistry`] (counters +
//!   sharded latency/GFLOP-s histograms with p50/p95/p99, Prometheus
//!   export) and the [`telemetry::TraceBuf`] per-worker span timeline
//!   (Chrome trace-event / Perfetto export via
//!   [`AutoGemm::trace_export`]);
//! * [`error`] — the structured error model behind the `try_*` API
//!   surface: [`GemmError`], the panic policy, the untouched-`C`
//!   guarantee and worker-panic containment;
//! * [`faultinject`] — the seeded deterministic fault-injection harness
//!   (behind the `faultinject` feature, a no-op otherwise) that drives
//!   the chaos test suite;
//! * [`supervisor`] — the execution-supervision layer: deadlines and
//!   cooperative cancellation ([`CancelToken`] / [`GemmOptions`]), the
//!   opt-in stuck-worker watchdog, the per-engine backend-quarantine
//!   circuit breaker surfaced in the schema-v2 `health` report section,
//!   and the bounded retry-with-degradation ladder behind
//!   [`AutoGemm::try_gemm_resilient`];
//! * [`verify`] — the always-compiled output-integrity layer:
//!   Freivalds' probabilistic `C·x` vs `A·(B·x)` check plus a
//!   non-finite scan, selectable per call/engine/tenant via
//!   [`VerifyPolicy`], with mismatches surfaced as
//!   [`GemmError::IntegrityViolation`], quarantined through the
//!   `verify_integrity` breaker path, and repaired by the resilient
//!   ladder's verified-reexecution rung.
//!
//! ## Fallible API
//!
//! Every execution entry point has a `try_*` twin returning
//! `Result<_, GemmError>`; the classic names are thin wrappers that
//! panic with the same structured message. See [`error`] for the
//! contract.
//!
//! ```
//! use autogemm::{AutoGemm, GemmError};
//! use autogemm_arch::ChipSpec;
//!
//! let engine = AutoGemm::new(ChipSpec::graviton2());
//! let a = vec![0.0f32; 4 * 8];
//! let b = vec![0.0f32; 8 * 4];
//! let mut c = vec![0.0f32; 3]; // wrong: needs 4*4 = 16
//! match engine.try_gemm(4, 4, 8, &a, &b, &mut c) {
//!     Err(GemmError::SliceLen { expected, got, .. }) => {
//!         assert_eq!((expected, got), (16, 3));
//!     }
//!     other => panic!("expected SliceLen, got {other:?}"),
//! }
//! ```

pub mod batch;
pub mod engine;
pub mod error;
pub mod faultinject;
pub(crate) mod gemv;
pub mod kernels;
pub mod native;
pub mod offline;
pub mod packing;
pub mod plan;
pub(crate) mod plancache;
pub mod runtime;
pub mod service;
pub mod simd;
pub mod simexec;
pub mod supervisor;
pub mod telemetry;
pub mod transpose;
pub mod verify;

pub use batch::{gemm_batch, try_gemm_batch, try_gemm_batch_supervised, GemmBatch};
pub use engine::{AutoGemm, SimGemmReport};
pub use error::{GemmError, RejectReason};
pub use offline::{
    gemm_prepacked, gemm_prepacked_pooled, try_gemm_prepacked, try_gemm_prepacked_pooled,
    try_gemm_prepacked_supervised, PackedB,
};
pub use packing::PanelPool;
pub use plan::{ExecutionPlan, OperandRouting};
pub use plancache::{PlanCacheStats, PLAN_CACHE_CAPACITY};
pub use runtime::{host_parallelism, PoolStats, Runtime};
pub use service::{GemmService, ServiceConfig, ServiceReply, ShedPolicy, TenantId, TenantQuota};
pub use supervisor::{
    BreakerConfig, BreakerPath, BreakerState, CancelToken, GemmOptions, ResilientMode,
    ResilientReport, Supervision, WatchdogConfig,
};
pub use telemetry::{
    GemmReport, IntegrityReport, MetricsRegistry, MetricsSnapshot, ServiceReport, TraceBuf,
    TraceSpan,
};
pub use transpose::{gemm_op, sgemm, try_gemm_op, try_sgemm, Op};
pub use verify::VerifyPolicy;
