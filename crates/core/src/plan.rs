//! Execution plans: the bridge from a tuned [`Schedule`] to concrete work.
//!
//! A plan fixes the cache blocking, the per-block DMT tile plan, the
//! packing mode and the pipeline options. Both backends (native and
//! simulated) execute the *same* plan, so what the tuner optimizes is what
//! runs.

use autogemm_arch::ChipSpec;
use autogemm_perfmodel::ModelOpts;
use autogemm_tiling::{plan_dmt, TilePlan};
use autogemm_tuner::{Packing, Schedule};

/// Per-operand packed/unpacked routing for the native driver.
///
/// The default packs both operands (the historical panel-cache
/// behaviour, and what every plan built via
/// [`ExecutionPlan::from_schedule`] carries). The engine's input-aware
/// dispatch layer replaces it with the packing-elision decision from
/// `autogemm_perfmodel::elision` when a panel cannot amortize its pack
/// copy (see DESIGN.md, "Input-aware dispatch").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperandRouting {
    /// Pack A into per-`(bi, kb)` panels; `false` streams A from the
    /// caller's row-major matrix.
    pub pack_a: bool,
    /// Pack B into per-`(kb, bj)` panels; `false` streams B strided.
    pub pack_b: bool,
}

impl Default for OperandRouting {
    fn default() -> Self {
        OperandRouting { pack_a: true, pack_b: true }
    }
}

impl OperandRouting {
    /// The historical behaviour: both operands packed.
    pub fn packed() -> Self {
        OperandRouting::default()
    }
}

/// A fully resolved execution plan for one GEMM problem.
#[derive(Debug, Clone)]
pub struct ExecutionPlan {
    pub schedule: Schedule,
    /// DMT tiling of one interior cache block (`m_c × n_c`).
    pub block_plan: TilePlan,
    /// Pipeline options applied to every generated kernel.
    pub opts: ModelOpts,
    /// σ_lane of the target chip.
    pub sigma_lane: usize,
    /// Override the simulated cache residency of the block's operands
    /// (used by baselines that model software prefetching, e.g.
    /// LibShalom's hand-written L1 prefetch which wins at 128³ on the
    /// KP920, §V-C). `None` derives warmth from the working-set size.
    pub warmth: Option<autogemm_sim::Warmth>,
    /// Packed/unpacked routing per operand for the native driver.
    pub routing: OperandRouting,
}

impl ExecutionPlan {
    /// Build the plan for a tuned schedule on a chip. The plan packs
    /// both operands; the engine applies input-aware elision on top.
    pub fn from_schedule(schedule: Schedule, chip: &ChipSpec) -> Self {
        let opts = ModelOpts { rotate: true, fused: true };
        let block_plan = plan_dmt(schedule.mc, schedule.nc, schedule.kc, chip, opts);
        ExecutionPlan {
            schedule,
            block_plan,
            opts,
            sigma_lane: chip.sigma_lane(),
            warmth: None,
            routing: OperandRouting::default(),
        }
    }

    /// The same plan with a different operand routing.
    pub fn with_routing(mut self, routing: OperandRouting) -> Self {
        self.routing = routing;
        self
    }

    /// Number of cache blocks along (M, N, K).
    pub fn grid(&self) -> (usize, usize, usize) {
        self.schedule.block_trips()
    }

    /// Total micro-kernel invocations across the whole GEMM.
    pub fn total_tiles(&self) -> usize {
        let (tm, tn, tk) = self.grid();
        tm * tn * tk * self.block_plan.tile_count()
    }

    /// FLOPs of the full problem.
    pub fn flops(&self) -> u64 {
        2 * self.schedule.m as u64 * self.schedule.n as u64 * self.schedule.k as u64
    }

    pub fn packing(&self) -> Packing {
        self.schedule.packing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_tuner::tune;

    #[test]
    fn plan_grid_covers_problem_exactly() {
        let chip = ChipSpec::graviton2();
        let sched = tune(64, 64, 64, &chip);
        let plan = ExecutionPlan::from_schedule(sched, &chip);
        let (tm, tn, tk) = plan.grid();
        assert_eq!(tm * plan.schedule.mc, 64);
        assert_eq!(tn * plan.schedule.nc, 64);
        assert_eq!(tk * plan.schedule.kc, 64);
        plan.block_plan.validate(4).expect("block plan covers");
    }

    #[test]
    fn flops_counts_2mnk() {
        let chip = ChipSpec::m2();
        let sched = tune(8, 12, 16, &chip);
        let plan = ExecutionPlan::from_schedule(sched, &chip);
        assert_eq!(plan.flops(), 2 * 8 * 12 * 16);
        assert!(plan.total_tiles() >= 1);
    }
}
