//! Persistent worker-pool runtime: the threaded hot path without
//! per-call thread spawn.
//!
//! The paper's battleground is irregular/small GEMM, where fixed
//! per-call overhead dominates (§V). Until this module existed every
//! threaded section — pack panels, kernel block drain, batch items —
//! paid a full scoped spawn/join of N OS threads *per GEMM call*, plus
//! one watchdog thread per supervised call. A service draining millions
//! of small requests (the ROADMAP north-star) pays that constant cost on
//! every one of them.
//!
//! [`Runtime`] replaces both spawn classes with long-lived threads:
//!
//! * **Worker pool** — `(host_parallelism - 1).max(1)` workers are
//!   created once (lazily, on first use) and then *parked* on a
//!   [`Condvar`]. A threaded section submits a *job*: a borrowed
//!   `Fn(usize)` body plus a slot count. The submitting caller always
//!   runs slot 0 itself; parked workers wake, claim the remaining slots
//!   and run the same body. Job bodies are **slot-agnostic** — every
//!   driver section drains a shared atomic cursor, so any subset of
//!   slots (down to the caller alone, when all workers are busy serving
//!   other submissions) completes the section. That property is what
//!   makes the pool deadlock-free under concurrent submissions: no job
//!   ever *requires* a worker to arrive.
//! * **Watchdog hub** — one monitor thread per runtime (so one
//!   process-wide by default, or one per engine with a dedicated
//!   runtime) serving per-submission heartbeat registrations, replacing
//!   the watchdog thread the supervised drivers used to spawn per call.
//!
//! ## Lifecycle and memory safety
//!
//! A submitted job borrows its body from the caller's stack, so the pool
//! stores a lifetime-erased raw pointer. Soundness rests on
//! *join-before-return*: [`WorkerPool::run`] closes the job (no further
//! slot claims) and blocks until every active runner has left the body
//! before it returns — including on unwind, via a drop guard — so no
//! worker can observe the pointer after the borrow ends. All claim and
//! completion bookkeeping lives under one pool mutex; workers only park
//! when the queue holds no claimable slot.
//!
//! ## Panic containment
//!
//! Driver job bodies contain their own panics (poison-flag + first-panic
//! capture, see [`crate::native::Poison`]); the pool adds a
//! `catch_unwind` backstop so even a body that leaks a panic cannot kill
//! a pool worker. A poisoned submission therefore drains, joins, reports
//! its structured error — and the pool stays reusable for the next call.
//!
//! Uses `std::sync::{Mutex, Condvar}` directly (the vendored
//! `parking_lot` facade deliberately carries no `Condvar`); lock
//! poisoning is forgiven everywhere — pool state is a claim ledger of
//! plain integers, always valid.

use crate::supervisor::{RunMonitor, Supervision, WatchdogConfig};
use crate::telemetry::{MetricsRegistry, TraceBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Host hardware parallelism (1 when the probe fails).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Workers the default (global) pool spawns: the caller thread
/// participates in every submission as slot 0, so `host - 1` workers
/// saturate the host without oversubscribing — floored at 1 so threaded
/// sections stay genuinely concurrent even on a single-core host.
pub(crate) fn default_pool_workers() -> usize {
    host_parallelism().saturating_sub(1).max(1)
}

#[inline]
fn forgive<T>(r: Result<T, PoisonError<T>>) -> T {
    r.unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

/// One submitted section: a lifetime-erased body plus the slot ledger.
/// Only ever touched under the pool mutex.
struct ActiveJob {
    id: u64,
    /// Borrowed from the submitting stack; valid until [`WorkerPool::run`]
    /// returns (join-before-return, see module docs).
    body: *const (dyn Fn(usize) + Sync),
    slots: usize,
    /// Next slot to hand out; `slots` means closed.
    next_slot: usize,
    /// Runners currently inside the body.
    active: usize,
    submitted: Instant,
    /// First worker claim recorded (wake-latency sample taken).
    woken: bool,
}

// SAFETY: the body pointer is only dereferenced between submission and
// the submitter's join-before-return barrier, while the borrow it was
// erased from is still live; the pointee is `Sync` so shared calls from
// several workers are sound.
unsafe impl Send for ActiveJob {}

struct PoolState {
    jobs: Vec<ActiveJob>,
    next_job_id: u64,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here while no job has a claimable slot.
    work_cv: Condvar,
    /// Submitters park here until their job's last runner leaves.
    done_cv: Condvar,
    submissions: AtomicU64,
    jobs_completed: AtomicU64,
    wake_count: AtomicU64,
    wake_ns: AtomicU64,
    busy_ns: AtomicU64,
    park_ns: AtomicU64,
    threads_clamped: AtomicU64,
    workers_alive: AtomicUsize,
    /// Runtime-lifetime wake/busy/park *distributions* (the `PoolStats`
    /// totals above stay for the schema-v4 report section; the registry
    /// adds percentiles on top).
    metrics: Arc<MetricsRegistry>,
}

impl PoolShared {
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        forgive(self.state.lock())
    }
}

/// Cumulative counters of one [`Runtime`]'s worker pool. Nanosecond
/// totals rather than averages so readers can difference two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Workers the pool was configured with.
    pub workers: u64,
    /// Worker threads currently alive — the leak gauge: equals `workers`
    /// from first use for the life of the runtime.
    pub alive_workers: u64,
    /// Sections submitted to the pool (each wakes parked workers once).
    pub submissions: u64,
    /// Submissions fully retired (closed, drained and joined).
    pub jobs_completed: u64,
    /// Submissions a worker actually reached (on a loaded pool the
    /// caller may drain a whole section alone; those never count here).
    pub wake_count: u64,
    /// Total submit→first-worker-claim latency, in nanoseconds.
    pub wake_ns_total: u64,
    /// Total time workers spent inside job bodies, in nanoseconds.
    pub busy_ns_total: u64,
    /// Total time workers spent parked, in nanoseconds.
    pub park_ns_total: u64,
    /// Engine calls whose requested thread count was clamped to the
    /// pool's capacity (the recorded oversubscription fallback).
    pub threads_clamped: u64,
}

/// The long-lived worker set. Created once per [`Runtime`]; workers are
/// parked between submissions and joined on drop.
struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    workers: usize,
}

impl WorkerPool {
    fn new(workers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState { jobs: Vec::new(), next_job_id: 0, shutdown: false }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submissions: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            wake_count: AtomicU64::new(0),
            wake_ns: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            park_ns: AtomicU64::new(0),
            threads_clamped: AtomicU64::new(0),
            workers_alive: AtomicUsize::new(0),
            metrics: Arc::new(MetricsRegistry::new()),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let sh = Arc::clone(&shared);
            sh.workers_alive.fetch_add(1, Ordering::Relaxed);
            let spawned = std::thread::Builder::new()
                .name(format!("autogemm-pool-{i}"))
                .spawn(move || worker_loop(&sh));
            match spawned {
                Ok(h) => handles.push(h),
                // A host that cannot spawn gets a smaller pool; the
                // caller-runs-slot-0 rule keeps every submission live.
                Err(_) => {
                    shared.workers_alive.fetch_sub(1, Ordering::Relaxed);
                }
            }
        }
        WorkerPool { shared, handles: Mutex::new(handles), workers }
    }

    /// Run `body(t)` for slots `0..slots`: slot 0 on the calling thread,
    /// the rest on woken pool workers. Returns only once no runner
    /// remains inside `body` (join-before-return), even on unwind.
    fn run(&self, slots: usize, body: &(dyn Fn(usize) + Sync)) {
        debug_assert!(slots >= 2, "single-slot sections run inline");
        self.shared.submissions.fetch_add(1, Ordering::Relaxed);
        // SAFETY: lifetime erasure only — the fat pointer layout is
        // identical, and the `Completion` guard below joins every runner
        // before `run` returns, so the erased pointer never outlives the
        // borrow it came from.
        let erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute(body as *const (dyn Fn(usize) + Sync)) };
        let id;
        {
            let mut st = self.shared.lock_state();
            id = st.next_job_id;
            st.next_job_id += 1;
            st.jobs.push(ActiveJob {
                id,
                body: erased,
                slots,
                next_slot: 1,
                active: 0,
                submitted: Instant::now(),
                woken: false,
            });
        }
        if slots == 2 {
            self.shared.work_cv.notify_one();
        } else {
            self.shared.work_cv.notify_all();
        }

        /// Close-and-join barrier; runs on normal return *and* unwind,
        /// so the erased body pointer never outlives its borrow.
        struct Completion<'p> {
            shared: &'p PoolShared,
            id: u64,
        }
        impl Drop for Completion<'_> {
            fn drop(&mut self) {
                let mut st = self.shared.lock_state();
                while let Some(pos) = st.jobs.iter().position(|j| j.id == self.id) {
                    // Close: unclaimed slots are abandoned — job bodies
                    // drain a shared cursor, so the finished slot-0 run
                    // proves there is no work left for them.
                    st.jobs[pos].next_slot = st.jobs[pos].slots;
                    if st.jobs[pos].active == 0 {
                        st.jobs.remove(pos);
                        break;
                    }
                    st = forgive(self.shared.done_cv.wait(st));
                }
                self.shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            }
        }
        let _completion = Completion { shared: &self.shared, id };
        body(0);
    }

    fn stats(&self) -> PoolStats {
        let sh = &self.shared;
        PoolStats {
            workers: self.workers as u64,
            alive_workers: sh.workers_alive.load(Ordering::Relaxed) as u64,
            submissions: sh.submissions.load(Ordering::Relaxed),
            jobs_completed: sh.jobs_completed.load(Ordering::Relaxed),
            wake_count: sh.wake_count.load(Ordering::Relaxed),
            wake_ns_total: sh.wake_ns.load(Ordering::Relaxed),
            busy_ns_total: sh.busy_ns.load(Ordering::Relaxed),
            park_ns_total: sh.park_ns.load(Ordering::Relaxed),
            threads_clamped: sh.threads_clamped.load(Ordering::Relaxed),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.lock_state().shutdown = true;
        self.shared.work_cv.notify_all();
        let handles = std::mem::take(&mut *forgive(self.handles.lock()));
        for h in handles {
            let _ = h.join();
        }
    }
}

/// What a claiming worker receives: the erased job body, the slot index
/// it will run as, and the job id to retire against.
type ClaimedSlot = (*const (dyn Fn(usize) + Sync), usize, u64);

/// Claim the next open slot across queued jobs (FIFO), recording the
/// job's wake latency on its first worker claim.
fn claim_slot(st: &mut PoolState, shared: &PoolShared) -> Option<ClaimedSlot> {
    let job = st.jobs.iter_mut().find(|j| j.next_slot < j.slots)?;
    let slot = job.next_slot;
    job.next_slot += 1;
    job.active += 1;
    if !job.woken {
        job.woken = true;
        let wake_ns = job.submitted.elapsed().as_nanos() as u64;
        shared.wake_count.fetch_add(1, Ordering::Relaxed);
        shared.wake_ns.fetch_add(wake_ns, Ordering::Relaxed);
        shared.metrics.record(&shared.metrics.pool_wake_ns, wake_ns);
    }
    Some((job.body, slot, job.id))
}

fn worker_loop(shared: &PoolShared) {
    let mut st = shared.lock_state();
    loop {
        if st.shutdown {
            break;
        }
        if let Some((body, slot, job_id)) = claim_slot(&mut st, shared) {
            drop(st);
            let t0 = Instant::now();
            // SAFETY: join-before-return — the submitter cannot return
            // (and thus end the borrow) while this job's `active` count
            // includes us.
            let body_ref: &(dyn Fn(usize) + Sync) = unsafe { &*body };
            // Backstop only: driver bodies contain their own panics via
            // the section poison flag; this keeps a leaked panic from
            // killing a pool worker.
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body_ref(slot)));
            let busy_ns = t0.elapsed().as_nanos() as u64;
            shared.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
            shared.metrics.record(&shared.metrics.pool_busy_ns, busy_ns);
            st = shared.lock_state();
            if let Some(job) = st.jobs.iter_mut().find(|j| j.id == job_id) {
                job.active -= 1;
                if job.active == 0 && job.next_slot >= job.slots {
                    shared.done_cv.notify_all();
                }
            }
        } else {
            let p0 = Instant::now();
            st = forgive(shared.work_cv.wait(st));
            let park_ns = p0.elapsed().as_nanos() as u64;
            shared.park_ns.fetch_add(park_ns, Ordering::Relaxed);
            shared.metrics.record(&shared.metrics.pool_park_ns, park_ns);
        }
    }
    shared.workers_alive.fetch_sub(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Watchdog hub — one monitor thread per runtime
// ---------------------------------------------------------------------------

struct WatchEntry {
    id: u64,
    mon: Arc<RunMonitor>,
    cfg: WatchdogConfig,
    last: Vec<u64>,
    last_change: Instant,
    next_sample: Instant,
}

struct HubState {
    entries: Vec<WatchEntry>,
    shutdown: bool,
}

struct HubShared {
    state: Mutex<HubState>,
    cv: Condvar,
    registrations: AtomicU64,
}

impl HubShared {
    fn lock_state(&self) -> MutexGuard<'_, HubState> {
        forgive(self.state.lock())
    }
}

/// The shared stuck-worker monitor: per-submission heartbeat
/// registrations served by one long-lived thread (spawned lazily on the
/// first watched run, parked while nothing is registered).
struct WatchdogHub {
    shared: Arc<HubShared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    next_id: AtomicU64,
}

impl WatchdogHub {
    fn new() -> WatchdogHub {
        WatchdogHub {
            shared: Arc::new(HubShared {
                state: Mutex::new(HubState { entries: Vec::new(), shutdown: false }),
                cv: Condvar::new(),
                registrations: AtomicU64::new(0),
            }),
            thread: Mutex::new(None),
            next_id: AtomicU64::new(0),
        }
    }

    fn watch(&self, mon: &Arc<RunMonitor>) -> Option<WatchGuard> {
        let cfg = mon.watchdog_config()?;
        {
            let mut slot = forgive(self.thread.lock());
            if slot.is_none() {
                let sh = Arc::clone(&self.shared);
                *slot = std::thread::Builder::new()
                    .name("autogemm-watchdog".into())
                    .spawn(move || hub_loop(&sh))
                    .ok();
                // Spawn failure leaves the run unwatched — same
                // best-effort contract as the historical per-call
                // `spawn_watchdog().ok()`.
                slot.as_ref()?;
            }
        }
        self.shared.registrations.fetch_add(1, Ordering::Relaxed);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let mut st = self.shared.lock_state();
        st.entries.push(WatchEntry {
            id,
            mon: Arc::clone(mon),
            cfg,
            last: mon.sample_beats(),
            last_change: now,
            next_sample: now + cfg.poll.max(Duration::from_millis(1)),
        });
        drop(st);
        self.shared.cv.notify_all();
        Some(WatchGuard { shared: Arc::clone(&self.shared), id })
    }
}

impl Drop for WatchdogHub {
    fn drop(&mut self) {
        self.shared.lock_state().shutdown = true;
        self.shared.cv.notify_all();
        if let Some(h) = forgive(self.thread.lock()).take() {
            let _ = h.join();
        }
    }
}

/// Deregistration handle for one watched run. Dropping it removes the
/// run from the hub; the caller still marks the monitor finished (via
/// [`RunMonitor::finish`]) first, so a concurrent sample sees a finished
/// run, never a dangling one.
pub(crate) struct WatchGuard {
    shared: Arc<HubShared>,
    id: u64,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        let mut st = self.shared.lock_state();
        st.entries.retain(|e| e.id != self.id);
    }
}

fn hub_loop(shared: &HubShared) {
    let mut st = shared.lock_state();
    loop {
        if st.shutdown {
            return;
        }
        st.entries.retain(|e| !e.mon.is_finished());
        if st.entries.is_empty() {
            st = forgive(shared.cv.wait(st));
            continue;
        }
        let now = Instant::now();
        let mut tripped: Vec<u64> = Vec::new();
        for e in st.entries.iter_mut() {
            if now < e.next_sample {
                continue;
            }
            e.next_sample = now + e.cfg.poll.max(Duration::from_millis(1));
            let beats = e.mon.sample_beats();
            if beats != e.last {
                e.last = beats;
                e.last_change = now;
                continue;
            }
            if now.duration_since(e.last_change) >= e.cfg.quiescence {
                e.mon.trip_stall(e.last.clone(), e.cfg.quiescence.as_millis() as u64);
                tripped.push(e.id);
            }
        }
        if !tripped.is_empty() {
            st.entries.retain(|e| !tripped.contains(&e.id));
        }
        let next = st.entries.iter().map(|e| e.next_sample).min();
        match next {
            Some(at) => {
                let dur = at.saturating_duration_since(Instant::now());
                let (guard, _) =
                    forgive(shared.cv.wait_timeout(st, dur.max(Duration::from_micros(200))));
                st = guard;
            }
            None => st = forgive(shared.cv.wait(st)),
        }
    }
}

// ---------------------------------------------------------------------------
// Runtime — pool + watchdog hub
// ---------------------------------------------------------------------------

/// The shared execution runtime: a persistent worker pool plus the
/// watchdog hub. One process-wide instance ([`Runtime::global`]) serves
/// every engine by default; [`Runtime::with_workers`] builds a dedicated
/// instance (isolation for tests or multi-tenant embedders).
pub struct Runtime {
    pool: WorkerPool,
    hub: WatchdogHub,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime").field("workers", &self.pool.workers).finish()
    }
}

impl Runtime {
    /// A dedicated runtime with `workers` pool workers, clamped to host
    /// parallelism (floored at 1 — the submission capacity is
    /// `workers + 1` because the caller always runs slot 0).
    pub fn with_workers(workers: usize) -> Arc<Runtime> {
        let workers = workers.clamp(1, host_parallelism().max(1));
        Arc::new(Runtime { pool: WorkerPool::new(workers), hub: WatchdogHub::new() })
    }

    /// The process-wide shared runtime, created on first use with
    /// `(host_parallelism - 1).max(1)` workers.
    pub fn global() -> Arc<Runtime> {
        static GLOBAL: OnceLock<Arc<Runtime>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| {
            Arc::new(Runtime {
                pool: WorkerPool::new(default_pool_workers()),
                hub: WatchdogHub::new(),
            })
        }))
    }

    /// Max useful per-call thread count: every pool worker plus the
    /// calling thread. [`GemmOptions::threads`](crate::GemmOptions)
    /// beyond this is clamped by the engine (recorded in
    /// [`PoolStats::threads_clamped`]); floored at 2 so threaded
    /// execution stays exercisable even on a single-core host.
    pub fn capacity(&self) -> usize {
        (self.pool.workers + 1).max(2)
    }

    /// Configured pool worker count (excluding the calling thread).
    /// [`GemmService`](crate::service::GemmService) derives its default
    /// execution-concurrency limit from this.
    pub fn workers(&self) -> usize {
        self.pool.workers
    }

    /// Cumulative pool counters (see [`PoolStats`]).
    pub fn stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// This runtime's metrics registry: wake/busy/park latency
    /// *distributions* over the runtime's lifetime (the [`PoolStats`]
    /// totals stay for the schema-v4 report section; the registry adds
    /// percentiles). Engines merge it into
    /// [`AutoGemm::metrics`](crate::AutoGemm::metrics).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.pool.shared.metrics
    }

    /// Worker threads currently alive — the leak gauge used by the CI
    /// soak (must equal the configured worker count).
    pub fn alive_workers(&self) -> usize {
        self.pool.shared.workers_alive.load(Ordering::Relaxed)
    }

    /// Record one engine call whose thread request exceeded
    /// [`Runtime::capacity`] and was clamped.
    pub(crate) fn note_clamped(&self) {
        self.pool.shared.threads_clamped.fetch_add(1, Ordering::Relaxed);
    }

    /// Register `mon` with the watchdog hub (no-op without a watchdog
    /// config). The returned guard deregisters on drop.
    pub(crate) fn watch(&self, mon: &Arc<RunMonitor>) -> Option<WatchGuard> {
        self.hub.watch(mon)
    }
}

/// Spawn-per-call twin of [`WorkerPool::run`], kept ONLY as the
/// measurement baseline for the pool benchmark (`BENCH_pool.json`): one
/// fresh scoped OS thread per slot, joined before return — exactly what
/// the drivers did before the pool existed. Never on the production
/// path.
fn scoped_spawn(slots: usize, body: &(dyn Fn(usize) + Sync)) {
    std::thread::scope(|scope| {
        for t in 0..slots {
            scope.spawn(move || body(t));
        }
    });
}

/// How one driver call executes its threaded sections. Built once per
/// call from the [`Supervision`] bundle and the run-config's pool gate,
/// then shared by every section of that call.
pub(crate) struct Exec {
    rt: Arc<Runtime>,
    /// Degraded submission path (fault injection or an open
    /// `pool_submit` breaker): the caller drains every section alone.
    /// Correct because bodies are slot-agnostic cursor drains.
    inline: bool,
    /// Bench baseline: scoped spawn-per-call (see [`scoped_spawn`]).
    scoped: bool,
    /// Span timeline from the call's [`Supervision`] (`None` =
    /// untraced; every hook below is then a single branch).
    tracer: Option<Arc<TraceBuf>>,
}

impl Exec {
    pub(crate) fn new(sup: &Supervision, inline: bool) -> Exec {
        Exec {
            rt: sup.runtime_handle(),
            inline: inline || sup.force_inline,
            scoped: sup.spawn_baseline,
            tracer: sup.tracer.clone(),
        }
    }

    /// Unsupervised plan-level sections (repack baseline, transpose):
    /// global pool, no degradation gates.
    pub(crate) fn unsupervised() -> Exec {
        Exec { rt: Runtime::global(), inline: false, scoped: false, tracer: None }
    }

    pub(crate) fn runtime(&self) -> &Arc<Runtime> {
        &self.rt
    }

    /// Run a slot-agnostic section body on `threads` slots.
    pub(crate) fn run_section(&self, threads: usize, body: &(dyn Fn(usize) + Sync)) {
        if threads <= 1 || self.inline {
            body(0);
        } else if self.scoped {
            scoped_spawn(threads, body);
        } else {
            self.rt.pool.run(threads, body);
        }
    }

    /// Timestamp for a manually-emitted span; 0 when untraced (the
    /// matching [`Exec::trace_phase`] is then a no-op too).
    pub(crate) fn trace_begin(&self) -> u64 {
        self.tracer.as_ref().map_or(0, |t| t.now_ns())
    }

    /// Close a span opened with [`Exec::trace_begin`] on `track`. Used
    /// by the drivers' single-threaded paths, which run their phase
    /// bodies inline rather than through [`Exec::run_section_traced`].
    pub(crate) fn trace_phase(&self, track: usize, name: &'static str, start_ns: u64) {
        if let Some(t) = &self.tracer {
            t.push(track, name, "phase", start_ns, t.now_ns());
        }
    }

    /// [`Exec::run_section`] plus timeline emission: one `name` phase
    /// span per active slot, a caller-lane `submit` lead-in, per-worker
    /// `wake` lead-ins (submit → body start), and per-slot `drain` tails
    /// (body end → section close, the load-imbalance gap). Identical to
    /// `run_section` when no tracer is attached.
    pub(crate) fn run_section_traced(
        &self,
        threads: usize,
        name: &'static str,
        body: &(dyn Fn(usize) + Sync),
    ) {
        let Some(tb) = self.tracer.as_deref() else {
            self.run_section(threads, body);
            return;
        };
        if threads <= 1 || self.inline {
            let s0 = tb.now_ns();
            body(0);
            tb.push(0, name, "phase", s0, tb.now_ns());
            return;
        }
        let t0 = tb.now_ns();
        let ends: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
        let ends_ref = &ends;
        let wrapped = move |t: usize| {
            let s0 = tb.now_ns();
            if t == 0 {
                tb.push(0, "submit", "pool", t0, s0);
            } else {
                tb.push(t, "wake", "pool", t0, s0);
            }
            body(t);
            let s1 = tb.now_ns();
            tb.push(t, name, "phase", s0, s1);
            if let Some(e) = ends_ref.get(t) {
                e.store(s1.max(1), Ordering::Relaxed);
            }
        };
        self.run_section(threads, &wrapped);
        let end = tb.now_ns();
        for (t, e) in ends.iter().enumerate() {
            let done = e.load(Ordering::Relaxed);
            // Slots never claimed by a worker left their cell at 0.
            if done != 0 && done < end {
                tb.push(t, "drain", "pool", done, end);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_every_cursor_unit_exactly_once() {
        let rt = Runtime::with_workers(2);
        for round in 0..50 {
            let units = 64 + round;
            let cursor = AtomicUsize::new(0);
            let hits: Vec<AtomicUsize> = (0..units).map(|_| AtomicUsize::new(0)).collect();
            let body = |_t: usize| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(h) = hits.get(i) else { break };
                h.fetch_add(1, Ordering::Relaxed);
            };
            rt.pool.run(3, &body);
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "round {round} unit {i}");
            }
        }
        assert_eq!(rt.alive_workers(), rt.stats().workers as usize);
    }

    #[test]
    fn pool_survives_a_panicking_body_and_stays_reusable() {
        let rt = Runtime::with_workers(1);
        let before = rt.alive_workers();
        // A body that panics on a worker slot; the backstop must contain
        // it even though no driver poison flag is involved here.
        let body = |t: usize| {
            if t > 0 {
                panic!("runtime test panic");
            }
        };
        rt.pool.run(2, &body);
        assert_eq!(rt.alive_workers(), before, "worker died on a contained panic");
        // Next submission still completes all units.
        let cursor = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let body2 = |_t: usize| loop {
            if cursor.fetch_add(1, Ordering::Relaxed) >= 10 {
                break;
            }
            done.fetch_add(1, Ordering::Relaxed);
        };
        rt.pool.run(2, &body2);
        assert_eq!(done.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn concurrent_submissions_share_one_pool_without_deadlock() {
        let rt = Runtime::with_workers(1);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let rt = &rt;
                scope.spawn(move || {
                    for _ in 0..25 {
                        let cursor = AtomicUsize::new(0);
                        let done = AtomicUsize::new(0);
                        let body = |_t: usize| loop {
                            if cursor.fetch_add(1, Ordering::Relaxed) >= 16 {
                                break;
                            }
                            done.fetch_add(1, Ordering::Relaxed);
                        };
                        rt.pool.run(3, &body);
                        assert_eq!(done.load(Ordering::Relaxed), 16);
                    }
                });
            }
        });
        let stats = rt.stats();
        assert_eq!(stats.jobs_completed, 100);
        assert_eq!(rt.alive_workers(), stats.workers as usize);
    }

    #[test]
    fn capacity_floors_at_two_and_clamps_to_host() {
        let rt = Runtime::with_workers(1);
        assert_eq!(rt.capacity(), 2);
        let big = Runtime::with_workers(1 << 20);
        assert!(big.stats().workers as usize <= host_parallelism().max(1));
    }
}
