//! Overload-safe multi-tenant GEMM service layer.
//!
//! [`GemmService`] wraps one [`AutoGemm`] engine per tenant on a shared
//! [`Runtime`] and puts an *admission controller* in front of them, so a
//! long-running process (an inference server, a batch scheduler) can expose
//! GEMM to many callers without letting a burst from one tenant take the
//! whole pool down. Three mechanisms compose:
//!
//! 1. **Bounded FIFO admission queue.** Every [`GemmService::submit`] first
//!    passes through a queue of configurable depth
//!    ([`ServiceConfig::queue_depth`]). When the queue is full the call
//!    returns [`GemmError::Rejected`] with
//!    [`RejectReason::QueueFull`] *immediately* — enqueue never blocks the
//!    caller. Queued callers are dispatched in FIFO order among the
//!    *eligible* waiters (a waiter whose tenant is at its in-flight cap is
//!    skipped, not a barrier, so one saturated tenant cannot convoy the
//!    rest of the queue).
//!
//! 2. **Per-tenant quotas.** Each [`TenantId`] carries a [`TenantQuota`]:
//!    a thread budget applied to its engine's calls (mapped onto
//!    [`Runtime::with_workers`] when [`TenantQuota::workers`] asks for a
//!    dedicated pool), a `max_in_flight` execution cap, and a
//!    `max_queue_share` bound on the fraction of the admission queue one
//!    tenant may occupy (exceeding it returns
//!    [`RejectReason::TenantQueueShare`]).
//!
//! 3. **Deadline-aware load shedding.** A call that names a deadline
//!    (its own, or [`ServiceConfig::default_deadline`]) is checked at
//!    admission *and again at dispatch* against a cost estimate: the
//!    roofline floor `2mnk / peak` from the chip model, max'd with the
//!    tenant engine's observed p95 call latency once
//!    [`ShedPolicy::min_samples`] calls have been seen. A call that
//!    provably cannot finish is shed up front
//!    ([`RejectReason::DeadlineUnmeetable`]) instead of wasting pool time
//!    and then missing its deadline anyway; a call whose budget expired
//!    *while queued* is dropped with [`RejectReason::ExpiredInQueue`].
//!    Queue wait is deducted from the budget handed to the engine, so the
//!    engine-level deadline supervisor still fires mid-call if execution
//!    overruns.
//!
//! Under sustained overload the service degrades gracefully: admitted
//! calls keep a bounded latency profile (the queue depth bounds wait; the
//! shed check bounds doomed work) while the overflow is converted into
//! *structured, immediate* rejections the caller can retry against. The
//! shedding ratio, queue-wait histogram and in-flight gauge are exported
//! through the service's own [`MetricsRegistry`]
//! (`service_*_total` counters, `queue_wait_ns`) and the schema-v6
//! `service` report section ([`ServiceReport`], stamped onto traced
//! reports by [`GemmService::submit_traced`]).
//!
//! ## Locking
//!
//! Two locks, never held together: a tenant map (taken briefly to resolve
//! or create a tenant), and the queue state guarded by a
//! `Mutex` + `Condvar` pair. Waiters block on the condvar with a bounded
//! timeout (their own remaining deadline, else a housekeeping tick) and
//! every state transition that can change eligibility — completion,
//! expiry-removal, close — does `notify_all`. Execution itself runs with
//! no service lock held, so a stalled kernel cannot deadlock admission.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use autogemm_arch::ChipSpec;

use crate::engine::AutoGemm;
use crate::error::{GemmError, RejectReason};
use crate::runtime::Runtime;
use crate::supervisor::GemmOptions;
use crate::telemetry::metrics::{CallOutcome, Counter, MetricsRegistry};
use crate::telemetry::{GemmReport, ServiceReport};
use crate::verify::VerifyPolicy;

/// Opaque tenant handle: a cheap clonable interned name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// Create an id from a name. Two ids with the same name are the same
    /// tenant.
    pub fn new(name: &str) -> TenantId {
        TenantId(Arc::from(name))
    }

    /// The tenant name this id was created with.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Resource limits for one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantQuota {
    /// Worker-thread budget applied to this tenant's GEMM calls when the
    /// caller leaves [`GemmOptions::threads`] at 0. Clamped to the pool.
    pub threads: usize,
    /// Maximum calls from this tenant executing concurrently. Further
    /// calls wait in the queue (other tenants overtake them).
    pub max_in_flight: usize,
    /// Maximum fraction of [`ServiceConfig::queue_depth`] this tenant may
    /// occupy, in `(0, 1]`. At least one slot is always allowed.
    pub max_queue_share: f64,
    /// `Some(n)`: run this tenant on a dedicated [`Runtime::with_workers`]
    /// pool of `n` workers instead of the service's shared runtime.
    pub workers: Option<usize>,
    /// Output-integrity verification applied to this tenant's calls when
    /// the caller leaves [`GemmOptions::verify`] at
    /// [`VerifyPolicy::Off`]. A caller-set policy always wins.
    pub verify: VerifyPolicy,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            threads: 0,
            max_in_flight: 2,
            max_queue_share: 1.0,
            workers: None,
            verify: VerifyPolicy::Off,
        }
    }
}

/// Deadline-aware shedding knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// Master switch. Off: deadlines are still enforced in-queue and
    /// in-engine, but no call is rejected up front on a cost estimate.
    pub enabled: bool,
    /// Observed-latency term only kicks in once the tenant engine has
    /// recorded this many calls; below it the roofline floor alone decides.
    pub min_samples: u64,
    /// Multiplier on the cost estimate before comparing against the
    /// remaining budget. 1.0 sheds only provably-doomed calls; larger
    /// values shed earlier.
    pub safety: f64,
}

impl Default for ShedPolicy {
    fn default() -> Self {
        ShedPolicy { enabled: true, min_samples: 32, safety: 1.0 }
    }
}

/// Service-wide configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// Admission-queue depth. A submit arriving when this many calls are
    /// already waiting is rejected with [`RejectReason::QueueFull`].
    pub queue_depth: usize,
    /// Global execution-concurrency cap across all tenants. 0 derives
    /// `runtime.workers() + 1` (one call can pack while another drains).
    pub max_in_flight: usize,
    /// `Some(n)`: build the shared runtime with `n` workers; `None` uses
    /// [`Runtime::global`].
    pub workers: Option<usize>,
    /// Deadline applied to calls that do not name one. `None`: no default.
    pub default_deadline: Option<Duration>,
    /// Load-shedding policy.
    pub shed: ShedPolicy,
    /// Quota handed to tenants first seen via [`GemmService::submit`]
    /// rather than registered with [`GemmService::add_tenant`].
    pub default_quota: TenantQuota,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: 32,
            max_in_flight: 0,
            workers: None,
            default_deadline: None,
            shed: ShedPolicy::default(),
            default_quota: TenantQuota::default(),
        }
    }
}

/// Per-call admission outcome returned by a successful submit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceReply {
    /// Time spent waiting in the admission queue before dispatch.
    pub queue_wait: Duration,
}

/// One tenant's engine plus its limits. Engines are created once and
/// reused, so each tenant keeps its own breaker state, plan cache view and
/// metrics history.
struct TenantState {
    quota: TenantQuota,
    engine: AutoGemm,
}

/// A queued call, owned by the submitting thread; the queue holds only the
/// bookkeeping view.
struct Waiter {
    ticket: u64,
    tenant: TenantId,
    /// Tenant in-flight cap, denormalized so the eligibility walk does not
    /// need the tenant map (lock-ordering: queue lock never nests inside
    /// the tenant lock or vice versa).
    tenant_cap: usize,
}

#[derive(Default)]
struct TenantLoad {
    queued: usize,
    in_flight: usize,
}

struct QueueState {
    waiting: VecDeque<Waiter>,
    in_flight: usize,
    loads: HashMap<TenantId, TenantLoad>,
    closed: bool,
    next_ticket: u64,
}

/// Multi-tenant admission-controlled GEMM front end. See the module docs
/// for the control model.
pub struct GemmService {
    chip: ChipSpec,
    cfg: ServiceConfig,
    runtime: Arc<Runtime>,
    max_in_flight: usize,
    metrics: Arc<MetricsRegistry>,
    tenants: Mutex<HashMap<TenantId, Arc<TenantState>>>,
    queue: Mutex<QueueState>,
    cv: Condvar,
}

/// Forgive lock poisoning: queue bookkeeping stays consistent because
/// every mutation is a handful of counter updates completed before any
/// code that can panic.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

impl GemmService {
    /// Build a service for `chip` with `cfg`.
    pub fn new(chip: ChipSpec, cfg: ServiceConfig) -> GemmService {
        let runtime = match cfg.workers {
            Some(w) => Runtime::with_workers(w),
            None => Runtime::global(),
        };
        let max_in_flight =
            if cfg.max_in_flight == 0 { runtime.workers() + 1 } else { cfg.max_in_flight };
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.set_enabled(true);
        GemmService {
            chip,
            cfg,
            runtime,
            max_in_flight,
            metrics,
            tenants: Mutex::new(HashMap::new()),
            queue: Mutex::new(QueueState {
                waiting: VecDeque::new(),
                in_flight: 0,
                loads: HashMap::new(),
                closed: false,
                next_ticket: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Register `name` with an explicit quota, returning its id. If the
    /// tenant already exists its entry is rebuilt (fresh engine, new
    /// quota); in-flight calls on the old engine finish unaffected.
    pub fn add_tenant(&self, name: &str, quota: TenantQuota) -> TenantId {
        let id = TenantId::new(name);
        let engine = self.build_engine(&quota);
        let mut map = relock(self.tenants.lock());
        map.insert(id.clone(), Arc::new(TenantState { quota, engine }));
        id
    }

    /// The service's own metrics registry: `service_*_total` counters, the
    /// `queue_wait_ns` histogram, the end-to-end in-flight gauge.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The shared runtime tenant engines execute on (unless a tenant asked
    /// for a dedicated pool).
    pub fn runtime(&self) -> &Arc<Runtime> {
        &self.runtime
    }

    /// Calls currently waiting in the admission queue.
    pub fn queued(&self) -> usize {
        relock(self.queue.lock()).waiting.len()
    }

    /// Calls currently executing (all tenants).
    pub fn in_flight(&self) -> usize {
        relock(self.queue.lock()).in_flight
    }

    /// Stop admitting work. Queued waiters wake and return
    /// [`RejectReason::ServiceClosed`]; calls already executing finish
    /// normally.
    pub fn close(&self) {
        relock(self.queue.lock()).closed = true;
        self.cv.notify_all();
    }

    /// Whether [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        relock(self.queue.lock()).closed
    }

    /// Admission-controlled GEMM: queue → quota → shed → execute on the
    /// tenant's engine. See the module docs for the rejection taxonomy.
    /// Execution failures come back wrapped in [`GemmError::InService`]
    /// naming the tenant; admission failures are bare
    /// [`GemmError::Rejected`].
    #[allow(clippy::too_many_arguments)]
    pub fn submit(
        &self,
        tenant: &TenantId,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        opts: &GemmOptions,
    ) -> Result<ServiceReply, GemmError> {
        self.submit_with(tenant, m, n, k, opts, |engine, run_opts| {
            engine.try_gemm_opts(m, n, k, a, b, c, run_opts)
        })
        .map(|(reply, ())| reply)
    }

    /// [`Self::submit`] through the traced engine path. The returned
    /// [`GemmReport`] carries the schema-v6 `service` section
    /// ([`ServiceReport`]) reflecting the registry *after* this call.
    #[allow(clippy::too_many_arguments)]
    pub fn submit_traced(
        &self,
        tenant: &TenantId,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        opts: &GemmOptions,
    ) -> Result<(ServiceReply, GemmReport), GemmError> {
        let (reply, mut report) = self.submit_with(tenant, m, n, k, opts, |engine, run_opts| {
            engine.try_gemm_traced_opts(m, n, k, a, b, c, run_opts)
        })?;
        self.stamp(&mut report);
        Ok((reply, report))
    }

    /// Current service counters and queue state as the schema-v6 report
    /// section.
    pub fn report_section(&self) -> ServiceReport {
        let snap = self.metrics.snapshot();
        let admitted = snap.counter(Counter::ServiceAdmitted);
        let rejected = snap.counter(Counter::ServiceRejected);
        let shed = snap.counter(Counter::ServiceShed);
        let expired = snap.counter(Counter::ServiceExpiredInQueue);
        let offered = admitted + rejected + shed + expired;
        let dropped = rejected + shed + expired;
        let st = relock(self.queue.lock());
        ServiceReport {
            queue_depth: self.cfg.queue_depth,
            max_in_flight: self.max_in_flight,
            offered,
            admitted,
            rejected,
            shed,
            expired_in_queue: expired,
            shed_ratio: if offered == 0 { 0.0 } else { dropped as f64 / offered as f64 },
            queued: st.waiting.len() as u64,
            in_flight: st.in_flight as i64,
            queue_wait_ns: snap.queue_wait_ns.clone(),
        }
    }

    /// Attach the current [`Self::report_section`] to `report`.
    pub fn stamp(&self, report: &mut GemmReport) {
        report.service = Some(self.report_section());
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn build_engine(&self, quota: &TenantQuota) -> AutoGemm {
        let rt = match quota.workers {
            Some(w) => Runtime::with_workers(w),
            None => Arc::clone(&self.runtime),
        };
        let engine = AutoGemm::new(self.chip.clone()).with_runtime(rt);
        // The shed estimate reads the tenant engine's observed latency
        // quantiles; recording must be on for that signal to exist.
        engine.set_metrics_enabled(true);
        engine
    }

    fn tenant_state(&self, id: &TenantId) -> Arc<TenantState> {
        let mut map = relock(self.tenants.lock());
        if let Some(t) = map.get(id) {
            return Arc::clone(t);
        }
        let state = Arc::new(TenantState {
            quota: self.cfg.default_quota.clone(),
            engine: self.build_engine(&self.cfg.default_quota),
        });
        map.insert(id.clone(), Arc::clone(&state));
        state
    }

    /// Cost estimate in nanoseconds for a `m×n×k` call on `tenant`'s
    /// engine at its thread budget: roofline floor max'd with observed p95
    /// once warmed, scaled by the shed safety factor.
    fn estimate_ns(
        &self,
        tenant: &TenantState,
        m: usize,
        n: usize,
        k: usize,
        threads: usize,
    ) -> u64 {
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        // peak_gflops_core is GFLOP/s per core == FLOP/ns per core.
        let peak = self.chip.peak_gflops_core() * threads.max(1) as f64;
        let floor = if peak > 0.0 { flops / peak } else { 0.0 };
        let snap = tenant.engine.metrics();
        let observed = if snap.call_latency_ns.count >= self.cfg.shed.min_samples {
            snap.call_latency_ns.quantile(0.95)
        } else {
            0
        };
        let est = (floor as u64).max(observed);
        (est as f64 * self.cfg.shed.safety.max(0.0)) as u64
    }

    fn reject(&self, counter: Counter, reason: RejectReason, queue_depth: usize) -> GemmError {
        self.metrics.add(counter, 1);
        GemmError::Rejected { reason, queue_depth }
    }

    /// Ticket of the first waiter whose tenant has in-flight headroom, if
    /// the global cap has headroom at all.
    fn first_eligible(st: &QueueState, max_in_flight: usize) -> Option<u64> {
        if st.in_flight >= max_in_flight {
            return None;
        }
        st.waiting
            .iter()
            .find(|w| st.loads.get(&w.tenant).is_none_or(|l| l.in_flight < w.tenant_cap.max(1)))
            .map(|w| w.ticket)
    }

    /// Remove `ticket` from the wait queue (deadline expiry / close),
    /// fixing up tenant load.
    fn remove_waiter(st: &mut QueueState, ticket: u64) {
        if let Some(pos) = st.waiting.iter().position(|w| w.ticket == ticket) {
            if let Some(w) = st.waiting.remove(pos) {
                if let Some(l) = st.loads.get_mut(&w.tenant) {
                    l.queued = l.queued.saturating_sub(1);
                }
            }
        }
    }

    fn submit_with<T>(
        &self,
        tenant: &TenantId,
        m: usize,
        n: usize,
        k: usize,
        opts: &GemmOptions,
        run: impl FnOnce(&AutoGemm, &GemmOptions) -> Result<T, GemmError>,
    ) -> Result<(ServiceReply, T), GemmError> {
        let t_enq = Instant::now();
        let state = self.tenant_state(tenant);
        let budget = opts.deadline.or(self.cfg.default_deadline);
        let threads = if opts.threads == 0 { state.quota.threads.max(1) } else { opts.threads };

        // Admission-time shed: reject work that provably cannot meet its
        // budget before it occupies a queue slot.
        if self.cfg.shed.enabled {
            if let Some(b) = budget {
                let est = self.estimate_ns(&state, m, n, k, threads);
                if est > b.as_nanos() as u64 {
                    let qd = self.queued();
                    return Err(self.reject(
                        Counter::ServiceShed,
                        RejectReason::DeadlineUnmeetable,
                        qd,
                    ));
                }
            }
        }

        // Enqueue (never blocks): depth and tenant-share checks.
        let ticket = {
            let mut st = relock(self.queue.lock());
            if st.closed {
                let qd = st.waiting.len();
                drop(st);
                return Err(self.reject(Counter::ServiceRejected, RejectReason::ServiceClosed, qd));
            }
            if st.waiting.len() >= self.cfg.queue_depth {
                let qd = st.waiting.len();
                drop(st);
                return Err(self.reject(Counter::ServiceRejected, RejectReason::QueueFull, qd));
            }
            let share = state.quota.max_queue_share.clamp(0.0, 1.0);
            let share_cap = ((self.cfg.queue_depth as f64 * share) as usize).max(1);
            let load = st.loads.entry(tenant.clone()).or_default();
            if load.queued >= share_cap {
                let qd = st.waiting.len();
                drop(st);
                return Err(self.reject(
                    Counter::ServiceRejected,
                    RejectReason::TenantQueueShare,
                    qd,
                ));
            }
            load.queued += 1;
            let ticket = st.next_ticket;
            st.next_ticket += 1;
            st.waiting.push_back(Waiter {
                ticket,
                tenant: tenant.clone(),
                tenant_cap: state.quota.max_in_flight,
            });
            ticket
        };
        // A new waiter can itself be the first eligible one.
        self.cv.notify_all();

        // Wait for dispatch: FIFO among eligible waiters, bounded by the
        // call's own deadline.
        let deadline_at = budget.map(|b| t_enq + b);
        {
            let mut st = relock(self.queue.lock());
            loop {
                if st.closed {
                    Self::remove_waiter(&mut st, ticket);
                    let qd = st.waiting.len();
                    drop(st);
                    self.cv.notify_all();
                    return Err(self.reject(
                        Counter::ServiceRejected,
                        RejectReason::ServiceClosed,
                        qd,
                    ));
                }
                if Self::first_eligible(&st, self.max_in_flight) == Some(ticket) {
                    Self::remove_waiter(&mut st, ticket);
                    st.in_flight += 1;
                    st.loads.entry(tenant.clone()).or_default().in_flight += 1;
                    break;
                }
                let tick = match deadline_at {
                    Some(at) => {
                        let now = Instant::now();
                        if now >= at {
                            Self::remove_waiter(&mut st, ticket);
                            let qd = st.waiting.len();
                            drop(st);
                            // Our departure may promote another waiter.
                            self.cv.notify_all();
                            return Err(self.reject(
                                Counter::ServiceExpiredInQueue,
                                RejectReason::ExpiredInQueue,
                                qd,
                            ));
                        }
                        (at - now).min(Duration::from_millis(50))
                    }
                    None => Duration::from_millis(50),
                };
                let (guard, _timeout) =
                    self.cv.wait_timeout(st, tick).unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        // Dispatched: record queue wait, re-check the budget with the wait
        // deducted, execute, release.
        let queue_wait = t_enq.elapsed();
        self.metrics.record(&self.metrics.queue_wait_ns, queue_wait.as_nanos() as u64);

        let result = (|| {
            let mut run_opts = opts.clone();
            run_opts.threads = threads;
            if run_opts.verify == VerifyPolicy::Off {
                run_opts.verify = state.quota.verify;
            }
            if let Some(b) = budget {
                let remaining = b.saturating_sub(queue_wait);
                if remaining.is_zero() {
                    // The whole budget went to queueing: this is in-queue
                    // expiry caught at the dispatch edge, not a shed.
                    let qd = self.queued();
                    return Err(self.reject(
                        Counter::ServiceExpiredInQueue,
                        RejectReason::ExpiredInQueue,
                        qd,
                    ));
                }
                if self.cfg.shed.enabled {
                    let est = self.estimate_ns(&state, m, n, k, threads);
                    if est > remaining.as_nanos() as u64 {
                        let qd = self.queued();
                        return Err(self.reject(
                            Counter::ServiceShed,
                            RejectReason::DeadlineUnmeetable,
                            qd,
                        ));
                    }
                }
                run_opts.deadline = Some(remaining);
            }
            self.metrics.add(Counter::ServiceAdmitted, 1);
            let t0 = self.metrics.call_begin();
            let out = run(&state.engine, &run_opts);
            let outcome = match &out {
                Ok(_) => CallOutcome::Ok,
                Err(GemmError::Cancelled { .. }) => CallOutcome::Cancelled,
                Err(_) => CallOutcome::Error,
            };
            let flops =
                2u64.saturating_mul(m as u64).saturating_mul(n as u64).saturating_mul(k as u64);
            self.metrics.call_end(t0, flops, outcome);
            out.map_err(|e| GemmError::InService {
                tenant: tenant.name().to_string(),
                source: Box::new(e),
            })
        })();

        // Release the execution slot whatever happened.
        {
            let mut st = relock(self.queue.lock());
            st.in_flight = st.in_flight.saturating_sub(1);
            if let Some(l) = st.loads.get_mut(tenant) {
                l.in_flight = l.in_flight.saturating_sub(1);
            }
        }
        self.cv.notify_all();

        result.map(|value| (ServiceReply { queue_wait }, value))
    }
}
