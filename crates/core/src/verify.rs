//! Always-compiled output-integrity layer: Freivalds' probabilistic
//! result verification plus a non-finite scan.
//!
//! The supervision stack makes the engine survive panics, stalls and
//! deadline blowouts — but none of that detects a *silently wrong
//! answer*: a miscompiled SIMD path, a corrupted prepacked panel or a
//! bit-flip under memory pressure would serve a bad `C` with `Ok(())`.
//! This module closes that gap at runtime, cheaply:
//!
//! * **Freivalds' check.** Instead of recomputing `A·B` (O(mnk)), draw
//!   a random ±1 vector `x` and compare `C·x` against `A·(B·x)` —
//!   three matrix-vector products, O(mn + kn + mk) per round. A wrong
//!   `C` survives one round with probability ≤ 1/2, so
//!   [`FREIVALDS_ROUNDS`] independent rounds bound the false-negative
//!   rate at `2^-rounds` *for exact arithmetic*; the floating-point
//!   tolerance below keeps the guarantee meaningful for `f32` GEMM.
//!   The random vectors are seeded from `(m, n, k, round)` only — never
//!   from time, thread count or scheduling — so a verdict is
//!   bit-reproducible across runs and thread counts.
//! * **Tolerance derivation.** The engine's `f32` GEMM accumulates `k`
//!   products per element, so element `(i, j)` carries rounding error
//!   up to `γ_k · Σ_p |A_ip||B_pj|` with `γ_k ≈ k · ε_f32`. Dotting a
//!   ±1 vector through row `i` of that error bound gives
//!   `|r_i| ≤ k · ε_f32 · Σ_p |A_ip| · (Σ_j |B_pj|)`, and storing `C`
//!   in `f32` adds at most `ε_f32 · Σ_j |C_ij|`. The check computes
//!   both magnitude sums in `f64` alongside the products and accepts a
//!   residual within that bound times a safety factor (plus a tiny
//!   absolute floor for all-zero rows). The check's own `f64` dot
//!   products contribute error orders of magnitude below the `f32`
//!   terms and are ignored.
//! * **Non-finite scan.** If `A` and `B` are finite but `C` contains a
//!   `NaN`/`Inf`, the kernel corrupted the output regardless of what
//!   Freivalds would say (`NaN` also poisons the residual, so the scan
//!   runs first and reports `check: "non_finite"`). If the *inputs*
//!   already contain non-finite values, no check can attest anything —
//!   verification is skipped entirely so garbage-in never reads as a
//!   false positive.
//!
//! Selection is governed by [`VerifyPolicy`], threaded per call
//! ([`GemmOptions::verify`](crate::supervisor::GemmOptions)), per
//! engine ([`AutoGemm::with_verify_policy`](crate::engine::AutoGemm))
//! and per tenant ([`TenantQuota::verify`](crate::service::TenantQuota)).
//! On mismatch the engine surfaces
//! [`GemmError::IntegrityViolation`](crate::error::GemmError), records
//! a failure on the `verify_integrity` breaker path (a repeatedly wrong
//! dispatch path is quarantined to the scalar reference kernels), and
//! [`try_gemm_resilient`](crate::engine::AutoGemm::try_gemm_resilient)
//! re-executes on the trusted scalar path. See DESIGN.md §11.

use crate::error::GemmError;

/// How many independent Freivalds rounds a verification runs. Two
/// rounds bound the exact-arithmetic false-negative rate at 1/4; in
/// practice a ±1 probe vector misses a corrupted element only when the
/// corruptions cancel in the row sum, which the second round's
/// independent signs break.
pub const FREIVALDS_ROUNDS: u32 = 2;

/// Safety factor applied to the derived rounding-error bound; absorbs
/// blocked-accumulation reassociation (the tiled drivers sum in a
/// different order than the bound's worst case assumes).
const TOLERANCE_SAFETY: f64 = 16.0;

/// Absolute tolerance floor, so all-zero rows (magnitude bound 0) still
/// accept an exactly-zero residual without a strict equality test.
const TOLERANCE_FLOOR: f64 = 1e-6;

/// When (and how often) the engine verifies computed outputs.
///
/// Resolution order: a non-`Off` per-call policy
/// ([`GemmOptions::verify`](crate::supervisor::GemmOptions)) wins;
/// otherwise a non-`Off` tenant policy
/// ([`TenantQuota::verify`](crate::service::TenantQuota)) is injected
/// by the service; otherwise the engine default
/// ([`AutoGemm::with_verify_policy`](crate::engine::AutoGemm)) applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyPolicy {
    /// Never verify (the default).
    #[default]
    Off,
    /// Verify one call in `rate` (a `rate` of 16 verifies ~6.25% of
    /// calls). Sampling is deterministic per engine — a monotone
    /// sequence counter, not a clock or RNG — so a rate-`r` policy
    /// verifies exactly every `r`-th sampled call. `rate <= 1` behaves
    /// like [`VerifyPolicy::Always`].
    Sample { rate: u32 },
    /// Verify every call.
    Always,
}

impl VerifyPolicy {
    /// Stable lowercase name for reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            VerifyPolicy::Off => "off",
            VerifyPolicy::Sample { .. } => "sample",
            VerifyPolicy::Always => "always",
        }
    }

    /// The sampling denominator: 0 for `Off`, 1 for `Always`, `rate`
    /// (clamped to ≥ 1) for `Sample`.
    pub fn sample_rate(self) -> u64 {
        match self {
            VerifyPolicy::Off => 0,
            VerifyPolicy::Always => 1,
            VerifyPolicy::Sample { rate } => u64::from(rate.max(1)),
        }
    }

    /// Whether the call holding sequence number `seq` (a per-engine
    /// monotone counter) should verify under this policy.
    pub fn should_run(self, seq: u64) -> bool {
        match self {
            VerifyPolicy::Off => false,
            VerifyPolicy::Always => true,
            VerifyPolicy::Sample { rate } => {
                let rate = u64::from(rate.max(1));
                seq.is_multiple_of(rate)
            }
        }
    }
}

/// splitmix64 finalizer: mixes shape/round into a seed with full
/// avalanche so nearby shapes get unrelated probe vectors. Shared with
/// the fault injector's deterministic output-corruption payload.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The xorshift64 stream the probe-vector signs are drawn from.
struct SignStream {
    state: u64,
    bits: u64,
    left: u32,
}

impl SignStream {
    /// Seeded from shape and round only — see the module docs on
    /// determinism.
    fn new(m: usize, n: usize, k: usize, round: u32) -> Self {
        let seed = mix((m as u64)
            ^ mix((n as u64) ^ mix((k as u64) ^ (u64::from(round) << 32) ^ 0xA076_1D64_78BD_642F)));
        SignStream { state: seed | 1, bits: 0, left: 0 }
    }

    /// Next ±1 sign.
    fn next_sign(&mut self) -> f64 {
        if self.left == 0 {
            self.state ^= self.state << 13;
            self.state ^= self.state >> 7;
            self.state ^= self.state << 17;
            self.bits = self.state;
            self.left = 64;
        }
        let bit = self.bits & 1;
        self.bits >>= 1;
        self.left -= 1;
        if bit == 1 {
            1.0
        } else {
            -1.0
        }
    }
}

/// Verify `C ≈ A·B` (`A` is `m×k`, `B` is `k×n`, `C` is `m×n`, all
/// row-major) with the non-finite scan plus [`FREIVALDS_ROUNDS`]
/// Freivalds rounds.
///
/// Returns `Ok(())` when the output is consistent **or** when the
/// inputs already contain non-finite values (nothing can be attested —
/// see the module docs). Returns
/// [`GemmError::IntegrityViolation`](crate::error::GemmError) naming
/// the failed detector otherwise. Slice lengths are the caller's
/// contract (the engine validates before computing); mismatched lengths
/// here panic via slice indexing like any other library bug.
pub fn verify_output(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &[f32],
) -> Result<(), GemmError> {
    if m == 0 || n == 0 {
        return Ok(());
    }
    if !a.iter().all(|v| v.is_finite()) || !b.iter().all(|v| v.is_finite()) {
        return Ok(());
    }
    if !c.iter().all(|v| v.is_finite()) {
        return Err(GemmError::IntegrityViolation {
            check: "non_finite",
            round: 0,
            max_residual: f64::INFINITY,
        });
    }

    // Row-magnitude bounds, shared by every round (sign-independent):
    // babs[p] = Σ_j |B[p,j]|, then mag[i] = Σ_p |A[i,p]|·babs[p] bounds
    // row i of |A|·|B|·1, and cmag[i] = Σ_j |C[i,j]| the storage term.
    let mut babs = vec![0.0f64; k];
    for p in 0..k {
        let row = &b[p * n..p * n + n];
        babs[p] = row.iter().map(|v| f64::from(v.abs())).sum();
    }
    let eps = f64::from(f32::EPSILON);
    let gamma = eps * (k.max(1) as f64) * TOLERANCE_SAFETY;

    for round in 0..FREIVALDS_ROUNDS {
        let mut signs = SignStream::new(m, n, k, round);
        let x: Vec<f64> = (0..n).map(|_| signs.next_sign()).collect();

        // y = B·x  (k), in f64.
        let mut y = vec![0.0f64; k];
        for p in 0..k {
            let row = &b[p * n..p * n + n];
            let mut acc = 0.0f64;
            for (j, v) in row.iter().enumerate() {
                acc += f64::from(*v) * x[j];
            }
            y[p] = acc;
        }

        let mut max_residual = 0.0f64;
        let mut violated = false;
        for i in 0..m {
            let arow = &a[i * k..i * k + k];
            let mut z = 0.0f64; // (A·y)_i
            let mut mag = 0.0f64; // Σ_p |A_ip|·babs[p]
            for (p, v) in arow.iter().enumerate() {
                let av = f64::from(*v);
                z += av * y[p];
                mag += av.abs() * babs[p];
            }
            let crow = &c[i * n..i * n + n];
            let mut w = 0.0f64; // (C·x)_i
            let mut cmag = 0.0f64;
            for (j, v) in crow.iter().enumerate() {
                let cv = f64::from(*v);
                w += cv * x[j];
                cmag += cv.abs();
            }
            let residual = (w - z).abs();
            let tolerance = gamma * mag + eps * TOLERANCE_SAFETY * cmag + TOLERANCE_FLOOR;
            if residual > tolerance {
                violated = true;
                if residual > max_residual {
                    max_residual = residual;
                }
            }
        }
        if violated {
            return Err(GemmError::IntegrityViolation { check: "freivalds", round, max_residual });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(m: usize, n: usize, k: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 52) as f32 / 415.0 - 4.9
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        (a, b)
    }

    fn oracle(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += av * b[p * n + j];
                }
            }
        }
        c
    }

    #[test]
    fn clean_product_passes() {
        for &(m, n, k) in &[(1usize, 1usize, 1usize), (7, 5, 3), (40, 36, 24), (1, 64, 16)] {
            let (a, b) = data(m, n, k, 0x5EED ^ (m as u64) << 8 ^ n as u64);
            let c = oracle(m, n, k, &a, &b);
            verify_output(m, n, k, &a, &b, &c).expect("clean product must pass");
        }
    }

    #[test]
    fn corrupted_element_is_caught() {
        let (m, n, k) = (24, 20, 12);
        let (a, b) = data(m, n, k, 7);
        let mut c = oracle(m, n, k, &a, &b);
        c[5 * n + 3] += 1.0e3;
        let err = verify_output(m, n, k, &a, &b, &c).unwrap_err();
        match err {
            GemmError::IntegrityViolation { check, max_residual, .. } => {
                assert_eq!(check, "freivalds");
                assert!(max_residual > 100.0, "residual was {max_residual}");
            }
            other => panic!("expected IntegrityViolation, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_output_is_caught_with_its_own_check_name() {
        let (m, n, k) = (6, 6, 4);
        let (a, b) = data(m, n, k, 9);
        let mut c = oracle(m, n, k, &a, &b);
        c[10] = f32::NAN;
        let err = verify_output(m, n, k, &a, &b, &c).unwrap_err();
        assert!(
            matches!(err, GemmError::IntegrityViolation { check: "non_finite", round: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn non_finite_inputs_skip_verification_entirely() {
        let (m, n, k) = (4, 4, 4);
        let (mut a, b) = data(m, n, k, 11);
        a[3] = f32::INFINITY;
        // C is garbage, but nothing can be attested from garbage inputs.
        let c = vec![f32::NAN; m * n];
        verify_output(m, n, k, &a, &b, &c).expect("non-finite inputs must not false-positive");
    }

    #[test]
    fn degenerate_shapes_pass_trivially() {
        verify_output(0, 4, 4, &[], &[0.0; 16], &[]).unwrap();
        verify_output(4, 0, 4, &[0.0; 16], &[], &[]).unwrap();
        // k == 0: C must be the empty sum (all zeros).
        verify_output(2, 2, 0, &[], &[], &[0.0; 4]).unwrap();
    }

    #[test]
    fn sign_stream_is_deterministic_and_balanced() {
        let mut s1 = SignStream::new(40, 36, 24, 1);
        let mut s2 = SignStream::new(40, 36, 24, 1);
        let mut pos = 0usize;
        for _ in 0..4096 {
            let v = s1.next_sign();
            assert_eq!(v, s2.next_sign());
            if v > 0.0 {
                pos += 1;
            }
        }
        // xorshift bits are balanced; allow a generous band.
        assert!((1536..=2560).contains(&pos), "sign bias: {pos}/4096 positive");
        // Different rounds draw different vectors.
        let mut s3 = SignStream::new(40, 36, 24, 0);
        let first: Vec<f64> = (0..64).map(|_| s3.next_sign()).collect();
        let mut s4 = SignStream::new(40, 36, 24, 1);
        let second: Vec<f64> = (0..64).map(|_| s4.next_sign()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn policy_sampling_is_deterministic() {
        assert!(!VerifyPolicy::Off.should_run(0));
        assert!(VerifyPolicy::Always.should_run(3));
        let p = VerifyPolicy::Sample { rate: 4 };
        let picks: Vec<bool> = (0..12).map(|s| p.should_run(s)).collect();
        assert_eq!(picks.iter().filter(|&&x| x).count(), 3);
        assert!(picks[0] && picks[4] && picks[8]);
        // rate <= 1 degenerates to Always.
        assert!(VerifyPolicy::Sample { rate: 0 }.should_run(7));
        assert_eq!(VerifyPolicy::Sample { rate: 16 }.sample_rate(), 16);
        assert_eq!(VerifyPolicy::Always.sample_rate(), 1);
        assert_eq!(VerifyPolicy::Off.sample_rate(), 0);
        assert_eq!(VerifyPolicy::Sample { rate: 16 }.name(), "sample");
    }
}
