//! Operand packing (`σ_packing`, §IV-C2) with the generated kernels'
//! padding contract.
//!
//! Packed `A` blocks are row-major `m_c × k_c` with the leading dimension
//! extended by `2·σ_lane` elements per row; packed `B` blocks are
//! row-major `k_c × n_c` with two zeroed trailing rows. These paddings
//! absorb the faithful Listing-1 kernels' trailing stream loads (see
//! `autogemm-kernelgen`'s module docs).
//!
//! Every panel buffer ([`AlignedVec`]) is 64-byte aligned at its base —
//! the SIMD kernels' load contract (asserted in debug builds): vector
//! loads of a panel's first row never split a cache line, and panel rows
//! stay line-aligned whenever the leading dimension is a multiple of 16
//! elements.

use parking_lot::Mutex;
use std::sync::atomic::Ordering;

/// Alignment (bytes) of every panel buffer: one cache line, a multiple
/// of the 16-byte vector width — the SIMD kernels' load contract.
pub const PANEL_ALIGN: usize = 64;

/// Storage unit of [`AlignedVec`]: 16 `f32`s forced to cache-line
/// alignment, so a `Vec` of them starts 64-byte aligned.
#[derive(Debug, Clone, Copy)]
#[repr(C, align(64))]
struct AlignedChunk([f32; 16]);

const CHUNK_LANES: usize = 16;
const ZERO_CHUNK: AlignedChunk = AlignedChunk([0.0; CHUNK_LANES]);

/// A growable `f32` buffer whose base address is always
/// [`PANEL_ALIGN`]-byte aligned — the backing store of every packed
/// panel, so vector loads of panel rows never split a cache line at the
/// panel base. Dereferences to `[f32]`; only the small `Vec`-compatible
/// surface the packing paths use is implemented.
#[derive(Debug, Clone, Default)]
pub struct AlignedVec {
    chunks: Vec<AlignedChunk>,
    len: usize,
}

impl AlignedVec {
    pub fn new() -> Self {
        AlignedVec::default()
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element capacity of the current allocation.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.chunks.capacity() * CHUNK_LANES
    }

    /// Drop the elements, keeping the allocation (like `Vec::clear`).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Resize to `new_len`, filling any newly exposed elements with
    /// `val` (like `Vec::resize`; `clear()` + `resize(n, 0.0)` therefore
    /// zero-fills without reallocating when capacity suffices).
    pub fn resize(&mut self, new_len: usize, val: f32) {
        let chunks = new_len.div_ceil(CHUNK_LANES);
        if self.chunks.len() < chunks {
            self.chunks.resize(chunks, ZERO_CHUNK);
        }
        if new_len > self.len {
            let (old_len, ptr) = (self.len, self.as_mut_ptr());
            // SAFETY: capacity covers new_len; elements are plain f32.
            unsafe { std::slice::from_raw_parts_mut(ptr.add(old_len), new_len - old_len) }
                .fill(val);
        }
        self.len = new_len;
    }

    #[inline]
    pub fn as_ptr(&self) -> *const f32 {
        self.chunks.as_ptr() as *const f32
    }

    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.chunks.as_mut_ptr() as *mut f32
    }
}

impl std::ops::Deref for AlignedVec {
    type Target = [f32];

    #[inline]
    fn deref(&self) -> &[f32] {
        // SAFETY: `len` elements are initialized and f32's alignment is
        // below the chunk alignment.
        unsafe { std::slice::from_raw_parts(self.as_ptr(), self.len) }
    }
}

impl std::ops::DerefMut for AlignedVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        let (len, ptr) = (self.len, self.as_mut_ptr());
        // SAFETY: as for `Deref`.
        unsafe { std::slice::from_raw_parts_mut(ptr, len) }
    }
}

/// A packed operand block plus its layout.
#[derive(Debug, Clone, Default)]
pub struct PackedBlock {
    pub data: AlignedVec,
    /// Leading dimension in elements.
    pub ld: usize,
    pub rows: usize,
    pub cols: usize,
}

impl PackedBlock {
    /// An empty block ready for [`pack_block_into`] (no allocation yet).
    pub fn empty() -> Self {
        PackedBlock::default()
    }
}

// Pack-call accounting lives in the per-call telemetry session
// ([`crate::telemetry::session::record_pack_a`] / `record_pack_b`): the
// panel-cache driver must pack each A panel `(bi, kb)` and each B panel
// `(kb, bj)` exactly once per GEMM — `tm·tk` + `tk·tn` packs, not the
// `tm·tn·tk` of a per-block repacking loop — and that invariant is
// pinned per call by the traced drivers' [`crate::GemmReport`]
// (`packs.a_packs` / `packs.b_packs`), race-free across concurrent
// GEMMs. (The process-global `counters` shims that predated the session
// API have been removed.)

/// Pack an `rows × cols` block of `src` (leading dimension `src_ld`,
/// starting at `(row0, col0)`) into a fresh buffer with `pad_cols` extra
/// elements per row and `pad_rows` extra zeroed rows.
#[allow(clippy::too_many_arguments)]
pub fn pack_block(
    src: &[f32],
    src_ld: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    pad_cols: usize,
    pad_rows: usize,
) -> PackedBlock {
    let mut dst = PackedBlock::empty();
    pack_block_into(&mut dst, src, src_ld, row0, col0, rows, cols, pad_cols, pad_rows);
    dst
}

/// [`pack_block`] into an existing block, reusing its allocation when the
/// capacity suffices (the buffer-pool fast path: zero allocations per
/// pack after warm-up).
#[allow(clippy::too_many_arguments)]
pub fn pack_block_into(
    dst: &mut PackedBlock,
    src: &[f32],
    src_ld: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    pad_cols: usize,
    pad_rows: usize,
) {
    let ld = cols + pad_cols;
    let len = (rows + pad_rows) * ld;
    // clear + resize zeroes every element (padding included) without
    // reallocating when capacity is already sufficient.
    dst.data.clear();
    dst.data.resize(len, 0.0);
    debug_assert_eq!(
        dst.data.as_ptr() as usize % PANEL_ALIGN,
        0,
        "packed panel base must be {PANEL_ALIGN}-byte aligned"
    );
    for r in 0..rows {
        let src_off = (row0 + r) * src_ld + col0;
        dst.data[r * ld..r * ld + cols].copy_from_slice(&src[src_off..src_off + cols]);
    }
    dst.ld = ld;
    dst.rows = rows;
    dst.cols = cols;
}

/// Pack an A block (`m_c × k_c`): rows padded by `2·σ_lane` columns.
pub fn pack_a(
    a: &[f32],
    lda: usize,
    row0: usize,
    col0: usize,
    mc: usize,
    kc: usize,
    sigma_lane: usize,
) -> PackedBlock {
    let mut dst = PackedBlock::empty();
    pack_a_into(&mut dst, a, lda, row0, col0, mc, kc, sigma_lane);
    dst
}

/// [`pack_a`] into a reused buffer.
#[allow(clippy::too_many_arguments)]
pub fn pack_a_into(
    dst: &mut PackedBlock,
    a: &[f32],
    lda: usize,
    row0: usize,
    col0: usize,
    mc: usize,
    kc: usize,
    sigma_lane: usize,
) {
    crate::telemetry::session::record_pack_a(pack_traffic_bytes(mc, kc));
    pack_block_into(dst, a, lda, row0, col0, mc, kc, 2 * sigma_lane, 0);
}

/// Pack a B block (`k_c × n_c`): two zeroed trailing rows plus one lane
/// of zeroed trailing columns — edge kernels are lane-width-rounded and
/// read up to `σ_lane - 1` elements past a narrow block's columns.
pub fn pack_b(
    b: &[f32],
    ldb: usize,
    row0: usize,
    col0: usize,
    kc: usize,
    nc: usize,
    sigma_lane: usize,
) -> PackedBlock {
    let mut dst = PackedBlock::empty();
    pack_b_into(&mut dst, b, ldb, row0, col0, kc, nc, sigma_lane);
    dst
}

/// [`pack_b`] into a reused buffer.
#[allow(clippy::too_many_arguments)]
pub fn pack_b_into(
    dst: &mut PackedBlock,
    b: &[f32],
    ldb: usize,
    row0: usize,
    col0: usize,
    kc: usize,
    nc: usize,
    sigma_lane: usize,
) {
    crate::telemetry::session::record_pack_b(pack_traffic_bytes(kc, nc));
    pack_block_into(dst, b, ldb, row0, col0, kc, nc, sigma_lane, 2);
}

/// Recycling pool for panel buffers.
///
/// Packing allocates one `Vec<f32>` per operand panel; across repeated
/// GEMM calls (the engine's steady state, and every batched workload)
/// those allocations are identical in size, so the pool keeps released
/// buffers and hands them back on the next call — after the first call a
/// GEMM performs zero panel allocations. The free list is a single
/// mutex-protected stack: it is touched once per panel at call start/end
/// (never inside the kernel loops), and [`PanelPool::acquire_blocks`]
/// batches the whole acquisition into one lock round-trip per caller, so
/// worker threads do not contend on it.
#[derive(Debug, Default)]
pub struct PanelPool {
    free: Mutex<Vec<AlignedVec>>,
    /// Blocks handed out and not yet returned — the pool's leak
    /// indicator (must settle at 0 between calls; see
    /// [`PanelPool::outstanding`]).
    outstanding: std::sync::atomic::AtomicUsize,
    /// Highest `outstanding` ever observed (bounded-memory check for
    /// soak runs).
    high_water: std::sync::atomic::AtomicUsize,
}

impl PanelPool {
    pub fn new() -> Self {
        PanelPool::default()
    }

    /// Take `n` blocks, reusing pooled buffers (largest first) and
    /// topping up with empty ones.
    pub fn acquire_blocks(&self, n: usize) -> Vec<PackedBlock> {
        let now = self.outstanding.fetch_add(n, Ordering::Relaxed) + n;
        self.high_water.fetch_max(now, Ordering::Relaxed);
        let mut free = self.free.lock();
        let take = free.len().min(n);
        let start = free.len() - take;
        let mut blocks: Vec<PackedBlock> =
            free.drain(start..).map(|data| PackedBlock { data, ld: 0, rows: 0, cols: 0 }).collect();
        drop(free);
        blocks.resize_with(n, PackedBlock::empty);
        blocks
    }

    /// Return blocks' buffers to the pool (layout metadata is dropped;
    /// only the allocations are kept).
    pub fn release_blocks(&self, blocks: impl IntoIterator<Item = PackedBlock>) {
        let mut bufs: Vec<AlignedVec> = blocks.into_iter().map(|b| b.data).collect();
        // Saturating: releasing blocks acquired elsewhere (or plain
        // `PackedBlock`s never acquired) must not underflow the gauge.
        let n = bufs.len();
        let _ = self
            .outstanding
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| Some(cur.saturating_sub(n)));
        self.free.lock().append(&mut bufs);
    }

    /// Buffers currently pooled.
    pub fn buffered(&self) -> usize {
        self.free.lock().len()
    }

    /// Blocks currently acquired and not yet released. Zero whenever no
    /// call is in flight — every driver path (success, error,
    /// cancellation) releases its panels; soak runs assert this.
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Highest simultaneous [`PanelPool::outstanding`] observed over the
    /// pool's lifetime — the bounded-memory witness for soak runs.
    pub fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Drop every pooled buffer (memory release valve for long-lived
    /// engines that have seen a large shape).
    pub fn clear(&self) {
        self.free.lock().clear();
    }
}

/// Bytes moved by packing one block (read + write), used for traffic
/// accounting in the simulated backend.
pub fn pack_traffic_bytes(rows: usize, cols: usize) -> u64 {
    2 * 4 * (rows as u64) * (cols as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_extracts_the_right_block() {
        // 4x6 source, pack the 2x3 block at (1,2).
        let src: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let p = pack_a(&src, 6, 1, 2, 2, 3, 4);
        assert_eq!(p.ld, 3 + 8);
        assert_eq!(&p.data[0..3], &[8.0, 9.0, 10.0]);
        assert_eq!(&p.data[p.ld..p.ld + 3], &[14.0, 15.0, 16.0]);
        // Padding is zeroed.
        assert_eq!(p.data[3], 0.0);
    }

    #[test]
    fn pack_b_adds_zero_rows_and_lane_columns() {
        let src: Vec<f32> = (0..12).map(|i| i as f32 + 1.0).collect();
        let p = pack_b(&src, 4, 0, 0, 3, 4, 4);
        assert_eq!(p.ld, 8);
        assert_eq!(p.data.len(), 5 * 8);
        assert_eq!(&p.data[0..4], &[1.0, 2.0, 3.0, 4.0]);
        assert!(p.data[4..8].iter().all(|&x| x == 0.0), "lane padding zeroed");
        assert!(p.data[3 * 8..].iter().all(|&x| x == 0.0), "row padding zeroed");
    }

    #[test]
    fn traffic_is_read_plus_write() {
        assert_eq!(pack_traffic_bytes(10, 10), 800);
    }

    #[test]
    fn round_trip_preserves_values() {
        let src: Vec<f32> = (0..64).map(|i| (i * i) as f32).collect();
        let p = pack_block(&src, 8, 2, 2, 4, 4, 1, 1);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(p.data[r * p.ld + c], src[(r + 2) * 8 + (c + 2)]);
            }
        }
    }

    #[test]
    fn pack_into_reuses_capacity_and_rezeroes_padding() {
        let big: Vec<f32> = vec![5.0; 16 * 16];
        let small: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut p = PackedBlock::empty();
        // First pack: large block, buffer filled with non-zero values.
        pack_block_into(&mut p, &big, 16, 0, 0, 16, 16, 2, 1);
        let cap = p.data.capacity();
        // Second pack: smaller block into the same buffer must not
        // reallocate and must present freshly zeroed padding.
        pack_block_into(&mut p, &small, 4, 0, 0, 4, 4, 2, 1);
        assert_eq!(p.data.capacity(), cap, "reused allocation");
        assert_eq!(p.ld, 6);
        assert_eq!(&p.data[0..4], &[0.0, 1.0, 2.0, 3.0]);
        assert!(p.data[4..6].iter().all(|&x| x == 0.0), "stale column padding");
        assert!(p.data[4 * 6..].iter().all(|&x| x == 0.0), "stale row padding");
    }

    #[test]
    fn panel_pool_recycles_buffers() {
        let pool = PanelPool::new();
        let mut blocks = pool.acquire_blocks(3);
        assert_eq!(blocks.len(), 3);
        for b in &mut blocks {
            b.data.resize(128, 1.0);
        }
        let ptrs: Vec<*const f32> = blocks.iter().map(|b| b.data.as_ptr()).collect();
        pool.release_blocks(blocks);
        assert_eq!(pool.buffered(), 3);
        let again = pool.acquire_blocks(4);
        assert_eq!(again.len(), 4);
        let reused = again.iter().filter(|b| ptrs.contains(&b.data.as_ptr())).count();
        assert_eq!(reused, 3, "all pooled buffers handed back");
        pool.clear();
        assert_eq!(pool.buffered(), 0);
    }

    #[test]
    fn aligned_vec_resize_matches_vec_semantics() {
        let mut v = AlignedVec::new();
        v.resize(5, 1.5);
        assert_eq!(&v[..], &[1.5; 5]);
        // Shrink then regrow: the region beyond the old len refills.
        v.resize(2, 0.0);
        v.resize(6, 2.0);
        assert_eq!(&v[..], &[1.5, 1.5, 2.0, 2.0, 2.0, 2.0]);
        // clear + resize zero-fills everything without reallocating.
        let cap = v.capacity();
        let ptr = v.as_ptr();
        v.clear();
        v.resize(6, 0.0);
        assert_eq!(&v[..], &[0.0; 6]);
        assert_eq!(v.capacity(), cap);
        assert_eq!(v.as_ptr(), ptr);
    }

    #[test]
    fn panel_buffers_are_cache_line_aligned() {
        let src = vec![1.0f32; 64];
        let p = pack_a(&src, 8, 0, 0, 4, 4, 4);
        assert_eq!(p.data.as_ptr() as usize % PANEL_ALIGN, 0);
        let pool = PanelPool::new();
        let mut blocks = pool.acquire_blocks(3);
        for b in &mut blocks {
            b.data.resize(100, 0.0);
            assert_eq!(b.data.as_ptr() as usize % PANEL_ALIGN, 0);
        }
        pool.release_blocks(blocks);
        for b in &pool.acquire_blocks(3) {
            assert_eq!(b.data.as_ptr() as usize % PANEL_ALIGN, 0, "pooled buffer stays aligned");
        }
    }

    /// Exact per-call pack accounting via the telemetry session — the
    /// successor of the old process-global counter check, which could
    /// race with concurrent GEMMs from sibling tests. A session is local
    /// to this call, so the assertion is exact regardless of what other
    /// tests run.
    #[cfg(feature = "telemetry")]
    #[test]
    fn session_counts_packs_and_bytes_per_call() {
        use crate::telemetry::session;
        let src = vec![1.0f32; 64];
        let s = std::sync::Arc::new(session::Session::new());
        session::with_session(&s, || {
            let _ = pack_a(&src, 8, 0, 0, 4, 4, 4);
            let _ = pack_a(&src, 8, 0, 0, 4, 4, 4);
            let _ = pack_b(&src, 8, 0, 0, 4, 4, 4);
        });
        let stats = s.take();
        assert_eq!(stats.a_packs, 2);
        assert_eq!(stats.b_packs, 1);
        assert_eq!(stats.a_bytes, 2 * pack_traffic_bytes(4, 4));
        assert_eq!(stats.b_bytes, pack_traffic_bytes(4, 4));
    }
}

/// Pack a block of the *transpose* of `src`: element `(r, c)` of the
/// packed block is `src[(col0 + c) * src_ld + (row0 + r)]`. Used for the
/// `op(A) = Aᵀ` / `op(B) = Bᵀ` BLAS forms: the kernels always see
/// row-major packed panels, so transposition costs nothing at run time
/// beyond this copy.
#[allow(clippy::too_many_arguments)]
pub fn pack_block_t(
    src: &[f32],
    src_ld: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    pad_cols: usize,
    pad_rows: usize,
) -> PackedBlock {
    let ld = cols + pad_cols;
    let mut data = AlignedVec::new();
    data.resize((rows + pad_rows) * ld, 0.0);
    for r in 0..rows {
        for c in 0..cols {
            data[r * ld + c] = src[(col0 + c) * src_ld + (row0 + r)];
        }
    }
    PackedBlock { data, ld, rows, cols }
}

#[cfg(test)]
mod transpose_tests {
    use super::*;

    #[test]
    fn pack_block_t_transposes() {
        // src is 3x4 row-major; packing its transpose's 4x3 block at (0,0)
        // must give columns-as-rows.
        let src: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let p = pack_block_t(&src, 4, 0, 0, 4, 3, 1, 0);
        // packed[r][c] = src[c * 4 + r]
        assert_eq!(p.data[0], 0.0); // (0,0) -> src[0]
        assert_eq!(p.data[1], 4.0); // (0,1) -> src[4]
        assert_eq!(p.data[2], 8.0); // (0,2) -> src[8]
        assert_eq!(p.data[p.ld], 1.0); // (1,0) -> src[1]
    }

    #[test]
    fn pack_block_t_subblock() {
        let src: Vec<f32> = (0..36).map(|i| i as f32).collect(); // 6x6
        let p = pack_block_t(&src, 6, 1, 2, 2, 3, 0, 0);
        // (r,c) -> src[(2+c)*6 + (1+r)]
        assert_eq!(p.data[0], 13.0);
        assert_eq!(p.data[1], 19.0);
        assert_eq!(p.data[p.ld], 14.0);
    }
}
