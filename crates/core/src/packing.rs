//! Operand packing (`σ_packing`, §IV-C2) with the generated kernels'
//! padding contract.
//!
//! Packed `A` blocks are row-major `m_c × k_c` with the leading dimension
//! extended by `2·σ_lane` elements per row; packed `B` blocks are
//! row-major `k_c × n_c` with two zeroed trailing rows. These paddings
//! absorb the faithful Listing-1 kernels' trailing stream loads (see
//! `autogemm-kernelgen`'s module docs).

/// A packed operand block plus its layout.
#[derive(Debug, Clone)]
pub struct PackedBlock {
    pub data: Vec<f32>,
    /// Leading dimension in elements.
    pub ld: usize,
    pub rows: usize,
    pub cols: usize,
}

/// Pack an `rows × cols` block of `src` (leading dimension `src_ld`,
/// starting at `(row0, col0)`) into a fresh buffer with `pad_cols` extra
/// elements per row and `pad_rows` extra zeroed rows.
pub fn pack_block(
    src: &[f32],
    src_ld: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    pad_cols: usize,
    pad_rows: usize,
) -> PackedBlock {
    let ld = cols + pad_cols;
    let mut data = vec![0.0f32; (rows + pad_rows) * ld];
    for r in 0..rows {
        let src_off = (row0 + r) * src_ld + col0;
        data[r * ld..r * ld + cols].copy_from_slice(&src[src_off..src_off + cols]);
    }
    PackedBlock { data, ld, rows, cols }
}

/// Pack an A block (`m_c × k_c`): rows padded by `2·σ_lane` columns.
pub fn pack_a(
    a: &[f32],
    lda: usize,
    row0: usize,
    col0: usize,
    mc: usize,
    kc: usize,
    sigma_lane: usize,
) -> PackedBlock {
    pack_block(a, lda, row0, col0, mc, kc, 2 * sigma_lane, 0)
}

/// Pack a B block (`k_c × n_c`): two zeroed trailing rows plus one lane
/// of zeroed trailing columns — edge kernels are lane-width-rounded and
/// read up to `σ_lane - 1` elements past a narrow block's columns.
pub fn pack_b(
    b: &[f32],
    ldb: usize,
    row0: usize,
    col0: usize,
    kc: usize,
    nc: usize,
    sigma_lane: usize,
) -> PackedBlock {
    pack_block(b, ldb, row0, col0, kc, nc, sigma_lane, 2)
}

/// Bytes moved by packing one block (read + write), used for traffic
/// accounting in the simulated backend.
pub fn pack_traffic_bytes(rows: usize, cols: usize) -> u64 {
    2 * 4 * (rows as u64) * (cols as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_a_extracts_the_right_block() {
        // 4x6 source, pack the 2x3 block at (1,2).
        let src: Vec<f32> = (0..24).map(|i| i as f32).collect();
        let p = pack_a(&src, 6, 1, 2, 2, 3, 4);
        assert_eq!(p.ld, 3 + 8);
        assert_eq!(&p.data[0..3], &[8.0, 9.0, 10.0]);
        assert_eq!(&p.data[p.ld..p.ld + 3], &[14.0, 15.0, 16.0]);
        // Padding is zeroed.
        assert_eq!(p.data[3], 0.0);
    }

    #[test]
    fn pack_b_adds_zero_rows_and_lane_columns() {
        let src: Vec<f32> = (0..12).map(|i| i as f32 + 1.0).collect();
        let p = pack_b(&src, 4, 0, 0, 3, 4, 4);
        assert_eq!(p.ld, 8);
        assert_eq!(p.data.len(), 5 * 8);
        assert_eq!(&p.data[0..4], &[1.0, 2.0, 3.0, 4.0]);
        assert!(p.data[4..8].iter().all(|&x| x == 0.0), "lane padding zeroed");
        assert!(p.data[3 * 8..].iter().all(|&x| x == 0.0), "row padding zeroed");
    }

    #[test]
    fn traffic_is_read_plus_write() {
        assert_eq!(pack_traffic_bytes(10, 10), 800);
    }

    #[test]
    fn round_trip_preserves_values() {
        let src: Vec<f32> = (0..64).map(|i| (i * i) as f32).collect();
        let p = pack_block(&src, 8, 2, 2, 4, 4, 1, 1);
        for r in 0..4 {
            for c in 0..4 {
                assert_eq!(p.data[r * p.ld + c], src[(r + 2) * 8 + (c + 2)]);
            }
        }
    }
}

/// Pack a block of the *transpose* of `src`: element `(r, c)` of the
/// packed block is `src[(col0 + c) * src_ld + (row0 + r)]`. Used for the
/// `op(A) = Aᵀ` / `op(B) = Bᵀ` BLAS forms: the kernels always see
/// row-major packed panels, so transposition costs nothing at run time
/// beyond this copy.
#[allow(clippy::too_many_arguments)]
pub fn pack_block_t(
    src: &[f32],
    src_ld: usize,
    row0: usize,
    col0: usize,
    rows: usize,
    cols: usize,
    pad_cols: usize,
    pad_rows: usize,
) -> PackedBlock {
    let ld = cols + pad_cols;
    let mut data = vec![0.0f32; (rows + pad_rows) * ld];
    for r in 0..rows {
        for c in 0..cols {
            data[r * ld + c] = src[(col0 + c) * src_ld + (row0 + r)];
        }
    }
    PackedBlock { data, ld, rows, cols }
}

#[cfg(test)]
mod transpose_tests {
    use super::*;

    #[test]
    fn pack_block_t_transposes() {
        // src is 3x4 row-major; packing its transpose's 4x3 block at (0,0)
        // must give columns-as-rows.
        let src: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let p = pack_block_t(&src, 4, 0, 0, 4, 3, 1, 0);
        // packed[r][c] = src[c * 4 + r]
        assert_eq!(p.data[0], 0.0); // (0,0) -> src[0]
        assert_eq!(p.data[1], 4.0); // (0,1) -> src[4]
        assert_eq!(p.data[2], 8.0); // (0,2) -> src[8]
        assert_eq!(p.data[p.ld], 1.0); // (1,0) -> src[1]
    }

    #[test]
    fn pack_block_t_subblock() {
        let src: Vec<f32> = (0..36).map(|i| i as f32).collect(); // 6x6
        let p = pack_block_t(&src, 6, 1, 2, 2, 3, 0, 0);
        // (r,c) -> src[(2+c)*6 + (1+r)]
        assert_eq!(p.data[0], 13.0);
        assert_eq!(p.data[1], 19.0);
        assert_eq!(p.data[p.ld], 14.0);
    }
}
