//! Shape-keyed plan cache: memoize fully resolved [`ExecutionPlan`]s in
//! front of the tuner.
//!
//! The engine historically memoized tuned `Schedule`s per
//! `(m, n, k, threads)`; the cache here sits one layer later and stores
//! the *plan* — schedule, DMT block plan and the input-aware operand
//! routing — behind an `Arc`, so a repeated shape skips the tuner, the
//! DMT planner and the elision heuristic entirely and shares one
//! allocation across concurrent callers. The key adds the detected SIMD
//! backend name: a cached plan encodes lane-width decisions, so a
//! (hypothetical) backend change must miss rather than replay a plan
//! tuned for another ISA. Hit/miss counters feed
//! `GemmReport::dispatch` and the engine's `plan_cache_stats()`.
//!
//! The cache is **bounded**: at [`PLAN_CACHE_CAPACITY`] entries the
//! least-recently-used entry is evicted (deterministic — a monotonic
//! touch stamp per entry, min-stamp victim), so a service streaming
//! unbounded distinct shapes holds at most `capacity` plans, not a
//! monotonically growing map. Evictions surface in
//! [`PlanCacheStats::evictions`].

use crate::plan::ExecutionPlan;
use crate::telemetry::metrics::{Counter, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Everything a cached plan depends on. `threads` is the tuner's thread
/// budget (multicore schedules differ structurally from single-core
/// ones), `backend` the detected SIMD backend name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub threads: usize,
    pub backend: &'static str,
}

/// Most plans one engine's cache holds before evicting. Plans are a few
/// hundred bytes each, so this bounds the cache well under a megabyte
/// while comfortably covering a workload's live shape set (a full
/// Table II/V sweep is under 40 keys).
pub const PLAN_CACHE_CAPACITY: usize = 128;

/// Cumulative hit/miss/eviction counters of one engine's plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries evicted to respect the capacity bound — a nonzero value
    /// on a steady workload means its live shape set exceeds
    /// [`PLAN_CACHE_CAPACITY`] and calls are re-tuning.
    pub evictions: u64,
}

/// One cached plan plus its last-touch stamp (monotonic per cache).
struct CacheEntry {
    plan: Arc<ExecutionPlan>,
    stamp: u64,
}

/// The cache itself: one per [`crate::AutoGemm`] engine.
pub(crate) struct PlanCache {
    plans: Mutex<HashMap<PlanKey, CacheEntry>>,
    capacity: usize,
    /// Monotonic touch counter driving LRU stamps.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Engine-lifetime registry mirroring the counters above as
    /// [`Counter::PlanCacheHits`]/`Misses`/`Evictions` (set once by the
    /// owning engine; detached caches count only locally).
    metrics: OnceLock<Arc<MetricsRegistry>>,
}

impl PlanCache {
    pub(crate) fn new() -> Self {
        Self::with_capacity(PLAN_CACHE_CAPACITY)
    }

    pub(crate) fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            plans: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            metrics: OnceLock::new(),
        }
    }

    /// Attach the engine's metrics registry; hit/miss/eviction events
    /// from now on also bump its counters. First attach wins.
    pub(crate) fn attach_metrics(&self, registry: Arc<MetricsRegistry>) {
        let _ = self.metrics.set(registry);
    }

    fn count(&self, c: Counter) {
        if let Some(m) = self.metrics.get() {
            m.add(c, 1);
        }
    }

    /// Look up `key`, building (outside the lock — tuning is expensive
    /// and must not serialize unrelated shapes) on a miss. Returns the
    /// shared plan and whether this call hit. Two threads racing the
    /// same cold key may both tune; the first insert wins and both get
    /// the same `Arc` back, so callers never observe divergent plans.
    /// Inserting at capacity evicts the least-recently-touched entry.
    pub(crate) fn get_or_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> ExecutionPlan,
    ) -> (Arc<ExecutionPlan>, bool) {
        {
            let mut map = self.plans.lock();
            if let Some(entry) = map.get_mut(&key) {
                entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                let plan = Arc::clone(&entry.plan);
                drop(map);
                self.count(Counter::PlanCacheHits);
                return (plan, true);
            }
        }
        let built = Arc::new(build());
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.count(Counter::PlanCacheMisses);
        let mut map = self.plans.lock();
        if !map.contains_key(&key) && map.len() >= self.capacity {
            // Deterministic LRU: the minimum stamp is unique (stamps are
            // handed out by one monotonic counter).
            if let Some(victim) = map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone()) {
                map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.count(Counter::PlanCacheEvictions);
            }
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let entry = map.entry(key).or_insert(CacheEntry { plan: built, stamp });
        (Arc::clone(&entry.plan), false)
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_arch::ChipSpec;
    use autogemm_tuner::tune;

    fn key(m: usize, n: usize, k: usize, threads: usize) -> PlanKey {
        PlanKey { m, n, k, threads, backend: "test" }
    }

    fn build(m: usize, n: usize, k: usize) -> ExecutionPlan {
        let chip = ChipSpec::graviton2();
        ExecutionPlan::from_schedule(tune(m, n, k, &chip), &chip)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_plan() {
        let cache = PlanCache::new();
        let (p1, hit1) = cache.get_or_build(key(26, 36, 24, 1), || build(26, 36, 24));
        let (p2, hit2) = cache.get_or_build(key(26, 36, 24, 1), || build(26, 36, 24));
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&p1, &p2), "hit must share the cached allocation");
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache = PlanCache::with_capacity(2);
        cache.get_or_build(key(8, 12, 16, 1), || build(8, 12, 16));
        cache.get_or_build(key(16, 12, 16, 1), || build(16, 12, 16));
        // Touch the first entry so the second becomes the LRU victim.
        let (_, hit) = cache.get_or_build(key(8, 12, 16, 1), || build(8, 12, 16));
        assert!(hit);
        cache.get_or_build(key(24, 12, 16, 1), || build(24, 12, 16));
        assert_eq!(cache.stats().evictions, 1);
        let (_, survived) = cache.get_or_build(key(8, 12, 16, 1), || build(8, 12, 16));
        assert!(survived, "recently touched entry must survive the eviction");
        let (_, evicted) = cache.get_or_build(key(16, 12, 16, 1), || build(16, 12, 16));
        assert!(!evicted, "LRU entry must have been evicted");
        // The re-insert of the evicted key pushed the map back to
        // capacity and evicted again: the bound holds at all times.
        assert!(cache.plans.lock().len() <= 2);
    }

    #[test]
    fn default_capacity_is_documented_bound() {
        let cache = PlanCache::new();
        assert_eq!(cache.capacity, PLAN_CACHE_CAPACITY);
        assert_eq!(cache.stats(), PlanCacheStats::default());
    }

    #[test]
    fn key_distinguishes_shape_threads_and_backend() {
        let cache = PlanCache::new();
        cache.get_or_build(key(26, 36, 24, 1), || build(26, 36, 24));
        let (_, hit_threads) = cache.get_or_build(key(26, 36, 24, 2), || build(26, 36, 24));
        let (_, hit_shape) = cache.get_or_build(key(36, 26, 24, 1), || build(36, 26, 24));
        let mut other = key(26, 36, 24, 1);
        other.backend = "other";
        let (_, hit_backend) = cache.get_or_build(other, || build(26, 36, 24));
        assert!(!hit_threads && !hit_shape && !hit_backend);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn attached_registry_mirrors_hit_miss_eviction_counters() {
        let cache = PlanCache::with_capacity(1);
        let reg = Arc::new(MetricsRegistry::new());
        cache.attach_metrics(Arc::clone(&reg));
        cache.get_or_build(key(8, 12, 16, 1), || build(8, 12, 16)); // miss
        cache.get_or_build(key(8, 12, 16, 1), || build(8, 12, 16)); // hit
        cache.get_or_build(key(16, 12, 16, 1), || build(16, 12, 16)); // miss + evict
        assert_eq!(reg.counter(Counter::PlanCacheHits), 1);
        assert_eq!(reg.counter(Counter::PlanCacheMisses), 2);
        assert_eq!(reg.counter(Counter::PlanCacheEvictions), 1);
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.evictions),
            (1, 2, 1),
            "registry and local counters must agree"
        );
    }

    #[test]
    fn miss_does_not_rebuild_on_insert_race_loser() {
        // Single-threaded approximation: the entry API returns the
        // first-inserted plan even if a second build completed.
        let cache = PlanCache::new();
        let (p1, _) = cache.get_or_build(key(8, 12, 16, 1), || build(8, 12, 16));
        let (p2, hit) = cache.get_or_build(key(8, 12, 16, 1), || build(8, 12, 16));
        assert!(hit);
        assert!(Arc::ptr_eq(&p1, &p2));
    }
}
