//! Shape-keyed plan cache: memoize fully resolved [`ExecutionPlan`]s in
//! front of the tuner.
//!
//! The engine historically memoized tuned `Schedule`s per
//! `(m, n, k, threads)`; the cache here sits one layer later and stores
//! the *plan* — schedule, DMT block plan and the input-aware operand
//! routing — behind an `Arc`, so a repeated shape skips the tuner, the
//! DMT planner and the elision heuristic entirely and shares one
//! allocation across concurrent callers. The key adds the detected SIMD
//! backend name: a cached plan encodes lane-width decisions, so a
//! (hypothetical) backend change must miss rather than replay a plan
//! tuned for another ISA. Hit/miss counters feed
//! `GemmReport::dispatch` and the engine's `plan_cache_stats()`.

use crate::plan::ExecutionPlan;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Everything a cached plan depends on. `threads` is the tuner's thread
/// budget (multicore schedules differ structurally from single-core
/// ones), `backend` the detected SIMD backend name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub threads: usize,
    pub backend: &'static str,
}

/// Cumulative hit/miss counters of one engine's plan cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
}

/// The cache itself: one per [`crate::AutoGemm`] engine.
pub(crate) struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<ExecutionPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    pub(crate) fn new() -> Self {
        PlanCache {
            plans: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Look up `key`, building (outside the lock — tuning is expensive
    /// and must not serialize unrelated shapes) on a miss. Returns the
    /// shared plan and whether this call hit. Two threads racing the
    /// same cold key may both tune; the first insert wins and both get
    /// the same `Arc` back, so callers never observe divergent plans.
    pub(crate) fn get_or_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> ExecutionPlan,
    ) -> (Arc<ExecutionPlan>, bool) {
        if let Some(plan) = self.plans.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(plan), true);
        }
        let built = Arc::new(build());
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.plans.lock();
        let entry = map.entry(key).or_insert(built);
        (Arc::clone(entry), false)
    }

    pub(crate) fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_arch::ChipSpec;
    use autogemm_tuner::tune;

    fn key(m: usize, n: usize, k: usize, threads: usize) -> PlanKey {
        PlanKey { m, n, k, threads, backend: "test" }
    }

    fn build(m: usize, n: usize, k: usize) -> ExecutionPlan {
        let chip = ChipSpec::graviton2();
        ExecutionPlan::from_schedule(tune(m, n, k, &chip), &chip)
    }

    #[test]
    fn second_lookup_hits_and_shares_the_plan() {
        let cache = PlanCache::new();
        let (p1, hit1) = cache.get_or_build(key(26, 36, 24, 1), || build(26, 36, 24));
        let (p2, hit2) = cache.get_or_build(key(26, 36, 24, 1), || build(26, 36, 24));
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&p1, &p2), "hit must share the cached allocation");
        assert_eq!(cache.stats(), PlanCacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn key_distinguishes_shape_threads_and_backend() {
        let cache = PlanCache::new();
        cache.get_or_build(key(26, 36, 24, 1), || build(26, 36, 24));
        let (_, hit_threads) = cache.get_or_build(key(26, 36, 24, 2), || build(26, 36, 24));
        let (_, hit_shape) = cache.get_or_build(key(36, 26, 24, 1), || build(36, 26, 24));
        let mut other = key(26, 36, 24, 1);
        other.backend = "other";
        let (_, hit_backend) = cache.get_or_build(other, || build(26, 36, 24));
        assert!(!hit_threads && !hit_shape && !hit_backend);
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn miss_does_not_rebuild_on_insert_race_loser() {
        // Single-threaded approximation: the entry API returns the
        // first-inserted plan even if a second build completed.
        let cache = PlanCache::new();
        let (p1, _) = cache.get_or_build(key(8, 12, 16, 1), || build(8, 12, 16));
        let (p2, hit) = cache.get_or_build(key(8, 12, 16, 1), || build(8, 12, 16));
        assert!(hit);
        assert!(Arc::ptr_eq(&p1, &p2));
    }
}
