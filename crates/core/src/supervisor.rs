//! Execution supervision: deadlines, cooperative cancellation, a
//! stuck-worker watchdog and a backend-quarantine circuit breaker.
//!
//! The ROADMAP north-star is a long-lived GEMM service. PR 4 made
//! failures *structured* (no panic escapes a worker); this layer makes
//! them *bounded* and *non-sticky*:
//!
//! * **Deadlines & cancellation** — a [`CancelToken`] is a shared atomic
//!   epoch; cancelling it (or passing a deadline in [`GemmOptions`])
//!   stops the run cooperatively at the next block boundary in the
//!   work-queue driver or pack loops. The call returns
//!   [`GemmError::Cancelled`](crate::error::GemmError::Cancelled) with
//!   the phase and block progress; all panel buffers are released and
//!   the engine is immediately reusable.
//! * **Stuck-worker watchdog** — opt-in ([`WatchdogConfig`]): the
//!   runtime's shared monitor thread (one per [`Runtime`], not one per
//!   call — see [`crate::runtime`]) samples per-worker heartbeat
//!   counters written lock-free at block boundaries. If *no* counter
//!   advances for the quiescence window, it trips the run's cancel
//!   signal and the call reports
//!   [`GemmError::Stalled`](crate::error::GemmError::Stalled)
//!   with the heartbeat snapshot.
//! * **Circuit breaker** — a per-engine [`Breaker`] keyed by dispatch
//!   path ([`BreakerPath`]: SIMD dispatch, pool allocation, threaded
//!   driver, worker-pool submission, output-integrity verification).
//!   Repeated faults on a path trip it
//!   Closed → Open; while Open, calls are rerouted to the degraded twin
//!   (scalar kernels, transient buffers, single thread, inline section
//!   drains). After a cooldown the breaker
//!   goes HalfOpen and lets probe calls through; clean probes restore
//!   the fast path. Every transition is visible in
//!   [`GemmReport::health`](crate::telemetry::GemmReport) (schema v2).
//! * **Retry** — [`AutoGemm::try_gemm_resilient`](crate::AutoGemm::try_gemm_resilient)
//!   adds one bounded retry-with-degradation ladder
//!   (threaded → single-thread → scalar + transient) for retryable
//!   error classes, never for `Cancelled` — plus a verified-reexecution
//!   rung that re-runs an
//!   [`IntegrityViolation`](crate::error::GemmError::IntegrityViolation)
//!   on the trusted scalar path.
//!
//! ## Cancellation points and cost
//!
//! Workers check the supervision state once per packed panel and once
//! per macro block — never inside a micro-kernel — so a cancelled call
//! stops within one block budget. When a call carries no deadline,
//! token or watchdog, the per-run monitor is *passive*: every check is
//! a single predictable branch on a plain bool and no clock is read, so
//! `try_gemm_deadline` with supervision off costs the same as
//! `try_gemm`.

use crate::error::GemmError;
use crate::runtime::Runtime;
use crate::telemetry::metrics::{Counter, MetricsRegistry};
use crate::telemetry::{HealthReport, PathHealth, TraceBuf};
use crate::verify::VerifyPolicy;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------------

/// A shared, cloneable cancellation handle.
///
/// Internally an atomic epoch: even values are *live*, odd values are
/// *cancelled*. [`CancelToken::cancel`] flips the token to cancelled for
/// every run currently observing it and every future run, until
/// [`CancelToken::reset`] starts the next (even) epoch. Clones share
/// state, so a service can hand one token to many in-flight calls and
/// cancel them all at once.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    epoch: Arc<AtomicU64>,
}

impl CancelToken {
    /// A fresh, live token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cancel: every run holding this token stops at its next
    /// supervision check. Idempotent.
    pub fn cancel(&self) {
        self.epoch.fetch_or(1, Ordering::Release);
    }

    /// Is the token currently in a cancelled epoch?
    pub fn is_cancelled(&self) -> bool {
        self.epoch.load(Ordering::Acquire) & 1 == 1
    }

    /// Start the next live epoch so the token can be reused. A no-op if
    /// the token was never cancelled.
    pub fn reset(&self) {
        let mut cur = self.epoch.load(Ordering::Acquire);
        while cur & 1 == 1 {
            match self.epoch.compare_exchange_weak(
                cur,
                cur.wrapping_add(1),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Watchdog / options / supervision bundle
// ---------------------------------------------------------------------------

/// Configuration for the opt-in stuck-worker watchdog.
///
/// The monitor thread samples the per-worker heartbeat counters every
/// `poll`; if no counter advances for `quiescence`, the run is declared
/// stalled. `quiescence` must comfortably exceed the longest single
/// block (heartbeats are written at block boundaries, so a legitimately
/// slow block looks quiet until it finishes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// No-progress window after which the run is declared stalled.
    pub quiescence: Duration,
    /// Sampling period of the monitor thread.
    pub poll: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig { quiescence: Duration::from_millis(250), poll: Duration::from_millis(10) }
    }
}

/// Per-call execution options for the supervised engine entry points.
#[derive(Clone, Debug, Default)]
pub struct GemmOptions {
    /// Worker threads (0 is treated as 1).
    pub threads: usize,
    /// Relative deadline, measured from call entry.
    pub deadline: Option<Duration>,
    /// External cancellation handle.
    pub cancel: Option<CancelToken>,
    /// Opt-in stuck-worker watchdog.
    pub watchdog: Option<WatchdogConfig>,
    /// Output-integrity verification for this call. `Off` (the default)
    /// defers to the tenant policy (service calls) and then the engine
    /// default; see [`VerifyPolicy`].
    pub verify: VerifyPolicy,
}

impl GemmOptions {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    pub fn watchdog(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdog = Some(cfg);
        self
    }

    pub fn verify(mut self, policy: VerifyPolicy) -> Self {
        self.verify = policy;
        self
    }
}

/// Faults the run observed, by breaker path. Written by the native
/// drivers (degrade probes) and the engine (error classification), read
/// by the breaker after the call. Public so external supervisors (and
/// the breaker's own tests) can drive [`Breaker::record`] directly.
#[derive(Debug, Default)]
pub struct ObservedFaults {
    pub(crate) simd_dispatch: AtomicBool,
    pub(crate) pool_alloc: AtomicBool,
    pub(crate) threaded_driver: AtomicBool,
    pub(crate) pool_submit: AtomicBool,
    pub(crate) verify_integrity: AtomicBool,
}

impl ObservedFaults {
    /// Mark `path` as having faulted during this call.
    pub fn set(&self, path: BreakerPath) {
        match path {
            BreakerPath::SimdDispatch => self.simd_dispatch.store(true, Ordering::Relaxed),
            BreakerPath::PoolAlloc => self.pool_alloc.store(true, Ordering::Relaxed),
            BreakerPath::ThreadedDriver => self.threaded_driver.store(true, Ordering::Relaxed),
            BreakerPath::PoolSubmit => self.pool_submit.store(true, Ordering::Relaxed),
            BreakerPath::VerifyIntegrity => self.verify_integrity.store(true, Ordering::Relaxed),
        }
    }

    /// Whether `path` faulted during this call.
    pub fn get(&self, path: BreakerPath) -> bool {
        match path {
            BreakerPath::SimdDispatch => self.simd_dispatch.load(Ordering::Relaxed),
            BreakerPath::PoolAlloc => self.pool_alloc.load(Ordering::Relaxed),
            BreakerPath::ThreadedDriver => self.threaded_driver.load(Ordering::Relaxed),
            BreakerPath::PoolSubmit => self.pool_submit.load(Ordering::Relaxed),
            BreakerPath::VerifyIntegrity => self.verify_integrity.load(Ordering::Relaxed),
        }
    }
}

/// The per-call supervision bundle handed to the supervised native
/// drivers. Built from [`GemmOptions`] by the engine, or directly via
/// the builder methods for callers using the plan-level API.
#[derive(Debug, Default)]
pub struct Supervision {
    pub(crate) cancel: Option<CancelToken>,
    pub(crate) deadline: Option<Duration>,
    pub(crate) watchdog: Option<WatchdogConfig>,
    /// Breaker reroute: skip the SIMD probe, run scalar reference kernels.
    pub(crate) force_reference: bool,
    /// Breaker reroute: skip the pool, pack into transient buffers.
    pub(crate) force_transient: bool,
    /// Breaker reroute: don't submit sections to the worker pool — the
    /// caller drains them alone (no per-call threads either way).
    pub(crate) force_inline: bool,
    /// Bench-only baseline: execute threaded sections by spawning scoped
    /// OS threads per call instead of submitting to the pool.
    pub(crate) spawn_baseline: bool,
    /// Runtime override (the engine pins its own); `None` falls back to
    /// [`Runtime::global`].
    pub(crate) runtime: Option<Arc<Runtime>>,
    pub(crate) observed: ObservedFaults,
    /// Span timeline to record this call's per-worker sections into
    /// (`None` = untraced, every hook is a single branch).
    pub(crate) tracer: Option<Arc<TraceBuf>>,
}

impl Supervision {
    /// No supervision: drivers take the zero-overhead passive path.
    pub fn none() -> Self {
        Self::default()
    }

    /// Build from per-call options (threads are handled by the caller).
    pub fn from_options(opts: &GemmOptions) -> Self {
        Supervision {
            cancel: opts.cancel.clone(),
            deadline: opts.deadline,
            watchdog: opts.watchdog,
            ..Self::default()
        }
    }

    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    pub fn with_watchdog(mut self, cfg: WatchdogConfig) -> Self {
        self.watchdog = Some(cfg);
        self
    }

    /// Pin the worker-pool runtime this call submits to (the engine sets
    /// its own; plan-level callers default to [`Runtime::global`]).
    pub fn with_runtime(mut self, rt: Arc<Runtime>) -> Self {
        self.runtime = Some(rt);
        self
    }

    /// Benchmark baseline only: execute threaded sections by spawning
    /// scoped OS threads per call — the dispatch path the worker pool
    /// replaced. Numerically identical to pooled execution.
    #[doc(hidden)]
    pub fn with_spawn_baseline(mut self) -> Self {
        self.spawn_baseline = true;
        self
    }

    /// Record this call's pack/kernel/pool spans into `tracer` (see
    /// [`TraceBuf`]; the engine attaches its own via
    /// [`AutoGemm::with_tracing`](crate::AutoGemm::with_tracing)).
    pub fn with_tracer(mut self, tracer: Arc<TraceBuf>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    pub(crate) fn set_force_reference(&mut self, on: bool) {
        self.force_reference = on;
    }

    pub(crate) fn set_force_transient(&mut self, on: bool) {
        self.force_transient = on;
    }

    pub(crate) fn set_force_inline(&mut self, on: bool) {
        self.force_inline = on;
    }

    /// The runtime this call's sections submit to.
    pub(crate) fn runtime_handle(&self) -> Arc<Runtime> {
        self.runtime.clone().unwrap_or_else(Runtime::global)
    }

    /// Record an observed fault on `path` (called from the drivers'
    /// probe/degrade sites and the engine's error classification).
    pub(crate) fn observe_fault(&self, path: BreakerPath) {
        self.observed.set(path);
    }

    /// Did the run observe a fault on `path`?
    pub(crate) fn observed_fault(&self, path: BreakerPath) -> bool {
        self.observed.get(path)
    }

    /// True when there is nothing to supervise (no token, deadline or
    /// watchdog) — the run monitor then short-circuits every check.
    pub(crate) fn is_passive(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none() && self.watchdog.is_none()
    }
}

// ---------------------------------------------------------------------------
// RunMonitor — per-run shared state between workers and the watchdog
// ---------------------------------------------------------------------------

/// Snapshot taken by the watchdog when it declares a stall.
#[derive(Debug, Clone)]
pub(crate) struct StallSnapshot {
    pub(crate) heartbeats: Vec<u64>,
    pub(crate) quiescence_ms: u64,
}

/// Per-run supervision state shared by the workers, the caller thread
/// and (when enabled) the watchdog thread. One instance per GEMM call;
/// phases (pack A, pack B, kernel drain) reuse it sequentially.
#[derive(Debug)]
pub(crate) struct RunMonitor {
    /// Fast-path flag: no cancel source at all — checks reduce to one
    /// branch, heartbeats and progress counters are skipped.
    passive: bool,
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    /// Tripped by the watchdog (or by anything else that must stop the
    /// run without an external token).
    internal_cancel: AtomicBool,
    /// Per-worker heartbeat counters, bumped lock-free at block
    /// boundaries. Indexed by worker id.
    beats: Vec<AtomicU64>,
    /// Work units (panels or blocks) completed in the current phase.
    done_units: AtomicUsize,
    /// Set by the watchdog together with `internal_cancel`.
    stalled: AtomicBool,
    stall: Mutex<Option<StallSnapshot>>,
    /// Set by the driver when the run finishes; watchdog exit signal.
    finished: AtomicBool,
    watchdog: Option<WatchdogConfig>,
}

impl RunMonitor {
    pub(crate) fn new(sup: &Supervision, workers: usize) -> Arc<RunMonitor> {
        let passive = sup.is_passive();
        let beats = if passive {
            Vec::new()
        } else {
            (0..workers.max(1)).map(|_| AtomicU64::new(0)).collect()
        };
        Arc::new(RunMonitor {
            passive,
            cancel: sup.cancel.clone(),
            deadline: sup.deadline.map(|d| Instant::now() + d),
            internal_cancel: AtomicBool::new(false),
            beats,
            done_units: AtomicUsize::new(0),
            stalled: AtomicBool::new(false),
            stall: Mutex::new(None),
            finished: AtomicBool::new(false),
            watchdog: sup.watchdog,
        })
    }

    /// Bump worker `t`'s heartbeat. Lock-free; called at block
    /// boundaries only.
    #[inline]
    pub(crate) fn beat(&self, t: usize) {
        if self.passive {
            return;
        }
        if let Some(b) = self.beats.get(t) {
            b.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Should the current phase stop early? One branch when passive.
    #[inline]
    pub(crate) fn should_stop(&self) -> bool {
        if self.passive {
            return false;
        }
        // Acquire pairs with the watchdog's Release: a worker that stops
        // because of the flag also sees the stall snapshot behind it.
        if self.internal_cancel.load(Ordering::Acquire) {
            return true;
        }
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                self.internal_cancel.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                self.internal_cancel.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Record one completed work unit of the current phase.
    #[inline]
    pub(crate) fn note_done(&self) {
        if !self.passive {
            self.done_units.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reset the per-phase progress counter (phases run sequentially).
    pub(crate) fn begin_phase(&self) {
        if !self.passive {
            self.done_units.store(0, Ordering::Relaxed);
        }
    }

    /// Resolve the phase outcome after workers have joined. A phase
    /// that completed all `total` units is `Ok` even if a cancel raced
    /// with the last block (cancellation is best-effort by design).
    pub(crate) fn outcome(&self, phase: &'static str, total: usize) -> Result<(), GemmError> {
        if self.passive {
            return Ok(());
        }
        let done = self.done_units.load(Ordering::Relaxed);
        if done >= total {
            return Ok(());
        }
        if self.stalled.load(Ordering::Relaxed) {
            let snap = self
                .stall
                .lock()
                .clone()
                .unwrap_or(StallSnapshot { heartbeats: Vec::new(), quiescence_ms: 0 });
            return Err(GemmError::Stalled {
                phase,
                quiescence_ms: snap.quiescence_ms,
                heartbeats: snap.heartbeats,
            });
        }
        if self.internal_cancel.load(Ordering::Relaxed) {
            return Err(GemmError::Cancelled { phase, blocks_done: done, blocks_total: total });
        }
        Ok(())
    }

    /// The watchdog configuration this run was created with, if any —
    /// consumed by the runtime's watchdog hub at registration.
    pub(crate) fn watchdog_config(&self) -> Option<WatchdogConfig> {
        self.watchdog
    }

    /// Has the driver marked this run finished? The hub drops finished
    /// registrations instead of sampling them.
    pub(crate) fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }

    /// Snapshot all per-worker heartbeat counters (hub sampling).
    pub(crate) fn sample_beats(&self) -> Vec<u64> {
        self.beats.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Declare the run stalled: store the snapshot and trip the run's
    /// cancel signal. Called by the watchdog hub when no heartbeat
    /// advanced for the configured quiescence window.
    pub(crate) fn trip_stall(&self, heartbeats: Vec<u64>, quiescence_ms: u64) {
        *self.stall.lock() = Some(StallSnapshot { heartbeats, quiescence_ms });
        self.stalled.store(true, Ordering::Relaxed);
        // Release publishes the snapshot and `stalled` to every worker
        // (and, transitively, the caller) that observes the cancel flag.
        self.internal_cancel.store(true, Ordering::Release);
    }

    /// Signal run completion. The caller drops its hub registration
    /// guard right after, so the shared watchdog thread stops sampling
    /// this run (no thread join — the hub thread is long-lived).
    pub(crate) fn finish(&self) {
        self.finished.store(true, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// A dispatch path the circuit breaker can quarantine, with its
/// degraded reroute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerPath {
    /// SIMD backend selection; reroute = scalar reference kernels.
    SimdDispatch,
    /// Panel-pool allocation; reroute = transient (unpooled) buffers.
    PoolAlloc,
    /// Threaded work-queue driver; reroute = single-thread execution.
    ThreadedDriver,
    /// Worker-pool submission; reroute = the caller drains the sections
    /// inline (no pool engagement, still no per-call threads).
    PoolSubmit,
    /// Output-integrity verification ([`crate::verify`]); a fault here
    /// means a computed `C` failed the Freivalds/non-finite check, i.e.
    /// some dispatch path produced a silently wrong answer. Reroute =
    /// scalar reference kernels (the trusted oracle), same degraded twin
    /// as [`BreakerPath::SimdDispatch`].
    VerifyIntegrity,
}

impl BreakerPath {
    pub const ALL: [BreakerPath; 5] = [
        BreakerPath::SimdDispatch,
        BreakerPath::PoolAlloc,
        BreakerPath::ThreadedDriver,
        BreakerPath::PoolSubmit,
        BreakerPath::VerifyIntegrity,
    ];

    /// Position of this path in [`Self::ALL`] and in the
    /// [`Admission`] reroute/probe arrays.
    pub fn index(self) -> usize {
        match self {
            BreakerPath::SimdDispatch => 0,
            BreakerPath::PoolAlloc => 1,
            BreakerPath::ThreadedDriver => 2,
            BreakerPath::PoolSubmit => 3,
            BreakerPath::VerifyIntegrity => 4,
        }
    }

    /// Stable name used in reports and transition strings.
    pub fn name(self) -> &'static str {
        match self {
            BreakerPath::SimdDispatch => "simd_dispatch",
            BreakerPath::PoolAlloc => "pool_alloc",
            BreakerPath::ThreadedDriver => "threaded_driver",
            BreakerPath::PoolSubmit => "pool_submit",
            BreakerPath::VerifyIntegrity => "verify_integrity",
        }
    }
}

/// Circuit-breaker state of one dispatch path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: fast path in use, faults counted.
    Closed,
    /// Quarantined: calls rerouted to the degraded twin.
    Open,
    /// Probing: fast path allowed; clean probes close the breaker,
    /// a fault reopens it.
    HalfOpen,
}

impl BreakerState {
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Deterministic, count-based breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive faulting calls (while Closed) that trip the path Open.
    pub fail_threshold: u32,
    /// Rerouted calls served while Open before the path goes HalfOpen.
    pub open_cooldown: u32,
    /// Consecutive clean probe calls (while HalfOpen) that close the path.
    pub close_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig { fail_threshold: 3, open_cooldown: 4, close_after: 2 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct PathInner {
    state_closed_open_half: u8, // 0 = Closed, 1 = Open, 2 = HalfOpen
    consecutive_faults: u32,
    open_calls: u32,
    halfopen_clean: u32,
    /// While HalfOpen, whether a probe call currently holds the path's
    /// single probe slot; concurrent callers reroute until it records.
    probe_in_flight: bool,
    total_faults: u64,
    trips: u64,
}

impl PathInner {
    fn state(&self) -> BreakerState {
        match self.state_closed_open_half {
            1 => BreakerState::Open,
            2 => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    fn set_state(&mut self, s: BreakerState) {
        self.state_closed_open_half = match s {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        };
    }
}

/// What the breaker decided for one call, per path. Hand it back to
/// [`Breaker::record`] when the call completes.
#[derive(Debug, Clone, Default)]
pub struct Admission {
    /// `reroute[path.index()]`: serve this call on the degraded twin.
    pub reroute: [bool; 5],
    /// `probe[path.index()]`: this call holds the path's single
    /// HalfOpen probe slot and must release it via [`Breaker::record`]
    /// (probing calls run the fast path; everyone else reroutes until
    /// the probe's verdict is in).
    pub probe: [bool; 5],
    /// Transitions performed while admitting (Open → HalfOpen).
    pub events: Vec<String>,
}

/// Per-engine backend-quarantine circuit breaker. See the module docs
/// for the state machine; all transitions are count-based and therefore
/// deterministic under seeded fault injection.
#[derive(Debug)]
pub struct Breaker {
    cfg: BreakerConfig,
    paths: Mutex<[PathInner; 5]>,
    /// Engine-lifetime registry to count transitions into (set once by
    /// the owning engine; standalone breakers count nothing).
    metrics: OnceLock<Arc<MetricsRegistry>>,
}

impl Default for Breaker {
    fn default() -> Self {
        Breaker::new(BreakerConfig::default())
    }
}

impl Breaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        Breaker { cfg, paths: Mutex::new([PathInner::default(); 5]), metrics: OnceLock::new() }
    }

    /// Attach the engine's metrics registry; every state transition this
    /// breaker performs from now on bumps
    /// [`Counter::BreakerTransitions`]. First attach wins.
    pub(crate) fn attach_metrics(&self, registry: Arc<MetricsRegistry>) {
        let _ = self.metrics.set(registry);
    }

    fn count_transitions(&self, events: &[String]) {
        if let Some(m) = self.metrics.get() {
            m.add(Counter::BreakerTransitions, events.len() as u64);
        }
    }

    pub fn config(&self) -> BreakerConfig {
        self.cfg
    }

    /// Current state of one path.
    pub fn state(&self, path: BreakerPath) -> BreakerState {
        self.paths.lock()[path.index()].state()
    }

    /// Decide reroutes for an incoming call and advance Open cooldowns.
    /// HalfOpen paths admit exactly one probe at a time: the call that
    /// claims the slot (`Admission::probe`) runs the fast path, every
    /// concurrent caller reroutes to the degraded twin until the probe's
    /// outcome is recorded.
    pub fn admit(&self) -> Admission {
        let mut adm = Admission::default();
        let mut paths = self.paths.lock();
        for path in BreakerPath::ALL {
            let p = &mut paths[path.index()];
            match p.state() {
                BreakerState::Closed => {}
                BreakerState::Open => {
                    p.open_calls += 1;
                    if p.open_calls >= self.cfg.open_cooldown {
                        p.set_state(BreakerState::HalfOpen);
                        p.halfopen_clean = 0;
                        // This call is the first probe: fast path allowed.
                        p.probe_in_flight = true;
                        adm.probe[path.index()] = true;
                        adm.events.push(format!("{}: open -> half_open", path.name()));
                    } else {
                        adm.reroute[path.index()] = true;
                    }
                }
                BreakerState::HalfOpen => {
                    if p.probe_in_flight {
                        adm.reroute[path.index()] = true;
                    } else {
                        p.probe_in_flight = true;
                        adm.probe[path.index()] = true;
                    }
                }
            }
        }
        drop(paths);
        self.count_transitions(&adm.events);
        adm
    }

    /// Record a call's outcome per path and perform transitions.
    /// `neutral` calls (e.g. cancelled before doing real work) update
    /// no state but still release any probe slot the call held.
    /// Rerouted paths were not exercised, so they are neither a success
    /// nor a fault. `rerouted`/`probed` come from the call's
    /// [`Admission`] (the engine may add forced reroutes of its own).
    pub fn record(
        &self,
        observed: &ObservedFaults,
        rerouted: [bool; 5],
        probed: [bool; 5],
        neutral: bool,
    ) -> Vec<String> {
        let mut events = Vec::new();
        let mut paths = self.paths.lock();
        for path in BreakerPath::ALL {
            let p = &mut paths[path.index()];
            // A held probe slot is released no matter how the call ended:
            // a neutral (cancelled) probe decides nothing, but it must
            // not wedge the path with a probe that never reports.
            if probed[path.index()] {
                p.probe_in_flight = false;
            }
            if neutral || rerouted[path.index()] {
                continue;
            }
            let fault = observed.get(path);
            match (p.state(), fault) {
                (BreakerState::Closed, true) => {
                    p.consecutive_faults += 1;
                    p.total_faults += 1;
                    if p.consecutive_faults >= self.cfg.fail_threshold {
                        p.set_state(BreakerState::Open);
                        p.open_calls = 0;
                        p.trips += 1;
                        events.push(format!("{}: closed -> open", path.name()));
                    }
                }
                (BreakerState::Closed, false) => p.consecutive_faults = 0,
                (BreakerState::HalfOpen, true) => {
                    p.total_faults += 1;
                    p.set_state(BreakerState::Open);
                    p.open_calls = 0;
                    p.trips += 1;
                    events.push(format!("{}: half_open -> open", path.name()));
                }
                (BreakerState::HalfOpen, false) => {
                    // Only the call that held the probe slot may count as
                    // a clean probe; a concurrent call admitted while the
                    // path was still Closed deciding the verdict instead
                    // would let a non-representative call close the path.
                    if !probed[path.index()] {
                        continue;
                    }
                    p.halfopen_clean += 1;
                    if p.halfopen_clean >= self.cfg.close_after {
                        p.set_state(BreakerState::Closed);
                        p.consecutive_faults = 0;
                        events.push(format!("{}: half_open -> closed", path.name()));
                    }
                }
                // Open paths were rerouted (or became HalfOpen at admit);
                // an Open+not-rerouted combination only happens if the
                // caller skipped admit — treat it as unexercised.
                (BreakerState::Open, _) => {}
            }
        }
        drop(paths);
        self.count_transitions(&events);
        events
    }

    /// Health snapshot for reports; `transitions` carries this call's
    /// events (empty for a standalone snapshot).
    pub fn health_report(&self, transitions: Vec<String>) -> HealthReport {
        let paths = self.paths.lock();
        HealthReport {
            paths: BreakerPath::ALL
                .iter()
                .map(|&path| {
                    let p = &paths[path.index()];
                    PathHealth {
                        path: path.name().to_string(),
                        state: p.state().name().to_string(),
                        consecutive_faults: u64::from(p.consecutive_faults),
                        total_faults: p.total_faults,
                        trips: p.trips,
                    }
                })
                .collect(),
            transitions,
        }
    }
}

/// Outcome of a [`try_gemm_resilient`](crate::AutoGemm::try_gemm_resilient)
/// call that eventually succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilientReport {
    /// Attempts made, including the successful one (1 = no retry).
    pub attempts: u32,
    /// The execution mode that succeeded.
    pub mode: ResilientMode,
}

/// The degradation rung a resilient call succeeded on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResilientMode {
    /// First attempt, as requested.
    AsRequested,
    /// Retried on a single thread.
    SingleThread,
    /// Retried on a single thread with scalar kernels and transient
    /// buffers (the fully degraded twin).
    ScalarTransient,
    /// The first attempt's output failed integrity verification; the
    /// call was re-executed on the trusted scalar reference path and
    /// that result was returned.
    VerifiedReexecution,
}

impl ResilientMode {
    pub fn name(self) -> &'static str {
        match self {
            ResilientMode::AsRequested => "as-requested",
            ResilientMode::SingleThread => "single-thread",
            ResilientMode::ScalarTransient => "scalar-transient",
            ResilientMode::VerifiedReexecution => "verified-reexecution",
        }
    }
}

/// Is this error class worth one degraded retry? Deliberate stops
/// (`Cancelled`) and caller mistakes (shape/plan errors) are not.
pub(crate) fn is_retryable(err: &GemmError) -> bool {
    matches!(
        err,
        GemmError::WorkerPanicked { .. }
            | GemmError::AllocFailed { .. }
            | GemmError::Stalled { .. }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_epochs() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
        let clone = t.clone();
        assert!(clone.is_cancelled(), "clones share state");
        t.reset();
        assert!(!t.is_cancelled());
        assert!(!clone.is_cancelled());
        t.reset(); // no-op on a live token
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn passive_monitor_never_stops() {
        let sup = Supervision::none();
        let mon = RunMonitor::new(&sup, 4);
        assert!(!mon.should_stop());
        mon.beat(0);
        mon.note_done();
        assert!(mon.outcome("kernel", 100).is_ok(), "passive runs never report cancellation");
    }

    #[test]
    fn cancelled_token_stops_and_reports_progress() {
        let tok = CancelToken::new();
        let sup = Supervision::none().with_cancel(tok.clone());
        let mon = RunMonitor::new(&sup, 2);
        assert!(!mon.should_stop());
        mon.begin_phase();
        mon.note_done();
        tok.cancel();
        assert!(mon.should_stop());
        match mon.outcome("kernel", 10) {
            Err(GemmError::Cancelled { phase, blocks_done, blocks_total }) => {
                assert_eq!((phase, blocks_done, blocks_total), ("kernel", 1, 10));
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn completed_phase_wins_over_late_cancel() {
        let tok = CancelToken::new();
        let sup = Supervision::none().with_cancel(tok.clone());
        let mon = RunMonitor::new(&sup, 1);
        mon.begin_phase();
        for _ in 0..5 {
            mon.note_done();
        }
        tok.cancel();
        assert!(mon.outcome("kernel", 5).is_ok(), "fully-drained phase is Ok");
    }

    #[test]
    fn expired_deadline_stops() {
        let sup = Supervision::none().with_deadline(Duration::from_millis(0));
        let mon = RunMonitor::new(&sup, 1);
        assert!(mon.should_stop());
        assert!(matches!(mon.outcome("pack A", 3), Err(GemmError::Cancelled { .. })));
    }

    #[test]
    fn far_deadline_does_not_stop() {
        let sup = Supervision::none().with_deadline(Duration::from_secs(3600));
        let mon = RunMonitor::new(&sup, 1);
        assert!(!mon.should_stop());
    }

    #[test]
    fn watchdog_trips_on_quiescence_and_reports_heartbeats() {
        let cfg = WatchdogConfig {
            quiescence: Duration::from_millis(40),
            poll: Duration::from_millis(5),
        };
        let sup = Supervision::none().with_watchdog(cfg);
        let mon = RunMonitor::new(&sup, 3);
        mon.begin_phase();
        mon.beat(0);
        mon.beat(0);
        mon.beat(1);
        let rt = Runtime::global();
        let watch = rt.watch(&mon);
        assert!(watch.is_some());
        // No further beats: the watchdog hub must declare a stall.
        let t0 = Instant::now();
        while !mon.should_stop() && t0.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(mon.should_stop(), "watchdog never tripped");
        mon.finish();
        drop(watch);
        match mon.outcome("kernel", 7) {
            Err(GemmError::Stalled { phase, quiescence_ms, heartbeats }) => {
                assert_eq!(phase, "kernel");
                assert_eq!(quiescence_ms, 40);
                assert_eq!(heartbeats, vec![2, 1, 0]);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_exits_cleanly_when_run_finishes() {
        let cfg =
            WatchdogConfig { quiescence: Duration::from_secs(30), poll: Duration::from_millis(5) };
        let sup = Supervision::none().with_watchdog(cfg);
        let mon = RunMonitor::new(&sup, 1);
        let watch = Runtime::global().watch(&mon);
        mon.begin_phase();
        mon.note_done();
        mon.finish(); // hub drops the registration; no thread join
        drop(watch);
        assert!(mon.outcome("kernel", 1).is_ok());
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_half_open() {
        let cfg = BreakerConfig { fail_threshold: 3, open_cooldown: 2, close_after: 2 };
        let b = Breaker::new(cfg);
        let path = BreakerPath::SimdDispatch;

        // Three consecutive faulting calls trip the path.
        for i in 0..3 {
            let adm = b.admit();
            assert!(!adm.reroute[path.index()], "call {i} should run the fast path");
            let obs = ObservedFaults::default();
            obs.set(path);
            let ev = b.record(&obs, adm.reroute, adm.probe, false);
            if i < 2 {
                assert!(ev.is_empty(), "no transition before the threshold");
            } else {
                assert_eq!(ev, vec!["simd_dispatch: closed -> open"]);
            }
        }
        assert_eq!(b.state(path), BreakerState::Open);

        // While Open, calls are rerouted; the cooldown counts them.
        let adm = b.admit();
        assert!(adm.reroute[path.index()], "open path must reroute");
        let _ = b.record(&ObservedFaults::default(), adm.reroute, adm.probe, false);

        // Cooldown reached: next admit transitions to HalfOpen and probes.
        let adm = b.admit();
        assert!(!adm.reroute[path.index()], "half-open probe runs the fast path");
        assert_eq!(adm.events, vec!["simd_dispatch: open -> half_open"]);
        let ev = b.record(&ObservedFaults::default(), adm.reroute, adm.probe, false);
        assert!(ev.is_empty());
        assert_eq!(b.state(path), BreakerState::HalfOpen);

        // Second clean probe closes the breaker.
        let adm = b.admit();
        let ev = b.record(&ObservedFaults::default(), adm.reroute, adm.probe, false);
        assert_eq!(ev, vec!["simd_dispatch: half_open -> closed"]);
        assert_eq!(b.state(path), BreakerState::Closed);

        let health = b.health_report(Vec::new());
        let sd = &health.paths[path.index()];
        assert_eq!(sd.path, "simd_dispatch");
        assert_eq!(sd.state, "closed");
        assert_eq!(sd.total_faults, 3);
        assert_eq!(sd.trips, 1);
    }

    #[test]
    fn half_open_fault_reopens() {
        let cfg = BreakerConfig { fail_threshold: 1, open_cooldown: 1, close_after: 2 };
        let b = Breaker::new(cfg);
        let path = BreakerPath::PoolAlloc;
        let adm = b.admit();
        let obs = ObservedFaults::default();
        obs.set(path);
        let _ = b.record(&obs, adm.reroute, adm.probe, false);
        assert_eq!(b.state(path), BreakerState::Open);
        let adm = b.admit(); // cooldown = 1 → straight to HalfOpen probe
        assert!(!adm.reroute[path.index()]);
        let obs = ObservedFaults::default();
        obs.set(path);
        let ev = b.record(&obs, adm.reroute, adm.probe, false);
        assert_eq!(ev, vec!["pool_alloc: half_open -> open"]);
        assert_eq!(b.state(path), BreakerState::Open);
        assert_eq!(b.health_report(Vec::new()).paths[path.index()].trips, 2);
    }

    #[test]
    fn neutral_calls_leave_the_breaker_untouched() {
        let b = Breaker::default();
        let adm = b.admit();
        let obs = ObservedFaults::default();
        obs.set(BreakerPath::SimdDispatch);
        let ev = b.record(&obs, adm.reroute, adm.probe, true);
        assert!(ev.is_empty());
        let health = b.health_report(Vec::new());
        assert_eq!(health.paths[0].total_faults, 0);
        assert_eq!(health.paths[0].state, "closed");
    }

    #[test]
    fn consecutive_fault_counter_resets_on_success() {
        let cfg = BreakerConfig { fail_threshold: 2, open_cooldown: 2, close_after: 1 };
        let b = Breaker::new(cfg);
        let path = BreakerPath::ThreadedDriver;
        // fault, success, fault: never trips.
        for fault in [true, false, true] {
            let adm = b.admit();
            let obs = ObservedFaults::default();
            if fault {
                obs.set(path);
            }
            let ev = b.record(&obs, adm.reroute, adm.probe, false);
            assert!(ev.is_empty());
        }
        assert_eq!(b.state(path), BreakerState::Closed);
    }

    #[test]
    fn retryability_classes() {
        assert!(is_retryable(&GemmError::WorkerPanicked { thread: 0, detail: "x".into() }));
        assert!(is_retryable(&GemmError::AllocFailed { phase: "pack A" }));
        assert!(is_retryable(&GemmError::Stalled {
            phase: "kernel",
            quiescence_ms: 10,
            heartbeats: vec![0],
        }));
        assert!(!is_retryable(&GemmError::Cancelled {
            phase: "kernel",
            blocks_done: 0,
            blocks_total: 1,
        }));
        assert!(!is_retryable(&GemmError::SizeOverflow { what: "M*K", lhs: 1, rhs: 2 }));
        assert!(!is_retryable(&GemmError::InBatch {
            index: 1,
            source: Box::new(GemmError::AllocFailed { phase: "pack A" }),
        }));
    }
}
