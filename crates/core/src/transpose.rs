//! Transposed-operand GEMM: the four BLAS forms
//! `C = op(A)·op(B)`, `op ∈ {identity, transpose}`.
//!
//! The generated kernels always consume row-major packed panels, so a
//! transposed operand only changes how its panels are *packed*
//! ([`crate::packing::pack_block_t`]); the tuned schedule, tiling and
//! kernels are untouched — which is exactly how packing-based BLAS
//! libraries implement `sgemm`'s `transa`/`transb`.

use crate::error::{self, GemmError};
use crate::native::{block_visit_order, run_placement, CTile, Poison};
use crate::packing::{pack_block, pack_block_t, PackedBlock};
use crate::plan::ExecutionPlan;
use crate::runtime::Exec;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Whether an operand is used as stored or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Use the matrix as stored (row-major `rows × cols`).
    NoTrans,
    /// Use the transpose of the stored matrix.
    Trans,
}

#[allow(clippy::too_many_arguments)]
fn pack_a_op(
    op: Op,
    a: &[f32],
    m: usize,
    k: usize,
    row0: usize,
    col0: usize,
    mc: usize,
    kc: usize,
    sigma_lane: usize,
) -> PackedBlock {
    match op {
        // A stored m×k: plain block.
        Op::NoTrans => pack_block(a, k, row0, col0, mc, kc, 2 * sigma_lane, 0),
        // A stored k×m, used as its transpose.
        Op::Trans => pack_block_t(a, m, row0, col0, mc, kc, 2 * sigma_lane, 0),
    }
}

#[allow(clippy::too_many_arguments)]
fn pack_b_op(
    op: Op,
    b: &[f32],
    k: usize,
    n: usize,
    row0: usize,
    col0: usize,
    kc: usize,
    nc: usize,
    sigma_lane: usize,
) -> PackedBlock {
    match op {
        Op::NoTrans => pack_block(b, n, row0, col0, kc, nc, sigma_lane, 2),
        // B stored n×k, used as its transpose.
        Op::Trans => pack_block_t(b, k, row0, col0, kc, nc, sigma_lane, 2),
    }
}

/// `C (M×N) = op(A) · op(B)`, row-major.
///
/// With `Op::NoTrans`, `a` is `M×K` and `b` is `K×N` (identical to
/// [`crate::native::gemm_with_plan`]). With `Op::Trans`, `a` is stored
/// `K×M` and/or `b` is stored `N×K`.
pub fn gemm_op(
    plan: &ExecutionPlan,
    op_a: Op,
    op_b: Op,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    if let Err(e) = try_gemm_op(plan, op_a, op_b, a, b, c, threads) {
        panic!("{e}");
    }
}

/// Fallible [`gemm_op`].
pub fn try_gemm_op(
    plan: &ExecutionPlan,
    op_a: Op,
    op_b: Op,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) -> Result<(), GemmError> {
    try_gemm_op_acc(plan, op_a, op_b, a, b, c, threads, false)
}

/// [`gemm_op`] with an explicit accumulate flag: when set, the existing
/// contents of `C` are accumulated into (`C += op(A)·op(B)`), which is
/// what a non-zero BLAS `β` needs after its scaling pass.
#[allow(clippy::too_many_arguments)]
pub fn gemm_op_acc(
    plan: &ExecutionPlan,
    op_a: Op,
    op_b: Op,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    accumulate: bool,
) {
    if let Err(e) = try_gemm_op_acc(plan, op_a, op_b, a, b, c, threads, accumulate) {
        panic!("{e}");
    }
}

/// Fallible [`gemm_op_acc`]: operand validation, degenerate shapes and
/// worker-panic containment per [`crate::error`]. A transposed operand
/// has the same element count as the plain one, so the length checks are
/// op-independent.
#[allow(clippy::too_many_arguments)]
pub fn try_gemm_op_acc(
    plan: &ExecutionPlan,
    op_a: Op,
    op_b: Op,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    accumulate: bool,
) -> Result<(), GemmError> {
    let s = &plan.schedule;
    let (m, n, k) = (s.m, s.n, s.k);
    error::check_operands(m, n, k, a, b, c)?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    if k == 0 {
        // op(A)·op(B) is the zero matrix; accumulation leaves C as is.
        if !accumulate {
            c.fill(0.0);
        }
        return Ok(());
    }
    let (tm, tn, tk) = plan.grid();
    let blocks = block_visit_order(&s.order, tm, tn);
    let threads = threads.max(1).min(blocks.len().max(1));

    // SAFETY: blocks partition C; K is never split across threads (§V-C).
    let c_root = unsafe { CTile::new(c.as_mut_ptr(), n, c.len()) };
    let run_block = |bi: usize, bj: usize| {
        let row0 = bi * s.mc;
        let col0 = bj * s.nc;
        // SAFETY: exclusive block ownership.
        let c_block = unsafe { c_root.offset(row0, col0) };
        for kb in 0..tk {
            let krow = kb * s.kc;
            let pa = pack_a_op(op_a, a, m, k, row0, krow, s.mc, s.kc, plan.sigma_lane);
            let pb = pack_b_op(op_b, b, k, n, krow, col0, s.kc, s.nc, plan.sigma_lane);
            for placement in &plan.block_plan.placements {
                run_placement(
                    placement,
                    s.kc,
                    &pa.data,
                    pa.ld,
                    &pb.data,
                    pb.ld,
                    c_block,
                    accumulate || kb > 0,
                );
            }
        }
    };
    if threads == 1 {
        return catch_unwind(AssertUnwindSafe(|| {
            for &(bi, bj) in &blocks {
                run_block(bi, bj);
            }
        }))
        .map_err(|payload| GemmError::WorkerPanicked {
            thread: 0,
            detail: error::panic_detail(payload.as_ref()),
        });
    }
    let exec = Exec::unsupervised();
    let cursor = AtomicUsize::new(0);
    let poison = Poison::new();
    let body = |t: usize| {
        let run = catch_unwind(AssertUnwindSafe(|| loop {
            if poison.is_poisoned() {
                break;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&(bi, bj)) = blocks.get(i) else { break };
            run_block(bi, bj);
        }));
        if let Err(payload) = run {
            poison.record(t, payload);
        }
    };
    exec.run_section(threads, &body);
    poison.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AutoGemm;
    use autogemm_arch::ChipSpec;

    fn naive_op(
        m: usize,
        n: usize,
        k: usize,
        op_a: Op,
        op_b: Op,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let get_a = |i: usize, p: usize| match op_a {
            Op::NoTrans => a[i * k + p],
            Op::Trans => a[p * m + i],
        };
        let get_b = |p: usize, j: usize| match op_b {
            Op::NoTrans => b[p * n + j],
            Op::Trans => b[j * k + p],
        };
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += get_a(i, p) * get_b(p, j);
                }
            }
        }
        c
    }

    #[test]
    fn all_four_op_combinations_match_naive() {
        let chip = ChipSpec::graviton2();
        let engine = AutoGemm::new(chip.clone());
        let (m, n, k) = (26usize, 36usize, 24usize);
        let plan = engine.plan(m, n, k);
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 5) % 11) as f32 - 5.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 3) % 7) as f32 - 3.0).collect();
        for op_a in [Op::NoTrans, Op::Trans] {
            for op_b in [Op::NoTrans, Op::Trans] {
                let mut c = vec![0.0f32; m * n];
                gemm_op(&plan, op_a, op_b, &a, &b, &mut c, 2);
                let want = naive_op(m, n, k, op_a, op_b, &a, &b);
                assert_eq!(c, want, "op_a={op_a:?} op_b={op_b:?}");
            }
        }
    }

    #[test]
    fn notrans_notrans_equals_plain_gemm() {
        let chip = ChipSpec::m2();
        let engine = AutoGemm::new(chip.clone());
        let (m, n, k) = (13usize, 20usize, 17usize);
        let plan = engine.plan(m, n, k);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 9) as f32).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 4) as f32).collect();
        let mut c1 = vec![0.0f32; m * n];
        engine.gemm(m, n, k, &a, &b, &mut c1);
        let mut c2 = vec![0.0f32; m * n];
        gemm_op(&plan, Op::NoTrans, Op::NoTrans, &a, &b, &mut c2, 1);
        assert_eq!(c1, c2);
    }
}

/// Full BLAS-style `sgemm`: `C = α · op(A) · op(B) + β · C`, row-major.
///
/// `α` is folded into the `A` panels while packing (the kernels never see
/// it — the standard packing-library trick), and `β` is applied to `C` in
/// one pass up front, so the hot loops are identical to [`gemm_op`].
#[allow(clippy::too_many_arguments)]
pub fn sgemm(
    plan: &ExecutionPlan,
    alpha: f32,
    op_a: Op,
    a: &[f32],
    op_b: Op,
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    threads: usize,
) {
    if let Err(e) = try_sgemm(plan, alpha, op_a, a, op_b, b, beta, c, threads) {
        panic!("{e}");
    }
}

/// Fallible [`sgemm`]. All operands are validated **before** the `β`
/// pass, so on `Err` the caller's `C` is untouched — not even scaled.
#[allow(clippy::too_many_arguments)]
pub fn try_sgemm(
    plan: &ExecutionPlan,
    alpha: f32,
    op_a: Op,
    a: &[f32],
    op_b: Op,
    b: &[f32],
    beta: f32,
    c: &mut [f32],
    threads: usize,
) -> Result<(), GemmError> {
    let s = &plan.schedule;
    error::check_operands(s.m, s.n, s.k, a, b, c)?;
    // β pass.
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for v in c.iter_mut() {
            *v *= beta;
        }
    }
    if alpha == 0.0 {
        return Ok(());
    }
    let accumulate = beta != 0.0;
    if alpha == 1.0 {
        return try_gemm_op_acc(plan, op_a, op_b, a, b, c, threads, accumulate);
    }
    // Fold α into A once (the packed copies inherit it).
    let scaled_a: Vec<f32> = a.iter().map(|&x| x * alpha).collect();
    try_gemm_op_acc(plan, op_a, op_b, &scaled_a, b, c, threads, accumulate)
}

#[cfg(test)]
mod sgemm_tests {
    use super::*;
    use crate::AutoGemm;
    use autogemm_arch::ChipSpec;

    fn data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let a = (0..m * k).map(|i| ((i * 7) % 9) as f32 - 4.0).collect();
        let b = (0..k * n).map(|i| ((i * 5) % 7) as f32 - 3.0).collect();
        let c = (0..m * n).map(|i| ((i * 3) % 5) as f32 - 2.0).collect();
        (a, b, c)
    }

    #[allow(clippy::too_many_arguments)]
    fn naive_sgemm(
        m: usize,
        n: usize,
        k: usize,
        alpha: f32,
        a: &[f32],
        b: &[f32],
        beta: f32,
        c: &mut [f32],
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut dot = 0.0f32;
                for p in 0..k {
                    dot += a[i * k + p] * b[p * n + j];
                }
                c[i * n + j] = alpha * dot + beta * c[i * n + j];
            }
        }
    }

    #[test]
    fn alpha_beta_combinations_match_naive() {
        let chip = ChipSpec::graviton2();
        let engine = AutoGemm::new(chip.clone());
        let (m, n, k) = (16usize, 24usize, 20usize);
        let plan = engine.plan(m, n, k);
        let (a, b, c0) = data(m, n, k);
        for (alpha, beta) in [(1.0f32, 0.0f32), (1.0, 1.0), (2.5, 0.0), (0.5, -1.5), (0.0, 3.0)] {
            let mut c = c0.clone();
            sgemm(&plan, alpha, Op::NoTrans, &a, Op::NoTrans, &b, beta, &mut c, 2);
            let mut want = c0.clone();
            naive_sgemm(m, n, k, alpha, &a, &b, beta, &mut want);
            for (i, (&got, &w)) in c.iter().zip(&want).enumerate() {
                assert!(
                    (got - w).abs() <= 1e-3 * w.abs().max(1.0),
                    "alpha={alpha} beta={beta}: C[{i}] = {got} want {w}"
                );
            }
        }
    }

    #[test]
    fn alpha_zero_only_applies_beta() {
        let chip = ChipSpec::kp920();
        let engine = AutoGemm::new(chip.clone());
        let (m, n, k) = (8usize, 8usize, 8usize);
        let plan = engine.plan(m, n, k);
        let (a, b, c0) = data(m, n, k);
        let mut c = c0.clone();
        sgemm(&plan, 0.0, Op::NoTrans, &a, Op::NoTrans, &b, 2.0, &mut c, 1);
        let want: Vec<f32> = c0.iter().map(|&x| x * 2.0).collect();
        assert_eq!(c, want);
    }
}
