//! The per-GEMM execution report and its versioned JSON schema.

use crate::runtime::PoolStats;
use crate::telemetry::json::{Json, JsonError};
use crate::telemetry::metrics::{HistogramSnapshot, MetricsSnapshot};
use autogemm_kernelgen::MicroTile;
use autogemm_perfmodel::ProjectionTable;

/// Version of the serialized [`GemmReport`] schema. Bump on any breaking
/// field change; [`GemmReport::from_json`] rejects versions it cannot
/// read. v2 added the `health` section (circuit-breaker state and
/// transitions) and `fallbacks.breaker_reroutes`; v3 added the
/// `dispatch` section (input-aware route, packing elision and
/// plan-cache counters); v4 added the `pool` section (worker-pool
/// runtime counters) and `fallbacks.inline_drains`; v5 added the
/// `metrics` section (the engine-lifetime [`MetricsSnapshot`] at report
/// time); v6 added the `service` section (admission-control counters and
/// the queue-wait histogram of the owning
/// [`GemmService`](crate::service::GemmService)); v7 added the
/// `integrity` section (the output-verification policy and counters of
/// [`crate::verify`]). Older reports are still accepted: v1 parses with
/// an empty health section, v1/v2 with a default dispatch section,
/// v1–v3 with a default pool section, v1–v4 with no metrics snapshot,
/// v1–v5 with no service section, v1–v6 with no integrity section.
pub const SCHEMA_VERSION: u64 = 7;

/// Oldest serialized schema version [`GemmReport::from_json`] accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// A (wall-ns, cycle-tick) duration pair. "Cycles" are host counter
/// ticks — see [`crate::telemetry::clock`] for the per-arch source and
/// caveats; both fields are zero when the `telemetry` feature is off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    pub wall_ns: u64,
    pub cycles: u64,
}

impl std::ops::Add for PhaseTimes {
    type Output = PhaseTimes;

    fn add(self, rhs: PhaseTimes) -> PhaseTimes {
        PhaseTimes { wall_ns: self.wall_ns + rhs.wall_ns, cycles: self.cycles + rhs.cycles }
    }
}

impl std::ops::AddAssign for PhaseTimes {
    fn add_assign(&mut self, rhs: PhaseTimes) {
        *self = *self + rhs;
    }
}

/// Per-phase breakdown of one traced GEMM. `pack_a`/`pack_b` cover the
/// panel-packing stages, `kernel` the whole work-queue drain section
/// (wall time of the parallel region), and `drain` the summed
/// end-of-queue idle time of the workers (load imbalance: the gap between
/// a worker's last block and the slowest worker finishing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    pub pack_a: PhaseTimes,
    pub pack_b: PhaseTimes,
    pub kernel: PhaseTimes,
    pub drain: PhaseTimes,
}

/// Per-call pack counts and traffic, accumulated in the call's own
/// telemetry session (race-free across concurrent GEMMs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PackStats {
    pub a_packs: u64,
    pub b_packs: u64,
    /// Bytes moved packing A panels (read + write, as
    /// [`crate::packing::pack_traffic_bytes`] counts them).
    pub a_bytes: u64,
    pub b_bytes: u64,
}

/// One worker's slice of the work-queue drain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadProfile {
    pub thread: usize,
    /// Cache blocks this worker claimed from the queue.
    pub blocks: u64,
    /// Time spent inside block execution.
    pub busy: PhaseTimes,
    /// Idle tail: from this worker's last block to the end of the
    /// parallel section.
    pub drain: PhaseTimes,
}

impl ThreadProfile {
    /// Fraction of the kernel section this worker spent busy.
    pub fn busy_fraction(&self, section: PhaseTimes) -> f64 {
        if section.wall_ns == 0 {
            return 0.0;
        }
        self.busy.wall_ns as f64 / section.wall_ns as f64
    }
}

/// Graceful degradations taken during one run (see `crate::error` for
/// the degradation policy). Unlike the timing counters these are live
/// regardless of the `telemetry` feature — the traced driver records its
/// own setup decisions, no clock or session hook involved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FallbackStats {
    /// Pack phases that bypassed the caller's panel pool (degraded to
    /// transient unpooled buffers).
    pub pool_packs: u64,
    /// Whole-run degradations to the scalar reference kernels (a failed
    /// kernel-dispatch probe routes every placement to the reference
    /// path).
    pub scalar_kernels: u64,
    /// Degradations imposed by the engine's circuit breaker (quarantined
    /// paths rerouted before the run started), counted per rerouted
    /// path. Schema v2.
    pub breaker_reroutes: u64,
    /// Threaded sections drained inline on the calling thread instead of
    /// the worker pool (a degraded or quarantined pool-submit path).
    /// Schema v4.
    pub inline_drains: u64,
}

impl FallbackStats {
    /// Whether any degradation path was taken.
    pub fn any(&self) -> bool {
        self.pool_packs > 0
            || self.scalar_kernels > 0
            || self.breaker_reroutes > 0
            || self.inline_drains > 0
    }
}

/// Health of one circuit-breaker path
/// ([`BreakerPath`](crate::supervisor::BreakerPath)) at report time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathHealth {
    /// Stable path name: `"simd_dispatch"`, `"pool_alloc"` or
    /// `"threaded_driver"`.
    pub path: String,
    /// Breaker state name: `"closed"`, `"open"` or `"half_open"`.
    pub state: String,
    /// Consecutive faulting calls counted toward the trip threshold.
    pub consecutive_faults: u64,
    /// Faults observed on this path over the engine's lifetime.
    pub total_faults: u64,
    /// Times this path has tripped Open.
    pub trips: u64,
}

/// The `health` section of a schema-v2 report: the engine's
/// circuit-breaker snapshot plus the transitions this call performed.
/// Empty (no paths, no transitions) when parsed from a v1 report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthReport {
    pub paths: Vec<PathHealth>,
    /// Transition strings of this call, e.g.
    /// `"simd_dispatch: closed -> open"`.
    pub transitions: Vec<String>,
}

impl HealthReport {
    /// Look up one path's health by its stable name.
    pub fn path(&self, name: &str) -> Option<&PathHealth> {
        self.paths.iter().find(|p| p.path == name)
    }

    /// True when every known path is Closed (or the section is empty).
    pub fn all_closed(&self) -> bool {
        self.paths.iter().all(|p| p.state == "closed")
    }
}

/// The `dispatch` section of a schema-v3 report: which input-aware
/// route the engine took and what the plan cache / packing-elision
/// heuristic decided for this call. Defaults (`"block"` route, both
/// operands packed, no cache hit) describe exactly what every pre-v3
/// report did, so older reports parse into honest values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchStats {
    /// Route name: `"block"` (the cache-blocked driver),
    /// `"gemv_row"`, `"gemv_col"` or `"small_k"`.
    pub route: String,
    /// Whether A was packed into panels (`false` = elided, streamed
    /// from the caller's row-major memory). Always `true` off the block
    /// route only in the trivial sense that no panels exist at all.
    pub packed_a: bool,
    pub packed_b: bool,
    /// Whether this call's plan came from the engine's shape-keyed plan
    /// cache (always `false` on the fast routes, which have no plan).
    pub plan_cache_hit: bool,
    /// Engine-lifetime plan-cache counters at report time.
    pub plan_cache_hits: u64,
    pub plan_cache_misses: u64,
}

impl Default for DispatchStats {
    fn default() -> Self {
        DispatchStats {
            route: "block".to_string(),
            packed_a: true,
            packed_b: true,
            plan_cache_hit: false,
            plan_cache_hits: 0,
            plan_cache_misses: 0,
        }
    }
}

/// One bucket of the dispatched kernel-shape histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileCount {
    pub mr: usize,
    pub nr: usize,
    /// Micro-kernel dispatches with this register-tile shape, counted at
    /// the dispatch site — the dynamic fallback records each chunked
    /// sub-tile it actually executes, so oversized (SVE-wide) placements
    /// contribute one bucket entry per sub-dispatch.
    pub count: u64,
}

/// The measured-vs-perfmodel join ([`GemmReport::join_model`]).
///
/// `cycle_ratio = measured_kernel_cycles / projected_kernel_cycles` mixes
/// host counter ticks (numerator) with modelled-chip cycles
/// (denominator), so its absolute value is host-specific — a constant
/// `host_ticks_per_model_cycle`. The model-validation signal is its
/// *flatness across shapes*: a shape whose ratio sags below the sweep's
/// norm is one the model over-predicts (and vice versa), exactly the
/// per-shape achieved-vs-predicted tracking §III-B uses.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModelJoin {
    /// Σ over the tile histogram of `count × projected_cycles(tile, kc)`
    /// (Eqns 4–11 with the plan's pipeline options).
    pub projected_kernel_cycles: f64,
    /// Σ of worker busy cycle ticks.
    pub measured_kernel_cycles: u64,
    /// measured / projected; 0 when either side is unavailable (e.g. the
    /// `telemetry` feature is off).
    pub cycle_ratio: f64,
}

/// Admission-control view of the [`GemmService`](crate::service::GemmService)
/// that owns the traced engine: the schema-v6 `service` report section.
/// Counts are service-lifetime; `queued`/`in_flight` are the live values
/// at report time (a drained service reports both as zero).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceReport {
    /// Configured admission-queue depth.
    pub queue_depth: usize,
    /// Configured global execution-concurrency limit.
    pub max_in_flight: usize,
    /// Requests offered (admitted + every refusal class).
    pub offered: u64,
    /// Requests dispatched to an engine.
    pub admitted: u64,
    /// Requests refused at enqueue (queue full, tenant share, closed).
    pub rejected: u64,
    /// Requests shed because the deadline budget was provably
    /// insufficient.
    pub shed: u64,
    /// Requests whose deadline expired while queued.
    pub expired_in_queue: u64,
    /// `(rejected + shed + expired_in_queue) / offered`; 0 when nothing
    /// was offered.
    pub shed_ratio: f64,
    /// Requests waiting in the queue at report time.
    pub queued: u64,
    /// Requests executing at report time.
    pub in_flight: i64,
    /// Enqueue → dispatch wait of admitted requests, nanoseconds.
    pub queue_wait_ns: HistogramSnapshot,
}

impl ServiceReport {
    /// Serialize to the schema-v6 `service` report section.
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("queue_depth".into(), Json::Num(self.queue_depth as f64)),
            ("max_in_flight".into(), Json::Num(self.max_in_flight as f64)),
            ("offered".into(), Json::Num(self.offered as f64)),
            ("admitted".into(), Json::Num(self.admitted as f64)),
            ("rejected".into(), Json::Num(self.rejected as f64)),
            ("shed".into(), Json::Num(self.shed as f64)),
            ("expired_in_queue".into(), Json::Num(self.expired_in_queue as f64)),
            ("shed_ratio".into(), Json::Num(self.shed_ratio)),
            ("queued".into(), Json::Num(self.queued as f64)),
            ("in_flight".into(), Json::Num(self.in_flight as f64)),
            ("queue_wait_ns".into(), self.queue_wait_ns.to_json_value()),
        ])
    }

    /// Parse what [`Self::to_json_value`] wrote; absent fields default
    /// to zero (lenient, like every other report section).
    pub fn from_json_value(v: &Json) -> ServiceReport {
        let num = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
        ServiceReport {
            queue_depth: num("queue_depth") as usize,
            max_in_flight: num("max_in_flight") as usize,
            offered: num("offered"),
            admitted: num("admitted"),
            rejected: num("rejected"),
            shed: num("shed"),
            expired_in_queue: num("expired_in_queue"),
            shed_ratio: v.get("shed_ratio").and_then(Json::as_f64).unwrap_or(0.0),
            queued: num("queued"),
            in_flight: v.get("in_flight").and_then(Json::as_f64).unwrap_or(0.0) as i64,
            queue_wait_ns: v
                .get("queue_wait_ns")
                .map(HistogramSnapshot::from_json_value)
                .unwrap_or_default(),
        }
    }
}

/// Output-integrity view of the traced call: the schema-v7 `integrity`
/// report section. The counters are engine-lifetime totals from the
/// [`MetricsRegistry`](crate::telemetry::MetricsRegistry) at report
/// time; `policy`/`sample_rate`/`verified` describe this call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntegrityReport {
    /// Resolved [`VerifyPolicy`](crate::verify::VerifyPolicy) name for
    /// this call (`off` / `sample` / `always`).
    pub policy: String,
    /// Sampling cadence: 0 for `Off`, 1 for `Always`, the 1-in-N rate
    /// for `Sample`.
    pub sample_rate: u64,
    /// Whether this call's output actually went through the Freivalds
    /// check (sampled in, forced by a breaker probe, or `Always`).
    pub verified: bool,
    /// Verifications run, engine lifetime.
    pub verify_runs_total: u64,
    /// Verifications that passed.
    pub verify_passes_total: u64,
    /// Verifications that flagged an integrity violation.
    pub verify_failures_total: u64,
    /// Resilient-ladder verified re-executions taken after a violation.
    pub verify_reexecutions_total: u64,
    /// Wall time of the verification pass, nanoseconds.
    pub verify_ns: HistogramSnapshot,
}

impl IntegrityReport {
    /// Serialize to the schema-v7 `integrity` report section.
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("policy".into(), Json::Str(self.policy.clone())),
            ("sample_rate".into(), Json::Num(self.sample_rate as f64)),
            ("verified".into(), Json::Bool(self.verified)),
            ("verify_runs_total".into(), Json::Num(self.verify_runs_total as f64)),
            ("verify_passes_total".into(), Json::Num(self.verify_passes_total as f64)),
            ("verify_failures_total".into(), Json::Num(self.verify_failures_total as f64)),
            ("verify_reexecutions_total".into(), Json::Num(self.verify_reexecutions_total as f64)),
            ("verify_ns".into(), self.verify_ns.to_json_value()),
        ])
    }

    /// Parse what [`Self::to_json_value`] wrote; absent fields default
    /// to zero (lenient, like every other report section).
    pub fn from_json_value(v: &Json) -> IntegrityReport {
        let num = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
        IntegrityReport {
            policy: v.get("policy").and_then(Json::as_str).unwrap_or("off").to_string(),
            sample_rate: num("sample_rate"),
            verified: v.get("verified").and_then(Json::as_bool).unwrap_or(false),
            verify_runs_total: num("verify_runs_total"),
            verify_passes_total: num("verify_passes_total"),
            verify_failures_total: num("verify_failures_total"),
            verify_reexecutions_total: num("verify_reexecutions_total"),
            verify_ns: v
                .get("verify_ns")
                .map(HistogramSnapshot::from_json_value)
                .unwrap_or_default(),
        }
    }
}

/// The per-GEMM telemetry report: what one traced call observed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GemmReport {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    /// Worker threads the driver actually used (after clamping to the
    /// block count).
    pub threads: usize,
    /// Cache blocking of the executed plan.
    pub mc: usize,
    pub nc: usize,
    pub kc: usize,
    /// End-to-end duration of the traced call.
    pub wall: PhaseTimes,
    pub phases: PhaseProfile,
    pub packs: PackStats,
    pub thread_profiles: Vec<ThreadProfile>,
    /// Dispatched kernel-shape histogram, sorted by `(mr, nr)`.
    pub tiles: Vec<TileCount>,
    /// Degradation paths taken during the run.
    pub fallbacks: FallbackStats,
    /// Circuit-breaker snapshot and this call's transitions (schema v2;
    /// empty when parsed from a v1 report).
    pub health: HealthReport,
    /// Input-aware dispatch decisions (schema v3; defaults — block
    /// route, both operands packed — when parsed from older reports).
    pub dispatch: DispatchStats,
    /// Worker-pool runtime counters at report time (schema v4; all-zero
    /// defaults when parsed from older reports).
    pub pool: PoolStats,
    /// The owning engine's lifetime metrics snapshot at report time
    /// (schema v5; `None` when parsed from older reports or produced by
    /// the engine-less plan-level drivers).
    pub metrics: Option<MetricsSnapshot>,
    /// Admission-control snapshot of the owning service (schema v6;
    /// `None` when parsed from older reports or when the engine is not
    /// fronted by a [`GemmService`](crate::service::GemmService)).
    pub service: Option<ServiceReport>,
    /// Output-integrity snapshot (schema v7; `None` when parsed from
    /// older reports or produced by the engine-less plan-level drivers).
    pub integrity: Option<IntegrityReport>,
    pub model: Option<ModelJoin>,
}

impl GemmReport {
    /// FLOPs of the traced problem (`2·M·N·K`).
    pub fn flops(&self) -> u64 {
        2 * self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Achieved GFLOP/s over the call's wall time (0 without timings).
    pub fn gflops(&self) -> f64 {
        if self.wall.wall_ns == 0 {
            return 0.0;
        }
        self.flops() as f64 / self.wall.wall_ns as f64
    }

    /// Total micro-kernel dispatches across the histogram.
    pub fn total_tiles(&self) -> u64 {
        self.tiles.iter().map(|t| t.count).sum()
    }

    /// Join the report against the performance model: projected cycles
    /// for every histogram tile at this report's `k_c`, the measured
    /// worker busy cycles, and their ratio (see [`ModelJoin`]).
    pub fn join_model(&mut self, table: &mut ProjectionTable<'_>) {
        let projected: f64 = self
            .tiles
            .iter()
            .map(|t| t.count as f64 * table.cycles(MicroTile::new(t.mr, t.nr), self.kc))
            .sum();
        let measured: u64 = self.thread_profiles.iter().map(|p| p.busy.cycles).sum();
        let cycle_ratio =
            if projected > 0.0 && measured > 0 { measured as f64 / projected } else { 0.0 };
        self.model = Some(ModelJoin {
            projected_kernel_cycles: projected,
            measured_kernel_cycles: measured,
            cycle_ratio,
        });
    }

    /// The report as a JSON value (schema [`SCHEMA_VERSION`]).
    pub fn to_json_value(&self) -> Json {
        let times = |t: PhaseTimes| {
            Json::Obj(vec![
                ("wall_ns".into(), Json::Num(t.wall_ns as f64)),
                ("cycles".into(), Json::Num(t.cycles as f64)),
            ])
        };
        let mut fields = vec![
            ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
            ("m".into(), Json::Num(self.m as f64)),
            ("n".into(), Json::Num(self.n as f64)),
            ("k".into(), Json::Num(self.k as f64)),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("mc".into(), Json::Num(self.mc as f64)),
            ("nc".into(), Json::Num(self.nc as f64)),
            ("kc".into(), Json::Num(self.kc as f64)),
            ("wall".into(), times(self.wall)),
            ("gflops".into(), Json::Num(self.gflops())),
            (
                "phases".into(),
                Json::Obj(vec![
                    ("pack_a".into(), times(self.phases.pack_a)),
                    ("pack_b".into(), times(self.phases.pack_b)),
                    ("kernel".into(), times(self.phases.kernel)),
                    ("drain".into(), times(self.phases.drain)),
                ]),
            ),
            (
                "packs".into(),
                Json::Obj(vec![
                    ("a_packs".into(), Json::Num(self.packs.a_packs as f64)),
                    ("b_packs".into(), Json::Num(self.packs.b_packs as f64)),
                    ("a_bytes".into(), Json::Num(self.packs.a_bytes as f64)),
                    ("b_bytes".into(), Json::Num(self.packs.b_bytes as f64)),
                ]),
            ),
            (
                "thread_profiles".into(),
                Json::Arr(
                    self.thread_profiles
                        .iter()
                        .map(|p| {
                            Json::Obj(vec![
                                ("thread".into(), Json::Num(p.thread as f64)),
                                ("blocks".into(), Json::Num(p.blocks as f64)),
                                ("busy".into(), times(p.busy)),
                                ("drain".into(), times(p.drain)),
                                (
                                    "busy_fraction".into(),
                                    Json::Num(p.busy_fraction(self.phases.kernel)),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "tiles".into(),
                Json::Arr(
                    self.tiles
                        .iter()
                        .map(|t| {
                            Json::Obj(vec![
                                ("mr".into(), Json::Num(t.mr as f64)),
                                ("nr".into(), Json::Num(t.nr as f64)),
                                ("count".into(), Json::Num(t.count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        fields.push((
            "fallbacks".into(),
            Json::Obj(vec![
                ("pool_packs".into(), Json::Num(self.fallbacks.pool_packs as f64)),
                ("scalar_kernels".into(), Json::Num(self.fallbacks.scalar_kernels as f64)),
                ("breaker_reroutes".into(), Json::Num(self.fallbacks.breaker_reroutes as f64)),
                ("inline_drains".into(), Json::Num(self.fallbacks.inline_drains as f64)),
            ]),
        ));
        fields.push((
            "health".into(),
            Json::Obj(vec![
                (
                    "paths".into(),
                    Json::Arr(
                        self.health
                            .paths
                            .iter()
                            .map(|p| {
                                Json::Obj(vec![
                                    ("path".into(), Json::Str(p.path.clone())),
                                    ("state".into(), Json::Str(p.state.clone())),
                                    (
                                        "consecutive_faults".into(),
                                        Json::Num(p.consecutive_faults as f64),
                                    ),
                                    ("total_faults".into(), Json::Num(p.total_faults as f64)),
                                    ("trips".into(), Json::Num(p.trips as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "transitions".into(),
                    Json::Arr(
                        self.health.transitions.iter().map(|t| Json::Str(t.clone())).collect(),
                    ),
                ),
            ]),
        ));
        fields.push((
            "dispatch".into(),
            Json::Obj(vec![
                ("route".into(), Json::Str(self.dispatch.route.clone())),
                ("packed_a".into(), Json::Bool(self.dispatch.packed_a)),
                ("packed_b".into(), Json::Bool(self.dispatch.packed_b)),
                ("plan_cache_hit".into(), Json::Bool(self.dispatch.plan_cache_hit)),
                ("plan_cache_hits".into(), Json::Num(self.dispatch.plan_cache_hits as f64)),
                ("plan_cache_misses".into(), Json::Num(self.dispatch.plan_cache_misses as f64)),
            ]),
        ));
        fields.push((
            "pool".into(),
            Json::Obj(vec![
                ("workers".into(), Json::Num(self.pool.workers as f64)),
                ("alive_workers".into(), Json::Num(self.pool.alive_workers as f64)),
                ("submissions".into(), Json::Num(self.pool.submissions as f64)),
                ("jobs_completed".into(), Json::Num(self.pool.jobs_completed as f64)),
                ("wake_count".into(), Json::Num(self.pool.wake_count as f64)),
                ("wake_ns_total".into(), Json::Num(self.pool.wake_ns_total as f64)),
                ("busy_ns_total".into(), Json::Num(self.pool.busy_ns_total as f64)),
                ("park_ns_total".into(), Json::Num(self.pool.park_ns_total as f64)),
                ("threads_clamped".into(), Json::Num(self.pool.threads_clamped as f64)),
            ]),
        ));
        fields.push((
            "metrics".into(),
            match &self.metrics {
                None => Json::Null,
                Some(m) => m.to_json_value(),
            },
        ));
        fields.push((
            "service".into(),
            match &self.service {
                None => Json::Null,
                Some(s) => s.to_json_value(),
            },
        ));
        fields.push((
            "integrity".into(),
            match &self.integrity {
                None => Json::Null,
                Some(i) => i.to_json_value(),
            },
        ));
        fields.push((
            "model".into(),
            match &self.model {
                None => Json::Null,
                Some(mj) => Json::Obj(vec![
                    ("projected_kernel_cycles".into(), Json::Num(mj.projected_kernel_cycles)),
                    ("measured_kernel_cycles".into(), Json::Num(mj.measured_kernel_cycles as f64)),
                    ("cycle_ratio".into(), Json::Num(mj.cycle_ratio)),
                ]),
            },
        ));
        Json::Obj(fields)
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string()
    }

    /// Parse a serialized report, enforcing the schema-version guard.
    pub fn from_json(text: &str) -> Result<GemmReport, JsonError> {
        Self::from_json_value(&Json::parse(text)?)
    }

    /// [`GemmReport::from_json`] over an already-parsed value.
    pub fn from_json_value(v: &Json) -> Result<GemmReport, JsonError> {
        let field = |key: &str| {
            v.get(key).ok_or_else(|| JsonError { pos: 0, msg: format!("missing field '{key}'") })
        };
        let version = field("schema_version")?
            .as_u64()
            .ok_or_else(|| JsonError { pos: 0, msg: "schema_version must be an integer".into() })?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(JsonError {
                pos: 0,
                msg: format!(
                    "unsupported schema_version {version} \
                     (this build reads {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
                ),
            });
        }
        let usize_field = |key: &str| {
            field(key)?.as_usize().ok_or_else(|| JsonError {
                pos: 0,
                msg: format!("field '{key}' must be a non-negative integer"),
            })
        };
        let times = |v: &Json, ctx: &str| -> Result<PhaseTimes, JsonError> {
            let part = |key: &str| {
                v.get(key).and_then(Json::as_u64).ok_or_else(|| JsonError {
                    pos: 0,
                    msg: format!("{ctx}.{key} must be an integer"),
                })
            };
            Ok(PhaseTimes { wall_ns: part("wall_ns")?, cycles: part("cycles")? })
        };

        let phases_v = field("phases")?;
        let phase = |key: &str| -> Result<PhaseTimes, JsonError> {
            times(
                phases_v
                    .get(key)
                    .ok_or_else(|| JsonError { pos: 0, msg: format!("missing phase '{key}'") })?,
                key,
            )
        };
        let packs_v = field("packs")?;
        let pack = |key: &str| {
            packs_v
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| JsonError { pos: 0, msg: format!("packs.{key} must be an integer") })
        };

        let mut thread_profiles = Vec::new();
        for p in field("thread_profiles")?
            .as_arr()
            .ok_or_else(|| JsonError { pos: 0, msg: "thread_profiles must be an array".into() })?
        {
            let num = |key: &str| {
                p.get(key).and_then(Json::as_u64).ok_or_else(|| JsonError {
                    pos: 0,
                    msg: format!("thread_profiles.{key} invalid"),
                })
            };
            thread_profiles.push(ThreadProfile {
                thread: num("thread")? as usize,
                blocks: num("blocks")?,
                busy: times(
                    p.get("busy")
                        .ok_or_else(|| JsonError { pos: 0, msg: "missing busy".into() })?,
                    "busy",
                )?,
                drain: times(
                    p.get("drain")
                        .ok_or_else(|| JsonError { pos: 0, msg: "missing drain".into() })?,
                    "drain",
                )?,
            });
        }

        let mut tiles = Vec::new();
        for t in field("tiles")?
            .as_arr()
            .ok_or_else(|| JsonError { pos: 0, msg: "tiles must be an array".into() })?
        {
            let num = |key: &str| {
                t.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| JsonError { pos: 0, msg: format!("tiles.{key} invalid") })
            };
            tiles.push(TileCount {
                mr: num("mr")? as usize,
                nr: num("nr")? as usize,
                count: num("count")?,
            });
        }

        // Added within schema v1: reports serialized before the
        // degradation counters existed simply have none, so a missing
        // object parses as all-zero instead of failing.
        let fallbacks = match v.get("fallbacks") {
            None | Some(Json::Null) => FallbackStats::default(),
            Some(fb) => FallbackStats {
                pool_packs: fb.get("pool_packs").and_then(Json::as_u64).unwrap_or(0),
                scalar_kernels: fb.get("scalar_kernels").and_then(Json::as_u64).unwrap_or(0),
                // Schema v2; absent in v1 reports.
                breaker_reroutes: fb.get("breaker_reroutes").and_then(Json::as_u64).unwrap_or(0),
                // Schema v4; absent in v1–v3 reports.
                inline_drains: fb.get("inline_drains").and_then(Json::as_u64).unwrap_or(0),
            },
        };

        // Schema v2. A v1 report has no `health` section; it parses as
        // empty so downstream joins see "no breaker data" rather than an
        // error. Within the section, unknown/missing numeric fields
        // default to zero the same way `fallbacks` always has.
        let health = match v.get("health") {
            None | Some(Json::Null) => HealthReport::default(),
            Some(h) => HealthReport {
                paths: h
                    .get("paths")
                    .and_then(Json::as_arr)
                    .map(|paths| {
                        paths
                            .iter()
                            .map(|p| PathHealth {
                                path: p
                                    .get("path")
                                    .and_then(Json::as_str)
                                    .unwrap_or_default()
                                    .to_string(),
                                state: p
                                    .get("state")
                                    .and_then(Json::as_str)
                                    .unwrap_or_default()
                                    .to_string(),
                                consecutive_faults: p
                                    .get("consecutive_faults")
                                    .and_then(Json::as_u64)
                                    .unwrap_or(0),
                                total_faults: p
                                    .get("total_faults")
                                    .and_then(Json::as_u64)
                                    .unwrap_or(0),
                                trips: p.get("trips").and_then(Json::as_u64).unwrap_or(0),
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
                transitions: h
                    .get("transitions")
                    .and_then(Json::as_arr)
                    .map(|ts| ts.iter().filter_map(|t| t.as_str().map(str::to_string)).collect())
                    .unwrap_or_default(),
            },
        };

        // Schema v3. Pre-v3 reports have no `dispatch` section; the
        // defaults (block route, both operands packed) are what those
        // builds actually did, so the parse is lenient *and* honest.
        let dispatch = match v.get("dispatch") {
            None | Some(Json::Null) => DispatchStats::default(),
            Some(d) => {
                let defaults = DispatchStats::default();
                DispatchStats {
                    route: d
                        .get("route")
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .unwrap_or(defaults.route),
                    packed_a: d.get("packed_a").and_then(Json::as_bool).unwrap_or(true),
                    packed_b: d.get("packed_b").and_then(Json::as_bool).unwrap_or(true),
                    plan_cache_hit: d
                        .get("plan_cache_hit")
                        .and_then(Json::as_bool)
                        .unwrap_or(false),
                    plan_cache_hits: d.get("plan_cache_hits").and_then(Json::as_u64).unwrap_or(0),
                    plan_cache_misses: d
                        .get("plan_cache_misses")
                        .and_then(Json::as_u64)
                        .unwrap_or(0),
                }
            }
        };

        // Schema v4. Pre-v4 reports have no `pool` section: no pool
        // existed, so all-zero counters are the honest default.
        let pool = match v.get("pool") {
            None | Some(Json::Null) => PoolStats::default(),
            Some(p) => {
                let num = |key: &str| p.get(key).and_then(Json::as_u64).unwrap_or(0);
                PoolStats {
                    workers: num("workers"),
                    alive_workers: num("alive_workers"),
                    submissions: num("submissions"),
                    jobs_completed: num("jobs_completed"),
                    wake_count: num("wake_count"),
                    wake_ns_total: num("wake_ns_total"),
                    busy_ns_total: num("busy_ns_total"),
                    park_ns_total: num("park_ns_total"),
                    threads_clamped: num("threads_clamped"),
                }
            }
        };

        // Schema v5. Pre-v5 reports carried no engine-lifetime metrics;
        // `None` says "no snapshot" rather than inventing zeros.
        let metrics = match v.get("metrics") {
            None | Some(Json::Null) => None,
            Some(m) => Some(MetricsSnapshot::from_json_value(m)),
        };

        // Schema v6. Pre-v6 reports predate the service layer entirely;
        // `None` says "no admission control" rather than inventing zeros.
        let service = match v.get("service") {
            None | Some(Json::Null) => None,
            Some(s) => Some(ServiceReport::from_json_value(s)),
        };

        // Schema v7. Pre-v7 reports predate the verification layer;
        // `None` says "no integrity data" rather than inventing zeros.
        let integrity = match v.get("integrity") {
            None | Some(Json::Null) => None,
            Some(i) => Some(IntegrityReport::from_json_value(i)),
        };

        let model = match field("model")? {
            Json::Null => None,
            mj => Some(ModelJoin {
                projected_kernel_cycles: mj
                    .get("projected_kernel_cycles")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| JsonError {
                    pos: 0,
                    msg: "model.projected_kernel_cycles invalid".into(),
                })?,
                measured_kernel_cycles: mj
                    .get("measured_kernel_cycles")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| JsonError {
                        pos: 0,
                        msg: "model.measured_kernel_cycles invalid".into(),
                    })?,
                cycle_ratio: mj
                    .get("cycle_ratio")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| JsonError { pos: 0, msg: "model.cycle_ratio invalid".into() })?,
            }),
        };

        Ok(GemmReport {
            m: usize_field("m")?,
            n: usize_field("n")?,
            k: usize_field("k")?,
            threads: usize_field("threads")?,
            mc: usize_field("mc")?,
            nc: usize_field("nc")?,
            kc: usize_field("kc")?,
            wall: times(field("wall")?, "wall")?,
            phases: PhaseProfile {
                pack_a: phase("pack_a")?,
                pack_b: phase("pack_b")?,
                kernel: phase("kernel")?,
                drain: phase("drain")?,
            },
            packs: PackStats {
                a_packs: pack("a_packs")?,
                b_packs: pack("b_packs")?,
                a_bytes: pack("a_bytes")?,
                b_bytes: pack("b_bytes")?,
            },
            thread_profiles,
            tiles,
            fallbacks,
            health,
            dispatch,
            pool,
            metrics,
            service,
            integrity,
            model,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> GemmReport {
        GemmReport {
            m: 64,
            n: 196,
            k: 64,
            threads: 4,
            mc: 32,
            nc: 49,
            kc: 64,
            wall: PhaseTimes { wall_ns: 123_456, cycles: 456_789 },
            phases: PhaseProfile {
                pack_a: PhaseTimes { wall_ns: 1000, cycles: 3000 },
                pack_b: PhaseTimes { wall_ns: 2000, cycles: 6000 },
                kernel: PhaseTimes { wall_ns: 100_000, cycles: 400_000 },
                drain: PhaseTimes { wall_ns: 5000, cycles: 15_000 },
            },
            packs: PackStats { a_packs: 2, b_packs: 4, a_bytes: 16_384, b_bytes: 100_352 },
            thread_profiles: vec![
                ThreadProfile {
                    thread: 0,
                    blocks: 5,
                    busy: PhaseTimes { wall_ns: 90_000, cycles: 350_000 },
                    drain: PhaseTimes { wall_ns: 1000, cycles: 4000 },
                },
                ThreadProfile {
                    thread: 1,
                    blocks: 3,
                    busy: PhaseTimes { wall_ns: 70_000, cycles: 280_000 },
                    drain: PhaseTimes { wall_ns: 21_000, cycles: 84_000 },
                },
            ],
            tiles: vec![
                TileCount { mr: 5, nr: 16, count: 96 },
                TileCount { mr: 8, nr: 4, count: 12 },
            ],
            fallbacks: FallbackStats {
                pool_packs: 1,
                scalar_kernels: 0,
                breaker_reroutes: 2,
                inline_drains: 0,
            },
            health: HealthReport {
                paths: vec![
                    PathHealth {
                        path: "simd_dispatch".into(),
                        state: "half_open".into(),
                        consecutive_faults: 0,
                        total_faults: 3,
                        trips: 1,
                    },
                    PathHealth {
                        path: "pool_alloc".into(),
                        state: "closed".into(),
                        consecutive_faults: 1,
                        total_faults: 1,
                        trips: 0,
                    },
                ],
                transitions: vec!["simd_dispatch: open -> half_open".into()],
            },
            dispatch: DispatchStats {
                route: "block".into(),
                packed_a: false,
                packed_b: true,
                plan_cache_hit: true,
                plan_cache_hits: 7,
                plan_cache_misses: 3,
            },
            pool: PoolStats {
                workers: 3,
                alive_workers: 3,
                submissions: 42,
                jobs_completed: 42,
                wake_count: 120,
                wake_ns_total: 84_000,
                busy_ns_total: 9_000_000,
                park_ns_total: 2_000_000,
                threads_clamped: 1,
            },
            metrics: None,
            service: None,
            integrity: None,
            model: Some(ModelJoin {
                projected_kernel_cycles: 1.25e6,
                measured_kernel_cycles: 630_000,
                cycle_ratio: 0.504,
            }),
        }
    }

    /// The exact serialization of an all-zero `pool` section, as the v3
    /// and older fixtures need to strip it.
    const DEFAULT_POOL_JSON: &str = "\"pool\":{\"workers\":0,\"alive_workers\":0,\
         \"submissions\":0,\"jobs_completed\":0,\"wake_count\":0,\"wake_ns_total\":0,\
         \"busy_ns_total\":0,\"park_ns_total\":0,\"threads_clamped\":0},";

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample_report();
        let text = r.to_json();
        let back = GemmReport::from_json(&text).expect("round trip");
        assert_eq!(back, r);
    }

    #[test]
    fn round_trip_without_model_join() {
        let mut r = sample_report();
        r.model = None;
        assert_eq!(GemmReport::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn schema_version_guard_rejects_other_versions() {
        let text = sample_report()
            .to_json()
            .replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":999");
        let err = GemmReport::from_json(&text).unwrap_err();
        assert!(err.msg.contains("unsupported schema_version 999"), "{err}");
    }

    #[test]
    fn missing_fields_are_rejected() {
        let text = sample_report().to_json().replace("\"packs\"", "\"packs_renamed\"");
        assert!(GemmReport::from_json(&text).is_err());
    }

    #[test]
    fn missing_fallbacks_parse_as_zero() {
        // Reports serialized before the degradation counters existed
        // have no `fallbacks` object and must keep parsing.
        let text = sample_report().to_json().replace(
            "\"fallbacks\":{\"pool_packs\":1,\"scalar_kernels\":0,\"breaker_reroutes\":2,\
             \"inline_drains\":0},",
            "",
        );
        assert!(!text.contains("\"fallbacks\""), "fixture must not carry a fallbacks section");
        let back = GemmReport::from_json(&text).expect("report without fallbacks must parse");
        assert_eq!(back.fallbacks, FallbackStats::default());
        assert!(!back.fallbacks.any());
        let mut want = sample_report();
        want.fallbacks = FallbackStats::default();
        assert_eq!(back, want);
    }

    #[test]
    fn v1_report_parses_with_empty_health() {
        // A schema-v1 report: version 1, no `health` section, and a
        // fallbacks object without `breaker_reroutes`.
        let mut r = sample_report();
        r.health = HealthReport::default();
        r.fallbacks.breaker_reroutes = 0;
        r.pool = PoolStats::default();
        let text = r
            .to_json()
            .replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":1")
            .replace(",\"breaker_reroutes\":0,\"inline_drains\":0", "")
            .replace("\"health\":{\"paths\":[],\"transitions\":[]},", "")
            .replace(DEFAULT_POOL_JSON, "");
        assert!(!text.contains("health"), "v1 fixture must not carry a health section");
        let back = GemmReport::from_json(&text).expect("v1 report must parse leniently");
        assert_eq!(back.health, HealthReport::default());
        assert!(back.health.all_closed(), "empty health section counts as all-closed");
        assert_eq!(back, r);
    }

    #[test]
    fn v2_report_parses_with_default_dispatch() {
        // A schema-v2 report: version 2, no `dispatch` section. It must
        // parse with the pre-v3 behaviour spelled out: block route,
        // both operands packed, no plan-cache data.
        let mut r = sample_report();
        r.dispatch = DispatchStats::default();
        r.pool = PoolStats::default();
        let text = r
            .to_json()
            .replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":2")
            .replace(
                "\"dispatch\":{\"route\":\"block\",\"packed_a\":true,\"packed_b\":true,\
                 \"plan_cache_hit\":false,\"plan_cache_hits\":0,\"plan_cache_misses\":0},",
                "",
            )
            .replace(DEFAULT_POOL_JSON, "");
        // Note: "simd_dispatch" in the health section also contains the
        // substring, so check for the key specifically.
        assert!(!text.contains("\"dispatch\""), "v2 fixture must not carry a dispatch section");
        let back = GemmReport::from_json(&text).expect("v2 report must parse leniently");
        assert_eq!(back.dispatch, DispatchStats::default());
        assert!(back.dispatch.packed_a && back.dispatch.packed_b);
        assert_eq!(back.dispatch.route, "block");
        assert_eq!(back, r);
    }

    #[test]
    fn v3_report_parses_with_default_pool() {
        // A schema-v3 report: version 3, no `pool` section and no
        // `fallbacks.inline_drains` counter — no worker pool existed, so
        // all-zero counters are the honest parse.
        let mut r = sample_report();
        r.pool = PoolStats::default();
        let text = r
            .to_json()
            .replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":3")
            .replace(",\"inline_drains\":0", "")
            .replace(DEFAULT_POOL_JSON, "");
        // "pool_packs"/"pool_alloc" also contain the substring, so check
        // for the section key specifically.
        assert!(!text.contains("\"pool\":"), "v3 fixture must not carry a pool section");
        assert!(!text.contains("inline_drains"), "v3 fixture must not carry inline_drains");
        let back = GemmReport::from_json(&text).expect("v3 report must parse leniently");
        assert_eq!(back.pool, PoolStats::default());
        assert_eq!(back.fallbacks.inline_drains, 0);
        assert_eq!(back, r);
    }

    #[test]
    fn v4_report_parses_with_default_metrics() {
        // A schema-v4 report: version 4, no `metrics` section — no
        // engine-lifetime registry existed, so `None` is the honest
        // parse (not invented zeros).
        let r = sample_report();
        let text = r
            .to_json()
            .replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":4")
            .replace("\"metrics\":null,", "");
        assert!(!text.contains("\"metrics\""), "v4 fixture must not carry a metrics section");
        let back = GemmReport::from_json(&text).expect("v4 report must parse leniently");
        assert_eq!(back.metrics, None);
        assert_eq!(back, r);
    }

    #[test]
    fn v5_report_parses_with_no_service_section() {
        // A schema-v5 report: version 5, no `service` section — no
        // admission layer existed, so `None` is the honest parse.
        let r = sample_report();
        let text = r
            .to_json()
            .replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":5")
            .replace("\"service\":null,", "");
        assert!(!text.contains("\"service\""), "v5 fixture must not carry a service section");
        let back = GemmReport::from_json(&text).expect("v5 report must parse leniently");
        assert_eq!(back.service, None);
        assert_eq!(back, r);
    }

    #[test]
    fn v6_report_parses_with_no_integrity_section() {
        // A schema-v6 report: version 6, no `integrity` section — no
        // verification layer existed, so `None` is the honest parse.
        let r = sample_report();
        let text = r
            .to_json()
            .replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":6")
            .replace("\"integrity\":null,", "");
        assert!(!text.contains("\"integrity\""), "v6 fixture must not carry an integrity section");
        let back = GemmReport::from_json(&text).expect("v6 report must parse leniently");
        assert_eq!(back.integrity, None);
        assert_eq!(back, r);
    }

    /// Every historical version fixture (v1–v6, built by stripping the
    /// sections that version lacked) survives a parse → serialize →
    /// parse round trip under the current schema.
    #[test]
    fn v1_through_v6_fixtures_round_trip_through_current_schema() {
        let full = sample_report().to_json();
        let strip_integrity = full.replace("\"integrity\":null,", "");
        let strip_service = strip_integrity.replace("\"service\":null,", "");
        let strip_metrics = strip_service.replace("\"metrics\":null,", "");
        let strip_pool = strip_metrics
            .replace(DEFAULT_POOL_JSON, "")
            .replace(
                "\"pool\":{\"workers\":3,\"alive_workers\":3,\"submissions\":42,\
                 \"jobs_completed\":42,\"wake_count\":120,\"wake_ns_total\":84000,\
                 \"busy_ns_total\":9000000,\"park_ns_total\":2000000,\"threads_clamped\":1},",
                "",
            )
            .replace(",\"inline_drains\":0", "");
        let strip_dispatch = strip_pool.replace(
            "\"dispatch\":{\"route\":\"block\",\"packed_a\":false,\"packed_b\":true,\
             \"plan_cache_hit\":true,\"plan_cache_hits\":7,\"plan_cache_misses\":3},",
            "",
        );
        let strip_health = strip_dispatch
            .replace(",\"breaker_reroutes\":2", "")
            .replace(&regex_free_health(&full), "");
        let fixtures: [(u64, &str); 6] = [
            (1, &strip_health),
            (2, &strip_dispatch),
            (3, &strip_pool),
            (4, &strip_metrics),
            (5, &strip_service),
            (6, &strip_integrity),
        ];
        for (version, fixture) in fixtures {
            let text = fixture.replace(
                &format!("\"schema_version\":{SCHEMA_VERSION}"),
                &format!("\"schema_version\":{version}"),
            );
            let once = GemmReport::from_json(&text)
                .unwrap_or_else(|e| panic!("v{version} fixture must parse: {e}"));
            let twice = GemmReport::from_json(&once.to_json())
                .unwrap_or_else(|e| panic!("v{version} reserialization must parse: {e}"));
            assert_eq!(once, twice, "v{version} fixture did not round-trip");
        }
    }

    /// The serialized `health` section of [`sample_report`], extracted
    /// from the full serialization so the v1 fixture can strip it
    /// without hand-maintaining the string.
    fn regex_free_health(full: &str) -> String {
        let start = full.find("\"health\":").expect("health section present");
        let end = full[start..].find(",\"dispatch\"").expect("dispatch follows health") + start + 1;
        full[start..end].to_string()
    }

    #[test]
    fn service_section_round_trips() {
        use crate::telemetry::metrics::Histogram;
        let wait = Histogram::new();
        for v in [1_000u64, 25_000, 25_000, 4_000_000] {
            wait.record(v, 0);
        }
        let mut r = sample_report();
        r.service = Some(ServiceReport {
            queue_depth: 64,
            max_in_flight: 4,
            offered: 1000,
            admitted: 900,
            rejected: 60,
            shed: 30,
            expired_in_queue: 10,
            shed_ratio: 0.1,
            queued: 0,
            in_flight: 0,
            queue_wait_ns: wait.snapshot(),
        });
        let text = r.to_json();
        assert!(text.contains("\"service\":{"), "{text}");
        assert!(text.contains("\"shed_ratio\":0.1"), "{text}");
        let back = GemmReport::from_json(&text).expect("round trip");
        assert_eq!(back.service, r.service);
        assert_eq!(back, r);
        let s = back.service.expect("service section survives");
        assert_eq!(s.queue_wait_ns.count, 4);
    }

    #[test]
    fn integrity_section_round_trips() {
        use crate::telemetry::metrics::Histogram;
        let ns = Histogram::new();
        for v in [2_000u64, 9_000, 9_000] {
            ns.record(v, 0);
        }
        let mut r = sample_report();
        r.integrity = Some(IntegrityReport {
            policy: "sample".to_string(),
            sample_rate: 16,
            verified: true,
            verify_runs_total: 40,
            verify_passes_total: 38,
            verify_failures_total: 2,
            verify_reexecutions_total: 1,
            verify_ns: ns.snapshot(),
        });
        let text = r.to_json();
        assert!(text.contains("\"integrity\":{"), "{text}");
        assert!(text.contains("\"verify_failures_total\":2"), "{text}");
        let back = GemmReport::from_json(&text).expect("round trip");
        assert_eq!(back.integrity, r.integrity);
        assert_eq!(back, r);
        let i = back.integrity.expect("integrity section survives");
        assert_eq!(i.verify_ns.count, 3);
    }

    #[test]
    fn metrics_section_round_trips() {
        use crate::telemetry::metrics::{CallOutcome, Counter, MetricsRegistry};
        let reg = MetricsRegistry::new();
        for i in 0..25u64 {
            let t0 = reg.call_begin();
            reg.call_end(t0, 2 * 64 * 64 * (i + 1), CallOutcome::Ok);
            reg.add(Counter::PlanCacheHits, 1);
        }
        reg.add(Counter::BreakerTransitions, 2);
        let mut r = sample_report();
        r.metrics = Some(reg.snapshot());
        let back = GemmReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back.metrics, r.metrics);
        assert_eq!(back, r);
        let snap = back.metrics.as_ref().map(|m| m.counter(Counter::Calls));
        assert_eq!(snap, Some(25));
    }

    #[test]
    fn pool_section_round_trips() {
        let r = sample_report();
        let back = GemmReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back.pool, r.pool);
        assert_eq!(back.pool.submissions, 42);
    }

    #[test]
    fn dispatch_section_round_trips() {
        let mut r = sample_report();
        r.dispatch = DispatchStats {
            route: "gemv_row".into(),
            packed_a: false,
            packed_b: false,
            plan_cache_hit: false,
            plan_cache_hits: 41,
            plan_cache_misses: 2,
        };
        let back = GemmReport::from_json(&r.to_json()).expect("round trip");
        assert_eq!(back.dispatch, r.dispatch);
        assert_eq!(back, r);
    }

    #[test]
    fn health_lookup_helpers() {
        let r = sample_report();
        assert_eq!(r.health.path("simd_dispatch").map(|p| p.trips), Some(1));
        assert!(r.health.path("nonexistent").is_none());
        assert!(!r.health.all_closed());
    }

    #[test]
    fn derived_quantities() {
        let r = sample_report();
        assert_eq!(r.flops(), 2 * 64 * 196 * 64);
        assert_eq!(r.total_tiles(), 108);
        assert!((r.gflops() - r.flops() as f64 / 123_456.0).abs() < 1e-12);
        let f = r.thread_profiles[0].busy_fraction(r.phases.kernel);
        assert!((f - 0.9).abs() < 1e-12);
    }

    #[test]
    fn join_model_computes_ratio_from_histogram() {
        use autogemm_arch::ChipSpec;
        use autogemm_perfmodel::{ModelOpts, ProjectionTable};
        let chip = ChipSpec::graviton2();
        let mut table = ProjectionTable::new(&chip, ModelOpts::default());
        let mut r = sample_report();
        r.join_model(&mut table);
        let mj = r.model.unwrap();
        let want: f64 =
            96.0 * autogemm_perfmodel::projected_cycles(
                MicroTile::new(5, 16),
                64,
                &chip,
                ModelOpts::default(),
            ) + 12.0
                * autogemm_perfmodel::projected_cycles(
                    MicroTile::new(8, 4),
                    64,
                    &chip,
                    ModelOpts::default(),
                );
        assert!((mj.projected_kernel_cycles - want).abs() < 1e-9);
        assert_eq!(mj.measured_kernel_cycles, 630_000);
        assert!((mj.cycle_ratio - 630_000.0 / want).abs() < 1e-12);
    }
}
