//! A minimal JSON value model with a writer and a recursive-descent
//! parser — just enough for the versioned [`GemmReport`] schema.
//!
//! serde in this workspace is an offline stub (see `shims/README.md`), so
//! telemetry artifacts are serialized by hand. Numbers are carried as
//! `f64`; every count a report stores is far below 2^53, so round-trips
//! are exact.
//!
//! [`GemmReport`]: crate::telemetry::GemmReport

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in insertion order (duplicates are not merged).
    Obj(Vec<(String, Json)>),
}

/// Parse/schema error with the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Look up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|x| *x >= 0.0 && x.fract() == 0.0).map(|x| x as u64)
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Append the serialized value to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_num(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Integers print without a fractional part so counts stay greppable.
///
/// JSON has no spelling for non-finite floats, and a `null` where a
/// number is expected fails the schema-guard re-parse (`as_f64` on
/// `Json::Null` is `None`). No report field should ever produce one,
/// but a hostile or buggy producer must not be able to poison an
/// artifact: NaN degrades to 0 and ±inf clamps to ±`f64::MAX`, so the
/// output always re-parses as `Json::Num`.
fn write_num(x: f64, out: &mut String) {
    if x.is_nan() {
        out.push('0');
    } else if x.is_infinite() {
        let _ = write!(out, "{}", if x > 0.0 { f64::MAX } else { f64::MIN });
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact serialization (no insignificant whitespace); `to_string()`
/// comes via this impl.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { pos: self.pos, msg: msg.to_string() }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(&format!("unexpected byte 0x{b:02x}"))),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        // The matched bytes are all ASCII, but a parse error beats a
        // panic if that invariant ever breaks.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError { pos: start, msg: "invalid number bytes".to_string() })?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError { pos: start, msg: format!("invalid number '{text}'") })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by any report
                            // field; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let doc = r#" {"a": 1, "b": [true, null, -2.5, "x\ny"], "c": {"d": 1e3}} "#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_f64(), Some(-2.5));
        assert_eq!(arr[3].as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(1000.0));
    }

    #[test]
    fn round_trips_through_writer() {
        let v = Json::Obj(vec![
            ("n".into(), Json::Num(12345.0)),
            ("f".into(), Json::Num(0.125)),
            ("s".into(), Json::Str("quote \" backslash \\ tab\t".into())),
            ("a".into(), Json::Arr(vec![Json::Num(1.0), Json::Bool(false)])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
        // Integral numbers print without a fraction.
        assert!(text.contains("\"n\":12345"), "{text}");
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in ["{", "[1,]", "{\"a\" 1}", "01a", "\"unterminated", "{} trailing"] {
            assert!(Json::parse(doc).is_err(), "{doc:?} must not parse");
        }
    }

    #[test]
    fn hostile_documents_error_instead_of_panicking() {
        // Inputs a user-provided report string could contain: malformed
        // numbers, truncated escapes, lone surrogates, deep nesting.
        for doc in
            ["1e+", "-", "--1", "{\"a\":\"\\u12\"}", "\"\\u", "{\"a\":1ee3}", "[[[[", "\"\\q\""]
        {
            assert!(Json::parse(doc).is_err(), "{doc:?} must not parse");
        }
        // Lone surrogates degrade to U+FFFD rather than erroring.
        let v = Json::parse("\"\\ud800\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{fffd}"));
        // Non-ASCII passes through untouched.
        let v = Json::parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
    }

    #[test]
    fn non_finite_numbers_serialize_to_reparsable_finite_values() {
        // A hostile or buggy producer can smuggle NaN/inf into a Num;
        // the writer must emit something the schema-guard re-parse
        // still reads back as a number, never `null` or `inf`.
        let v = Json::Obj(vec![
            ("not_a_number".into(), Json::Num(f64::NAN)),
            ("pos".into(), Json::Num(f64::INFINITY)),
            ("neg".into(), Json::Num(f64::NEG_INFINITY)),
            ("deep".into(), Json::Arr(vec![Json::Num(-f64::NAN), Json::Num(f64::MAX * 2.0)])),
        ]);
        let text = v.to_string();
        assert!(!text.contains("null"), "non-finite must not degrade to null: {text}");
        assert!(!text.contains("inf"), "raw inf is not JSON: {text}");
        assert!(!text.contains("NaN"), "raw NaN is not JSON: {text}");
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("not_a_number").unwrap().as_f64(), Some(0.0));
        assert_eq!(back.get("pos").unwrap().as_f64(), Some(f64::MAX));
        assert_eq!(back.get("neg").unwrap().as_f64(), Some(f64::MIN));
        let deep = back.get("deep").unwrap().as_arr().unwrap();
        assert_eq!(deep[0].as_f64(), Some(0.0));
        assert_eq!(deep[1].as_f64(), Some(f64::MAX));
        // And the rewritten document is stable (idempotent round trip).
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
    }
}
