//! Scoped per-call recording: pack counts/bytes and the dispatched
//! kernel-shape histogram.
//!
//! A traced driver creates one [`Session`] per GEMM call and installs a
//! thread-local tally in every thread that does work for it
//! ([`with_session`]). The recording hooks the packing and dispatch paths
//! call ([`record_pack_a`], [`record_pack_b`], [`record_tile`]) write to
//! that tally — plain thread-local counters, no atomics in the hot path —
//! and the tally is merged into the session when the scope ends. A thread
//! with no installed tally (every untraced call, i.e. the default hot
//! path) pays one thread-local check; with the `telemetry` feature off
//! the hooks are empty `#[inline(always)]` functions and even that check
//! disappears.

use crate::telemetry::report::TileCount;

/// Counters one thread accumulates inside a session scope.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    pub a_packs: u64,
    pub b_packs: u64,
    pub a_bytes: u64,
    pub b_bytes: u64,
    /// Histogram of dispatched `(m_r, n_r)` shapes. Kept as a small
    /// linear-searched vec: a plan dispatches a handful of distinct
    /// shapes, so this beats hashing in the hot path.
    pub tiles: Vec<((usize, usize), u64)>,
}

impl SessionStats {
    // Only called from the feature-on scope teardown.
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    fn merge(&mut self, other: &SessionStats) {
        self.a_packs += other.a_packs;
        self.b_packs += other.b_packs;
        self.a_bytes += other.a_bytes;
        self.b_bytes += other.b_bytes;
        for &(shape, count) in &other.tiles {
            match self.tiles.iter_mut().find(|(s, _)| *s == shape) {
                Some((_, c)) => *c += count,
                None => self.tiles.push((shape, count)),
            }
        }
    }

    /// The histogram as sorted [`TileCount`] buckets.
    pub fn tile_counts(&self) -> Vec<TileCount> {
        let mut tiles: Vec<TileCount> =
            self.tiles.iter().map(|&((mr, nr), count)| TileCount { mr, nr, count }).collect();
        tiles.sort_unstable_by_key(|t| (t.mr, t.nr));
        tiles
    }
}

/// One traced GEMM call's shared collector. Threads merge their local
/// tallies into it when their [`with_session`] scope ends (one lock per
/// scope, never in the hot path).
#[derive(Debug, Default)]
pub struct Session {
    stats: parking_lot::Mutex<SessionStats>,
}

impl Session {
    pub fn new() -> Self {
        Session::default()
    }

    /// Drain the merged counters.
    pub fn take(&self) -> SessionStats {
        std::mem::take(&mut self.stats.lock())
    }
}

#[cfg(feature = "telemetry")]
mod imp {
    use super::{Session, SessionStats};
    use std::cell::RefCell;
    use std::sync::Arc;

    struct Tally {
        session: Arc<Session>,
        local: SessionStats,
    }

    thread_local! {
        static TALLY: RefCell<Option<Tally>> = const { RefCell::new(None) };
    }

    /// Run `f` with a tally for `session` installed in this thread,
    /// merging it into the session afterwards. Scopes do not nest: the
    /// traced drivers install exactly one scope per thread per phase.
    ///
    /// The merge runs from a drop guard, so it happens even when `f`
    /// unwinds — required by the worker-panic containment in
    /// `crate::native`, where a caught panic on the caller thread must
    /// not leave a stale tally behind (the next traced call on that
    /// thread would trip the nesting check above).
    pub fn with_session<R>(session: &Arc<Session>, f: impl FnOnce() -> R) -> R {
        struct MergeGuard;
        impl Drop for MergeGuard {
            fn drop(&mut self) {
                TALLY.with(|t| {
                    if let Some(tally) = t.borrow_mut().take() {
                        tally.session.stats.lock().merge(&tally.local);
                    }
                });
            }
        }
        TALLY.with(|t| {
            let prev = t
                .borrow_mut()
                .replace(Tally { session: session.clone(), local: SessionStats::default() });
            debug_assert!(prev.is_none(), "telemetry session scopes must not nest");
        });
        let _guard = MergeGuard;
        f()
    }

    #[inline]
    fn with_tally(f: impl FnOnce(&mut SessionStats)) {
        TALLY.with(|t| {
            if let Some(tally) = t.borrow_mut().as_mut() {
                f(&mut tally.local);
            }
        });
    }

    #[inline]
    pub fn record_pack_a(bytes: u64) {
        with_tally(|s| {
            s.a_packs += 1;
            s.a_bytes += bytes;
        });
    }

    #[inline]
    pub fn record_pack_b(bytes: u64) {
        with_tally(|s| {
            s.b_packs += 1;
            s.b_bytes += bytes;
        });
    }

    #[inline]
    pub fn record_tile(mr: usize, nr: usize) {
        with_tally(|s| match s.tiles.iter_mut().find(|(shape, _)| *shape == (mr, nr)) {
            Some((_, c)) => *c += 1,
            None => s.tiles.push(((mr, nr), 1)),
        });
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    use super::Session;
    use std::sync::Arc;

    /// Feature off: run `f` with no recording installed.
    #[inline(always)]
    pub fn with_session<R>(_session: &Arc<Session>, f: impl FnOnce() -> R) -> R {
        f()
    }

    #[inline(always)]
    pub fn record_pack_a(_bytes: u64) {}

    #[inline(always)]
    pub fn record_pack_b(_bytes: u64) {}

    #[inline(always)]
    pub fn record_tile(_mr: usize, _nr: usize) {}
}

pub use imp::{record_pack_a, record_pack_b, record_tile, with_session};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn recording_outside_a_scope_is_a_no_op() {
        record_pack_a(100);
        record_tile(5, 16);
        let s = Session::new();
        assert_eq!(s.take().a_packs, 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn scoped_recording_lands_in_the_session() {
        let s = Arc::new(Session::new());
        with_session(&s, || {
            record_pack_a(64);
            record_pack_a(64);
            record_pack_b(128);
            record_tile(5, 16);
            record_tile(5, 16);
            record_tile(8, 4);
        });
        // Recording after the scope must not leak into the session.
        record_tile(5, 16);
        let stats = s.take();
        assert_eq!((stats.a_packs, stats.a_bytes), (2, 128));
        assert_eq!((stats.b_packs, stats.b_bytes), (1, 128));
        let tiles = stats.tile_counts();
        assert_eq!(tiles.len(), 2);
        assert_eq!((tiles[0].mr, tiles[0].nr, tiles[0].count), (5, 16, 2));
        assert_eq!((tiles[1].mr, tiles[1].nr, tiles[1].count), (8, 4, 1));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn scopes_merge_across_threads() {
        let s = Arc::new(Session::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    with_session(s, || {
                        record_pack_b(32);
                        record_tile(4, 16);
                    });
                });
            }
        });
        let stats = s.take();
        assert_eq!(stats.b_packs, 4);
        assert_eq!(stats.tile_counts()[0].count, 4);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn feature_off_records_nothing_inside_scopes() {
        let s = Arc::new(Session::new());
        with_session(&s, || {
            record_pack_a(64);
            record_tile(5, 16);
        });
        let stats = s.take();
        assert_eq!(stats.a_packs, 0);
        assert!(stats.tiles.is_empty());
    }
}
