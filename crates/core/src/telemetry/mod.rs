//! Per-GEMM telemetry: scoped timers, phase/thread profiles, and
//! measured-vs-model cycle reports.
//!
//! The paper's whole pipeline — the micro-kernel cycle model (Eqns 6/8),
//! DMT (Algorithm 1) and the tuner's Eqn-13 pruning — runs on *projected*
//! cycle counts. This module closes the loop: every traced GEMM
//! ([`crate::native::gemm_with_plan_traced`], or the engine front doors
//! [`crate::AutoGemm::gemm_traced`] / `gemm_threaded_traced`) produces a
//! [`GemmReport`] holding
//!
//! * per-phase wall/cycle times (pack-A, pack-B, kernel, drain);
//! * per-call pack counts and traffic bytes, accumulated race-free in
//!   the call's own session (the long-removed process-global
//!   `packing::counters` predecessor required one-GEMM-at-a-time
//!   discipline);
//! * per-thread block counts, busy time and drain (idle-at-the-end) time
//!   from the work-queue driver;
//! * the kernel-shape histogram actually dispatched — including the
//!   sub-tiles the dynamic fallback kernel chunks oversized (SVE-wide)
//!   requests into;
//! * optionally, a join against the `autogemm-perfmodel` projection for
//!   the same `(m_r, n_r, k_c)` tiles ([`GemmReport::join_model`]),
//!   yielding the measured-vs-model cycle ratio every later perf PR is
//!   expected to cite.
//!
//! ## Overhead budget and the `telemetry` feature
//!
//! All time sources live behind the `telemetry` cargo feature. With the
//! feature **off** (the default), [`clock`] stamps return zero and the
//! recording hooks in the packing/dispatch paths compile to empty
//! `#[inline(always)]` functions — the hot paths are bit-for-bit the
//! untraced code, and the traced drivers still run correctly but report
//! zeroed timings/counters. With the feature **on**, the untraced drivers
//! remain unchanged (recording hooks check a thread-local session handle
//! that is only installed by traced calls); a traced call adds one stamp
//! pair per phase, one per claimed block, and one histogram bump per
//! dispatched micro-tile — all far below the work they measure (a block
//! is `O(m_c·n_c·k)` FLOPs, a tile `O(m_r·n_r·k_c)`).
//!
//! ## Report schema
//!
//! [`GemmReport`] serializes to a versioned JSON object
//! ([`report::SCHEMA_VERSION`], guarded on read by
//! [`GemmReport::from_json`]); `BENCH_gemmtrace.json` is an array of such
//! reports emitted by the `gemmtrace` bench bin. serde is an offline stub
//! in this workspace, so serialization is hand-rolled over the minimal
//! [`json`] value model.

//! ## Engine-lifetime observability
//!
//! Two sibling layers are **not** behind the `telemetry` feature — they
//! are always compiled and toggled/attached at runtime, because a
//! release-build service must still be able to read them:
//!
//! * [`metrics`] — the engine/runtime [`MetricsRegistry`]: monotonic
//!   counters (calls, errors, breaker transitions, retry rungs,
//!   plan-cache hits/misses/evictions), an in-flight gauge, and sharded
//!   log-bucket histograms (call latency, achieved GFLOP-s, pool
//!   wake/busy/park) merged on read into a [`MetricsSnapshot`] with
//!   p50/p95/p99, a schema-v5 JSON section, and a Prometheus
//!   text-exposition dump;
//! * [`tracebuf`] — the bounded per-worker span ring ([`TraceBuf`])
//!   behind `AutoGemm::with_tracing`, exported as Chrome trace-event
//!   JSON for Perfetto / `chrome://tracing` (the `gemmtrace --timeline`
//!   artifact).

pub mod clock;
pub mod json;
pub mod metrics;
pub mod report;
pub mod session;
pub mod tracebuf;

pub use clock::{ScopedTimer, Stamp, ENABLED};
pub use json::{Json, JsonError};
pub use metrics::{
    Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, HIST_BUCKETS,
};
pub use report::{
    DispatchStats, FallbackStats, GemmReport, HealthReport, IntegrityReport, ModelJoin, PackStats,
    PathHealth, PhaseProfile, PhaseTimes, ServiceReport, ThreadProfile, TileCount,
    MIN_SCHEMA_VERSION, SCHEMA_VERSION,
};
pub use session::Session;
pub use tracebuf::{TraceBuf, TraceSpan};
