//! Engine-lifetime metrics registry: monotonic counters, gauges and
//! sharded log-bucket histograms, always compiled in and toggled at
//! runtime.
//!
//! The per-call [`GemmReport`](crate::telemetry::GemmReport) is blind
//! across calls; the ROADMAP's service front-end and telemetry-driven
//! autotuning both need *longitudinal* signals — latency percentiles
//! over request streams, breaker/fallback rates, plan-cache and pool
//! behaviour over time. [`MetricsRegistry`] is that layer: one instance
//! per [`AutoGemm`](crate::AutoGemm) engine (call counters and latency /
//! GFLOP-s histograms) and one per [`Runtime`](crate::Runtime) (worker
//! wake/busy/park histograms), merged into a [`MetricsSnapshot`] on
//! read.
//!
//! ## Overhead contract
//!
//! Unlike the per-call tracing clocks this module is **not** behind the
//! `telemetry` cargo feature — a service must be able to read
//! percentiles from a release build. The costs:
//!
//! * **disabled** (runtime toggle off): one relaxed [`AtomicBool`] load
//!   per call — the same passive price as
//!   [`RunMonitor`](crate::supervisor)'s no-supervision fast path;
//! * **enabled**: two `Instant` reads plus a handful of relaxed atomic
//!   adds per *call* (never per block or per tile), all far below the
//!   work they measure.
//!
//! ## Histograms
//!
//! Fixed log-scale buckets (two sub-buckets per power of two, so every
//! bucket's bounds are within ~1.5× of each other — ±25% relative error
//! on any reported percentile) spanning the whole `u64` range, recorded
//! into [`HIST_SHARDS`] independent shards of relaxed atomics to keep
//! concurrent writers off each other's cache lines. Shards are summed
//! bucket-wise on read; the merge is exact and deterministic (counts
//! are commutative), which the property tests pin down.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use crate::telemetry::json::Json;

/// Buckets per histogram. With two sub-buckets per power of two this
/// spans `1 ..= 3·2^61` nanoseconds (≈ 200 years) before the catch-all
/// tail buckets.
pub const HIST_BUCKETS: usize = 128;

/// Independent shards per histogram; writers pick one by a cheap hint
/// (worker slot, thread id) so concurrent recording does not contend.
pub const HIST_SHARDS: usize = 8;

/// Inclusive upper bounds of the histogram buckets: 1, 2, 3, 4, 6, 8,
/// 12, 16, … (powers of two interleaved with their 1.5× midpoints),
/// tail-padded with `u64::MAX`. Bucket `i` holds values `v` with
/// `bounds[i-1] < v <= bounds[i]` (bucket 0: `v <= 1`, including 0).
const fn make_bounds() -> [u64; HIST_BUCKETS] {
    let mut b = [u64::MAX; HIST_BUCKETS];
    b[0] = 1;
    b[1] = 2;
    let mut pow: u64 = 2;
    let mut i = 2;
    while i + 1 < HIST_BUCKETS {
        b[i] = pow + pow / 2;
        if pow > (u64::MAX >> 1) {
            break;
        }
        pow <<= 1;
        b[i + 1] = pow;
        i += 2;
    }
    b
}

/// The shared bucket-bound table (see [`make_bounds`]).
pub const HIST_BOUNDS: [u64; HIST_BUCKETS] = make_bounds();

/// The bucket index a value lands in — the first bucket whose inclusive
/// upper bound is `>= v`. Total and monotone: equal values always share
/// a bucket and larger values never land in a smaller bucket, which is
/// what makes bucket-resolution percentile assertions exact.
pub fn bucket_index(v: u64) -> usize {
    HIST_BOUNDS.partition_point(|&bound| bound < v).min(HIST_BUCKETS - 1)
}

/// One histogram shard: bucket counts plus running sum/count, all
/// relaxed atomics (totals, not synchronization).
struct HistShard {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl HistShard {
    fn new() -> HistShard {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

/// A sharded fixed-bucket log histogram (see the module docs).
pub struct Histogram {
    shards: Vec<HistShard>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram { shards: (0..HIST_SHARDS).map(|_| HistShard::new()).collect() }
    }

    /// Record one value into the shard picked by `hint` (any cheap
    /// per-writer value: worker slot, thread id). Lock-free.
    #[inline]
    pub fn record(&self, value: u64, hint: usize) {
        let shard = &self.shards[hint % HIST_SHARDS];
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Merge every shard into one snapshot. The merge is a bucket-wise
    /// sum, so it is exact and independent of recording order.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for shard in &self.shards {
            for (i, b) in shard.buckets.iter().enumerate() {
                out.buckets[i] = out.buckets[i].saturating_add(b.load(Ordering::Relaxed));
            }
            out.sum = out.sum.saturating_add(shard.sum.load(Ordering::Relaxed));
            out.count = out.count.saturating_add(shard.count.load(Ordering::Relaxed));
        }
        out
    }
}

/// A merged, immutable view of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (bounds in [`HIST_BOUNDS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all recorded values (saturating).
    pub sum: u64,
    /// Number of recorded values.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HIST_BUCKETS], sum: 0, count: 0 }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile (0 < q <= 1) at bucket resolution: the inclusive
    /// upper bound of the smallest bucket whose cumulative count reaches
    /// `ceil(q · count)`. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return HIST_BOUNDS[i];
            }
        }
        HIST_BOUNDS[HIST_BUCKETS - 1]
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Serialize as `{count, sum, buckets: [[index, count], ...]}` —
    /// buckets sparse (zero buckets omitted) so a 128-bucket histogram
    /// costs a few pairs, not 128 numbers, in every artifact.
    pub fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("sum".into(), Json::Num(self.sum as f64)),
            (
                "buckets".into(),
                Json::Arr(
                    self.buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c > 0)
                        .map(|(i, &c)| Json::Arr(vec![Json::Num(i as f64), Json::Num(c as f64)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse the sparse form written by [`Self::to_json_value`];
    /// unknown/malformed entries degrade to zero, out-of-range bucket
    /// indices are dropped.
    pub fn from_json_value(v: &Json) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            count: v.get("count").and_then(Json::as_u64).unwrap_or(0),
            sum: v.get("sum").and_then(Json::as_u64).unwrap_or(0),
            ..HistogramSnapshot::default()
        };
        if let Some(pairs) = v.get("buckets").and_then(Json::as_arr) {
            for pair in pairs {
                let Some(items) = pair.as_arr() else { continue };
                let idx = items.first().and_then(Json::as_usize);
                let cnt = items.get(1).and_then(Json::as_u64);
                if let (Some(i), Some(c)) = (idx, cnt) {
                    if i < HIST_BUCKETS {
                        out.buckets[i] = c;
                    }
                }
            }
        }
        out
    }
}

/// Monotonic counters the registry tracks, enum-indexed into one fixed
/// atomic array (no string lookups on the hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Supervised engine calls started (any outcome).
    Calls,
    /// Calls that returned a non-cancellation error.
    Errors,
    /// Calls stopped by cancellation/deadline/watchdog.
    Cancelled,
    /// Circuit-breaker state transitions (any path, any direction).
    BreakerTransitions,
    /// Degraded retry rungs attempted by `try_gemm_resilient`.
    RetryAttempts,
    /// Plan-cache hits.
    PlanCacheHits,
    /// Plan-cache misses (tuner runs).
    PlanCacheMisses,
    /// Plan-cache LRU evictions.
    PlanCacheEvictions,
    /// Service requests admitted past the queue (dispatched to an
    /// engine). Only fed by a [`GemmService`](crate::service::GemmService)
    /// registry; stays zero on engine/runtime registries.
    ServiceAdmitted,
    /// Service requests rejected at enqueue (queue full, tenant quota,
    /// service closed).
    ServiceRejected,
    /// Service requests shed because the remaining deadline budget was
    /// provably insufficient (perfmodel floor / observed p95).
    ServiceShed,
    /// Service requests whose deadline expired while still queued.
    ServiceExpiredInQueue,
    /// Output-integrity verifications started ([`crate::verify`]).
    VerifyRuns,
    /// Verifications whose output passed the checks.
    VerifyPasses,
    /// Verifications that rejected the output
    /// (`GemmError::IntegrityViolation` surfaced).
    VerifyFailures,
    /// Trusted scalar re-executions taken by `try_gemm_resilient`'s
    /// verified-reexecution rung after an integrity violation.
    VerifyReexecutions,
}

impl Counter {
    pub const COUNT: usize = 16;

    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::Calls,
        Counter::Errors,
        Counter::Cancelled,
        Counter::BreakerTransitions,
        Counter::RetryAttempts,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
        Counter::PlanCacheEvictions,
        Counter::ServiceAdmitted,
        Counter::ServiceRejected,
        Counter::ServiceShed,
        Counter::ServiceExpiredInQueue,
        Counter::VerifyRuns,
        Counter::VerifyPasses,
        Counter::VerifyFailures,
        Counter::VerifyReexecutions,
    ];

    fn index(self) -> usize {
        match self {
            Counter::Calls => 0,
            Counter::Errors => 1,
            Counter::Cancelled => 2,
            Counter::BreakerTransitions => 3,
            Counter::RetryAttempts => 4,
            Counter::PlanCacheHits => 5,
            Counter::PlanCacheMisses => 6,
            Counter::PlanCacheEvictions => 7,
            Counter::ServiceAdmitted => 8,
            Counter::ServiceRejected => 9,
            Counter::ServiceShed => 10,
            Counter::ServiceExpiredInQueue => 11,
            Counter::VerifyRuns => 12,
            Counter::VerifyPasses => 13,
            Counter::VerifyFailures => 14,
            Counter::VerifyReexecutions => 15,
        }
    }

    /// Stable snake-case name (JSON keys and Prometheus metric stems).
    pub fn name(self) -> &'static str {
        match self {
            Counter::Calls => "calls_total",
            Counter::Errors => "errors_total",
            Counter::Cancelled => "cancelled_total",
            Counter::BreakerTransitions => "breaker_transitions_total",
            Counter::RetryAttempts => "retry_attempts_total",
            Counter::PlanCacheHits => "plan_cache_hits_total",
            Counter::PlanCacheMisses => "plan_cache_misses_total",
            Counter::PlanCacheEvictions => "plan_cache_evictions_total",
            Counter::ServiceAdmitted => "service_admitted_total",
            Counter::ServiceRejected => "service_rejected_total",
            Counter::ServiceShed => "service_shed_total",
            Counter::ServiceExpiredInQueue => "service_expired_in_queue_total",
            Counter::VerifyRuns => "verify_runs_total",
            Counter::VerifyPasses => "verify_passes_total",
            Counter::VerifyFailures => "verify_failures_total",
            Counter::VerifyReexecutions => "verify_reexecutions_total",
        }
    }
}

/// How a supervised call ended, for [`MetricsRegistry::call_end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallOutcome {
    Ok,
    Cancelled,
    Error,
}

/// Per-writer shard hint: a small dense id handed out once per OS
/// thread, so each thread keeps hitting the same histogram shard.
fn shard_hint() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    HINT.with(|h| *h)
}

/// The always-available metrics registry (see the module docs). One per
/// engine (call metrics) and one per runtime (pool metrics); fields not
/// fed by an owner simply stay zero.
pub struct MetricsRegistry {
    enabled: AtomicBool,
    counters: [AtomicU64; Counter::COUNT],
    /// Supervised calls currently between `call_begin` and `call_end`.
    in_flight: AtomicI64,
    /// End-to-end supervised call latency, nanoseconds.
    pub call_latency_ns: Histogram,
    /// Achieved throughput of successful calls, milli-GFLOP/s
    /// (GFLOP/s × 1000, so small calls keep resolution in integer
    /// buckets).
    pub call_gflops_milli: Histogram,
    /// Pool submit → first-worker-claim latency, nanoseconds.
    pub pool_wake_ns: Histogram,
    /// Time pool workers spend inside job bodies, nanoseconds.
    pub pool_busy_ns: Histogram,
    /// Time pool workers spend parked between jobs, nanoseconds.
    pub pool_park_ns: Histogram,
    /// Service admission-queue wait (enqueue → dispatch), nanoseconds.
    /// Only fed by a service registry; stays zero elsewhere.
    pub queue_wait_ns: Histogram,
    /// Wall time of output-integrity verifications ([`crate::verify`]),
    /// nanoseconds. Only fed by engines with a verify policy active.
    pub verify_ns: Histogram,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("enabled", &self.is_enabled())
            .field("calls", &self.counter(Counter::Calls))
            .finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A fresh registry, enabled.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            in_flight: AtomicI64::new(0),
            call_latency_ns: Histogram::new(),
            call_gflops_milli: Histogram::new(),
            pool_wake_ns: Histogram::new(),
            pool_busy_ns: Histogram::new(),
            pool_park_ns: Histogram::new(),
            queue_wait_ns: Histogram::new(),
            verify_ns: Histogram::new(),
        }
    }

    /// Toggle recording at runtime. Disabled recording costs one
    /// relaxed bool load per site.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Bump a counter by `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if !self.is_enabled() || n == 0 {
            return;
        }
        self.counters[c.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// Current value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()].load(Ordering::Relaxed)
    }

    /// Record one value into a histogram using the calling thread's
    /// shard (no-op while disabled).
    #[inline]
    pub fn record(&self, hist: &Histogram, value: u64) {
        if self.is_enabled() {
            hist.record(value, shard_hint());
        }
    }

    /// Record with an explicit shard hint (pool workers pass their slot
    /// so a worker keeps writing its own shard).
    #[inline]
    pub fn record_hinted(&self, hist: &Histogram, value: u64, hint: usize) {
        if self.is_enabled() {
            hist.record(value, hint);
        }
    }

    /// Start timing a supervised call. `None` (one branch, no clock
    /// read) while disabled.
    #[inline]
    pub fn call_begin(&self) -> Option<Instant> {
        if !self.is_enabled() {
            return None;
        }
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        Some(Instant::now())
    }

    /// Finish timing a supervised call started by [`Self::call_begin`]:
    /// records latency, throughput (successful calls only) and outcome
    /// counters. A `None` token (disabled at begin) is a no-op.
    pub fn call_end(&self, t0: Option<Instant>, flops: u64, outcome: CallOutcome) {
        let Some(t0) = t0 else { return };
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        let elapsed_ns = t0.elapsed().as_nanos() as u64;
        let hint = shard_hint();
        self.call_latency_ns.record(elapsed_ns, hint);
        self.counters[Counter::Calls.index()].fetch_add(1, Ordering::Relaxed);
        match outcome {
            CallOutcome::Ok => {
                if elapsed_ns > 0 && flops > 0 {
                    let mgflops = (flops as f64 / elapsed_ns as f64 * 1000.0) as u64;
                    self.call_gflops_milli.record(mgflops, hint);
                }
            }
            CallOutcome::Cancelled => {
                self.counters[Counter::Cancelled.index()].fetch_add(1, Ordering::Relaxed);
            }
            CallOutcome::Error => {
                self.counters[Counter::Errors.index()].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Merge everything into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            enabled: self.is_enabled(),
            counters: Counter::ALL.map(|c| self.counter(c)),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            call_latency_ns: self.call_latency_ns.snapshot(),
            call_gflops_milli: self.call_gflops_milli.snapshot(),
            pool_wake_ns: self.pool_wake_ns.snapshot(),
            pool_busy_ns: self.pool_busy_ns.snapshot(),
            pool_park_ns: self.pool_park_ns.snapshot(),
            queue_wait_ns: self.queue_wait_ns.snapshot(),
            verify_ns: self.verify_ns.snapshot(),
        }
    }
}

/// An immutable, merged view of a [`MetricsRegistry`] — what
/// [`AutoGemm::metrics`](crate::AutoGemm::metrics) returns, the
/// schema-v5 report section, and the input of both exporters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Whether the registry was recording at snapshot time.
    pub enabled: bool,
    /// Counter values, indexed like [`Counter::ALL`].
    pub counters: [u64; Counter::COUNT],
    /// Calls in flight at snapshot time.
    pub in_flight: i64,
    pub call_latency_ns: HistogramSnapshot,
    pub call_gflops_milli: HistogramSnapshot,
    pub pool_wake_ns: HistogramSnapshot,
    pub pool_busy_ns: HistogramSnapshot,
    pub pool_park_ns: HistogramSnapshot,
    pub queue_wait_ns: HistogramSnapshot,
    pub verify_ns: HistogramSnapshot,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            enabled: false,
            counters: [0; Counter::COUNT],
            in_flight: 0,
            call_latency_ns: HistogramSnapshot::default(),
            call_gflops_milli: HistogramSnapshot::default(),
            pool_wake_ns: HistogramSnapshot::default(),
            pool_busy_ns: HistogramSnapshot::default(),
            pool_park_ns: HistogramSnapshot::default(),
            queue_wait_ns: HistogramSnapshot::default(),
            verify_ns: HistogramSnapshot::default(),
        }
    }
}

/// The histograms a snapshot carries, name-paired for the exporters.
fn snapshot_hists(s: &MetricsSnapshot) -> [(&'static str, &HistogramSnapshot); 7] {
    [
        ("call_latency_ns", &s.call_latency_ns),
        ("call_gflops_milli", &s.call_gflops_milli),
        ("pool_wake_ns", &s.pool_wake_ns),
        ("pool_busy_ns", &s.pool_busy_ns),
        ("pool_park_ns", &s.pool_park_ns),
        ("queue_wait_ns", &s.queue_wait_ns),
        ("verify_ns", &s.verify_ns),
    ]
}

impl MetricsSnapshot {
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    /// Serialize to the schema-v5 `metrics` report section.
    pub fn to_json_value(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![("enabled".into(), Json::Bool(self.enabled))];
        for c in Counter::ALL {
            fields.push((c.name().into(), Json::Num(self.counter(c) as f64)));
        }
        fields.push(("in_flight".into(), Json::Num(self.in_flight as f64)));
        for (name, h) in snapshot_hists(self) {
            fields.push((name.into(), h.to_json_value()));
        }
        Json::Obj(fields)
    }

    /// Parse what [`Self::to_json_value`] wrote; absent fields default
    /// to zero (lenient, like every other report section).
    pub fn from_json_value(v: &Json) -> MetricsSnapshot {
        let hist =
            |key: &str| v.get(key).map(HistogramSnapshot::from_json_value).unwrap_or_default();
        MetricsSnapshot {
            enabled: v.get("enabled").and_then(Json::as_bool).unwrap_or(false),
            counters: Counter::ALL.map(|c| v.get(c.name()).and_then(Json::as_u64).unwrap_or(0)),
            in_flight: v.get("in_flight").and_then(Json::as_f64).unwrap_or(0.0) as i64,
            call_latency_ns: hist("call_latency_ns"),
            call_gflops_milli: hist("call_gflops_milli"),
            pool_wake_ns: hist("pool_wake_ns"),
            pool_busy_ns: hist("pool_busy_ns"),
            pool_park_ns: hist("pool_park_ns"),
            queue_wait_ns: hist("queue_wait_ns"),
            verify_ns: hist("verify_ns"),
        }
    }

    /// Prometheus text-exposition dump (`# TYPE` headers, cumulative
    /// `_bucket{le=...}` histogram series ending in `le="+Inf"`). Only
    /// the populated bucket prefix is emitted — valid exposition, a
    /// fraction of the lines.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for c in Counter::ALL {
            let name = format!("autogemm_{}", c.name());
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", self.counter(c));
        }
        let _ = writeln!(out, "# TYPE autogemm_in_flight_calls gauge");
        let _ = writeln!(out, "autogemm_in_flight_calls {}", self.in_flight);
        for (stem, h) in snapshot_hists(self) {
            let name = format!("autogemm_{stem}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            let last = h.buckets.iter().rposition(|&c| c > 0);
            let mut cum = 0u64;
            if let Some(last) = last {
                for (count, bound) in h.buckets.iter().zip(HIST_BOUNDS.iter()).take(last + 1) {
                    cum = cum.saturating_add(*count);
                    let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cum}");
                }
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_monotone_and_cover_u64() {
        for w in HIST_BOUNDS.windows(2) {
            assert!(w[0] <= w[1], "bounds must be non-decreasing: {} > {}", w[0], w[1]);
        }
        assert_eq!(HIST_BOUNDS[0], 1);
        assert_eq!(*HIST_BOUNDS.last().unwrap(), u64::MAX);
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(u64::MAX), bucket_index(u64::MAX - 1).max(bucket_index(u64::MAX)));
        // Monotone: larger values never land in smaller buckets.
        let mut prev = 0;
        for v in [0u64, 1, 2, 3, 5, 8, 100, 1000, 1 << 20, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(i >= prev, "bucket_index not monotone at {v}");
            prev = i;
        }
        // Every value is <= its bucket's inclusive bound.
        for v in [0u64, 1, 7, 12, 13, 97, 1_000_003, u64::MAX / 3] {
            assert!(v <= HIST_BOUNDS[bucket_index(v)]);
        }
    }

    #[test]
    fn shard_merge_equals_single_shard_recording() {
        let values = [0u64, 1, 1, 5, 17, 17, 250, 4096, 1 << 33];
        let sharded = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            sharded.record(v, i); // spread over every shard
        }
        let single = Histogram::new();
        for &v in &values {
            single.record(v, 0);
        }
        assert_eq!(sharded.snapshot(), single.snapshot());
    }

    #[test]
    fn quantiles_land_in_the_true_quantile_bucket() {
        let mut values: Vec<u64> = (1..=1000).map(|i| i * 37).collect();
        let h = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            h.record(v, i);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for q in [0.5, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let truth = values[rank - 1];
            assert_eq!(
                bucket_index(snap.quantile(q)),
                bucket_index(truth),
                "q={q}: histogram quantile must land in the true quantile's bucket"
            );
            assert!(truth <= snap.quantile(q), "bucket upper bound bounds the true value");
        }
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, values.iter().sum::<u64>());
    }

    #[test]
    fn empty_histogram_reports_zero_quantiles() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(false);
        assert!(reg.call_begin().is_none());
        reg.call_end(None, 1000, CallOutcome::Ok);
        reg.add(Counter::Errors, 3);
        reg.record(&reg.call_latency_ns, 42);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::Calls), 0);
        assert_eq!(snap.counter(Counter::Errors), 0);
        assert_eq!(snap.call_latency_ns.count, 0);
        assert_eq!(snap.in_flight, 0);
    }

    #[test]
    fn call_cycle_updates_counters_and_histograms() {
        let reg = MetricsRegistry::new();
        let t0 = reg.call_begin();
        assert!(t0.is_some());
        reg.call_end(t0, 2 * 64 * 64 * 64, CallOutcome::Ok);
        let t1 = reg.call_begin();
        reg.call_end(t1, 0, CallOutcome::Error);
        let t2 = reg.call_begin();
        reg.call_end(t2, 0, CallOutcome::Cancelled);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::Calls), 3);
        assert_eq!(snap.counter(Counter::Errors), 1);
        assert_eq!(snap.counter(Counter::Cancelled), 1);
        assert_eq!(snap.call_latency_ns.count, 3);
        assert_eq!(snap.call_gflops_milli.count, 1, "throughput only for successful calls");
        assert_eq!(snap.in_flight, 0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = MetricsRegistry::new();
        for i in 0..50u64 {
            reg.add(Counter::PlanCacheHits, 1);
            reg.record(&reg.call_latency_ns, 1000 + i * 997);
            reg.record_hinted(&reg.pool_busy_ns, i * 31, i as usize);
        }
        let snap = reg.snapshot();
        let back = MetricsSnapshot::from_json_value(&snap.to_json_value());
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_dump_carries_series_and_cumulative_buckets() {
        let reg = MetricsRegistry::new();
        reg.add(Counter::Calls, 7);
        reg.record(&reg.call_latency_ns, 5);
        reg.record(&reg.call_latency_ns, 500);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE autogemm_calls_total counter"), "{text}");
        assert!(text.contains("autogemm_calls_total 7"), "{text}");
        assert!(text.contains("# TYPE autogemm_call_latency_ns histogram"), "{text}");
        assert!(text.contains("autogemm_call_latency_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("autogemm_call_latency_ns_count 2"), "{text}");
        // Buckets are cumulative: the +Inf bucket equals the count.
        assert!(text.contains("autogemm_in_flight_calls 0"), "{text}");
    }
}
