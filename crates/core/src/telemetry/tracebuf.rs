//! Bounded cross-worker span timeline, exported as Chrome trace-event
//! JSON (loadable in Perfetto / `chrome://tracing`).
//!
//! The per-call phase stamps in [`clock`](crate::telemetry::clock) say
//! *how long* packing or the kernel took; they cannot say *when* each
//! pool worker was doing what. [`TraceBuf`] records one lane of spans
//! per execution slot (lane 0 = the submitting caller, lanes 1.. = pool
//! workers): `pack A` / `pack B` / `kernel` phase spans plus the pool
//! mechanics around them (`submit` = caller entering its own slot,
//! `wake` = submit → worker body start, `drain` = worker body end →
//! section close).
//!
//! Each lane is an independent fixed-capacity ring guarded by its own
//! mutex: recording is one short uncontended lock per *section per
//! slot* (never per block or per tile), and when the ring is full the
//! oldest spans are overwritten — the buffer keeps the most recent
//! window and counts what it dropped. Like the metrics registry this is
//! always compiled in and costs nothing unless a `TraceBuf` is attached
//! (`AutoGemm::with_tracing`): untraced engines carry a `None` and every
//! hook is a single branch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::telemetry::json::Json;

/// One recorded span on a worker lane. Times are nanoseconds since the
/// owning [`TraceBuf`]'s epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Execution slot (0 = caller, 1.. = pool workers).
    pub track: usize,
    /// Span name (`"pack A"`, `"kernel"`, `"submit"`, ...).
    pub name: &'static str,
    /// Category (`"phase"` or `"pool"`), the Chrome `cat` field.
    pub cat: &'static str,
    pub start_ns: u64,
    pub end_ns: u64,
}

/// A fixed-capacity overwrite-oldest ring of spans.
struct Lane {
    spans: Mutex<LaneRing>,
}

struct LaneRing {
    buf: Vec<TraceSpan>,
    /// Next overwrite position once `buf` has reached capacity.
    head: usize,
}

/// The bounded span timeline (see the module docs).
pub struct TraceBuf {
    epoch: Instant,
    lanes: Vec<Lane>,
    capacity: usize,
    dropped: AtomicU64,
}

impl std::fmt::Debug for TraceBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuf")
            .field("tracks", &self.lanes.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceBuf {
    /// A buffer with `tracks` lanes of `capacity` spans each. Both are
    /// clamped to at least 1.
    pub fn new(tracks: usize, capacity: usize) -> TraceBuf {
        let tracks = tracks.max(1);
        let capacity = capacity.max(1);
        TraceBuf {
            epoch: Instant::now(),
            lanes: (0..tracks)
                .map(|_| Lane {
                    spans: Mutex::new(LaneRing { buf: Vec::with_capacity(capacity), head: 0 }),
                })
                .collect(),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of lanes.
    pub fn tracks(&self) -> usize {
        self.lanes.len()
    }

    /// Spans overwritten because their lane's ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Nanoseconds since this buffer's epoch — the timestamp source for
    /// every span recorded into it.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a span on `track`. Out-of-range tracks are dropped (a
    /// clamped thread count can shrink the active slot range; losing a
    /// span beats indexing out of bounds).
    pub fn push(
        &self,
        track: usize,
        name: &'static str,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
    ) {
        let Some(lane) = self.lanes.get(track) else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let span = TraceSpan { track, name, cat, start_ns, end_ns: end_ns.max(start_ns) };
        let Ok(mut ring) = lane.spans.lock() else { return };
        if ring.buf.len() < self.capacity {
            ring.buf.push(span);
        } else {
            let head = ring.head;
            ring.buf[head] = span;
            ring.head = (head + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// All retained spans, ordered by (track, start time) — the stable
    /// order the exporter and tests consume.
    pub fn snapshot(&self) -> Vec<TraceSpan> {
        let mut out = Vec::new();
        for lane in &self.lanes {
            let Ok(ring) = lane.spans.lock() else { continue };
            out.extend(ring.buf.iter().cloned());
        }
        out.sort_by_key(|s| (s.track, s.start_ns, s.end_ns));
        out
    }

    /// Export as a Chrome trace-event document: one complete (`ph:"X"`)
    /// event per span with microsecond timestamps, plus `thread_name`
    /// metadata per lane so Perfetto labels the tracks. Extra top-level
    /// keys (`dropped_spans`, `tracks`) are metadata both viewers
    /// ignore.
    pub fn export_chrome_json(&self) -> String {
        let mut events: Vec<Json> = Vec::new();
        for track in 0..self.lanes.len() {
            let label = if track == 0 { "caller".to_string() } else { format!("worker-{track}") };
            events.push(Json::Obj(vec![
                ("name".into(), Json::Str("thread_name".into())),
                ("ph".into(), Json::Str("M".into())),
                ("pid".into(), Json::Num(1.0)),
                ("tid".into(), Json::Num(track as f64)),
                ("args".into(), Json::Obj(vec![("name".into(), Json::Str(label))])),
            ]));
        }
        for s in self.snapshot() {
            events.push(Json::Obj(vec![
                ("name".into(), Json::Str(s.name.into())),
                ("cat".into(), Json::Str(s.cat.into())),
                ("ph".into(), Json::Str("X".into())),
                ("ts".into(), Json::Num(s.start_ns as f64 / 1000.0)),
                ("dur".into(), Json::Num((s.end_ns - s.start_ns) as f64 / 1000.0)),
                ("pid".into(), Json::Num(1.0)),
                ("tid".into(), Json::Num(s.track as f64)),
            ]));
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(events)),
            ("displayTimeUnit".into(), Json::Str("ns".into())),
            ("tracks".into(), Json::Num(self.lanes.len() as f64)),
            ("dropped_spans".into(), Json::Num(self.dropped() as f64)),
        ])
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_orders_spans_per_track() {
        let tb = TraceBuf::new(2, 8);
        tb.push(1, "kernel", "phase", 200, 300);
        tb.push(0, "submit", "pool", 0, 10);
        tb.push(0, "kernel", "phase", 10, 150);
        let spans = tb.snapshot();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "submit");
        assert_eq!(spans[1].name, "kernel");
        assert_eq!(spans[2].track, 1);
        assert_eq!(tb.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let tb = TraceBuf::new(1, 2);
        tb.push(0, "a", "phase", 0, 1);
        tb.push(0, "b", "phase", 1, 2);
        tb.push(0, "c", "phase", 2, 3);
        let spans = tb.snapshot();
        assert_eq!(spans.len(), 2, "capacity bounds the ring");
        assert!(spans.iter().any(|s| s.name == "c"), "newest span retained");
        assert!(spans.iter().all(|s| s.name != "a"), "oldest span overwritten");
        assert_eq!(tb.dropped(), 1);
    }

    #[test]
    fn out_of_range_track_is_dropped_not_panicking() {
        let tb = TraceBuf::new(1, 4);
        tb.push(7, "kernel", "phase", 0, 1);
        assert!(tb.snapshot().is_empty());
        assert_eq!(tb.dropped(), 1);
    }

    #[test]
    fn chrome_export_is_valid_json_with_metadata_and_events() {
        let tb = TraceBuf::new(2, 8);
        tb.push(0, "pack A", "phase", 1000, 2500);
        tb.push(1, "kernel", "phase", 2000, 9000);
        let text = tb.export_chrome_json();
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        // 2 thread_name metadata events + 2 spans.
        assert_eq!(events.len(), 4);
        let meta: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("M")).collect();
        assert_eq!(meta.len(), 2);
        let spans: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        assert_eq!(spans.len(), 2);
        // Microsecond conversion: 1000ns -> 1µs, 1500ns dur -> 1.5µs.
        assert_eq!(spans[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(spans[0].get("dur").unwrap().as_f64(), Some(1.5));
        assert_eq!(spans[1].get("tid").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn inverted_span_clamps_instead_of_underflowing() {
        let tb = TraceBuf::new(1, 4);
        tb.push(0, "x", "phase", 10, 5);
        let spans = tb.snapshot();
        assert_eq!(spans[0].end_ns, 10, "end clamps to start");
    }
}
