//! Time sources for telemetry: a monotonic nanosecond clock plus the
//! host's hardware cycle counter, both compiled to zero-returning no-ops
//! unless the `telemetry` feature is on.
//!
//! The "cycle" unit is the host counter's native tick: `rdtsc` on x86_64
//! (TSC ticks, constant-rate on every machine this targets) and
//! `cntvct_el0` on aarch64 (the generic timer, which ticks at the counter
//! frequency, *not* the core clock). Absolute tick counts are therefore
//! host-specific; reports compare them against modelled cycles as a
//! *ratio whose flatness across shapes* is the signal (see
//! [`crate::telemetry::report::ModelJoin`]).

use crate::telemetry::report::PhaseTimes;

/// Whether the `telemetry` feature was compiled in (stamps are real).
pub const ENABLED: bool = cfg!(feature = "telemetry");

#[cfg(feature = "telemetry")]
mod imp {
    use std::sync::OnceLock;
    use std::time::Instant;

    static EPOCH: OnceLock<Instant> = OnceLock::new();

    /// Monotonic nanoseconds since the first telemetry stamp of the
    /// process.
    #[inline]
    pub fn wall_ns() -> u64 {
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    #[cfg(target_arch = "x86_64")]
    #[inline]
    pub fn cycles() -> u64 {
        // SAFETY: `rdtsc` is unprivileged and has no memory effects.
        unsafe { core::arch::x86_64::_rdtsc() }
    }

    #[cfg(target_arch = "aarch64")]
    #[inline]
    pub fn cycles() -> u64 {
        let v: u64;
        // SAFETY: CNTVCT_EL0 is readable from EL0; no memory effects.
        unsafe { core::arch::asm!("mrs {v}, cntvct_el0", v = out(reg) v, options(nomem, nostack)) };
        v
    }

    /// No hardware counter on this target: fall back to the monotonic
    /// clock so ratios stay finite (documented as ns, not ticks).
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    #[inline]
    pub fn cycles() -> u64 {
        wall_ns()
    }
}

#[cfg(not(feature = "telemetry"))]
mod imp {
    #[inline(always)]
    pub fn wall_ns() -> u64 {
        0
    }

    #[inline(always)]
    pub fn cycles() -> u64 {
        0
    }
}

pub use imp::{cycles, wall_ns};

/// A paired (wall-ns, cycle) reading — the unit of every scoped
/// measurement. With the `telemetry` feature off both reads are constant
/// zero and the whole API folds away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stamp {
    pub ns: u64,
    pub cycles: u64,
}

impl Stamp {
    #[inline(always)]
    pub fn now() -> Self {
        Stamp { ns: wall_ns(), cycles: cycles() }
    }

    /// Both deltas from `self` to now.
    #[inline(always)]
    pub fn elapsed(self) -> PhaseTimes {
        let end = Stamp::now();
        PhaseTimes {
            wall_ns: end.ns.saturating_sub(self.ns),
            cycles: end.cycles.saturating_sub(self.cycles),
        }
    }

    /// Both deltas from `self` to a later stamp.
    #[inline(always)]
    pub fn delta_to(self, end: Stamp) -> PhaseTimes {
        PhaseTimes {
            wall_ns: end.ns.saturating_sub(self.ns),
            cycles: end.cycles.saturating_sub(self.cycles),
        }
    }
}

/// RAII scoped timer: accumulates the scope's duration into a
/// [`PhaseTimes`] cell on drop. Zero-cost when the feature is off (the
/// stamps are constant zeros and the add folds away).
///
/// ```
/// use std::cell::Cell;
/// use autogemm::telemetry::{PhaseTimes, ScopedTimer};
/// let acc = Cell::new(PhaseTimes::default());
/// {
///     let _t = ScopedTimer::new(&acc);
///     // ... measured work ...
/// }
/// let measured = acc.get(); // zero unless built with `telemetry`
/// # let _ = measured;
/// ```
pub struct ScopedTimer<'a> {
    start: Stamp,
    acc: &'a std::cell::Cell<PhaseTimes>,
}

impl<'a> ScopedTimer<'a> {
    #[inline(always)]
    pub fn new(acc: &'a std::cell::Cell<PhaseTimes>) -> Self {
        ScopedTimer { start: Stamp::now(), acc }
    }
}

impl Drop for ScopedTimer<'_> {
    #[inline(always)]
    fn drop(&mut self) {
        self.acc.set(self.acc.get() + self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn stamps_are_monotonic_or_zero() {
        let a = Stamp::now();
        let b = Stamp::now();
        if ENABLED {
            assert!(b.ns >= a.ns);
            assert!(b.cycles >= a.cycles);
        } else {
            assert_eq!(a, Stamp::default());
            assert_eq!(b, Stamp::default());
        }
    }

    #[test]
    fn scoped_timer_accumulates() {
        let acc = Cell::new(PhaseTimes::default());
        for _ in 0..2 {
            let _t = ScopedTimer::new(&acc);
            std::hint::black_box(0u64);
        }
        if !ENABLED {
            assert_eq!(acc.get(), PhaseTimes::default(), "feature off: timers are no-ops");
        }
    }
}
