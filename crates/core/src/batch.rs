//! Batched small GEMM — the LIBXSMM-style workload the paper's
//! introduction motivates (blocked sparse solvers, DG/FEM element
//! kernels, N-body interaction blocks): many independent multiplications
//! of one small shape.
//!
//! The batch API tunes the shape once (one [`ExecutionPlan`] shared by
//! every item) and drains items through the persistent worker-pool
//! runtime ([`crate::runtime`]) from a shared cursor; each item owns a
//! disjoint `m·n` slice of the output, so the parallelism is safe by
//! construction.

use crate::error::{self, GemmError, Operand};
use crate::native;
use crate::offline::PackedB;
use crate::packing::PanelPool;
use crate::plan::ExecutionPlan;
use crate::runtime::Exec;
use crate::supervisor::{BreakerPath, RunMonitor, Supervision};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A batch of same-shape GEMMs: `C[i] (+)= A[i] · B[i]`.
pub struct GemmBatch<'a> {
    pub m: usize,
    pub n: usize,
    pub k: usize,
    pub a: Vec<&'a [f32]>,
    pub b: Vec<&'a [f32]>,
}

impl<'a> GemmBatch<'a> {
    /// Build an empty batch of shape `m × n × k`.
    pub fn new(m: usize, n: usize, k: usize) -> Self {
        GemmBatch { m, n, k, a: Vec::new(), b: Vec::new() }
    }

    /// Append one item; `a` must be `m·k` elements and `b` `k·n`.
    pub fn push(&mut self, a: &'a [f32], b: &'a [f32]) {
        assert_eq!(a.len(), self.m * self.k, "A[i] must be m*k");
        assert_eq!(b.len(), self.k * self.n, "B[i] must be k*n");
        self.a.push(a);
        self.b.push(b);
    }

    pub fn len(&self) -> usize {
        self.a.len()
    }

    pub fn is_empty(&self) -> bool {
        self.a.is_empty()
    }

    pub fn flops(&self) -> u64 {
        2 * (self.m * self.n * self.k * self.len()) as u64
    }
}

/// Slice identity: same base pointer and length means the same `B` is
/// bound to several batch items (the weight-reuse pattern: one weight
/// matrix, many activations).
fn slice_key(s: &[f32]) -> (usize, usize) {
    (s.as_ptr() as usize, s.len())
}

/// Execute a batch natively with a shared tuned plan. `c` holds the
/// outputs back to back (`len · m · n` elements), either zeroed or
/// carrying accumulation inputs.
///
/// Items that bind the *same* `B` slice (pointer identity) share one
/// offline-packed copy of it: `B` is packed once for the whole group and
/// each item runs through the zero-copy prepacked driver, instead of
/// re-packing `B` per item. Each worker thread also carries its own
/// [`PanelPool`], so A-panel buffers are recycled across that worker's
/// items.
pub fn gemm_batch(plan: &ExecutionPlan, batch: &GemmBatch, c: &mut [f32], threads: usize) {
    if let Err(e) = try_gemm_batch(plan, batch, c, threads) {
        panic!("{e}");
    }
}

/// Fallible [`gemm_batch`]: output-length and plan-shape mismatches come
/// back as `Err`, and a panicking batch worker poisons the run — the
/// survivors finish their current item, stop, and the caller gets the
/// first failure. Item-level failures (including contained worker
/// panics inside an item) come back wrapped as
/// [`GemmError::InBatch`]`{ index, source }` so the caller knows which
/// item failed; completed items keep their results and the failing
/// item's slice follows the per-item untouched-/partial-`C` rules of
/// [`crate::error`].
pub fn try_gemm_batch(
    plan: &ExecutionPlan,
    batch: &GemmBatch,
    c: &mut [f32],
    threads: usize,
) -> Result<(), GemmError> {
    try_gemm_batch_supervised(plan, batch, c, threads, &Supervision::none())
}

/// [`try_gemm_batch`] under a [`Supervision`] bundle.
///
/// The batch is itself a work queue of items, so supervision applies at
/// *item* granularity: the deadline and watchdog are checked between
/// items (the batch run reports [`GemmError::Cancelled`] /
/// [`GemmError::Stalled`] with `phase: "batch"` and item counts as the
/// block counts), while a [`CancelToken`](crate::supervisor::CancelToken)
/// additionally interrupts *inside* the in-flight items at their own
/// pack/kernel boundaries. Breaker reroutes (`force_reference`,
/// `force_transient`) are forwarded into every item call.
pub fn try_gemm_batch_supervised(
    plan: &ExecutionPlan,
    batch: &GemmBatch,
    c: &mut [f32],
    threads: usize,
    sup: &Supervision,
) -> Result<(), GemmError> {
    let (m, n) = (batch.m, batch.n);
    let item = error::checked_size("m*n", m, n)?;
    let expected = item.checked_mul(batch.len()).ok_or(GemmError::SizeOverflow {
        what: "len*m*n",
        lhs: batch.len(),
        rhs: item,
    })?;
    if c.len() != expected {
        return Err(GemmError::SliceLen {
            operand: Operand::C,
            expected,
            got: c.len(),
            dims: "len*m*n",
        });
    }
    let s = &plan.schedule;
    if (s.m, s.n, s.k) != (m, n, batch.k) {
        return Err(GemmError::PlanMismatch { expected: (m, n, batch.k), got: (s.m, s.n, s.k) });
    }
    if batch.is_empty() || item == 0 {
        return Ok(());
    }
    let threads = threads.max(1).min(batch.len());

    // Pack each B that appears more than once, exactly once.
    let mut b_uses: HashMap<(usize, usize), usize> = HashMap::new();
    for b in &batch.b {
        *b_uses.entry(slice_key(b)).or_insert(0) += 1;
    }
    let mut shared_b: HashMap<(usize, usize), PackedB> = HashMap::new();
    for b in &batch.b {
        let key = slice_key(b);
        if b_uses[&key] > 1 && !shared_b.contains_key(&key) {
            shared_b.insert(key, PackedB::new(plan, b));
        }
    }

    // The item calls share one watchdog-free supervision: the cancel
    // token interrupts mid-item, breaker reroutes are forwarded, and
    // observed faults aggregate here (propagated to `sup` below). The
    // batch monitor owns the deadline/watchdog at item granularity —
    // one hub registration per batch, not per item.
    let mut item_sup = Supervision::none();
    if let Some(tok) = &sup.cancel {
        item_sup = item_sup.with_cancel(tok.clone());
    }
    if let Some(rt) = &sup.runtime {
        item_sup = item_sup.with_runtime(rt.clone());
    }
    item_sup.set_force_reference(sup.force_reference);
    item_sup.set_force_transient(sup.force_transient);
    item_sup.set_force_inline(sup.force_inline);
    let item_sup = item_sup;

    let exec = Exec::new(sup, false);
    let monitor = RunMonitor::new(sup, threads);
    let watchdog = exec.runtime().watch(&monitor);
    monitor.begin_phase();

    /// Shared view of the disjoint per-item output slices: item `i`
    /// occupies `base[i*len .. (i+1)*len]` and is claimed by exactly one
    /// runner via the cursor.
    struct ItemSlices {
        base: *mut f32,
        len: usize,
    }
    // SAFETY: cursor-claimed indices give exclusive per-item access.
    unsafe impl Sync for ItemSlices {}
    let slices = ItemSlices { base: c.as_mut_ptr(), len: item };
    // Capture the wrapper by reference: edition-2021 closures would
    // otherwise capture the raw-pointer field directly, sidestepping the
    // `Sync` impl.
    let slices = &slices;

    // First failure across the batch (item errors and contained panics
    // share the slot; worker index breaks ties by arrival).
    let first_err: parking_lot::Mutex<Option<GemmError>> = parking_lot::Mutex::new(None);
    let poisoned = AtomicBool::new(false);
    let cursor = AtomicUsize::new(0);
    let body = |t: usize| {
        let run = catch_unwind(AssertUnwindSafe(|| {
            // One panel pool per engaged runner: A-panel buffers are
            // recycled across every item this runner claims.
            let pool = PanelPool::new();
            loop {
                if poisoned.load(Ordering::Relaxed) || monitor.should_stop() {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= batch.len() {
                    break;
                }
                // SAFETY: items are disjoint `m·n` windows of `c`; the
                // cursor hands index `i` to exactly one runner and the
                // borrow ends before the section joins.
                let c_item = unsafe {
                    std::slice::from_raw_parts_mut(slices.base.add(i * slices.len), slices.len)
                };
                let r = match shared_b.get(&slice_key(batch.b[i])) {
                    Some(packed) => crate::offline::try_gemm_prepacked_supervised(
                        plan, batch.a[i], packed, c_item, 1, &pool, &item_sup,
                    ),
                    None => native::try_gemm_with_plan_supervised(
                        plan, batch.a[i], batch.b[i], c_item, 1, &pool, &item_sup,
                    ),
                };
                match r {
                    Ok(()) => {
                        monitor.beat(t);
                        monitor.note_done();
                    }
                    // A cancelled item is the batch being cancelled, not
                    // an item fault: stop and let the batch monitor
                    // report the progress.
                    Err(GemmError::Cancelled { .. }) => break,
                    Err(e) => {
                        let mut slot = first_err.lock();
                        if slot.is_none() {
                            *slot = Some(GemmError::InBatch { index: i, source: Box::new(e) });
                        }
                        poisoned.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            }
        }));
        if let Err(payload) = run {
            let mut slot = first_err.lock();
            if slot.is_none() {
                *slot = Some(GemmError::WorkerPanicked {
                    thread: t,
                    detail: error::panic_detail(payload.as_ref()),
                });
            }
            poisoned.store(true, Ordering::SeqCst);
        }
    };
    exec.run_section_traced(threads, "batch", &body);
    monitor.finish();
    drop(watchdog);
    for path in BreakerPath::ALL {
        if item_sup.observed_fault(path) {
            sup.observe_fault(path);
        }
    }
    match first_err.into_inner() {
        Some(e) => Err(e),
        None => monitor.outcome("batch", batch.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AutoGemm;
    use autogemm_arch::ChipSpec;

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
    }

    #[test]
    fn batch_matches_naive() {
        let engine = AutoGemm::new(ChipSpec::graviton2());
        let (m, n, k, items) = (8usize, 12usize, 16usize, 7usize);
        let plan = engine.plan(m, n, k);
        let a_store: Vec<Vec<f32>> = (0..items)
            .map(|t| (0..m * k).map(|i| ((i + t * 3) % 9) as f32 - 4.0).collect())
            .collect();
        let b_store: Vec<Vec<f32>> = (0..items)
            .map(|t| (0..k * n).map(|i| ((i * 5 + t) % 11) as f32 - 5.0).collect())
            .collect();
        let mut batch = GemmBatch::new(m, n, k);
        for t in 0..items {
            batch.push(&a_store[t], &b_store[t]);
        }
        let mut c = vec![0.0f32; items * m * n];
        gemm_batch(&plan, &batch, &mut c, 3);
        for t in 0..items {
            let mut want = vec![0.0f32; m * n];
            naive(m, n, k, &a_store[t], &b_store[t], &mut want);
            assert_eq!(&c[t * m * n..(t + 1) * m * n], &want[..], "item {t}");
        }
    }

    #[test]
    fn single_thread_batch_matches_multithread() {
        let engine = AutoGemm::new(ChipSpec::m2());
        let (m, n, k, items) = (5usize, 16usize, 8usize, 5usize);
        let plan = engine.plan(m, n, k);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 3) as f32).collect();
        let mut batch = GemmBatch::new(m, n, k);
        for _ in 0..items {
            batch.push(&a, &b);
        }
        let mut c1 = vec![0.0f32; items * m * n];
        gemm_batch(&plan, &batch, &mut c1, 1);
        let mut c4 = vec![0.0f32; items * m * n];
        gemm_batch(&plan, &batch, &mut c4, 4);
        assert_eq!(c1, c4);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let engine = AutoGemm::new(ChipSpec::kp920());
        let plan = engine.plan(4, 4, 4);
        let batch = GemmBatch::new(4, 4, 4);
        let mut c: Vec<f32> = vec![];
        gemm_batch(&plan, &batch, &mut c, 4);
    }

    #[test]
    #[should_panic(expected = "m*k")]
    fn wrong_item_shape_panics() {
        let mut batch = GemmBatch::new(4, 4, 4);
        let a = vec![0.0f32; 7];
        let b = vec![0.0f32; 16];
        batch.push(&a, &b);
    }

    #[test]
    fn flops_accounting() {
        let mut batch = GemmBatch::new(2, 3, 4);
        let a = vec![0.0f32; 8];
        let b = vec![0.0f32; 12];
        batch.push(&a, &b);
        batch.push(&a, &b);
        assert_eq!(batch.flops(), 2 * 2 * 3 * 4 * 2);
    }
}
