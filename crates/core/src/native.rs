//! Native (host) execution backend: explicit-SIMD micro-kernels and the
//! threaded block driver.
//!
//! The micro-kernels are monomorphized over `(m_r, n̄_r)` for every shape
//! in the Table II menu and execute as explicit `(m_r, n̄_r)` register
//! tiles of [`crate::simd::F32x4`] accumulators — NEON on aarch64,
//! SSE2/FMA (runtime-detected) on x86_64, a portable array fallback
//! elsewhere; see [`crate::kernels`]. The scalar reference kernel
//! ([`micro_kernel_ref`]) is kept as the correctness baseline every
//! vector kernel is tested and benchmarked against
//! ([`run_placement_ref`] drives it through the same dispatch table).
//! The block driver walks the same [`ExecutionPlan`] the simulated
//! backend uses.
//!
//! Threading follows the paper's §V-C constraint: cache blocks of `C` are
//! distributed over the persistent worker-pool runtime
//! ([`crate::runtime`] — long-lived workers woken per section, no
//! per-call thread spawn); the K dimension is **never**
//! split across threads (the TVM limitation autoGEMM inherits), so each
//! `C` block is owned by exactly one thread and no reduction races exist.
//! Because a strided `C` window overlaps other blocks' bytes, writes go
//! through a raw-pointer tile handle ([`CTile`]) whose accessed cells are
//! provably disjoint across threads, rather than through overlapping
//! `&mut` slices (which would be UB regardless of write disjointness).
//!
//! ## Panel cache (amortized packing)
//!
//! The driver packs every operand panel exactly once per GEMM: A panels
//! `(bi, kb)` are shared across all column blocks and B panels `(kb, bj)`
//! across all row blocks, so a `tm × tn × tk` grid performs
//! `(tm + tn)·tk` packs instead of the `2·tm·tn·tk` a per-block repacking
//! loop would (§IV-C2 makes amortized packing a first-class tuning axis).
//! Panel buffers come from a [`PanelPool`] and are returned after the
//! call, so steady-state GEMMs allocate nothing. Blocks are then drained
//! from a shared atomic cursor over the `σ_order`-sorted block list —
//! irregular grids whose edge blocks are cheap load-balance dynamically
//! instead of by static thread striding. Packed panel contents and the
//! per-block `kb`-ascending accumulation order are identical to the
//! historical per-block path ([`gemm_with_plan_repack`]), so results are
//! bit-identical.

use crate::error::{self, GemmError};
use crate::faultinject::{self, FaultSite, Probe};
use crate::kernels::Operand;
use crate::offline::PackedB;
use crate::packing::{pack_a, pack_a_into, pack_b, pack_b_into, PackedBlock, PanelPool};
use crate::plan::ExecutionPlan;
use crate::runtime::Exec;
use crate::supervisor::{BreakerPath, RunMonitor, Supervision};
use crate::telemetry::clock::Stamp;
use crate::telemetry::report::{
    FallbackStats, GemmReport, PackStats, PhaseProfile, PhaseTimes, ThreadProfile,
};
use crate::telemetry::session::{self, Session};
use autogemm_tiling::TilePlacement;
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared poison flag for one parallel section. The first panicking
/// worker records its index and payload here; survivors poll
/// [`Poison::is_poisoned`] between blocks and stop claiming work, so the
/// section always joins cleanly (no deadlock) and the caller gets a
/// structured [`GemmError::WorkerPanicked`] instead of an abort.
pub(crate) struct Poison {
    hit: AtomicBool,
    first: Mutex<Option<(usize, String)>>,
}

impl Poison {
    pub(crate) fn new() -> Self {
        Poison { hit: AtomicBool::new(false), first: Mutex::new(None) }
    }

    #[inline]
    pub(crate) fn is_poisoned(&self) -> bool {
        self.hit.load(Ordering::Relaxed)
    }

    pub(crate) fn record(&self, thread: usize, payload: Box<dyn std::any::Any + Send>) {
        {
            let mut first = self.first.lock();
            if first.is_none() {
                *first = Some((thread, error::panic_detail(payload.as_ref())));
            }
        }
        self.hit.store(true, Ordering::SeqCst);
    }

    pub(crate) fn into_result(self) -> Result<(), GemmError> {
        match self.first.into_inner() {
            Some((thread, detail)) => Err(GemmError::WorkerPanicked { thread, detail }),
            None => Ok(()),
        }
    }
}

/// Run `f` on the caller thread with panic containment. The caller
/// thread acts as worker 0 (setup phases and single-threaded runs), so a
/// caught panic reports `thread: 0`.
pub(crate) fn contain<R>(f: impl FnOnce() -> R) -> Result<R, GemmError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| GemmError::WorkerPanicked {
        thread: 0,
        detail: error::panic_detail(payload.as_ref()),
    })
}

/// Consult the fault-injection plan at `site` from the caller thread,
/// containing an injected panic as a worker-0 panic. Compiles to
/// `Ok(Probe::Ok)` without the `faultinject` feature.
#[inline(always)]
fn probe_contained(site: FaultSite) -> Result<Probe, GemmError> {
    #[cfg(feature = "faultinject")]
    {
        contain(|| faultinject::probe(site))
    }
    #[cfg(not(feature = "faultinject"))]
    {
        let _ = site;
        Ok(Probe::Ok)
    }
}

/// Setup-phase degradation decisions for one run, made (and contained)
/// on the caller thread before any panel is packed. Shared with the
/// degenerate-shape fast paths ([`crate::gemv`]), which probe the same
/// dispatch site so fault injection and breaker reroutes cover them.
pub(crate) struct RunConfig {
    /// Route every placement to the scalar reference kernels — the
    /// degradation path for a failed SIMD backend probe (only reachable
    /// through `faultinject`; the real [`crate::simd::SimdBackend`]
    /// probe always has the portable fallback), or a circuit-breaker
    /// reroute imposed via [`Supervision`].
    pub(crate) reference: bool,
    /// Circuit-breaker reroute: skip the caller's pool entirely and pack
    /// into transient buffers.
    force_transient: bool,
    /// Degraded pool submission (fault injection or an open
    /// `pool_submit` breaker): the caller drains every threaded section
    /// inline instead of submitting it to the worker pool. Correct —
    /// section bodies are slot-agnostic cursor drains — just slower.
    pub(crate) pool_inline: bool,
    /// Degradations taken, for the traced driver's report.
    pub(crate) fallbacks: FallbackStats,
}

impl RunConfig {
    /// Probe the dispatch path and (for `threads > 1`) the pool-submit
    /// path, honouring any breaker reroutes carried by `sup` (a
    /// quarantined path is bypassed, not probed — the whole point of the
    /// quarantine is not to touch it). Faults observed here are reported
    /// into `sup` for the engine's breaker accounting.
    pub(crate) fn probe(sup: &Supervision, threads: usize) -> Result<RunConfig, GemmError> {
        let mut cfg = RunConfig {
            reference: false,
            force_transient: sup.force_transient,
            pool_inline: false,
            fallbacks: FallbackStats::default(),
        };
        if sup.force_reference {
            cfg.reference = true;
            cfg.fallbacks.breaker_reroutes += 1;
        } else {
            match probe_contained(FaultSite::KernelDispatch) {
                // `Stall` is only meaningful at the heartbeat site,
                // `Corrupt` only at the compute site.
                Ok(Probe::Ok) | Ok(Probe::Stall(_)) | Ok(Probe::Corrupt { .. }) => {}
                Ok(Probe::Degrade) | Ok(Probe::Fail) => {
                    // Degrade *and* Fail both land on the scalar path: a
                    // kernel backend that cannot be selected still has a
                    // correct reference implementation, so dispatch never
                    // needs to fail the whole GEMM.
                    sup.observe_fault(BreakerPath::SimdDispatch);
                    cfg.reference = true;
                    cfg.fallbacks.scalar_kernels += 1;
                }
                Err(e) => {
                    sup.observe_fault(BreakerPath::SimdDispatch);
                    return Err(e);
                }
            }
        }
        if sup.force_transient {
            cfg.fallbacks.breaker_reroutes += 1;
        }
        // The pool-submit gate only exists on calls that would actually
        // submit: single-threaded runs drain inline by construction.
        if threads > 1 {
            if sup.force_inline {
                cfg.pool_inline = true;
                cfg.fallbacks.breaker_reroutes += 1;
            } else {
                match probe_contained(FaultSite::PoolSubmit) {
                    Ok(Probe::Ok) | Ok(Probe::Stall(_)) | Ok(Probe::Corrupt { .. }) => {}
                    Ok(Probe::Degrade) => {
                        sup.observe_fault(BreakerPath::PoolSubmit);
                        cfg.pool_inline = true;
                        cfg.fallbacks.inline_drains += 1;
                    }
                    Ok(Probe::Fail) => {
                        sup.observe_fault(BreakerPath::PoolSubmit);
                        return Err(GemmError::AllocFailed { phase: "pool submit" });
                    }
                    Err(e) => {
                        sup.observe_fault(BreakerPath::PoolSubmit);
                        return Err(e);
                    }
                }
            }
        }
        Ok(cfg)
    }

    /// Choose the packing pool for one pack phase: the caller's pool, or
    /// a transient one when the pool allocation is poisoned (`Degrade`)
    /// or quarantined by the breaker. `Fail` simulates an unrecoverable
    /// allocation failure.
    fn pack_pool<'a>(
        &mut self,
        caller: &'a PanelPool,
        transient: &'a PanelPool,
        phase: &'static str,
        sup: &Supervision,
    ) -> Result<&'a PanelPool, GemmError> {
        if self.force_transient {
            return Ok(transient);
        }
        match probe_contained(FaultSite::PackAlloc) {
            Ok(Probe::Ok) | Ok(Probe::Stall(_)) | Ok(Probe::Corrupt { .. }) => Ok(caller),
            Ok(Probe::Degrade) => {
                sup.observe_fault(BreakerPath::PoolAlloc);
                self.fallbacks.pool_packs += 1;
                Ok(transient)
            }
            Ok(Probe::Fail) => {
                sup.observe_fault(BreakerPath::PoolAlloc);
                Err(GemmError::AllocFailed { phase })
            }
            Err(e) => {
                sup.observe_fault(BreakerPath::PoolAlloc);
                Err(e)
            }
        }
    }
}

/// One worker's block-claim checkpoint: consult the heartbeat fault site
/// (a `Stall` wedges here — a worker stuck *before* finishing its
/// claimed block, which is exactly what the watchdog exists to catch —
/// bounded by the stall's cap and broken early by supervision), then
/// bump the worker's heartbeat counter. Returns `false` when the run
/// was cancelled while wedged: the caller must skip the claimed block
/// and stop (the block was never executed, per the partial-`C`
/// contract).
#[inline]
pub(crate) fn heartbeat(monitor: &RunMonitor, t: usize) -> bool {
    if let Probe::Stall(cap_ms) = faultinject::probe(FaultSite::WorkerHeartbeat) {
        let t0 = std::time::Instant::now();
        let cap = std::time::Duration::from_millis(cap_ms);
        while t0.elapsed() < cap && !monitor.should_stop() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    monitor.beat(t);
    !monitor.should_stop()
}

/// A writable view of one `C` micro-tile: base pointer at the tile's
/// `(0,0)` element plus the row stride.
///
/// # Safety contract
/// The creator guarantees that the cells `{(i, j) : i < eff_rows, j <
/// eff_cols}` are not accessed by any other thread for the lifetime of the
/// handle. This holds in the block driver because C blocks are disjoint
/// and K is not split across threads (§V-C).
#[derive(Clone, Copy)]
pub struct CTile {
    ptr: *mut f32,
    ldc: usize,
    /// Elements from `ptr` to the end of the underlying allocation
    /// (bounds-checked in debug builds).
    len: usize,
}

unsafe impl Send for CTile {}
// SAFETY: a shared `&CTile` (captured by a pool-section body) only hands
// out cells under the type-level disjointness contract above — the same
// argument that justifies `Send`; the handle itself is immutable.
unsafe impl Sync for CTile {}

impl CTile {
    /// # Safety
    /// See the type-level contract. `len` is the number of elements from
    /// `ptr` to the end of the underlying allocation.
    pub unsafe fn new(ptr: *mut f32, ldc: usize, len: usize) -> Self {
        CTile { ptr, ldc, len }
    }

    /// Narrow the handle to the sub-tile at `(row, col)`.
    ///
    /// # Safety
    /// The sub-tile's accessed cells must stay within the original
    /// allocation and this thread's ownership region.
    pub unsafe fn offset(&self, row: usize, col: usize) -> CTile {
        let off = row * self.ldc + col;
        debug_assert!(off <= self.len, "CTile offset {off} beyond len {}", self.len);
        CTile { ptr: unsafe { self.ptr.add(off) }, ldc: self.ldc, len: self.len - off }
    }

    /// Pointer to cell `(i, j)` with room for a vector of [`LANES`]
    /// elements — the vector kernels' load/store access.
    ///
    /// # Safety
    /// The 4 cells starting at `(i, j)` must be inside this handle's
    /// allocation and owned by the calling thread.
    #[inline(always)]
    pub(crate) unsafe fn lanes_ptr(&self, i: usize, j: usize) -> *mut f32 {
        debug_assert!(
            i * self.ldc + j + crate::simd::LANES <= self.len,
            "CTile vector access ({i},{j}) ldc={} beyond len {}",
            self.ldc,
            self.len
        );
        self.ptr.add(i * self.ldc + j)
    }

    #[inline(always)]
    pub(crate) fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(
            i * self.ldc + j < self.len,
            "CTile read ({i},{j}) ldc={} beyond len {}",
            self.ldc,
            self.len
        );
        unsafe { *self.ptr.add(i * self.ldc + j) }
    }

    #[inline(always)]
    pub(crate) fn set(&self, i: usize, j: usize, v: f32) {
        debug_assert!(
            i * self.ldc + j < self.len,
            "CTile write ({i},{j}) ldc={} beyond len {}",
            self.ldc,
            self.len
        );
        unsafe { *self.ptr.add(i * self.ldc + j) = v }
    }
}

/// The scalar reference micro-kernel:
/// `C[0..eff_rows][0..eff_cols] (+)= A[0..MR][0..kc] · B[0..kc][0..NR]`.
///
/// `a` is `MR` rows with leading dimension `lda`; `b` is `kc` rows with
/// leading dimension `ldb` (and at least `NR` readable elements per row,
/// per the packing contract).
///
/// This is the seed's auto-vectorized triple loop, kept verbatim as the
/// semantics the SIMD kernels ([`crate::kernels`]) are verified against:
/// per accumulator it sums `a[i][p]·b[p][j]` in ascending-`p` order with
/// fused multiply-adds, so fused vector backends must match it
/// **bit-for-bit** and unfused ones within rounding tolerance.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub fn micro_kernel_ref<const MR: usize, const NR: usize>(
    kc: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: CTile,
    accumulate: bool,
    eff_rows: usize,
    eff_cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    if accumulate {
        for (i, row) in acc.iter_mut().enumerate().take(eff_rows) {
            for (j, v) in row.iter_mut().enumerate().take(eff_cols) {
                *v = c.get(i, j);
            }
        }
    }
    for p in 0..kc {
        let brow = &b[p * ldb..p * ldb + NR];
        for (i, row) in acc.iter_mut().enumerate() {
            let aip = a[i * lda + p];
            for (j, v) in row.iter_mut().enumerate() {
                *v = brow[j].mul_add(aip, *v);
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(eff_rows) {
        for (j, v) in row.iter().enumerate().take(eff_cols) {
            c.set(i, j, *v);
        }
    }
}

/// Largest tile the dynamic fallback computes in one piece — the max
/// feasible Table II tile (`m_r ≤ 8`, `n̄_r ≤ 7` ⇒ `n_r ≤ 28` lanes).
const DYN_MAX_MR: usize = 8;
const DYN_MAX_NR: usize = 28;

/// Fallback kernel for shapes outside the monomorphized menu (e.g. wide
/// SVE tiles executed natively).
///
/// The accumulator is a fixed-size stack buffer bounded by the max
/// feasible tile (8×28) — no allocation per call. Wider/taller requests
/// (SVE tiles reach 8×112) are computed in independent 8×28 sub-tiles of
/// `C`, which is exact: sub-tiles of the register tile share no cells
/// and each still sums its `k` products in ascending order.
#[allow(clippy::too_many_arguments)]
fn micro_kernel_dyn(
    mr: usize,
    nr: usize,
    kc: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: CTile,
    accumulate: bool,
    eff_rows: usize,
    eff_cols: usize,
) {
    if mr > DYN_MAX_MR || nr > DYN_MAX_NR {
        for r0 in (0..mr).step_by(DYN_MAX_MR) {
            let sub_mr = (mr - r0).min(DYN_MAX_MR);
            let sub_er = eff_rows.saturating_sub(r0).min(sub_mr);
            for c0 in (0..nr).step_by(DYN_MAX_NR) {
                let sub_nr = (nr - c0).min(DYN_MAX_NR);
                let sub_ec = eff_cols.saturating_sub(c0).min(sub_nr);
                if sub_er == 0 || sub_ec == 0 {
                    continue;
                }
                // SAFETY: the sub-tile stays inside this placement's
                // effective region, owned by the calling thread.
                let sub_c = unsafe { c.offset(r0, c0) };
                micro_kernel_dyn(
                    sub_mr,
                    sub_nr,
                    kc,
                    &a[r0 * lda..],
                    lda,
                    &b[c0..],
                    ldb,
                    sub_c,
                    accumulate,
                    sub_er,
                    sub_ec,
                );
            }
        }
        return;
    }
    // Telemetry: count the leaf shape actually executed — oversized
    // requests above contribute one record per chunked sub-dispatch, so
    // histograms never under-count dispatched tiles.
    session::record_tile(mr, nr);
    let mut acc = [[0.0f32; DYN_MAX_NR]; DYN_MAX_MR];
    if accumulate {
        for (i, row) in acc.iter_mut().enumerate().take(eff_rows) {
            for (j, v) in row.iter_mut().enumerate().take(eff_cols) {
                *v = c.get(i, j);
            }
        }
    }
    for p in 0..kc {
        let brow = &b[p * ldb..p * ldb + nr];
        for (i, row) in acc.iter_mut().enumerate().take(mr) {
            let aip = a[i * lda + p];
            for (j, v) in row.iter_mut().take(nr).enumerate() {
                *v += aip * brow[j];
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(eff_rows) {
        for (j, v) in row.iter().enumerate().take(eff_cols) {
            c.set(i, j, *v);
        }
    }
}

/// The monomorphized `(m_r, n_r)` kernel menu — the feasible Table II
/// shapes (`m_r ≤ 8`, `n̄_r ≤ 7`). Shapes outside this list fall back to
/// [`micro_kernel_dyn`]. Exposed so benches and tests can sweep exactly
/// the dispatched menu.
pub const KERNEL_MENU: &[(usize, usize)] = &[
    (1, 4),
    (1, 8),
    (1, 12),
    (1, 16),
    (1, 20),
    (1, 24),
    (1, 28),
    (2, 4),
    (2, 8),
    (2, 12),
    (2, 16),
    (2, 20),
    (2, 24),
    (2, 28),
    (3, 4),
    (3, 8),
    (3, 12),
    (3, 16),
    (3, 20),
    (3, 24),
    (3, 28),
    (4, 4),
    (4, 8),
    (4, 12),
    (4, 16),
    (4, 20),
    (5, 4),
    (5, 8),
    (5, 12),
    (5, 16),
    (6, 4),
    (6, 8),
    (6, 12),
    (7, 4),
    (7, 8),
    (7, 12),
    (8, 4),
    (8, 8),
];

/// One menu entry, monomorphized over `(MR, NRV, NR)`: the SIMD kernel
/// ([`crate::kernels::micro_kernel_simd`]) or the scalar reference
/// ([`micro_kernel_ref`]), selected by `reference`. Both are reached
/// through the same table so benches compare like against like.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn exec_tile<const MR: usize, const NRV: usize, const NR: usize>(
    reference: bool,
    kc: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: CTile,
    accumulate: bool,
    eff_rows: usize,
    eff_cols: usize,
) {
    session::record_tile(MR, NR);
    if reference {
        micro_kernel_ref::<MR, NR>(kc, a, lda, b, ldb, c, accumulate, eff_rows, eff_cols);
    } else {
        crate::kernels::micro_kernel_simd::<MR, NRV>(
            kc, a, lda, b, ldb, c, accumulate, eff_rows, eff_cols,
        );
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn run_placement_impl(
    reference: bool,
    p: &TilePlacement,
    kc: usize,
    a_panel: &[f32],
    lda: usize,
    b_panel: &[f32],
    ldb: usize,
    c_block: CTile,
    accumulate: bool,
) {
    let a = &a_panel[p.row * lda..];
    let b = &b_panel[p.col..];
    // SAFETY: the tile handle narrows the block handle; tiles within a
    // validated plan are disjoint.
    let c = unsafe { c_block.offset(p.row, p.col) };
    let nrv = p.tile.nr / 4;
    macro_rules! dispatch {
        ($(($mr:literal, $nrv:literal, $nr:literal)),* $(,)?) => {
            match (p.tile.mr, nrv) {
                $(
                    ($mr, $nrv) => exec_tile::<$mr, $nrv, $nr>(
                        reference, kc, a, lda, b, ldb, c, accumulate, p.eff_rows, p.eff_cols,
                    ),
                )*
                _ => micro_kernel_dyn(
                    p.tile.mr, p.tile.nr, kc, a, lda, b, ldb, c, accumulate,
                    p.eff_rows, p.eff_cols,
                ),
            }
        };
    }
    // The Table II menu (feasible m_r ≤ 8, n̄_r ≤ 7 shapes) — keep in
    // sync with [`KERNEL_MENU`] (pinned by the `dispatch_menu` test).
    dispatch!(
        (1, 1, 4),
        (1, 2, 8),
        (1, 3, 12),
        (1, 4, 16),
        (1, 5, 20),
        (1, 6, 24),
        (1, 7, 28),
        (2, 1, 4),
        (2, 2, 8),
        (2, 3, 12),
        (2, 4, 16),
        (2, 5, 20),
        (2, 6, 24),
        (2, 7, 28),
        (3, 1, 4),
        (3, 2, 8),
        (3, 3, 12),
        (3, 4, 16),
        (3, 5, 20),
        (3, 6, 24),
        (3, 7, 28),
        (4, 1, 4),
        (4, 2, 8),
        (4, 3, 12),
        (4, 4, 16),
        (4, 5, 20),
        (5, 1, 4),
        (5, 2, 8),
        (5, 3, 12),
        (5, 4, 16),
        (6, 1, 4),
        (6, 2, 8),
        (6, 3, 12),
        (7, 1, 4),
        (7, 2, 8),
        (7, 3, 12),
        (8, 1, 4),
        (8, 2, 8),
    );
}

/// Dispatch a placement to the right monomorphized SIMD kernel. `a`/`b`
/// are the packed block panels; `c` is a handle at the *block's* (0,0)
/// with the full matrix stride.
#[allow(clippy::too_many_arguments)]
pub fn run_placement(
    p: &TilePlacement,
    kc: usize,
    a_panel: &[f32],
    lda: usize,
    b_panel: &[f32],
    ldb: usize,
    c_block: CTile,
    accumulate: bool,
) {
    run_placement_impl(false, p, kc, a_panel, lda, b_panel, ldb, c_block, accumulate);
}

/// [`run_placement`] routed to the scalar reference kernels — the
/// benchmarking baseline and correctness oracle for the SIMD menu.
#[allow(clippy::too_many_arguments)]
pub fn run_placement_ref(
    p: &TilePlacement,
    kc: usize,
    a_panel: &[f32],
    lda: usize,
    b_panel: &[f32],
    ldb: usize,
    c_block: CTile,
    accumulate: bool,
) {
    run_placement_impl(true, p, kc, a_panel, lda, b_panel, ldb, c_block, accumulate);
}

/// Is `(mr, nr)` one of the monomorphized menu shapes (executed by the
/// fused SIMD kernels / the fused scalar reference)? Off-menu shapes run
/// on the unfused [`micro_kernel_dyn`] in both the packed and unpacked
/// paths, so accumulation chains stay consistent per routing.
#[inline]
fn is_menu_tile(mr: usize, nr: usize) -> bool {
    KERNEL_MENU.contains(&(mr, nr))
}

/// Bounds-exact fused scalar kernel for *unpacked* edge tiles: reads only
/// the `eff_rows × eff_cols` cells that actually exist (a packed panel
/// would be padded here), accumulating each stored `C` cell in
/// ascending-`k` order with fused multiply-adds — the same chains as
/// [`micro_kernel_ref`] and the fused SIMD kernels, so on fused backends
/// an unpacked edge tile is bit-identical to its packed counterpart.
#[allow(clippy::too_many_arguments)]
fn micro_kernel_edge(
    kc: usize,
    a: &[f32],
    lda: usize,
    b: &[f32],
    ldb: usize,
    c: CTile,
    accumulate: bool,
    eff_rows: usize,
    eff_cols: usize,
) {
    debug_assert!(eff_rows <= DYN_MAX_MR && eff_cols <= DYN_MAX_NR);
    let mut acc = [[0.0f32; DYN_MAX_NR]; DYN_MAX_MR];
    if accumulate {
        for (i, row) in acc.iter_mut().enumerate().take(eff_rows) {
            for (j, v) in row.iter_mut().enumerate().take(eff_cols) {
                *v = c.get(i, j);
            }
        }
    }
    for p in 0..kc {
        let brow = &b[p * ldb..p * ldb + eff_cols];
        for (i, row) in acc.iter_mut().enumerate().take(eff_rows) {
            let aip = a[i * lda + p];
            for (j, v) in row.iter_mut().enumerate().take(eff_cols) {
                *v = brow[j].mul_add(aip, *v);
            }
        }
    }
    for (i, row) in acc.iter().enumerate().take(eff_rows) {
        for (j, v) in row.iter().enumerate().take(eff_cols) {
            c.set(i, j, *v);
        }
    }
}

/// Dispatch one placement against [`Operand`] views of A and B — the
/// operand-aware twin of [`run_placement_impl`].
///
/// A placement whose *full* tile stays inside both operands' valid
/// extents runs on the ordinary menu dispatch (packed panels always do:
/// padding makes every full-tile read legal; unpacked operands do
/// whenever the tile does not overhang the matrix edge — for A that is
/// every placement, since DMT tiles never overhang M, and for B every
/// placement except the lane-rounded right edge when `n_c` is not a
/// multiple of σ_lane). An overhanging placement is rerouted to a
/// bounds-exact kernel over its effective region: the fused scalar edge
/// kernel for menu tiles, [`micro_kernel_dyn`] clipped to
/// `eff_rows × eff_cols` for off-menu tiles — preserving each path's
/// accumulation chains, so stored `C` cells match the packed routing
/// bit-for-bit on fused backends.
pub(crate) fn run_placement_operands(
    reference: bool,
    p: &TilePlacement,
    kc: usize,
    a: &Operand<'_>,
    b: &Operand<'_>,
    c_block: CTile,
    accumulate: bool,
) {
    let full_tile_safe = p.row + p.tile.mr <= a.avail() && p.col + p.tile.nr <= b.avail();
    if full_tile_safe {
        run_placement_impl(
            reference,
            p,
            kc,
            a.data(),
            a.ld(),
            b.data(),
            b.ld(),
            c_block,
            accumulate,
        );
        return;
    }
    let a_sl = &a.data()[p.row * a.ld()..];
    let b_sl = &b.data()[p.col..];
    // SAFETY: the tile handle narrows the block handle; tiles within a
    // validated plan are disjoint.
    let c = unsafe { c_block.offset(p.row, p.col) };
    if is_menu_tile(p.tile.mr, p.tile.nr) {
        session::record_tile(p.tile.mr, p.tile.nr);
        micro_kernel_edge(
            kc,
            a_sl,
            a.ld(),
            b_sl,
            b.ld(),
            c,
            accumulate,
            p.eff_rows.min(a.avail().saturating_sub(p.row)),
            p.eff_cols.min(b.avail().saturating_sub(p.col)),
        );
    } else {
        let er = p.eff_rows.min(a.avail().saturating_sub(p.row));
        let ec = p.eff_cols.min(b.avail().saturating_sub(p.col));
        micro_kernel_dyn(er, ec, kc, a_sl, a.ld(), b_sl, b.ld(), c, accumulate, er, ec);
    }
}

/// The A-operand source for the cached block driver: packed per-`(bi,
/// kb)` panels, or the caller's row-major matrix streamed directly
/// (packing elided by the input-aware dispatch layer).
pub(crate) enum ASource<'x> {
    Packed(&'x [PackedBlock]),
    Unpacked(&'x [f32]),
}

impl ASource<'_> {
    /// The operand view for K-slice `kb` of row block `bi`.
    #[inline]
    fn operand(
        &self,
        s: &autogemm_tuner::Schedule,
        bi: usize,
        kb: usize,
        tk: usize,
    ) -> Operand<'_> {
        match self {
            ASource::Packed(panels) => {
                let pa = &panels[bi * tk + kb];
                Operand::Packed { data: &pa.data, ld: pa.ld }
            }
            ASource::Unpacked(a) => Operand::Unpacked {
                data: &a[bi * s.mc * s.k + kb * s.kc..],
                ld: s.k,
                avail: s.m - bi * s.mc,
            },
        }
    }
}

/// The B-operand source for the cached block driver: packed panels
/// (owned or offline), or the caller's matrix streamed strided.
pub(crate) enum BSource<'x> {
    Packed(&'x BPanels<'x>),
    Unpacked(&'x [f32]),
}

impl BSource<'_> {
    /// The operand view for K-slice `kb` of column block `bj`.
    #[inline]
    fn operand(&self, s: &autogemm_tuner::Schedule, kb: usize, bj: usize) -> Operand<'_> {
        match self {
            BSource::Packed(bp) => {
                let pb = bp.panel(kb, bj);
                Operand::Packed { data: &pb.data, ld: pb.ld }
            }
            BSource::Unpacked(b) => Operand::Unpacked {
                data: &b[kb * s.kc * s.n + bj * s.nc..],
                ld: s.n,
                avail: s.n - bj * s.nc,
            },
        }
    }
}

/// The B-panel source for the cached block driver: packed in this call,
/// or borrowed zero-copy from an offline [`PackedB`].
pub(crate) enum BPanels<'p> {
    /// Panels indexed `[kb * tn + bj]`, packed by this GEMM call.
    Owned { panels: Vec<PackedBlock>, tn: usize },
    /// Offline-packed B (`crate::offline::PackedB`), reused across calls.
    Prepacked(&'p PackedB),
}

impl BPanels<'_> {
    #[inline]
    fn panel(&self, kb: usize, bj: usize) -> &PackedBlock {
        match self {
            BPanels::Owned { panels, tn } => &panels[kb * tn + bj],
            BPanels::Prepacked(pb) => pb.panel(kb, bj),
        }
    }
}

/// Execute a plan natively: `C (M×N) = A (M×K) · B (K×N)` row-major,
/// using `threads` worker threads over the cache-block grid.
///
/// Uses a transient panel pool; prefer [`gemm_with_plan_pooled`] (or the
/// engine front door, which holds a persistent pool) when calling
/// repeatedly.
///
/// Panics with the structured [`GemmError`] message on invalid operands
/// or a contained worker panic; [`try_gemm_with_plan`] is the fallible
/// form.
pub fn gemm_with_plan(plan: &ExecutionPlan, a: &[f32], b: &[f32], c: &mut [f32], threads: usize) {
    if let Err(e) = try_gemm_with_plan(plan, a, b, c, threads) {
        panic!("{e}");
    }
}

/// Fallible [`gemm_with_plan`]: validates operands against the plan's
/// shape, handles degenerate dimensions, and contains worker panics —
/// see [`crate::error`] for the panic policy and the untouched-`C`
/// guarantee.
pub fn try_gemm_with_plan(
    plan: &ExecutionPlan,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) -> Result<(), GemmError> {
    let pool = PanelPool::new();
    try_gemm_with_plan_pooled(plan, a, b, c, threads, &pool)
}

/// [`gemm_with_plan`] with an explicit panel-buffer pool: panel
/// allocations made by this call are recycled through `pool`, so repeated
/// calls through the same pool allocate nothing after warm-up.
///
/// Panics with the structured [`GemmError`] message on invalid operands
/// or a contained worker panic; [`try_gemm_with_plan_pooled`] is the
/// fallible form.
pub fn gemm_with_plan_pooled(
    plan: &ExecutionPlan,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    pool: &PanelPool,
) {
    if let Err(e) = try_gemm_with_plan_pooled(plan, a, b, c, threads, pool) {
        panic!("{e}");
    }
}

/// Fallible [`gemm_with_plan_pooled`]. Operands are validated against
/// the plan's shape before any work (length mismatches and size
/// overflows leave `C` untouched); `m == 0 || n == 0` returns with `C`
/// untouched, `k == 0` writes the empty sum (`C = 0`); worker panics are
/// contained and reported as [`GemmError::WorkerPanicked`].
pub fn try_gemm_with_plan_pooled(
    plan: &ExecutionPlan,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    pool: &PanelPool,
) -> Result<(), GemmError> {
    try_gemm_with_plan_supervised(plan, a, b, c, threads, pool, &Supervision::none())
}

/// [`try_gemm_with_plan_pooled`] under a [`Supervision`] bundle:
/// deadline/cancel checks at panel and block boundaries, per-worker
/// heartbeats for the opt-in watchdog, and any circuit-breaker reroutes
/// the bundle carries. With `Supervision::none()` the monitor is passive
/// (one predictable branch per checkpoint, no clock reads) and behavior
/// is identical to the unsupervised call.
///
/// On [`GemmError::Cancelled`]/[`GemmError::Stalled`] every panel buffer
/// has been released back to its pool and the plan/pool/engine are
/// immediately reusable; `C` follows the [`crate::error`] partial-write
/// contract (untouched unless the kernel phase had started).
pub fn try_gemm_with_plan_supervised(
    plan: &ExecutionPlan,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    pool: &PanelPool,
    sup: &Supervision,
) -> Result<(), GemmError> {
    let s = &plan.schedule;
    let (m, n, k) = (s.m, s.n, s.k);
    error::check_operands(m, n, k, a, b, c)?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    if k == 0 {
        c.fill(0.0);
        return Ok(());
    }
    let (tm, tn, tk) = plan.grid();
    let routing = plan.routing;
    let mut cfg = RunConfig::probe(sup, threads)?;
    let exec = Exec::new(sup, cfg.pool_inline);
    let transient = PanelPool::new();

    let monitor = RunMonitor::new(sup, threads.max(1));
    let watchdog = exec.runtime().watch(&monitor);
    // All phases run inside this closure so every early return still
    // flows through `monitor.finish()` before the watch registration is
    // dropped (the hub never samples a finished run).
    //
    // When a pack phase is elided by the plan's operand routing, the
    // phase still runs its pool probe (so fault-injection and degrade
    // accounting see the same sites either way) and its cancellation
    // checkpoint (so a cancelled call reports the same `phase` it would
    // with packing on) — it just packs nothing.
    let result = (|| {
        monitor.begin_phase();
        let a_pool = cfg.pack_pool(pool, &transient, "pack A", sup)?;
        let a_panels = if routing.pack_a {
            Some(try_pack_a_panels_supervised(plan, a, threads, a_pool, &exec, &monitor)?)
        } else {
            // Poll before resolving: `outcome` reports a cancellation
            // only once `should_stop` has latched it (the packed path
            // polls inside its slot loop).
            let _ = monitor.should_stop();
            monitor.outcome("pack A", tm * tk)?;
            None
        };
        let release_a = |panels: Option<Vec<PackedBlock>>| {
            if let Some(panels) = panels {
                a_pool.release_blocks(panels);
            }
        };
        let b_pool = match cfg.pack_pool(pool, &transient, "pack B", sup) {
            Ok(p) => p,
            Err(e) => {
                release_a(a_panels);
                return Err(e);
            }
        };
        monitor.begin_phase();
        let b_panels = if routing.pack_b {
            let mut panels = b_pool.acquire_blocks(tk * tn);
            let packed = try_pack_panels_parallel(
                &mut panels,
                threads,
                &exec,
                &monitor,
                "pack B",
                |idx, p| {
                    let (kb, bj) = (idx / tn, idx % tn);
                    pack_b_into(p, b, n, kb * s.kc, bj * s.nc, s.kc, s.nc, plan.sigma_lane);
                },
            );
            if let Err(e) = packed {
                release_a(a_panels);
                b_pool.release_blocks(panels);
                return Err(e);
            }
            Some(panels)
        } else {
            let _ = monitor.should_stop();
            if let Err(e) = monitor.outcome("pack B", tk * tn) {
                release_a(a_panels);
                return Err(e);
            }
            None
        };

        let owned_b = b_panels.map(|panels| BPanels::Owned { panels, tn });
        let a_src = match &a_panels {
            Some(panels) => ASource::Packed(panels),
            None => ASource::Unpacked(a),
        };
        let b_src = match &owned_b {
            Some(bp) => BSource::Packed(bp),
            None => BSource::Unpacked(b),
        };
        monitor.begin_phase();
        let run =
            try_run_blocks_cached(plan, &a_src, &b_src, c, threads, cfg.reference, &exec, &monitor);

        // Buffers go back even when the run was poisoned or cancelled: a
        // contained panic never corrupts a panel buffer (they hold plain
        // `f32`s), so the pool stays usable for the caller's next attempt.
        release_a(a_panels);
        if let Some(BPanels::Owned { panels, .. }) = owned_b {
            b_pool.release_blocks(panels);
        }
        run
    })();
    monitor.finish();
    drop(watchdog);
    if matches!(result, Err(GemmError::WorkerPanicked { .. }) | Err(GemmError::Stalled { .. })) {
        sup.observe_fault(BreakerPath::ThreadedDriver);
    }
    result
}

/// [`gemm_with_plan_pooled`] with per-call telemetry: returns a
/// [`GemmReport`] carrying the phase breakdown (pack-A, pack-B, kernel,
/// drain), pack counts/bytes, per-thread busy profiles from the work
/// queue, and the kernel-shape histogram actually dispatched.
///
/// The numeric path is the cached driver's, executed in the same pack and
/// accumulation order — outputs are bit-identical to
/// [`gemm_with_plan_pooled`] whether or not the `telemetry` feature is
/// enabled. With the feature disabled the report's timings and counters
/// are all zero (the clock and session hooks compile to no-ops) but its
/// structure — shape, grid, thread count — is still filled in.
pub fn gemm_with_plan_traced(
    plan: &ExecutionPlan,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    pool: &PanelPool,
) -> GemmReport {
    match try_gemm_with_plan_traced(plan, a, b, c, threads, pool) {
        Ok(report) => report,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`gemm_with_plan_traced`]: the same validation, degenerate
/// shapes and containment as [`try_gemm_with_plan_pooled`]. Degenerate
/// shapes return a structurally filled report with no thread profiles
/// (there is no parallel section to profile); degradations taken during
/// the run land in [`GemmReport::fallbacks`].
pub fn try_gemm_with_plan_traced(
    plan: &ExecutionPlan,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    pool: &PanelPool,
) -> Result<GemmReport, GemmError> {
    try_gemm_with_plan_traced_supervised(plan, a, b, c, threads, pool, &Supervision::none())
}

/// [`try_gemm_with_plan_traced`] under a [`Supervision`] bundle — the
/// traced twin of [`try_gemm_with_plan_supervised`], with the same
/// cancellation points, buffer-release guarantees and breaker-fault
/// attribution. The engine stamps the report's `health` section after the
/// call (the driver leaves it default).
pub fn try_gemm_with_plan_traced_supervised(
    plan: &ExecutionPlan,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
    pool: &PanelPool,
    sup: &Supervision,
) -> Result<GemmReport, GemmError> {
    let s = &plan.schedule;
    let (m, n, k) = (s.m, s.n, s.k);
    error::check_operands(m, n, k, a, b, c)?;
    if m == 0 || n == 0 || k == 0 {
        if k == 0 {
            c.fill(0.0);
        }
        return Ok(GemmReport {
            m,
            n,
            k,
            threads: 0,
            mc: s.mc,
            nc: s.nc,
            kc: s.kc,
            ..GemmReport::default()
        });
    }
    let (tm, tn, tk) = plan.grid();
    let routing = plan.routing;
    let mut cfg = RunConfig::probe(sup, threads)?;
    let exec = Exec::new(sup, cfg.pool_inline);
    let transient = PanelPool::new();

    let sess = Arc::new(Session::new());
    let t0 = Stamp::now();

    let monitor = RunMonitor::new(sup, threads.max(1));
    let watchdog = exec.runtime().watch(&monitor);
    let result = (|| {
        let pa0 = Stamp::now();
        let a_pool = cfg.pack_pool(pool, &transient, "pack A", sup)?;
        monitor.begin_phase();
        let a_panels = if routing.pack_a {
            let mut panels = a_pool.acquire_blocks(tm * tk);
            let packed = try_pack_panels_parallel(
                &mut panels,
                threads,
                &exec,
                &monitor,
                "pack A",
                |idx, p| {
                    session::with_session(&sess, || {
                        let (bi, kb) = (idx / tk, idx % tk);
                        pack_a_into(p, a, s.k, bi * s.mc, kb * s.kc, s.mc, s.kc, plan.sigma_lane);
                    })
                },
            );
            if let Err(e) = packed {
                a_pool.release_blocks(panels);
                return Err(e);
            }
            Some(panels)
        } else {
            let _ = monitor.should_stop();
            monitor.outcome("pack A", tm * tk)?;
            None
        };
        let pack_a_t = pa0.elapsed();
        let release_a = |panels: Option<Vec<PackedBlock>>| {
            if let Some(panels) = panels {
                a_pool.release_blocks(panels);
            }
        };

        let pb0 = Stamp::now();
        let b_pool = match cfg.pack_pool(pool, &transient, "pack B", sup) {
            Ok(p) => p,
            Err(e) => {
                release_a(a_panels);
                return Err(e);
            }
        };
        monitor.begin_phase();
        let b_panels = if routing.pack_b {
            let mut panels = b_pool.acquire_blocks(tk * tn);
            let packed = try_pack_panels_parallel(
                &mut panels,
                threads,
                &exec,
                &monitor,
                "pack B",
                |idx, p| {
                    session::with_session(&sess, || {
                        let (kb, bj) = (idx / tn, idx % tn);
                        pack_b_into(p, b, n, kb * s.kc, bj * s.nc, s.kc, s.nc, plan.sigma_lane);
                    })
                },
            );
            if let Err(e) = packed {
                release_a(a_panels);
                b_pool.release_blocks(panels);
                return Err(e);
            }
            Some(panels)
        } else {
            let _ = monitor.should_stop();
            if let Err(e) = monitor.outcome("pack B", tk * tn) {
                release_a(a_panels);
                return Err(e);
            }
            None
        };
        let pack_b_t = pb0.elapsed();

        let owned_b = b_panels.map(|panels| BPanels::Owned { panels, tn });
        let a_src = match &a_panels {
            Some(panels) => ASource::Packed(panels),
            None => ASource::Unpacked(a),
        };
        let b_src = match &owned_b {
            Some(bp) => BSource::Packed(bp),
            None => BSource::Unpacked(b),
        };
        monitor.begin_phase();
        let run = try_run_blocks_traced(
            plan,
            &a_src,
            &b_src,
            c,
            threads,
            &sess,
            cfg.reference,
            &exec,
            &monitor,
        );

        release_a(a_panels);
        if let Some(BPanels::Owned { panels, .. }) = owned_b {
            b_pool.release_blocks(panels);
        }
        let (thread_profiles, kernel, drain) = run?;
        Ok((thread_profiles, kernel, drain, pack_a_t, pack_b_t))
    })();
    monitor.finish();
    drop(watchdog);
    if matches!(result, Err(GemmError::WorkerPanicked { .. }) | Err(GemmError::Stalled { .. })) {
        sup.observe_fault(BreakerPath::ThreadedDriver);
    }
    let (thread_profiles, kernel, drain, pack_a_t, pack_b_t) = result?;

    let wall = t0.elapsed();
    let stats = sess.take();
    Ok(GemmReport {
        m,
        n,
        k,
        threads: thread_profiles.len(),
        mc: s.mc,
        nc: s.nc,
        kc: s.kc,
        wall,
        phases: PhaseProfile { pack_a: pack_a_t, pack_b: pack_b_t, kernel, drain },
        packs: PackStats {
            a_packs: stats.a_packs,
            b_packs: stats.b_packs,
            a_bytes: stats.a_bytes,
            b_bytes: stats.b_bytes,
        },
        tiles: stats.tile_counts(),
        thread_profiles,
        fallbacks: cfg.fallbacks,
        ..GemmReport::default()
    })
}

/// The traced twin of [`run_blocks_cached`]: the same atomic-cursor drain
/// in the same claim order, but each worker accumulates its block count
/// and busy time into a [`ThreadProfile`] and stamps its finish so the
/// idle tail (drain) can be charged per thread. Returns the sorted
/// profiles, the wall/cycle span of the whole parallel section (the
/// `kernel` phase), and the summed per-thread drain.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn try_run_blocks_traced(
    plan: &ExecutionPlan,
    a_src: &ASource<'_>,
    b_src: &BSource<'_>,
    c: &mut [f32],
    threads: usize,
    sess: &Arc<Session>,
    reference: bool,
    exec: &Exec,
    monitor: &RunMonitor,
) -> Result<(Vec<ThreadProfile>, PhaseTimes, PhaseTimes), GemmError> {
    let s = &plan.schedule;
    let (tm, tn, tk) = plan.grid();
    let blocks = block_visit_order(&s.order, tm, tn);
    let threads = threads.max(1).min(blocks.len().max(1));

    // SAFETY: identical ownership argument to `try_run_blocks_cached` —
    // each (bi, bj) block is claimed by exactly one thread via the cursor.
    let c_root = unsafe { CTile::new(c.as_mut_ptr(), s.n, c.len()) };
    let section0 = Stamp::now();
    let mut finished: Vec<(ThreadProfile, Stamp)> = Vec::with_capacity(threads);
    if threads == 1 {
        let mut prof = ThreadProfile { thread: 0, ..ThreadProfile::default() };
        let s0 = exec.trace_begin();
        contain(|| {
            session::with_session(sess, || {
                faultinject::probe(FaultSite::WorkerStartup);
                for &(bi, bj) in &blocks {
                    if monitor.should_stop() || !heartbeat(monitor, 0) {
                        break;
                    }
                    let b0 = Stamp::now();
                    run_block_cached(plan, a_src, b_src, c_root, bi, bj, tk, reference);
                    prof.busy += b0.elapsed();
                    prof.blocks += 1;
                    monitor.note_done();
                }
            })
        })?;
        exec.trace_phase(0, "kernel", s0);
        finished.push((prof, Stamp::now()));
    } else {
        let cursor = AtomicUsize::new(0);
        let poison = Poison::new();
        let collected: Mutex<Vec<(ThreadProfile, Stamp)>> = Mutex::new(Vec::with_capacity(threads));
        // Slot-agnostic body: a slot never reached by a pool worker (the
        // pool was busy and slot 0 drained the cursor first) simply
        // contributes no profile — `report.threads` counts engaged slots.
        let body = |t: usize| {
            let mut prof = ThreadProfile { thread: t, ..ThreadProfile::default() };
            let run = catch_unwind(AssertUnwindSafe(|| {
                session::with_session(sess, || {
                    faultinject::probe(FaultSite::WorkerStartup);
                    loop {
                        if poison.is_poisoned() || monitor.should_stop() {
                            break;
                        }
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(bi, bj)) = blocks.get(i) else { break };
                        if !heartbeat(monitor, t) {
                            break;
                        }
                        let b0 = Stamp::now();
                        run_block_cached(plan, a_src, b_src, c_root, bi, bj, tk, reference);
                        prof.busy += b0.elapsed();
                        prof.blocks += 1;
                        monitor.note_done();
                    }
                })
            }));
            if let Err(payload) = run {
                poison.record(t, payload);
            }
            // One lock per slot lifetime — never on the block path.
            collected.lock().push((prof, Stamp::now()));
        };
        exec.run_section_traced(threads, "kernel", &body);
        poison.into_result()?;
        finished = collected.into_inner();
        finished.sort_by_key(|(p, _)| p.thread);
    }
    monitor.outcome("kernel", blocks.len())?;
    let end = Stamp::now();
    let kernel = section0.delta_to(end);
    let mut drain_total = PhaseTimes::default();
    let profiles = finished
        .into_iter()
        .map(|(mut p, f)| {
            p.drain = f.delta_to(end);
            drain_total += p.drain;
            p
        })
        .collect();
    Ok((profiles, kernel, drain_total))
}

/// Pack all A panels of a plan (indexed `[bi * tk + kb]`) from `pool`
/// buffers, in parallel when the problem is large enough to pay for it.
/// On error (including cancellation) the acquired buffers are returned
/// to `pool` first. The caller must have called `monitor.begin_phase()`.
pub(crate) fn try_pack_a_panels_supervised(
    plan: &ExecutionPlan,
    a: &[f32],
    threads: usize,
    pool: &PanelPool,
    exec: &Exec,
    monitor: &RunMonitor,
) -> Result<Vec<PackedBlock>, GemmError> {
    let s = &plan.schedule;
    let (tm, _, tk) = plan.grid();
    let mut panels = pool.acquire_blocks(tm * tk);
    let packed =
        try_pack_panels_parallel(&mut panels, threads, exec, monitor, "pack A", |idx, p| {
            let (bi, kb) = (idx / tk, idx % tk);
            pack_a_into(p, a, s.k, bi * s.mc, kb * s.kc, s.mc, s.kc, plan.sigma_lane);
        });
    match packed {
        Ok(()) => Ok(panels),
        Err(e) => {
            pool.release_blocks(panels);
            Err(e)
        }
    }
}

/// Fill `panels[idx]` via `pack(idx, &mut panels[idx])`, draining the
/// slot indices from a shared atomic cursor over up to `threads` pool
/// runners (slot-agnostic, like every pool-section body: whichever
/// runners arrive complete the phase). Small jobs stay single-threaded
/// to skip the submission overhead.
///
/// A panicking pack worker poisons the phase: the other workers stop at
/// their next slot boundary and the first panic comes back as
/// [`GemmError::WorkerPanicked`] (`C` is untouched — nothing has run
/// yet). Supervision (deadline/cancel/watchdog heartbeats) is checked at
/// the same slot boundaries; an interrupted phase reports
/// [`GemmError::Cancelled`]/[`GemmError::Stalled`] with `phase`.
fn try_pack_panels_parallel<F>(
    panels: &mut [PackedBlock],
    threads: usize,
    exec: &Exec,
    monitor: &RunMonitor,
    phase: &'static str,
    pack: F,
) -> Result<(), GemmError>
where
    F: Fn(usize, &mut PackedBlock) + Sync,
{
    let total = panels.len();
    let threads = threads.max(1).min(total.max(1));
    if threads == 1 || total < 2 * threads {
        let s0 = exec.trace_begin();
        contain(|| {
            for (idx, p) in panels.iter_mut().enumerate() {
                if monitor.should_stop() {
                    break;
                }
                pack(idx, p);
                monitor.beat(0);
                monitor.note_done();
            }
        })?;
        exec.trace_phase(0, phase, s0);
        return monitor.outcome(phase, total);
    }
    /// Shared view of the panel slots for the cursor drain; an index is
    /// only touched by the runner that claimed it.
    struct PanelSlots {
        ptr: *mut PackedBlock,
    }
    // SAFETY: exclusive per-index access is enforced by the cursor.
    unsafe impl Sync for PanelSlots {}
    let slots = PanelSlots { ptr: panels.as_mut_ptr() };
    // Capture the wrapper by reference: edition-2021 closures would
    // otherwise capture the raw-pointer field directly, sidestepping the
    // `Sync` impl.
    let slots = &slots;
    let cursor = AtomicUsize::new(0);
    let poison = Poison::new();
    let body = |t: usize| {
        let run = catch_unwind(AssertUnwindSafe(|| loop {
            if poison.is_poisoned() || monitor.should_stop() {
                break;
            }
            let idx = cursor.fetch_add(1, Ordering::Relaxed);
            if idx >= total {
                break;
            }
            // SAFETY: the cursor hands each index to exactly one runner,
            // so this `&mut` is exclusive; the borrow ends before
            // `run_section` returns (join-before-return).
            let p = unsafe { &mut *slots.ptr.add(idx) };
            pack(idx, p);
            monitor.beat(t);
            monitor.note_done();
        }));
        if let Err(payload) = run {
            poison.record(t, payload);
        }
    };
    exec.run_section_traced(threads, phase, &body);
    poison.into_result()?;
    monitor.outcome(phase, total)
}

/// Drain the `σ_order`-sorted block list through a shared atomic cursor:
/// each worker claims the next unprocessed block, so threads that land on
/// cheap edge blocks immediately pull more work instead of idling behind
/// a static stride assignment.
///
/// Every worker runs under `catch_unwind`: a panic poisons the run, the
/// survivors stop claiming blocks and join cleanly, and the first panic
/// is reported as [`GemmError::WorkerPanicked`]. On that error `C` may
/// hold a mix of original and fully computed blocks (tiles are written
/// whole — see [`crate::error`]). Supervision is checked before each
/// block claim: an interrupted run reports
/// [`GemmError::Cancelled`]/[`GemmError::Stalled`] with `phase: "kernel"`
/// under the same partial-write contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn try_run_blocks_cached(
    plan: &ExecutionPlan,
    a_src: &ASource<'_>,
    b_src: &BSource<'_>,
    c: &mut [f32],
    threads: usize,
    reference: bool,
    exec: &Exec,
    monitor: &RunMonitor,
) -> Result<(), GemmError> {
    let s = &plan.schedule;
    let (tm, tn, tk) = plan.grid();
    let blocks = block_visit_order(&s.order, tm, tn);
    let threads = threads.max(1).min(blocks.len().max(1));

    // SAFETY: each (bi, bj) block is claimed by exactly one thread via the
    // cursor and the blocks partition C; CTile accesses stay within a
    // block's cells, and K is never split across threads (§V-C).
    let c_root = unsafe { CTile::new(c.as_mut_ptr(), s.n, c.len()) };
    if threads == 1 {
        // The caller thread is worker 0; its panics are contained too.
        let s0 = exec.trace_begin();
        contain(|| {
            faultinject::probe(FaultSite::WorkerStartup);
            for &(bi, bj) in &blocks {
                if monitor.should_stop() || !heartbeat(monitor, 0) {
                    break;
                }
                run_block_cached(plan, a_src, b_src, c_root, bi, bj, tk, reference);
                monitor.note_done();
            }
        })?;
        exec.trace_phase(0, "kernel", s0);
        return monitor.outcome("kernel", blocks.len());
    }
    let cursor = AtomicUsize::new(0);
    let poison = Poison::new();
    let body = |t: usize| {
        let run = catch_unwind(AssertUnwindSafe(|| {
            faultinject::probe(FaultSite::WorkerStartup);
            loop {
                if poison.is_poisoned() || monitor.should_stop() {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(bi, bj)) = blocks.get(i) else { break };
                if !heartbeat(monitor, t) {
                    break;
                }
                run_block_cached(plan, a_src, b_src, c_root, bi, bj, tk, reference);
                monitor.note_done();
            }
        }));
        if let Err(payload) = run {
            poison.record(t, payload);
        }
    };
    exec.run_section_traced(threads, "kernel", &body);
    poison.into_result()?;
    monitor.outcome("kernel", blocks.len())
}

/// Execute all K-slices of one `C` block from cached panels
/// (single-threaded by design; `kb` ascends so the accumulation order
/// matches the per-block repacking path bit-for-bit). `reference` routes
/// every placement to the scalar reference kernels (the degraded-dispatch
/// path).
#[allow(clippy::too_many_arguments)]
fn run_block_cached(
    plan: &ExecutionPlan,
    a_src: &ASource<'_>,
    b_src: &BSource<'_>,
    c_root: CTile,
    bi: usize,
    bj: usize,
    tk: usize,
    reference: bool,
) {
    let s = &plan.schedule;
    // SAFETY: this thread exclusively owns the block's cells.
    let c_block = unsafe { c_root.offset(bi * s.mc, bj * s.nc) };
    for kb in 0..tk {
        let a_op = a_src.operand(s, bi, kb, tk);
        let b_op = b_src.operand(s, kb, bj);
        let accumulate = kb > 0;
        for placement in &plan.block_plan.placements {
            run_placement_operands(reference, placement, s.kc, &a_op, &b_op, c_block, accumulate);
        }
    }
    // Chaos hook: `FaultSite::KernelCompute` is probed after the block's
    // stores land, perturbing finished cells the integrity layer must
    // catch. Non-corruption actions are meaningless here and ignored
    // (Panic still propagates out of `probe` into the containment the
    // driver already has).
    if let Probe::Corrupt { elements } = faultinject::probe(FaultSite::KernelCompute) {
        let rows = s.mc.min(s.m - bi * s.mc);
        let cols = s.nc.min(s.n - bj * s.nc);
        corrupt_c_region(&c_block, rows, cols, elements, ((bi as u64) << 32) | bj as u64);
    }
}

/// Deterministically perturb up to `elements` cells of a thread-owned
/// `C` region: the [`FaultAction::CorruptOutput`](crate::faultinject)
/// payload. The perturbation is additive and large relative to the cell
/// (`v + (1 + |v|)·10³`) so a working integrity check sees a residual
/// far above any accumulation-error tolerance; cell choice hashes
/// `(salt, draw)`, so the same plan corrupts the same cells on every
/// run regardless of thread count.
pub(crate) fn corrupt_c_region(c: &CTile, rows: usize, cols: usize, elements: usize, salt: u64) {
    if rows == 0 || cols == 0 {
        return;
    }
    let cells = (rows * cols) as u64;
    for draw in 0..elements.max(1) as u64 {
        let idx = crate::verify::mix(salt ^ draw.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % cells;
        let (i, j) = ((idx / cols as u64) as usize, (idx % cols as u64) as usize);
        let v = c.get(i, j);
        c.set(i, j, v + (1.0 + v.abs()) * 1.0e3);
    }
}

/// The historical per-block repacking driver, kept as the benchmarking
/// baseline for the panel cache (and as a cross-check: its results must
/// be bit-identical to [`gemm_with_plan`]). Every `(bi, bj)` block
/// re-packs its A and B panels for each K-slice — `2·tm·tn·tk` packs per
/// GEMM versus the cached driver's `(tm + tn)·tk`.
pub fn gemm_with_plan_repack(
    plan: &ExecutionPlan,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    if let Err(e) = try_gemm_with_plan_repack(plan, a, b, c, threads) {
        panic!("{e}");
    }
}

/// Fallible [`gemm_with_plan_repack`]: the same validation, degenerate
/// shapes and worker-panic containment as [`try_gemm_with_plan_pooled`]
/// (a poisoned run stops each worker at its next block boundary).
pub fn try_gemm_with_plan_repack(
    plan: &ExecutionPlan,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) -> Result<(), GemmError> {
    let s = &plan.schedule;
    let (m, n, k) = (s.m, s.n, s.k);
    error::check_operands(m, n, k, a, b, c)?;
    if m == 0 || n == 0 {
        return Ok(());
    }
    if k == 0 {
        c.fill(0.0);
        return Ok(());
    }
    let (tm, tn, tk) = plan.grid();
    let blocks = block_visit_order(&s.order, tm, tn);
    let threads = threads.max(1).min(blocks.len().max(1));

    // SAFETY: each (bi, bj) block is handled by exactly one thread and the
    // blocks partition C; CTile accesses stay within a block's cells.
    let c_root = unsafe { CTile::new(c.as_mut_ptr(), n, c.len()) };
    if threads == 1 {
        return contain(|| {
            for &(bi, bj) in &blocks {
                run_block(plan, a, b, c_root, bi, bj, tk);
            }
        });
    }
    let exec = Exec::unsupervised();
    let cursor = AtomicUsize::new(0);
    let poison = Poison::new();
    let body = |t: usize| {
        let run = catch_unwind(AssertUnwindSafe(|| loop {
            if poison.is_poisoned() {
                break;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&(bi, bj)) = blocks.get(i) else { break };
            run_block(plan, a, b, c_root, bi, bj, tk);
        }));
        if let Err(payload) = run {
            poison.record(t, payload);
        }
    };
    exec.run_section(threads, &body);
    poison.into_result()
}

/// Visit order of the `(M_c, N_c)` block grid, following the tuned
/// `σ_order`: whichever of the two cache loops sits further out in the
/// permutation iterates slower. (The K loop always runs innermost per
/// block — a reduction cannot move without changing results, and §V-C's
/// constraint keeps it un-split anyway.)
pub fn block_visit_order(
    order: &autogemm_tuner::LoopOrder,
    tm: usize,
    tn: usize,
) -> Vec<(usize, usize)> {
    use autogemm_tuner::space::LoopIndex;
    let m_outer = order.position(LoopIndex::Mc) < order.position(LoopIndex::Nc);
    let mut blocks = Vec::with_capacity(tm * tn);
    if m_outer {
        for bi in 0..tm {
            for bj in 0..tn {
                blocks.push((bi, bj));
            }
        }
    } else {
        for bj in 0..tn {
            for bi in 0..tm {
                blocks.push((bi, bj));
            }
        }
    }
    blocks
}

/// Execute all K-slices of one `C` block, re-packing both operand panels
/// per slice (the [`gemm_with_plan_repack`] baseline; single-threaded by
/// design).
fn run_block(
    plan: &ExecutionPlan,
    a: &[f32],
    b: &[f32],
    c_root: CTile,
    bi: usize,
    bj: usize,
    tk: usize,
) {
    let s = &plan.schedule;
    let (mc, nc, kc) = (s.mc, s.nc, s.kc);
    let (n, k) = (s.n, s.k);
    let row0 = bi * mc;
    let col0 = bj * nc;
    // SAFETY: this thread exclusively owns the block's cells.
    let c_block = unsafe { c_root.offset(row0, col0) };

    for kb in 0..tk {
        let krow = kb * kc;
        // Materialize padded operand panels (the native backend always
        // packs to honour the kernels' contract; the *simulated* backend
        // charges the σ_packing-dependent costs).
        let pa = pack_a(a, k, row0, krow, mc, kc, plan.sigma_lane);
        let pb = pack_b(b, n, krow, col0, kc, nc, plan.sigma_lane);
        let accumulate = kb > 0;
        for placement in &plan.block_plan.placements {
            run_placement(placement, kc, &pa.data, pa.ld, &pb.data, pb.ld, c_block, accumulate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_arch::ChipSpec;
    use autogemm_tuner::tune;

    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p];
                for j in 0..n {
                    c[i * n + j] += aip * b[p * n + j];
                }
            }
        }
        c
    }

    fn data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>) {
        let a = (0..m * k).map(|i| ((i * 13 + 5) % 23) as f32 - 11.0).collect();
        let b = (0..k * n).map(|i| ((i * 7 + 2) % 19) as f32 - 9.0).collect();
        (a, b)
    }

    fn check(m: usize, n: usize, k: usize, threads: usize) {
        let chip = ChipSpec::graviton2();
        let sched = tune(m, n, k, &chip);
        let plan = ExecutionPlan::from_schedule(sched, &chip);
        let (a, b) = data(m, n, k);
        let mut c = vec![0.0f32; m * n];
        gemm_with_plan(&plan, &a, &b, &mut c, threads);
        let want = naive(m, n, k, &a, &b);
        for (i, (&got, &w)) in c.iter().zip(&want).enumerate() {
            assert!(
                (got - w).abs() <= 1e-3 * w.abs().max(1.0),
                "{m}x{n}x{k} t{threads}: C[{i}] = {got} want {w}"
            );
        }
    }

    #[test]
    fn matches_naive_on_small_shapes() {
        for (m, n, k) in [(1, 4, 1), (5, 16, 8), (8, 8, 64), (26, 36, 64), (13, 20, 17)] {
            check(m, n, k, 1);
        }
    }

    #[test]
    fn matches_naive_on_irregular_shapes() {
        check(64, 196, 64, 1);
        check(31, 44, 29, 1);
    }

    #[test]
    fn multithreaded_matches_single() {
        check(64, 128, 64, 4);
        check(52, 72, 32, 3);
    }

    #[test]
    fn more_threads_than_blocks_is_safe() {
        // A grid smaller than the worker count: the queue hands every
        // block to some thread and the rest exit immediately.
        check(8, 8, 8, 16);
        check(5, 16, 8, 7);
    }

    #[test]
    fn cached_panels_bit_identical_to_repack_path() {
        let chip = ChipSpec::graviton2();
        for (m, n, k, threads) in
            [(26, 36, 64, 1), (64, 196, 64, 2), (31, 44, 29, 1), (52, 72, 32, 4), (13, 20, 17, 3)]
        {
            let sched = tune(m, n, k, &chip);
            let plan = ExecutionPlan::from_schedule(sched, &chip);
            let (a, b) = data(m, n, k);
            let mut c_cached = vec![0.0f32; m * n];
            gemm_with_plan(&plan, &a, &b, &mut c_cached, threads);
            let mut c_repack = vec![0.0f32; m * n];
            gemm_with_plan_repack(&plan, &a, &b, &mut c_repack, threads);
            assert_eq!(c_cached, c_repack, "{m}x{n}x{k} t{threads} diverged bitwise");
        }
    }

    #[test]
    fn pooled_calls_reuse_buffers_across_gemms() {
        let chip = ChipSpec::graviton2();
        let (m, n, k) = (26, 36, 64);
        let sched = tune(m, n, k, &chip);
        let plan = ExecutionPlan::from_schedule(sched, &chip);
        let (a, b) = data(m, n, k);
        let want = naive(m, n, k, &a, &b);
        let pool = crate::packing::PanelPool::new();
        let mut buffered_after_first = 0;
        for call in 0..3 {
            let mut c = vec![0.0f32; m * n];
            gemm_with_plan_pooled(&plan, &a, &b, &mut c, 2, &pool);
            for (i, (&got, &w)) in c.iter().zip(&want).enumerate() {
                assert!(
                    (got - w).abs() <= 1e-3 * w.abs().max(1.0),
                    "call {call}: C[{i}] = {got} want {w}"
                );
            }
            if call == 0 {
                buffered_after_first = pool.buffered();
                assert!(buffered_after_first > 0, "pool retains panel buffers");
            } else {
                assert_eq!(pool.buffered(), buffered_after_first, "steady-state pool size");
            }
        }
    }

    #[test]
    fn kernel_menu_is_the_feasible_table_ii_menu() {
        // KERNEL_MENU (and the dispatch macro that must mirror it) is
        // exactly the feasible Table II menu for σ_lane = 4.
        let want: Vec<(usize, usize)> =
            autogemm_kernelgen::tiles::table_menu(4).iter().map(|t| (t.mr, t.nr)).collect();
        let mut menu = KERNEL_MENU.to_vec();
        let mut want_sorted = want.clone();
        menu.sort_unstable();
        want_sorted.sort_unstable();
        assert_eq!(menu, want_sorted, "KERNEL_MENU diverged from tiles::table_menu(4)");
    }

    #[test]
    fn dyn_kernel_chunks_oversized_tiles() {
        // An SVE-wide 8×112 tile must agree with the naive product even
        // though it exceeds the 8×28 stack accumulator.
        let (mr, nr, kc) = (8usize, 112usize, 9usize);
        let lda = kc + 8;
        let a: Vec<f32> = (0..mr * lda).map(|i| ((i * 13 + 5) % 23) as f32 - 11.0).collect();
        let ldb = nr + 4;
        let b: Vec<f32> = (0..(kc + 2) * ldb).map(|i| ((i * 7 + 2) % 19) as f32 - 9.0).collect();
        let (eff_rows, eff_cols) = (7, 101);
        let mut c = vec![1.0f32; mr * nr];
        let tile = unsafe { CTile::new(c.as_mut_ptr(), nr, c.len()) };
        micro_kernel_dyn(mr, nr, kc, &a, lda, &b, ldb, tile, true, eff_rows, eff_cols);
        for i in 0..mr {
            for j in 0..nr {
                let want = if i < eff_rows && j < eff_cols {
                    1.0 + (0..kc).map(|p| a[i * lda + p] * b[p * ldb + j]).sum::<f32>()
                } else {
                    1.0
                };
                assert!(
                    (c[i * nr + j] - want).abs() <= 1e-3 * want.abs().max(1.0),
                    "C[{i}][{j}] = {} want {want}",
                    c[i * nr + j]
                );
            }
        }
    }

    #[test]
    fn traced_driver_bit_identical_to_untraced() {
        // The traced driver must be a pure observer: identical pack and
        // accumulation order, so outputs match gemm_with_plan bit-for-bit
        // with telemetry on or off.
        let chip = ChipSpec::graviton2();
        for (m, n, k, threads) in [(26, 36, 64, 1), (64, 196, 64, 3), (13, 20, 17, 2)] {
            let sched = tune(m, n, k, &chip);
            let plan = ExecutionPlan::from_schedule(sched, &chip);
            let (a, b) = data(m, n, k);
            let mut c_plain = vec![0.0f32; m * n];
            gemm_with_plan(&plan, &a, &b, &mut c_plain, threads);
            let pool = crate::packing::PanelPool::new();
            let mut c_traced = vec![0.0f32; m * n];
            let report = gemm_with_plan_traced(&plan, &a, &b, &mut c_traced, threads, &pool);
            assert_eq!(c_traced, c_plain, "{m}x{n}x{k} t{threads} traced path diverged bitwise");
            assert_eq!((report.m, report.n, report.k), (m, n, k));
            assert!(report.threads >= 1 && report.threads <= threads.max(1));
            let blocks: u64 = report.thread_profiles.iter().map(|p| p.blocks).sum();
            let (tm, tn, _) = plan.grid();
            assert_eq!(blocks as usize, tm * tn, "every grid block drained exactly once");
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn traced_report_counts_packs_and_tiles_exactly() {
        let chip = ChipSpec::graviton2();
        let (m, n, k) = (64, 196, 64);
        let sched = tune(m, n, k, &chip);
        let plan = ExecutionPlan::from_schedule(sched, &chip);
        let (tm, tn, tk) = plan.grid();
        let (a, b) = data(m, n, k);
        let mut c = vec![0.0f32; m * n];
        let pool = crate::packing::PanelPool::new();
        let report = gemm_with_plan_traced(&plan, &a, &b, &mut c, 3, &pool);

        // Panel-cache invariant: each A panel packed once (tm·tk), each B
        // panel once (tk·tn) — the per-call session sees exactly those.
        assert_eq!(report.packs.a_packs, (tm * tk) as u64);
        assert_eq!(report.packs.b_packs, (tk * tn) as u64);
        assert!(report.packs.a_bytes > 0 && report.packs.b_bytes > 0);

        // Histogram: one record per placement dispatch per block K-slice
        // (no oversized chunking on the σ_lane = 4 menu).
        let dispatches = (tm * tn * tk * plan.block_plan.placements.len()) as u64;
        assert_eq!(report.total_tiles(), dispatches);
        for t in &report.tiles {
            assert!(t.mr >= 1 && t.nr >= 1 && t.count > 0);
        }

        // Phases: with the feature on, the clock is live.
        assert!(report.wall.wall_ns > 0, "wall clock must tick");
        assert!(report.phases.kernel.wall_ns > 0, "kernel section must tick");
        assert!(report.wall.wall_ns >= report.phases.kernel.wall_ns);
        for p in &report.thread_profiles {
            assert!(p.busy_fraction(report.phases.kernel) <= 1.0 + 1e-9);
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn dyn_kernel_records_chunked_subdispatches() {
        // Satellite: the oversized-tile recursive chunking path must
        // record one histogram entry per *leaf* sub-dispatch, not one for
        // the oversized request (and not zero). An 8×112 request chunks
        // into four 8×28 leaves.
        let (mr, nr, kc) = (8usize, 112usize, 9usize);
        let lda = kc + 8;
        let a: Vec<f32> = (0..mr * lda).map(|i| ((i * 13 + 5) % 23) as f32 - 11.0).collect();
        let ldb = nr + 4;
        let b: Vec<f32> = (0..(kc + 2) * ldb).map(|i| ((i * 7 + 2) % 19) as f32 - 9.0).collect();
        let mut c = vec![0.0f32; mr * nr];
        let tile = unsafe { CTile::new(c.as_mut_ptr(), nr, c.len()) };
        let sess = Arc::new(Session::new());
        session::with_session(&sess, || {
            micro_kernel_dyn(mr, nr, kc, &a, lda, &b, ldb, tile, false, 7, 101);
        });
        let tiles = sess.take().tile_counts();
        assert_eq!(tiles.len(), 1, "all leaves share one shape bucket: {tiles:?}");
        assert_eq!((tiles[0].mr, tiles[0].nr, tiles[0].count), (8, 28, 4));
    }

    #[test]
    fn micro_kernel_edge_stores_respect_bounds() {
        // 2 eff rows / 3 eff cols of a 5x16 kernel must leave the rest of C
        // untouched.
        let kc = 4;
        let a = vec![1.0f32; 5 * (kc + 8)];
        let b = vec![1.0f32; (kc + 2) * 16];
        let mut c = vec![7.0f32; 5 * 16];
        let tile = unsafe { CTile::new(c.as_mut_ptr(), 16, c.len()) };
        micro_kernel_ref::<5, 16>(kc, &a, kc + 8, &b, 16, tile, false, 2, 3);
        assert_eq!(c[0], kc as f32);
        assert_eq!(c[2], kc as f32);
        assert_eq!(c[3], 7.0, "col 3 out of eff_cols must be untouched");
        assert_eq!(c[2 * 16], 7.0, "row 2 out of eff_rows must be untouched");
    }
}

#[cfg(test)]
mod order_tests {
    use super::*;
    use autogemm_arch::ChipSpec;
    use autogemm_tuner::space::{LoopIndex, LoopOrder};
    use autogemm_tuner::tune;

    #[test]
    fn block_order_follows_sigma_order() {
        use LoopIndex::*;
        let m_major = LoopOrder([Mc, Nc, Kc, Mr, Nr]);
        let n_major = LoopOrder([Nc, Kc, Mc, Mr, Nr]);
        assert_eq!(block_visit_order(&m_major, 2, 2), vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert_eq!(block_visit_order(&n_major, 2, 2), vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn results_identical_across_loop_orders() {
        use LoopIndex::*;
        let chip = ChipSpec::graviton2();
        let (m, n, k) = (32usize, 48usize, 24usize);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 9) as f32 - 4.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i % 7) as f32 - 3.0).collect();
        let mut sched = tune(m, n, k, &chip);
        sched.mc = 16;
        sched.nc = 16;
        sched.kc = 12;
        let mut reference: Option<Vec<f32>> = None;
        for order in [LoopOrder([Mc, Nc, Kc, Mr, Nr]), LoopOrder([Nc, Kc, Mc, Mr, Nr])] {
            sched.order = order;
            let plan = crate::ExecutionPlan::from_schedule(sched.clone(), &chip);
            let mut c = vec![0.0f32; m * n];
            gemm_with_plan(&plan, &a, &b, &mut c, 1);
            match &reference {
                None => reference = Some(c),
                Some(r) => assert_eq!(&c, r, "loop order changed the result"),
            }
        }
    }
}
