//! Resolve the SIMD representation cfg for `src/simd.rs`.
//!
//! Exactly one of `simd_neon` / `simd_x86` / `simd_scalar` is set:
//! the `force-scalar` feature wins over the architecture (CI uses it to
//! keep the portable fallback building and passing on SIMD hosts),
//! otherwise the target architecture picks its native representation.

fn main() {
    println!("cargo::rustc-check-cfg=cfg(simd_neon)");
    println!("cargo::rustc-check-cfg=cfg(simd_x86)");
    println!("cargo::rustc-check-cfg=cfg(simd_scalar)");
    let arch = std::env::var("CARGO_CFG_TARGET_ARCH").unwrap_or_default();
    let force_scalar = std::env::var("CARGO_FEATURE_FORCE_SCALAR").is_ok();
    let cfg = if force_scalar {
        "simd_scalar"
    } else {
        match arch.as_str() {
            "aarch64" => "simd_neon",
            "x86_64" => "simd_x86",
            _ => "simd_scalar",
        }
    };
    println!("cargo::rustc-cfg={cfg}");
}
