//! Micro-kernel specifications and the compute-/memory-bound classification
//! of §III-B.

use crate::tiles::MicroTile;
use autogemm_arch::ChipSpec;
use serde::{Deserialize, Serialize};

/// How the kernel obtains its leading dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strides {
    /// Leading dimensions passed at runtime in `x3/x4/x5` (in elements);
    /// the prologue scales them to bytes with `lsl #2`, exactly as
    /// Listing 1 does. This is the faithful stand-alone kernel form.
    Dynamic,
    /// Leading dimensions known at generation time (JIT-style); all address
    /// arithmetic folds into immediates. Used inside fused kernel chains
    /// where each segment addresses a different tile.
    Static { lda: usize, ldb: usize, ldc: usize },
}

/// Pipeline-optimization switches of §III-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PipelineOpts {
    /// Rotating register allocation (§III-C1): double-buffer the streaming
    /// operand in spare registers so its loads issue early. For
    /// compute-bound tiles this rotates the `A` rows; for memory-bound
    /// tiles it rotates the `B` row (Eqns 9 and 10).
    pub rotate: bool,
    /// Emit L1 prefetches in the prologue (Listing 1 lines 5-7).
    pub prefetch: bool,
}

impl PipelineOpts {
    /// Listing 1 as published: prefetch on, no rotation.
    pub fn basic() -> Self {
        PipelineOpts { rotate: false, prefetch: true }
    }

    /// Listing 1 + rotating register allocation.
    pub fn rotated() -> Self {
        PipelineOpts { rotate: true, prefetch: true }
    }
}

/// Whether a tile's main loop is limited by FMA throughput or by the
/// latency of the streaming `B` loads (§III-B1 vs §III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundClass {
    Compute,
    Memory,
}

impl BoundClass {
    /// Classify a tile on a chip: the per-lane FMA burst
    /// (`m_r · n̄_r · rt_fma` cycles) must cover one `B`-row reload
    /// (`n̄_r · rt_load + L_load` cycles for L1-resident data), otherwise
    /// the `FMA → LOAD → FMA` dependency of §III-B2 leaves bubbles.
    pub fn classify(tile: MicroTile, chip: &ChipSpec) -> BoundClass {
        let nrv = tile.nr_vec(chip.sigma_lane());
        let fma_cycles = (tile.mr * nrv) as u64 * chip.rt_fma;
        let load_cycles = nrv as u64 * chip.rt_load + chip.lat_load_l1();
        if fma_cycles >= load_cycles {
            BoundClass::Compute
        } else {
            BoundClass::Memory
        }
    }
}

/// Full specification of one micro-kernel to generate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroKernelSpec {
    pub tile: MicroTile,
    /// Reduction depth `k_c` in elements. Need not be a lane multiple; the
    /// remainder is handled by the epilogue (Eqn 7).
    pub kc: usize,
    /// `σ_lane` of the target chip (4 for NEON, 16 for SVE-512).
    pub sigma_lane: usize,
    /// `true` ⇒ `C += A·B` (loads the C panel in the prologue, Eqn 5);
    /// `false` ⇒ `C = A·B` (zeroes the accumulators instead).
    pub accumulate: bool,
    pub strides: Strides,
    pub opts: PipelineOpts,
}

impl MicroKernelSpec {
    /// A faithful Listing-1 kernel for `tile` at depth `kc` on a chip.
    pub fn listing1(tile: MicroTile, kc: usize, chip: &ChipSpec) -> Self {
        MicroKernelSpec {
            tile,
            kc,
            sigma_lane: chip.sigma_lane(),
            accumulate: true,
            strides: Strides::Dynamic,
            opts: PipelineOpts::basic(),
        }
    }

    /// Number of whole-lane main-loop iterations `⌊k̄_c⌋`.
    pub fn kc_vec_floor(&self) -> usize {
        self.kc / self.sigma_lane
    }

    /// Epilogue remainder lanes `k_c mod σ_lane`.
    pub fn kc_remainder(&self) -> usize {
        self.kc % self.sigma_lane
    }

    /// Total FLOPs the kernel performs: `2·m_r·n_r·k_c`.
    pub fn flops(&self) -> usize {
        2 * self.tile.mr * self.tile.nr * self.kc
    }

    /// Kernel name used for generated programs.
    pub fn name(&self) -> String {
        let opt = match (self.opts.rotate, self.opts.prefetch) {
            (true, _) => "_rot",
            (false, true) => "",
            (false, false) => "_nopf",
        };
        format!("micro_kernel_{}x{}_kc{}{}", self.tile.mr, self.tile.nr, self.kc, opt)
    }

    /// Validate the spec against the register budget. Returns an error
    /// string describing the violation, if any.
    pub fn validate(&self) -> Result<(), String> {
        if !self.tile.feasible(self.sigma_lane) {
            return Err(format!(
                "tile {} infeasible under 32 registers with σ_lane={}",
                self.tile, self.sigma_lane
            ));
        }
        if self.kc == 0 {
            return Err("k_c must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper_examples() {
        // Fig 3: 5×16 is compute-bound, 2×16 is memory-bound on the
        // idealized machine (L=8, IPC=1).
        let ideal = ChipSpec::idealized();
        assert_eq!(BoundClass::classify(MicroTile::new(5, 16), &ideal), BoundClass::Compute);
        assert_eq!(BoundClass::classify(MicroTile::new(2, 16), &ideal), BoundClass::Memory);
    }

    #[test]
    fn classification_threshold_at_3x16_on_idealized() {
        // 3×16: 12 FMA cycles vs 4 + 8 = 12 load cycles — exactly covered.
        let ideal = ChipSpec::idealized();
        assert_eq!(BoundClass::classify(MicroTile::new(3, 16), &ideal), BoundClass::Compute);
    }

    #[test]
    fn kc_decomposition() {
        let chip = ChipSpec::idealized();
        let s = MicroKernelSpec::listing1(MicroTile::new(5, 16), 18, &chip);
        assert_eq!(s.kc_vec_floor(), 4);
        assert_eq!(s.kc_remainder(), 2);
        assert_eq!(s.flops(), 2 * 5 * 16 * 18);
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let chip = ChipSpec::idealized();
        let mut s = MicroKernelSpec::listing1(MicroTile::new(5, 16), 16, &chip);
        assert!(s.validate().is_ok());
        s.kc = 0;
        assert!(s.validate().is_err());
        let bad = MicroKernelSpec::listing1(MicroTile::new(9, 16), 16, &chip);
        assert!(bad.validate().is_err());
    }

    #[test]
    fn names_distinguish_variants() {
        let chip = ChipSpec::idealized();
        let mut s = MicroKernelSpec::listing1(MicroTile::new(8, 8), 32, &chip);
        let basic = s.name();
        s.opts = PipelineOpts::rotated();
        assert_ne!(basic, s.name());
    }
}
