//! Micro-kernel emission: the Rust port of the paper's Listing 1, plus the
//! two pipeline optimizations of §III-C.
//!
//! A generated kernel has the paper's three-part structure:
//!
//! * **prologue** — prefetch `A`/`B`/`C`, scale leading dimensions to bytes,
//!   materialize the `A` and `C` row pointers, load (or zero) the `C`
//!   accumulator panel, and pre-load the first `A` column and `B` row
//!   (Eqn 5);
//! * **mainloop** — `⌊k̄_c⌋` iterations, each unrolled over the `σ_lane`
//!   lanes of the `A` vectors: `m_r · n̄_r` FMAs per lane followed by the
//!   reload of the next `B` row, with the next `A` vectors loaded at the
//!   iteration boundary (Eqn 6);
//! * **epilogue** — the `k_c mod σ_lane` remainder lanes and the stores of
//!   the `C` panel (Eqn 7).
//!
//! With [`crate::spec::PipelineOpts::rotate`] set, the streaming operand is
//! double-buffered in the tile's spare registers (§III-C1): compute-bound
//! tiles rotate the `A` bank across a 2-unrolled main loop (Eqn 9);
//! memory-bound tiles rotate the `B` bank and interleave its loads two
//! lanes ahead of use, dissolving the `FMA → LOAD → FMA` dependency
//! (Eqn 10).
//!
//! ### Buffer padding contract
//!
//! Faithful to Listing 1, the kernel streams one load *past* the data it
//! consumes: callers must guarantee that each `A` row has `2·σ_lane` extra
//! readable elements and that `B` has two extra readable rows. The values
//! loaded from the padding never reach an accumulator; only the addresses
//! must be mapped. `autogemm-sim`'s memory builder and the packing layer in
//! `autogemm` both honour this contract.

use crate::spec::{BoundClass, MicroKernelSpec, Strides};
use autogemm_arch::isa::{Instr, PrefetchLevel, VReg, XReg};
use autogemm_arch::{Block, ChipSpec, Program};

/// Register assignment for one kernel, following the layout of Listing 1:
/// accumulators first, then the `A` bank, then the `B` bank, with rotation
/// banks carved out of the spare registers.
pub(crate) struct RegMap {
    mr: usize,
    nrv: usize,
    /// Rows of the `A` bank that have a second (rotation) register.
    pub a_rotated_rows: usize,
    /// Whether `B` has a full second bank.
    pub b_rotated: bool,
}

impl RegMap {
    pub(crate) fn new(spec: &MicroKernelSpec, class: BoundClass) -> Self {
        let mr = spec.tile.mr;
        let nrv = spec.tile.nr_vec(spec.sigma_lane);
        let spare = spec.tile.spare_registers(spec.sigma_lane);
        let (a_rotated_rows, b_rotated) = if spec.opts.rotate {
            match class {
                BoundClass::Compute => (spare.min(mr), false),
                BoundClass::Memory => (0, spare >= nrv),
            }
        } else {
            (0, false)
        };
        RegMap { mr, nrv, a_rotated_rows, b_rotated }
    }

    /// Accumulator register for `C[row][col]` (`col` in vector units).
    fn acc(&self, row: usize, col: usize) -> VReg {
        VReg::new(row * self.nrv + col)
    }

    /// `A` row register in `bank` 0 or 1. Bank 1 exists only for rotated
    /// rows; other rows alias bank 0.
    fn a(&self, bank: usize, row: usize) -> VReg {
        let base = self.mr * self.nrv;
        if bank == 1 && row < self.a_rotated_rows {
            VReg::new(base + self.mr + self.nrv + row)
        } else {
            VReg::new(base + row)
        }
    }

    /// `B` column register in `bank` 0 or 1.
    fn b(&self, bank: usize, col: usize) -> VReg {
        let base = self.mr * self.nrv + self.mr;
        if bank == 1 && self.b_rotated {
            VReg::new(base + self.nrv + col)
        } else {
            VReg::new(base + col)
        }
    }
}

/// Scalar-register conventions shared by all generated kernels.
pub mod xregs {
    use autogemm_arch::isa::XReg;
    /// Base address of `A` (bytes), never clobbered in chain mode.
    pub const A: XReg = XReg(0);
    /// Base address of `B` (bytes).
    pub const B: XReg = XReg(1);
    /// Base address of `C` (bytes).
    pub const C: XReg = XReg(2);
    /// `lda` in elements on entry (scaled to bytes by dynamic-stride
    /// prologues).
    pub const LDA: XReg = XReg(3);
    pub const LDB: XReg = XReg(4);
    pub const LDC: XReg = XReg(5);
    /// Epilogue C-store row cursor.
    pub const C_STORE: XReg = XReg(21);
    /// B row cursor for static-stride / chained kernels.
    pub const B_CURSOR: XReg = XReg(22);
    /// Prologue C-load row cursor (distinct from [`C_STORE`] so a fused
    /// chain can interleave the previous kernel's stores with the next
    /// kernel's loads).
    pub const C_LOAD: XReg = XReg(23);
    /// `A` row pointer for `row` (rows 0..15 map to `x6..x21`-exclusive).
    pub fn a_row(row: usize) -> XReg {
        XReg::new(6 + row)
    }
}

/// Element offsets of one tile inside the `A` / `B` / `C` base buffers;
/// used by fused chains where a single program addresses many tiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Placement {
    pub a_off: usize,
    pub b_off: usize,
    pub c_off: usize,
}

/// The dissected pieces of one generated kernel, used both to assemble a
/// stand-alone [`Program`] and to build fused chains (§III-C2).
pub(crate) struct KernelParts {
    /// Prefetch + stride scaling + row-pointer setup.
    pub setup: Vec<Instr>,
    /// C-panel loads (accumulate) or zeroing.
    pub c_panel: Vec<Instr>,
    /// Initial A vectors and B row(s).
    pub ab_loads: Vec<Instr>,
    /// Main-loop blocks (at most one loop plus an optional peeled tail).
    pub main: Vec<Block>,
    /// Remainder-lane FMAs of the epilogue.
    pub epilogue_fma: Vec<Instr>,
    /// C-panel stores.
    pub stores: Vec<Instr>,
}

pub(crate) struct Emitter<'a> {
    spec: &'a MicroKernelSpec,
    regs: RegMap,
    class: BoundClass,
    place: Placement,
    /// Bytes of one vector register.
    vb: i64,
}

impl<'a> Emitter<'a> {
    pub(crate) fn new(spec: &'a MicroKernelSpec, chip: &ChipSpec, place: Placement) -> Self {
        let class = BoundClass::classify(spec.tile, chip);
        let regs = RegMap::new(spec, class);
        if place != Placement::default() {
            assert!(
                matches!(spec.strides, Strides::Static { .. }),
                "placed (chained) kernels require static strides"
            );
        }
        Emitter { spec, regs, class, place, vb: (spec.sigma_lane * 4) as i64 }
    }

    fn static_strides(&self) -> Option<(i64, i64, i64)> {
        match self.spec.strides {
            Strides::Dynamic => None,
            Strides::Static { lda, ldb, ldc } => {
                Some(((lda * 4) as i64, (ldb * 4) as i64, (ldc * 4) as i64))
            }
        }
    }

    /// The register holding the running B row pointer.
    fn b_cursor(&self) -> XReg {
        if self.static_strides().is_some() {
            xregs::B_CURSOR
        } else {
            xregs::B
        }
    }

    /// Advance the B row cursor by one row.
    fn advance_b(&self, out: &mut Vec<Instr>) {
        match self.static_strides() {
            None => out.push(Instr::AddReg { dst: xregs::B, a: xregs::B, b: xregs::LDB }),
            Some((_, ldb, _)) => {
                out.push(Instr::AddImm { dst: xregs::B_CURSOR, a: xregs::B_CURSOR, imm: ldb })
            }
        }
    }

    /// Step a C row cursor by `ldc`.
    fn advance_c(&self, cursor: XReg, out: &mut Vec<Instr>) {
        match self.static_strides() {
            None => out.push(Instr::AddReg { dst: cursor, a: cursor, b: xregs::LDC }),
            Some((_, _, ldc)) => out.push(Instr::AddImm { dst: cursor, a: cursor, imm: ldc }),
        }
    }

    /// Load one full B row into `bank`, then advance the B cursor.
    fn load_b_row(&self, bank: usize, out: &mut Vec<Instr>) {
        for col in 0..self.regs.nrv {
            out.push(Instr::Ldr {
                dst: self.regs.b(bank, col),
                base: self.b_cursor(),
                offset: col as i64 * self.vb,
                post_inc: 0,
            });
        }
        self.advance_b(out);
    }

    /// Load the next vector of every A row in `rows` into `bank`
    /// (post-incremented row pointers).
    fn load_a_rows(&self, bank: usize, rows: std::ops::Range<usize>, out: &mut Vec<Instr>) {
        for row in rows {
            out.push(Instr::Ldr {
                dst: self.regs.a(bank, row),
                base: xregs::a_row(row),
                offset: 0,
                post_inc: self.vb,
            });
        }
    }

    /// The `m_r · n̄_r` FMAs of one lane, reading A from `a_bank` and B from
    /// `b_bank` (Listing 1 lines 28-32 order: columns outer, rows inner).
    fn fma_lane(&self, lane: usize, a_bank: usize, b_bank: usize, out: &mut Vec<Instr>) {
        for col in 0..self.regs.nrv {
            for row in 0..self.regs.mr {
                out.push(Instr::Fmla {
                    acc: self.regs.acc(row, col),
                    mul: self.regs.b(b_bank, col),
                    lane_src: self.regs.a(a_bank, row),
                    lane: lane as u8,
                });
            }
        }
    }

    /// FMAs of one lane with the B loads of the row two lanes ahead
    /// interleaved after each column's last use — the memory-bound rotation
    /// of §III-C1 (Eqn 10).
    fn fma_lane_interleaved(&self, lane: usize, bank: usize, out: &mut Vec<Instr>) {
        for col in 0..self.regs.nrv {
            for row in 0..self.regs.mr {
                out.push(Instr::Fmla {
                    acc: self.regs.acc(row, col),
                    mul: self.regs.b(bank, col),
                    lane_src: self.regs.a(0, row),
                    lane: lane as u8,
                });
            }
            // B[p+2][col] replaces the value this lane just finished with.
            out.push(Instr::Ldr {
                dst: self.regs.b(bank, col),
                base: self.b_cursor(),
                offset: col as i64 * self.vb,
                post_inc: 0,
            });
        }
        self.advance_b(out);
    }

    /// Prefetch + stride scaling + A-row and B/C cursor setup.
    fn setup(&self) -> Vec<Instr> {
        let mut out = Vec::new();
        if self.spec.opts.prefetch {
            for base in [xregs::A, xregs::B, xregs::C] {
                out.push(Instr::Prfm { base, offset: 64, level: PrefetchLevel::L1 });
            }
        }
        match self.static_strides() {
            None => {
                for reg in [xregs::LDA, xregs::LDB, xregs::LDC] {
                    out.push(Instr::Lsl { dst: reg, src: reg, shift: 2 });
                }
                out.push(Instr::MovReg { dst: xregs::a_row(0), src: xregs::A });
                for row in 1..self.regs.mr {
                    out.push(Instr::AddReg {
                        dst: xregs::a_row(row),
                        a: xregs::a_row(row - 1),
                        b: xregs::LDA,
                    });
                }
            }
            Some((lda, ldb, _)) => {
                let a0 = (self.place.a_off * 4) as i64;
                out.push(Instr::AddImm { dst: xregs::a_row(0), a: xregs::A, imm: a0 });
                for row in 1..self.regs.mr {
                    out.push(Instr::AddImm {
                        dst: xregs::a_row(row),
                        a: xregs::a_row(row - 1),
                        imm: lda,
                    });
                }
                let _ = ldb;
                out.push(Instr::AddImm {
                    dst: xregs::B_CURSOR,
                    a: xregs::B,
                    imm: (self.place.b_off * 4) as i64,
                });
            }
        }
        out
    }

    /// C-panel loads (accumulate) or zeroing, walking rows with the
    /// [`xregs::C_LOAD`] cursor.
    fn c_panel(&self) -> Vec<Instr> {
        let mut out = Vec::new();
        if self.spec.accumulate {
            match self.static_strides() {
                None => out.push(Instr::MovReg { dst: xregs::C_LOAD, src: xregs::C }),
                Some(_) => out.push(Instr::AddImm {
                    dst: xregs::C_LOAD,
                    a: xregs::C,
                    imm: (self.place.c_off * 4) as i64,
                }),
            }
            for row in 0..self.regs.mr {
                for col in 0..self.regs.nrv {
                    out.push(Instr::Ldr {
                        dst: self.regs.acc(row, col),
                        base: xregs::C_LOAD,
                        offset: col as i64 * self.vb,
                        post_inc: 0,
                    });
                }
                if row + 1 < self.regs.mr {
                    self.advance_c(xregs::C_LOAD, &mut out);
                }
            }
        } else {
            for row in 0..self.regs.mr {
                for col in 0..self.regs.nrv {
                    out.push(Instr::Vzero { dst: self.regs.acc(row, col) });
                }
            }
        }
        out
    }

    /// Initial A vectors and first B row(s) (Listing 1 lines 17-24).
    fn ab_loads(&self) -> Vec<Instr> {
        let mut out = Vec::new();
        self.load_a_rows(0, 0..self.regs.mr, &mut out);
        self.load_b_row(0, &mut out);
        if self.regs.b_rotated {
            self.load_b_row(1, &mut out);
        }
        out
    }

    /// FMAs of one lane with each B column's reload bound right after its
    /// last use (Listing 1's "binding one load B" placement), reading A
    /// from `a_bank` and writing the B reloads into `b_bank`.
    fn fma_lane_bound(&self, lane: usize, a_bank: usize, b_bank: usize, out: &mut Vec<Instr>) {
        for col in 0..self.regs.nrv {
            for row in 0..self.regs.mr {
                out.push(Instr::Fmla {
                    acc: self.regs.acc(row, col),
                    mul: self.regs.b(b_bank, col),
                    lane_src: self.regs.a(a_bank, row),
                    lane: lane as u8,
                });
            }
            out.push(Instr::Ldr {
                dst: self.regs.b(b_bank, col),
                base: self.b_cursor(),
                offset: col as i64 * self.vb,
                post_inc: 0,
            });
        }
        self.advance_b(out);
    }

    /// One basic main-loop iteration (Listing 1 lines 26-41).
    fn basic_iteration(&self) -> Vec<Instr> {
        let mut out = Vec::new();
        for lane in 0..self.spec.sigma_lane {
            self.fma_lane_bound(lane, 0, 0, &mut out);
        }
        self.load_a_rows(0, 0..self.regs.mr, &mut out);
        out
    }

    /// One memory-bound-rotated iteration: lanes alternate B banks, loads
    /// run two lanes ahead.
    fn mem_rotated_iteration(&self) -> Vec<Instr> {
        let mut out = Vec::new();
        for lane in 0..self.spec.sigma_lane {
            self.fma_lane_interleaved(lane, lane % 2, &mut out);
        }
        self.load_a_rows(0, 0..self.regs.mr, &mut out);
        out
    }

    /// One half of a compute-bound-rotated pair. `cur` is the A bank this
    /// half computes from; the rotated rows of the *other* bank are loaded
    /// early (right after lane 0), the non-rotated rows at the boundary.
    fn comp_rotated_half(&self, cur: usize, out: &mut Vec<Instr>) {
        let next = 1 - cur;
        for lane in 0..self.spec.sigma_lane {
            self.fma_lane_bound(lane, cur, 0, out);
            if lane == 0 {
                self.load_a_rows(next, 0..self.regs.a_rotated_rows, out);
            }
        }
        // Non-rotated rows always live in bank 0; reload them at the
        // boundary as the basic kernel does.
        self.load_a_rows(0, self.regs.a_rotated_rows..self.regs.mr, out);
    }

    fn main_blocks(&self) -> Vec<Block> {
        let mut blocks = Vec::new();
        let kv = self.spec.kc_vec_floor();
        let rotate_comp = self.spec.opts.rotate
            && self.class == BoundClass::Compute
            && self.regs.a_rotated_rows > 0;
        let rotate_mem = self.spec.opts.rotate && self.regs.b_rotated;
        if rotate_comp {
            let pairs = kv / 2;
            if pairs > 0 {
                let mut body = Vec::new();
                self.comp_rotated_half(0, &mut body);
                self.comp_rotated_half(1, &mut body);
                blocks.push(Block::Loop { count: pairs, body });
            }
            if kv % 2 == 1 {
                blocks.push(Block::Straight(self.basic_iteration()));
            }
        } else if rotate_mem {
            if kv > 0 {
                blocks.push(Block::Loop { count: kv, body: self.mem_rotated_iteration() });
            }
        } else if kv > 0 {
            blocks.push(Block::Loop { count: kv, body: self.basic_iteration() });
        }
        blocks
    }

    /// Remainder-lane FMAs (k_c mod σ_lane) of the epilogue.
    fn epilogue_fma(&self) -> Vec<Instr> {
        let mut out = Vec::new();
        let rem = self.spec.kc_remainder();
        for lane in 0..rem {
            let bank = if self.regs.b_rotated { lane % 2 } else { 0 };
            self.fma_lane(lane, 0, bank, &mut out);
            let next_needed = if self.regs.b_rotated { lane + 2 } else { lane + 1 };
            if next_needed < rem {
                self.load_b_row(bank, &mut out);
            }
        }
        out
    }

    /// C-panel stores, walking rows with the [`xregs::C_STORE`] cursor.
    fn stores(&self) -> Vec<Instr> {
        let mut out = Vec::new();
        match self.static_strides() {
            None => out.push(Instr::MovReg { dst: xregs::C_STORE, src: xregs::C }),
            Some(_) => out.push(Instr::AddImm {
                dst: xregs::C_STORE,
                a: xregs::C,
                imm: (self.place.c_off * 4) as i64,
            }),
        }
        for row in 0..self.regs.mr {
            for col in 0..self.regs.nrv {
                out.push(Instr::Str {
                    src: self.regs.acc(row, col),
                    base: xregs::C_STORE,
                    offset: col as i64 * self.vb,
                    post_inc: 0,
                });
            }
            if row + 1 < self.regs.mr {
                self.advance_c(xregs::C_STORE, &mut out);
            }
        }
        out
    }

    pub(crate) fn parts(&self) -> KernelParts {
        KernelParts {
            setup: self.setup(),
            c_panel: self.c_panel(),
            ab_loads: self.ab_loads(),
            main: self.main_blocks(),
            epilogue_fma: self.epilogue_fma(),
            stores: self.stores(),
        }
    }

    pub(crate) fn class(&self) -> BoundClass {
        self.class
    }

    fn build(&self) -> Program {
        let parts = self.parts();
        let mut prog = Program::new(self.spec.name());
        let mut prologue = parts.setup;
        prologue.extend(parts.c_panel);
        prologue.extend(parts.ab_loads);
        prog.push_straight(prologue);
        for b in parts.main {
            prog.blocks.push(b);
        }
        let mut epilogue = parts.epilogue_fma;
        epilogue.extend(parts.stores);
        prog.push_straight(epilogue);
        prog
    }
}

/// Generate the micro-kernel program for `spec` targeting `chip`.
///
/// Panics if the spec fails [`MicroKernelSpec::validate`] or if its
/// `σ_lane` disagrees with the chip's.
pub fn generate(spec: &MicroKernelSpec, chip: &ChipSpec) -> Program {
    spec.validate().expect("invalid micro-kernel spec");
    assert_eq!(spec.sigma_lane, chip.sigma_lane(), "spec σ_lane does not match chip {}", chip.name);
    Emitter::new(spec, chip, Placement::default()).build()
}

/// The bound class the generator resolves for a spec on a chip (exposed for
/// the performance model and the fusion-kind bookkeeping).
pub fn bound_class(spec: &MicroKernelSpec, chip: &ChipSpec) -> BoundClass {
    BoundClass::classify(spec.tile, chip)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PipelineOpts;
    use crate::tiles::MicroTile;
    use autogemm_arch::InstrClass;

    fn spec(mr: usize, nr: usize, kc: usize, rotate: bool) -> MicroKernelSpec {
        MicroKernelSpec {
            tile: MicroTile::new(mr, nr),
            kc,
            sigma_lane: 4,
            accumulate: true,
            strides: Strides::Dynamic,
            opts: PipelineOpts { rotate, prefetch: true },
        }
    }

    #[test]
    fn instruction_counts_match_eqn_bookkeeping() {
        // 5x16, kc=64: m_r·n̄_r·k_c = 5·4·64 = 1280 vector FMAs.
        let chip = ChipSpec::idealized();
        let p = generate(&spec(5, 16, 64, false), &chip);
        assert_eq!(p.count_class(InstrClass::Fma), 5 * 4 * 64);
        // Loads: C (20) + A initial (5) + B initial (4) + per-iteration
        // (4 B rows * 4 cols + 5 A) * 16 iterations.
        assert_eq!(p.count_class(InstrClass::Load), 20 + 5 + 4 + 16 * (4 * 4 + 5));
        // Stores: the C panel.
        assert_eq!(p.count_class(InstrClass::Store), 20);
        assert_eq!(p.count_class(InstrClass::Prefetch), 3);
    }

    #[test]
    fn remainder_kc_adds_epilogue_fmas_not_loop_iterations() {
        let chip = ChipSpec::idealized();
        let p18 = generate(&spec(5, 16, 18, false), &chip);
        let p16 = generate(&spec(5, 16, 16, false), &chip);
        // 18 = 4 iterations + 2 remainder lanes → 2 * 20 extra FMAs.
        assert_eq!(p18.count_class(InstrClass::Fma) - p16.count_class(InstrClass::Fma), 2 * 5 * 4);
    }

    #[test]
    fn rotation_on_memory_bound_tile_uses_b_bank() {
        let chip = ChipSpec::idealized();
        let s = spec(2, 16, 32, true);
        assert_eq!(BoundClass::classify(s.tile, &chip), BoundClass::Memory);
        let rm = RegMap::new(&s, BoundClass::Memory);
        assert!(rm.b_rotated);
        assert_eq!(rm.a_rotated_rows, 0);
        // The rotated kernel has the same FMA count as the basic one.
        let rot = generate(&s, &chip);
        let basic = generate(&spec(2, 16, 32, false), &chip);
        assert_eq!(rot.count_class(InstrClass::Fma), basic.count_class(InstrClass::Fma));
    }

    #[test]
    fn rotation_on_compute_bound_tile_uses_partial_a_bank() {
        // 5x16 has 3 spare registers (§III-C1): 3 of 5 rows double-buffered.
        let chip = ChipSpec::idealized();
        let s = spec(5, 16, 32, true);
        let rm = RegMap::new(&s, BoundClass::Compute);
        assert_eq!(rm.a_rotated_rows, 3);
        assert!(!rm.b_rotated);
        let p = generate(&s, &chip);
        // Unroll-by-2 halves the loop trip count but not the work.
        assert_eq!(p.count_class(InstrClass::Fma), 5 * 4 * 32);
    }

    #[test]
    fn full_a_double_buffer_when_spares_allow() {
        // 4x8: 4*2+4+2 = 14 regs, 18 spares >= mr=4.
        let chip = ChipSpec::idealized();
        let s = spec(4, 8, 32, true);
        let class = BoundClass::classify(s.tile, &chip);
        let rm = RegMap::new(&s, class);
        if class == BoundClass::Compute {
            assert_eq!(rm.a_rotated_rows, 4);
        } else {
            assert!(rm.b_rotated);
        }
    }

    #[test]
    fn register_budget_never_exceeded() {
        let chip = ChipSpec::idealized();
        for tile in crate::tiles::enumerate(4) {
            for rotate in [false, true] {
                let s = spec(tile.mr, tile.nr, 24, rotate);
                let p = generate(&s, &chip);
                for instr in p.unrolled() {
                    if let Some(v) = instr.vreg_write() {
                        assert!(v.0 < 32, "{}: vreg {} out of budget", s.name(), v.0);
                    }
                }
            }
        }
    }

    #[test]
    fn static_strides_fold_address_math_into_immediates() {
        let chip = ChipSpec::idealized();
        let mut s = spec(5, 16, 16, false);
        s.strides = Strides::Static { lda: 16, ldb: 16, ldc: 64 };
        let p = generate(&s, &chip);
        let has_lsl = p.unrolled().any(|i| matches!(i, Instr::Lsl { .. }));
        assert!(!has_lsl, "static-stride kernels must not scale strides at runtime");
        let has_addreg = p.unrolled().any(|i| matches!(i, Instr::AddReg { .. }));
        assert!(!has_addreg, "static-stride kernels use immediate address math");
    }

    #[test]
    fn non_accumulating_kernel_zeroes_instead_of_loading_c() {
        let chip = ChipSpec::idealized();
        let mut s = spec(4, 8, 8, false);
        s.accumulate = false;
        let p = generate(&s, &chip);
        let zeroes = p.unrolled().filter(|i| matches!(i, Instr::Vzero { .. })).count();
        assert_eq!(zeroes, 4 * 2);
        // The accumulating variant instead loads the 4*2 C vectors.
        let acc = generate(&spec(4, 8, 8, false), &chip);
        assert_eq!(acc.count_class(InstrClass::Load) - p.count_class(InstrClass::Load), 4 * 2);
    }

    #[test]
    fn kc_smaller_than_lane_count_generates_loop_free_kernel() {
        let chip = ChipSpec::idealized();
        let p = generate(&spec(5, 16, 3, false), &chip);
        let has_loop = p.blocks.iter().any(|b| matches!(b, Block::Loop { .. }));
        assert!(!has_loop);
        assert_eq!(p.count_class(InstrClass::Fma), 5 * 4 * 3);
    }

    #[test]
    fn render_produces_assembly_text() {
        let chip = ChipSpec::idealized();
        let p = generate(&spec(5, 16, 16, false), &chip);
        let asm = p.render();
        assert!(asm.contains("fmla"));
        assert!(asm.contains("prfm PLDL1KEEP"));
        assert!(asm.contains("lsl x3, x3, #2"));
    }

    #[test]
    fn sve_kernels_unroll_sixteen_lanes() {
        let chip = ChipSpec::a64fx();
        let s = MicroKernelSpec {
            tile: MicroTile::new(5, 16),
            kc: 32,
            sigma_lane: 16,
            accumulate: true,
            strides: Strides::Dynamic,
            opts: PipelineOpts::basic(),
        };
        let p = generate(&s, &chip);
        // 5 rows x 1 vector col x 32 k-values of FMAs.
        assert_eq!(p.count_class(InstrClass::Fma), 5 * 32);
    }
}
