//! Register-tile enumeration and arithmetic intensity — the paper's
//! Table II.
//!
//! A tile `(m_r, n_r)` keeps the `m_r × n_r` accumulator panel of `C`, one
//! vector per row of `A`, and one row of `B` in registers:
//!
//! ```text
//! m_r · n̄_r  (C accumulators) + m_r (A) + n̄_r (B)  ≤  32,   n̄_r = n_r / σ_lane
//! ```
//!
//! With `σ_lane = 4` (NEON) this yields exactly the 58 feasible tile sizes
//! the paper counts in §III-A1. The four shapes with the highest arithmetic
//! intensity — 8×8, 6×12, 5×16 and 4×20 — are the "first-choice"
//! micro-kernels (blue in Table II); the rest fill corner cases.

use serde::{Deserialize, Serialize};

/// A register-tile shape `(m_r, n_r)` in elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MicroTile {
    pub mr: usize,
    pub nr: usize,
}

impl MicroTile {
    pub fn new(mr: usize, nr: usize) -> Self {
        MicroTile { mr, nr }
    }

    /// `n̄_r = n_r / σ_lane`: the number of vector registers per `B` row.
    /// Panics if `n_r` is not a lane multiple.
    pub fn nr_vec(&self, sigma_lane: usize) -> usize {
        assert_eq!(
            self.nr % sigma_lane,
            0,
            "n_r={} must be a multiple of σ_lane={}",
            self.nr,
            sigma_lane
        );
        self.nr / sigma_lane
    }

    /// Vector registers consumed: accumulators + A rows + one B row.
    pub fn registers_used(&self, sigma_lane: usize) -> usize {
        let nrv = self.nr_vec(sigma_lane);
        self.mr * nrv + self.mr + nrv
    }

    /// Spare vector registers left for software pipelining (rotation banks).
    pub fn spare_registers(&self, sigma_lane: usize) -> usize {
        32 - self.registers_used(sigma_lane)
    }

    /// Whether the tile fits the 32-register budget.
    pub fn feasible(&self, sigma_lane: usize) -> bool {
        self.mr >= 1
            && self.nr >= sigma_lane
            && self.nr.is_multiple_of(sigma_lane)
            && self.registers_used(sigma_lane) <= 32
    }

    /// Maximum arithmetic intensity of the tile (Eqn 2):
    /// `AI_max = 2·m_r·n_r / (m_r + n_r)` flop per element moved.
    pub fn ai_max(&self) -> f64 {
        2.0 * (self.mr * self.nr) as f64 / (self.mr + self.nr) as f64
    }

    /// FLOPs per element of `k_c` depth: `2·m_r·n_r`.
    pub fn flops_per_k(&self) -> usize {
        2 * self.mr * self.nr
    }
}

impl std::fmt::Display for MicroTile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.mr, self.nr)
    }
}

/// Enumerate every feasible tile for a given `σ_lane`, ordered by
/// descending `AI_max` then ascending `m_r` (deterministic).
pub fn enumerate(sigma_lane: usize) -> Vec<MicroTile> {
    let mut tiles = Vec::new();
    for mr in 1..=31 {
        for nrv in 1..=31 {
            let t = MicroTile::new(mr, nrv * sigma_lane);
            if t.feasible(sigma_lane) {
                tiles.push(t);
            }
        }
    }
    tiles.sort_by(|a, b| b.ai_max().partial_cmp(&a.ai_max()).unwrap().then(a.mr.cmp(&b.mr)));
    tiles
}

/// The tile *menu* of Table II: feasible shapes with `m_r ≤ 8` and
/// `n̄_r ≤ 7` (the table's row and column ranges). This is the set DMT
/// (Algorithm 1, line 13: "while (m_r, n_r) in Table II") and the tuner
/// iterate over — taller or wider tiles trade marginal AI for long pointer
/// chains and poor corner-filling, so the paper excludes them.
pub fn table_menu(sigma_lane: usize) -> Vec<MicroTile> {
    enumerate(sigma_lane).into_iter().filter(|t| t.mr <= 8 && t.nr / sigma_lane <= 7).collect()
}

/// The paper's four first-choice micro-kernel shapes for NEON
/// (blue entries of Table II): 8×8, 6×12, 5×16, 4×20.
pub fn first_choice_neon() -> [MicroTile; 4] {
    [MicroTile::new(8, 8), MicroTile::new(6, 12), MicroTile::new(5, 16), MicroTile::new(4, 20)]
}

/// First-choice shapes for an arbitrary lane width.
///
/// The paper selects one main kernel per `n_r` column of Table II — the
/// tallest tile in that column that still leaves at least two spare vector
/// registers for software pipelining — and keeps the four columns with the
/// highest resulting `AI_max`. For `σ_lane = 4` this reproduces exactly the
/// paper's blue cells (8×8, 6×12, 5×16, 4×20); e.g. 7×12 is skipped because
/// it leaves only one spare register.
pub fn first_choice(sigma_lane: usize) -> Vec<MicroTile> {
    let mut best_per_column: Vec<MicroTile> = Vec::new();
    for nrv in 1..=31 {
        // Table II only considers m_r ≤ 8: taller tiles trade marginal AI
        // for long pointer chains and poor corner-filling flexibility.
        let column_best = (1..=8)
            .map(|mr| MicroTile::new(mr, nrv * sigma_lane))
            .filter(|t| t.feasible(sigma_lane) && t.spare_registers(sigma_lane) >= 2)
            .max_by(|a, b| a.ai_max().partial_cmp(&b.ai_max()).unwrap());
        if let Some(t) = column_best {
            best_per_column.push(t);
        }
    }
    best_per_column
        .sort_by(|a, b| b.ai_max().partial_cmp(&a.ai_max()).unwrap().then(a.nr.cmp(&b.nr)));
    best_per_column.truncate(4);
    best_per_column
}

/// Render Table II: `AI_max` for `m_r ∈ 2..=8`, `n_r ∈ {4,8,…,28}`, with
/// infeasible entries as `None`.
pub fn table_ii() -> Vec<(usize, Vec<Option<f64>>)> {
    (2..=8)
        .map(|mr| {
            let row = (1..=7)
                .map(|nrv| {
                    let t = MicroTile::new(mr, nrv * 4);
                    t.feasible(4).then(|| t.ai_max())
                })
                .collect();
            (mr, row)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_58_feasible_neon_tiles() {
        // §III-A1: "With 32 vector registers being the common upper limit in
        // ARM chips, there are only 58 feasible tile sizes."
        assert_eq!(enumerate(4).len(), 58);
    }

    #[test]
    fn table_ii_spot_values() {
        // Entries quoted from Table II of the paper.
        let close = |a: f64, b: f64| (a - b).abs() < 0.005;
        assert!(close(MicroTile::new(2, 4).ai_max(), 2.67));
        assert!(close(MicroTile::new(3, 12).ai_max(), 4.80));
        assert!(close(MicroTile::new(4, 20).ai_max(), 6.67));
        assert!(close(MicroTile::new(5, 16).ai_max(), 7.62));
        assert!(close(MicroTile::new(6, 12).ai_max(), 8.00));
        assert!(close(MicroTile::new(8, 8).ai_max(), 8.00));
        assert!(close(MicroTile::new(2, 28).ai_max(), 3.73));
    }

    #[test]
    fn table_ii_infeasible_cells_match_paper_dashes() {
        // The "-" entries of Table II.
        assert!(!MicroTile::new(4, 24).feasible(4));
        assert!(!MicroTile::new(4, 28).feasible(4));
        assert!(!MicroTile::new(5, 20).feasible(4));
        assert!(!MicroTile::new(6, 16).feasible(4));
        assert!(!MicroTile::new(8, 12).feasible(4));
        // ... and filled cells are feasible.
        assert!(MicroTile::new(8, 8).feasible(4));
        assert!(MicroTile::new(2, 28).feasible(4));
    }

    #[test]
    fn first_choice_matches_paper_blue_cells() {
        let fc = first_choice(4);
        let expected = first_choice_neon();
        for t in expected {
            assert!(fc.contains(&t), "missing first-choice tile {t}");
        }
        // 8x8 and 6x12 tie at AI 8.0, then 5x16 at 7.62, then 4x20 at 6.67.
        assert!(fc[0].ai_max() >= fc[1].ai_max());
        assert!(fc[1].ai_max() >= fc[2].ai_max());
        assert!(fc[2].ai_max() >= fc[3].ai_max());
    }

    #[test]
    fn spare_registers_for_5x16_is_3() {
        // §III-C1: "3 registers for micro-kernel 5×16".
        assert_eq!(MicroTile::new(5, 16).spare_registers(4), 3);
    }

    #[test]
    fn sve_tiles_use_16_lane_multiples() {
        let tiles = enumerate(16);
        assert!(!tiles.is_empty());
        assert!(tiles.iter().all(|t| t.nr % 16 == 0));
        assert!(tiles.iter().all(|t| t.registers_used(16) <= 32));
        // The widest SVE tile family still exists (e.g. 8x16).
        assert!(tiles.contains(&MicroTile::new(8, 16)));
    }

    #[test]
    fn table_ii_rendering_shape() {
        let t = table_ii();
        assert_eq!(t.len(), 7); // m_r = 2..=8
        assert_eq!(t[0].1.len(), 7); // n_r = 4..=28
                                     // row m_r=8: only n_r=4 and n_r=8 feasible.
        let row8 = &t[6].1;
        assert!(row8[0].is_some() && row8[1].is_some());
        assert!(row8[2..].iter().all(|c| c.is_none()));
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn non_lane_multiple_nr_panics() {
        MicroTile::new(4, 6).nr_vec(4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn feasible_tiles_fit_budget(mr in 1usize..16, nrv in 1usize..16) {
            let t = MicroTile::new(mr, nrv * 4);
            if t.feasible(4) {
                prop_assert!(t.registers_used(4) <= 32);
                prop_assert!(t.spare_registers(4) < 32);
            }
        }

        #[test]
        fn ai_max_is_monotone_in_both_dims(mr in 1usize..12, nrv in 1usize..8) {
            let t = MicroTile::new(mr, nrv * 4);
            let bigger_m = MicroTile::new(mr + 1, nrv * 4);
            let bigger_n = MicroTile::new(mr, (nrv + 1) * 4);
            prop_assert!(bigger_m.ai_max() > t.ai_max());
            prop_assert!(bigger_n.ai_max() > t.ai_max());
        }

        #[test]
        fn ai_max_bounded_by_min_dim(mr in 1usize..16, nrv in 1usize..16) {
            // 2mn/(m+n) <= 2*min(m,n)
            let t = MicroTile::new(mr, nrv * 4);
            prop_assert!(t.ai_max() <= 2.0 * t.mr.min(t.nr) as f64 + 1e-9);
        }
    }
}
