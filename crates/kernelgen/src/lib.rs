//! # autogemm-kernelgen
//!
//! Auto-generation of GEMM micro-kernels, reproducing §III of the autoGEMM
//! paper.
//!
//! A micro-kernel computes `C(m_r, n_r) += A(m_r, k_c) · B(k_c, n_r)` with
//! everything register-resident except streaming loads of `A` and `B`
//! (Eqn 1). This crate provides:
//!
//! * [`tiles`] — enumeration of the 58 feasible register-tile shapes under
//!   the 32-vector-register budget, their arithmetic intensity (Eqn 2,
//!   Table II), and the four first-choice shapes.
//! * [`spec`] — the micro-kernel specification (`m_r × n_r × k_c`, strides,
//!   pipeline options) and the compute-/memory-bound classification of
//!   §III-B.
//! * [`generator`] — the Rust port of the paper's Listing 1: emission of
//!   prologue / mainloop / epilogue instruction streams in the virtual Arm
//!   ISA of `autogemm-arch`, including the two pipeline optimizations of
//!   §III-C (rotating register allocation; interleaved, double-buffered
//!   loads).
//! * [`chain`] — fusing a micro-kernel's epilogue with the next kernel's
//!   prologue (§III-C2), in the four `c_to_c` / `m_to_m` / `c_to_m` /
//!   `m_to_c` flavours.
//!
//! The generated [`autogemm_arch::Program`]s are executed by `autogemm-sim`
//! both functionally (bit-exact `f32` GEMM, used by the correctness tests)
//! and on the cycle-level pipeline model (used by every performance figure).

pub mod chain;
pub mod generator;
pub mod spec;
pub mod tiles;

pub use chain::{fuse_chain, FusionKind, TileInvocation};
pub use generator::generate;
pub use spec::{BoundClass, MicroKernelSpec, PipelineOpts, Strides};
pub use tiles::MicroTile;
