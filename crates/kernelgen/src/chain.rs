//! Fusing a micro-kernel's epilogue with the next kernel's prologue
//! (§III-C2).
//!
//! When `k_c` is small the prologue and epilogue dominate a micro-kernel's
//! runtime (for 5×16 at `k_c = 18` the paper measures 8.2% + 15.1% of total
//! cycles). Executing a row of micro-tiles as one fused program lets the
//! stores of tile *i* overlap the `C`-panel loads of tile *i+1* and removes
//! the per-kernel launch cost `T_launch` entirely.
//!
//! The paper names four fusion flavours by the bound class of the adjacent
//! kernels — `c_to_c`, `m_to_m`, `c_to_m`, `m_to_c` (Fig 4). The emission
//! is uniform; the flavour determines how much overlap the pipeline
//! simulator can realize and is reported for bookkeeping.

use crate::generator::{Emitter, Placement};
use crate::spec::{BoundClass, MicroKernelSpec, Strides};
use autogemm_arch::{ChipSpec, Program};

/// One micro-kernel invocation inside a fused chain: the kernel spec plus
/// the element offsets of its tile within the shared `A`/`B`/`C` buffers.
#[derive(Debug, Clone, Copy)]
pub struct TileInvocation {
    pub spec: MicroKernelSpec,
    pub a_off: usize,
    pub b_off: usize,
    pub c_off: usize,
}

impl TileInvocation {
    fn placement(&self) -> Placement {
        Placement { a_off: self.a_off, b_off: self.b_off, c_off: self.c_off }
    }
}

/// The four epilogue→prologue fusion flavours of Fig 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionKind {
    CToC,
    MToM,
    CToM,
    MToC,
}

impl FusionKind {
    pub fn of(prev: BoundClass, next: BoundClass) -> FusionKind {
        match (prev, next) {
            (BoundClass::Compute, BoundClass::Compute) => FusionKind::CToC,
            (BoundClass::Memory, BoundClass::Memory) => FusionKind::MToM,
            (BoundClass::Compute, BoundClass::Memory) => FusionKind::CToM,
            (BoundClass::Memory, BoundClass::Compute) => FusionKind::MToC,
        }
    }
}

impl std::fmt::Display for FusionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FusionKind::CToC => "c_to_c",
            FusionKind::MToM => "m_to_m",
            FusionKind::CToM => "c_to_m",
            FusionKind::MToC => "m_to_c",
        };
        f.write_str(s)
    }
}

/// Dependency-aware interleave of the previous kernel's stores (`a`) with
/// the next kernel's C-panel loads/zeroes (`b`).
///
/// An instruction from `b` may only be emitted once no *remaining*
/// instruction of `a` still reads the vector register it overwrites —
/// otherwise a `C` value would be clobbered before it is stored. Within
/// each stream the original order is preserved, so the result is
/// functionally identical to `a ++ b` while giving the pipeline scheduler
/// freedom to overlap the two kernels.
fn interleave(
    a: Vec<autogemm_arch::Instr>,
    b: Vec<autogemm_arch::Instr>,
) -> Vec<autogemm_arch::Instr> {
    use std::collections::HashMap;
    // Count outstanding reads per vreg in the remaining `a` stream.
    let mut pending_reads: HashMap<autogemm_arch::VReg, usize> = HashMap::new();
    for i in &a {
        for r in i.vreg_reads() {
            *pending_reads.entry(r).or_insert(0) += 1;
        }
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        // Prefer alternating; fall back to draining whichever side is legal.
        let b_legal = bi.peek().is_some_and(|i| {
            i.vreg_write().map(|w| pending_reads.get(&w).copied().unwrap_or(0) == 0).unwrap_or(true)
        });
        match (ai.peek().is_some(), bi.peek().is_some()) {
            (false, false) => break,
            (true, _) if !b_legal || out.len() % 2 == 0 => {
                let i = ai.next().unwrap();
                for r in i.vreg_reads() {
                    if let Some(c) = pending_reads.get_mut(&r) {
                        *c -= 1;
                    }
                }
                out.push(i);
            }
            (_, true) if b_legal => out.push(bi.next().unwrap()),
            (true, _) => {
                let i = ai.next().unwrap();
                for r in i.vreg_reads() {
                    if let Some(c) = pending_reads.get_mut(&r) {
                        *c -= 1;
                    }
                }
                out.push(i);
            }
            _ => unreachable!("b instruction permanently blocked in interleave"),
        }
    }
    out
}

/// Fuse a sequence of micro-kernel invocations into one program.
///
/// Every invocation must use [`Strides::Static`] (the chain folds tile
/// addresses into immediates) and agree on `σ_lane`. Returns the fused
/// program and the fusion flavour of each of the `n-1` junctions.
///
/// Panics on an empty chain or dynamic-stride specs.
pub fn fuse_chain(invocations: &[TileInvocation], chip: &ChipSpec) -> (Program, Vec<FusionKind>) {
    assert!(!invocations.is_empty(), "cannot fuse an empty chain");
    for inv in invocations {
        assert!(
            matches!(inv.spec.strides, Strides::Static { .. }),
            "fused chains require static strides"
        );
        inv.spec.validate().expect("invalid spec in chain");
    }

    let emitters: Vec<Emitter> =
        invocations.iter().map(|inv| Emitter::new(&inv.spec, chip, inv.placement())).collect();
    let parts: Vec<_> = emitters.iter().map(|e| e.parts()).collect();
    let kinds: Vec<FusionKind> =
        emitters.windows(2).map(|w| FusionKind::of(w[0].class(), w[1].class())).collect();

    let name = format!("fused_chain_{}_tiles_{}", invocations.len(), invocations[0].spec.name());
    let mut prog = Program::new(name);

    let mut parts_iter = parts.into_iter();
    let mut current = parts_iter.next().unwrap();

    // First prologue runs unfused.
    let mut head = current.setup.clone();
    head.extend(current.c_panel.clone());
    head.extend(current.ab_loads.clone());
    prog.push_straight(head);

    for next in parts_iter {
        for b in current.main.drain(..) {
            prog.blocks.push(b);
        }
        // Junction: remainder FMAs, then next kernel's scalar setup, then
        // the interleaved stores/loads, then the next kernel's A/B loads.
        let mut junction = current.epilogue_fma.clone();
        junction.extend(next.setup.clone());
        junction.extend(interleave(current.stores.clone(), next.c_panel.clone()));
        junction.extend(next.ab_loads.clone());
        prog.push_straight(junction);
        current = next;
    }

    for b in current.main.drain(..) {
        prog.blocks.push(b);
    }
    let mut tail = current.epilogue_fma.clone();
    tail.extend(current.stores.clone());
    prog.push_straight(tail);

    (prog, kinds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{MicroKernelSpec, PipelineOpts};
    use crate::tiles::MicroTile;
    use autogemm_arch::InstrClass;

    fn static_spec(mr: usize, nr: usize, kc: usize) -> MicroKernelSpec {
        MicroKernelSpec {
            tile: MicroTile::new(mr, nr),
            kc,
            sigma_lane: 4,
            accumulate: true,
            strides: Strides::Static { lda: 64, ldb: 64, ldc: 64 },
            opts: PipelineOpts::basic(),
        }
    }

    #[test]
    fn fused_chain_preserves_total_fma_and_store_counts() {
        let chip = ChipSpec::idealized();
        let invs: Vec<TileInvocation> = (0..3)
            .map(|i| TileInvocation {
                spec: static_spec(5, 16, 16),
                a_off: 0,
                b_off: 0,
                c_off: i * 16,
            })
            .collect();
        let (fused, kinds) = fuse_chain(&invs, &chip);
        let single = crate::generator::generate(
            &MicroKernelSpec {
                strides: Strides::Static { lda: 64, ldb: 64, ldc: 64 },
                ..invs[0].spec
            },
            &chip,
        );
        assert_eq!(fused.count_class(InstrClass::Fma), 3 * single.count_class(InstrClass::Fma));
        assert_eq!(fused.count_class(InstrClass::Store), 3 * single.count_class(InstrClass::Store));
        assert_eq!(kinds.len(), 2);
        assert!(kinds.iter().all(|k| *k == FusionKind::CToC));
    }

    #[test]
    fn fusion_kind_classification() {
        assert_eq!(FusionKind::of(BoundClass::Compute, BoundClass::Memory), FusionKind::CToM);
        assert_eq!(FusionKind::of(BoundClass::Memory, BoundClass::Compute), FusionKind::MToC);
        assert_eq!(FusionKind::CToC.to_string(), "c_to_c");
        assert_eq!(FusionKind::MToM.to_string(), "m_to_m");
    }

    #[test]
    fn mixed_chain_reports_mixed_kinds() {
        let chip = ChipSpec::idealized();
        let invs = vec![
            TileInvocation { spec: static_spec(5, 16, 16), a_off: 0, b_off: 0, c_off: 0 },
            TileInvocation { spec: static_spec(2, 16, 16), a_off: 0, b_off: 0, c_off: 80 },
        ];
        let (_, kinds) = fuse_chain(&invs, &chip);
        assert_eq!(kinds, vec![FusionKind::CToM]);
    }

    #[test]
    #[should_panic(expected = "static strides")]
    fn dynamic_specs_rejected() {
        let chip = ChipSpec::idealized();
        let mut s = static_spec(5, 16, 16);
        s.strides = Strides::Dynamic;
        let invs = [TileInvocation { spec: s, a_off: 0, b_off: 0, c_off: 0 }];
        fuse_chain(&invs, &chip);
    }

    #[test]
    #[should_panic(expected = "empty chain")]
    fn empty_chain_rejected() {
        fuse_chain(&[], &ChipSpec::idealized());
    }

    #[test]
    fn interleave_keeps_relative_order_of_each_stream() {
        use autogemm_arch::isa::{Instr, VReg, XReg};
        let mk_store = |n| Instr::Str { src: VReg(n), base: XReg(21), offset: 0, post_inc: 0 };
        let mk_load = |n| Instr::Ldr { dst: VReg(n), base: XReg(23), offset: 0, post_inc: 0 };
        let a = vec![mk_store(0), mk_store(1)];
        let b = vec![mk_load(0), mk_load(1), mk_load(2)];
        let out = interleave(a, b);
        assert_eq!(out.len(), 5);
        // Store of acc 0 precedes load of acc 0 (functional safety).
        let store0 = out.iter().position(|i| matches!(i, Instr::Str { src: VReg(0), .. }));
        let load0 = out.iter().position(|i| matches!(i, Instr::Ldr { dst: VReg(0), .. }));
        assert!(store0 < load0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::spec::{MicroKernelSpec, PipelineOpts};
    use crate::tiles::MicroTile;
    use autogemm_arch::InstrClass;
    use proptest::prelude::*;

    fn arb_menu_tile() -> impl Strategy<Value = MicroTile> {
        let menu = crate::tiles::table_menu(4);
        (0..menu.len()).prop_map(move |i| menu[i])
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A fused chain of arbitrary menu tiles preserves the total FMA
        /// and store bookkeeping of its parts and never touches a vector
        /// register outside the 32-register file.
        #[test]
        fn fused_chains_preserve_bookkeeping(
            tiles in proptest::collection::vec(arb_menu_tile(), 1..5),
            kc in 1usize..24,
            rotate in proptest::bool::ANY,
        ) {
            let chip = ChipSpec::idealized();
            let invs: Vec<TileInvocation> = tiles
                .iter()
                .enumerate()
                .map(|(t, tile)| TileInvocation {
                    spec: MicroKernelSpec {
                        tile: *tile,
                        kc,
                        sigma_lane: 4,
                        accumulate: true,
                        strides: Strides::Static { lda: kc + 8, ldb: 128, ldc: 128 },
                        opts: PipelineOpts { rotate, prefetch: true },
                    },
                    a_off: 0,
                    b_off: 0,
                    c_off: t * 32,
                })
                .collect();
            let (prog, kinds) = fuse_chain(&invs, &chip);
            prop_assert_eq!(kinds.len(), invs.len() - 1);
            let expected_fma: usize = tiles
                .iter()
                .map(|t| t.mr * t.nr_vec(4) * kc)
                .sum();
            prop_assert_eq!(prog.count_class(InstrClass::Fma), expected_fma);
            let expected_stores: usize = tiles.iter().map(|t| t.mr * t.nr_vec(4)).sum();
            prop_assert_eq!(prog.count_class(InstrClass::Store), expected_stores);
            for instr in prog.unrolled() {
                if let Some(v) = instr.vreg_write() {
                    prop_assert!(v.0 < 32);
                }
            }
        }
    }
}
