use autogemm_arch::ChipSpec;
use autogemm_baselines::*;
fn main() {
    let chip = ChipSpec::kp920();
    let auto = autogemm::AutoGemm::new(chip.clone());
    println!(
        "== 64^3 (paper: OB .35, Eigen .50, Shalom .95, FastConv .58, XSMM .68, TVM .78, auto .98)"
    );
    for b in all_baselines() {
        if let Some(r) = simulate_baseline(b, 64, 64, 64, &chip, 1) {
            println!("  {:10} {:.3}", b.name(), r.efficiency);
        }
    }
    println!("  {:10} {:.3}", "autoGEMM", auto.simulate(64, 64, 64, 1).efficiency);
    println!(
        "== 256x3136x64 (paper: OB .47, Eigen .49, Shalom .86, FastConv .79, TVM .72, auto .91)"
    );
    for b in all_baselines() {
        if let Some(r) = simulate_baseline(b, 256, 3136, 64, &chip, 1) {
            println!("  {:10} {:.3}", b.name(), r.efficiency);
        }
    }
    println!("  {:10} {:.3}", "autoGEMM", auto.simulate(256, 3136, 64, 1).efficiency);
}
