//! The reference triple-loop GEMM every implementation is verified
//! against (the paper verifies all libraries to relative error < 1e-6,
//! §V).

/// `C += A·B`, row-major, no blocking.
pub fn naive_gemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += aip * bv;
            }
        }
    }
}

/// Maximum relative error between two buffers (the paper's < 1e-6
/// verification criterion).
pub fn max_rel_error(got: &[f32], want: &[f32]) -> f32 {
    got.iter().zip(want).map(|(&g, &w)| (g - w).abs() / w.abs().max(1.0)).fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_matrix_is_matrix() {
        let n = 4;
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            a[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        let mut c = vec![0.0f32; n * n];
        naive_gemm(n, n, n, &a, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn accumulates_into_c() {
        let mut c = vec![1.0f32; 1];
        naive_gemm(1, 1, 1, &[2.0], &[3.0], &mut c);
        assert_eq!(c[0], 7.0);
    }

    #[test]
    fn rel_error_metric() {
        assert_eq!(max_rel_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(max_rel_error(&[1.1], &[1.0]) > 0.09);
    }
}
