//! Execution drivers for the baselines: native correctness path and
//! simulated performance path, both running the profile's plan.

use crate::profiles::Baseline;
use autogemm::native::{run_placement, CTile};
use autogemm::packing::pack_block;
use autogemm::simexec;
use autogemm_arch::ChipSpec;
use autogemm_sim::makespan;

/// Simulated performance of a baseline on a problem.
#[derive(Debug, Clone, Copy)]
pub struct BaselineReport {
    pub seconds: f64,
    pub gflops: f64,
    pub efficiency: f64,
    pub threads: usize,
}

/// Simulate a baseline library run. Returns `None` when the library does
/// not support the problem on this chip (rendered as missing points /
/// "N/A" in the figures, exactly like the paper).
pub fn simulate_baseline(
    baseline: Baseline,
    m: usize,
    n: usize,
    k: usize,
    chip: &ChipSpec,
    threads: usize,
) -> Option<BaselineReport> {
    if !baseline.supports(chip, m, n, k) {
        return None;
    }
    let profile = baseline.profile(m, n, k, chip);
    let plan = &profile.plan;
    let block = simexec::simulate_block(plan, chip, true);
    let (tm, tn, tk) = plan.grid();
    let tiles_total = (tm * tn * tk) as u64 * block.tiles;
    let overhead = profile.call_overhead_cycles + tiles_total * profile.per_tile_overhead_cycles;
    let flops = plan.flops();

    let (seconds, threads_used) = if threads > 1 {
        // Libraries thread inside their own GEMM drivers (fork-join over
        // the whole problem), not over our cache-block grid.
        let works = simexec::thread_works_even(plan, chip, block, threads);
        let used = works.len();
        let mut r = makespan(chip, &works);
        r.seconds += overhead as f64 / (chip.freq_ghz * 1e9);
        (r.seconds, used)
    } else {
        let cycles = simexec::single_core_cycles(plan, chip, block) + overhead as f64;
        (cycles / (chip.freq_ghz * 1e9), 1)
    };

    let gflops = flops as f64 / seconds / 1e9;
    let peak = chip.peak_gflops_core() * threads_used as f64;
    Some(BaselineReport { seconds, gflops, efficiency: gflops / peak, threads: threads_used })
}

/// Native (host) execution of a baseline's plan: `C += A·B`, row-major.
/// Used by the correctness tests — every baseline must agree with the
/// naive reference to < 1e-6 relative error (§V).
#[allow(clippy::too_many_arguments)]
pub fn gemm_baseline(
    baseline: Baseline,
    m: usize,
    n: usize,
    k: usize,
    chip: &ChipSpec,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    assert!(baseline.supports(chip, m, n, k), "{} unsupported", baseline.name());
    let profile = baseline.profile(m, n, k, chip);
    let plan = &profile.plan;
    let s = &plan.schedule;
    let (tm, tn, tk) = plan.grid();
    // Generous pads: padded plans (OpenBLAS) read up to a full tile beyond
    // the block; edge-rounded kernels read up to 31 elements beyond a row.
    let pad_rows_a = 8;
    let pad_cols_b = 32;

    // SAFETY: single-threaded; blocks are disjoint.
    let c_root = unsafe { CTile::new(c.as_mut_ptr(), n, c.len()) };
    for bi in 0..tm {
        for bj in 0..tn {
            let row0 = bi * s.mc;
            let col0 = bj * s.nc;
            let c_block = unsafe { c_root.offset(row0, col0) };
            for kb in 0..tk {
                let krow = kb * s.kc;
                let pa = pack_block(a, k, row0, krow, s.mc, s.kc, 2 * plan.sigma_lane, pad_rows_a);
                let pb = pack_block(b, n, krow, col0, s.kc, s.nc, pad_cols_b, 2);
                // Baselines accumulate into C on every slice (C += A·B).
                for placement in &plan.block_plan.placements {
                    run_placement(placement, s.kc, &pa.data, pa.ld, &pb.data, pb.ld, c_block, true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{max_rel_error, naive_gemm};

    fn data(m: usize, n: usize, k: usize) -> (Vec<f32>, Vec<f32>) {
        let a = (0..m * k).map(|i| ((i * 11 + 3) % 17) as f32 - 8.0).collect();
        let b = (0..k * n).map(|i| ((i * 5 + 7) % 13) as f32 - 6.0).collect();
        (a, b)
    }

    #[test]
    fn every_baseline_matches_naive() {
        let chip = ChipSpec::kp920();
        for baseline in crate::all_baselines() {
            for (m, n, k) in [(26, 36, 64), (64, 64, 64), (13, 24, 16)] {
                if !baseline.supports(&chip, m, n, k) {
                    continue;
                }
                let (a, b) = data(m, n, k);
                let mut c = vec![0.0f32; m * n];
                gemm_baseline(baseline, m, n, k, &chip, &a, &b, &mut c);
                let mut want = vec![0.0f32; m * n];
                naive_gemm(m, n, k, &a, &b, &mut want);
                let err = max_rel_error(&c, &want);
                assert!(err < 1e-5, "{} {m}x{n}x{k}: rel err {err}", baseline.name());
            }
        }
    }

    #[test]
    fn sve_baseline_matches_naive() {
        let chip = ChipSpec::a64fx();
        let (m, n, k) = (24, 32, 20);
        let (a, b) = data(m, n, k);
        let mut c = vec![0.0f32; m * n];
        gemm_baseline(Baseline::Ssl2, m, n, k, &chip, &a, &b, &mut c);
        let mut want = vec![0.0f32; m * n];
        naive_gemm(m, n, k, &a, &b, &mut want);
        assert!(max_rel_error(&c, &want) < 1e-5);
    }

    #[test]
    fn unsupported_problems_return_none() {
        let chip = ChipSpec::m2();
        assert!(simulate_baseline(Baseline::LibShalom, 64, 64, 64, &chip, 1).is_none());
        assert!(simulate_baseline(Baseline::Ssl2, 64, 64, 64, &chip, 1).is_none());
    }

    #[test]
    fn baselines_are_slower_than_autogemm_at_64cubed() {
        // Table I: autoGEMM leads every library at M=N=K=64.
        let chip = ChipSpec::kp920();
        let auto_eff = autogemm::AutoGemm::new(chip.clone()).simulate(64, 64, 64, 1).efficiency;
        for baseline in crate::all_baselines() {
            let Some(r) = simulate_baseline(baseline, 64, 64, 64, &chip, 1) else { continue };
            assert!(
                r.efficiency < auto_eff,
                "{}: {:.3} !< autoGEMM {:.3}",
                baseline.name(),
                r.efficiency,
                auto_eff
            );
        }
    }

    #[test]
    fn library_ordering_matches_table_i_small() {
        // Table I, M=N=K=64: OpenBLAS < Eigen < LIBXSMM < TVM < LibShalom.
        let chip = ChipSpec::kp920();
        let eff = |b: Baseline| simulate_baseline(b, 64, 64, 64, &chip, 1).unwrap().efficiency;
        let ob = eff(Baseline::OpenBlas);
        let eigen = eff(Baseline::Eigen);
        let xsmm = eff(Baseline::Libxsmm);
        let tvm = eff(Baseline::Tvm);
        let shalom = eff(Baseline::LibShalom);
        assert!(ob < eigen, "OpenBLAS {ob:.3} !< Eigen {eigen:.3}");
        assert!(eigen < xsmm, "Eigen {eigen:.3} !< LIBXSMM {xsmm:.3}");
        assert!(xsmm < tvm, "LIBXSMM {xsmm:.3} !< TVM {tvm:.3}");
        assert!(tvm < shalom, "TVM {tvm:.3} !< LibShalom {shalom:.3}");
    }
}
