//! # autogemm-baselines
//!
//! Strategy-faithful reimplementations of the libraries the paper compares
//! against (Table I, Figs 7–9): OpenBLAS, Eigen, LIBXSMM, LibShalom,
//! Fujitsu SSL2, TVM and FastConv.
//!
//! Each baseline is characterized by the *mechanisms* the paper attributes
//! to it — its micro-tiling strategy (fixed tile + padding, fixed tile +
//! edge strips, or dynamic), its pipeline quality (rotation, fusion,
//! prefetch), its packing policy, its cache-blocking policy (fixed
//! large-matrix heuristics vs tuned divisors), its per-call interface
//! overhead, and its support restrictions (LibShalom computes only shapes
//! with `N ≡ K ≡ 0 (mod 8)` and does not build on M2/A64FX; SSL2 exists
//! only on the A64FX; LIBXSMM targets small matrices). All baselines run
//! on the same micro-kernel substrate and simulator as autoGEMM, so the
//! measured deltas isolate exactly those mechanisms.

pub mod exec;
pub mod naive;
pub mod profiles;

pub use exec::{gemm_baseline, simulate_baseline, BaselineReport};
pub use naive::naive_gemm;
pub use profiles::{Baseline, BaselineProfile};

/// All comparison baselines in the paper's Table I column order.
pub fn all_baselines() -> Vec<Baseline> {
    vec![
        Baseline::OpenBlas,
        Baseline::Eigen,
        Baseline::LibShalom,
        Baseline::FastConv,
        Baseline::Libxsmm,
        Baseline::Tvm,
        Baseline::Ssl2,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use autogemm_arch::ChipSpec;

    #[test]
    fn registry_contains_the_table_i_libraries() {
        let names: Vec<&str> = all_baselines().iter().map(|b| b.name()).collect();
        for lib in ["OpenBLAS", "Eigen", "LibShalom", "FastConv", "LIBXSMM", "TVM", "SSL2"] {
            assert!(names.contains(&lib), "missing {lib}");
        }
    }

    #[test]
    fn support_restrictions_match_the_paper() {
        let kp = ChipSpec::kp920();
        let m2 = ChipSpec::m2();
        let a64 = ChipSpec::a64fx();
        // LibShalom: N, K divisible by 8; no M2 / A64FX (Fig 8 caption).
        assert!(Baseline::LibShalom.supports(&kp, 64, 64, 64));
        assert!(!Baseline::LibShalom.supports(&kp, 64, 63, 64));
        assert!(!Baseline::LibShalom.supports(&kp, 64, 64, 12));
        assert!(!Baseline::LibShalom.supports(&m2, 64, 64, 64));
        assert!(!Baseline::LibShalom.supports(&a64, 64, 64, 64));
        // SSL2 is A64FX-only.
        assert!(Baseline::Ssl2.supports(&a64, 64, 64, 64));
        assert!(!Baseline::Ssl2.supports(&kp, 64, 64, 64));
        // LIBXSMM is a small-matrix library (Table I irregular row: N/A).
        assert!(Baseline::Libxsmm.supports(&kp, 64, 64, 64));
        assert!(!Baseline::Libxsmm.supports(&kp, 256, 3136, 64));
    }
}
