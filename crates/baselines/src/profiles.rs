//! Baseline library profiles: how each comparison library tiles, blocks,
//! pipelines and packs.

use autogemm::ExecutionPlan;
use autogemm_arch::ChipSpec;
use autogemm_kernelgen::MicroTile;
use autogemm_perfmodel::ModelOpts;
use autogemm_sim::Warmth;
use autogemm_tiling::{plan_libxsmm, plan_openblas, TilePlan};
use autogemm_tuner::space::{divisors, LoopOrder};
use autogemm_tuner::{Packing, Schedule};

/// The comparison libraries of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// Hand-tuned classic BLAS: fixed 5×16 tile with padded edges, fixed
    /// large-matrix blocking heuristics, always-on packing, and heavy
    /// per-call interface overhead (threading machinery, buffer setup).
    OpenBlas,
    /// Expression-template library: generic edge handling with a modest
    /// 4×8 kernel, fixed blocking, moderate call overhead, no software
    /// pipelining.
    Eigen,
    /// Hand-optimized small/irregular GEMM (the strongest prior art):
    /// rotation, L1 prefetch (modelled as L1-resident operands), offline
    /// packing, tuned blocking — but static edge tiling and no
    /// epilogue/prologue fusion. Computes only `N ≡ K ≡ 0 (mod 8)` and
    /// does not support the M2 or the A64FX.
    LibShalom,
    /// Code-generated convolution-oriented GEMM: 4×20 main tile with edge
    /// strips, auto-tuned blocking, online packing, no rotation/fusion.
    FastConv,
    /// JIT small-matrix specialist: whole problem as one block, edge-strip
    /// tiling, clean generated kernels but no rotation/fusion; small
    /// matrices only.
    Libxsmm,
    /// TVM AOT codegen + auto-tuning: tuned blocking and edge tiling, but
    /// generated (not hand-scheduled) kernels: no rotation, no fusion, no
    /// software prefetch, and per-kernel dispatch overhead.
    Tvm,
    /// Fujitsu SSL2 on the A64FX: solid vendor blocked GEMM for SVE.
    Ssl2,
}

/// A resolved execution profile: everything the executor needs.
pub struct BaselineProfile {
    pub plan: ExecutionPlan,
    /// Fixed per-GEMM-call overhead in cycles (interface, threading
    /// machinery, JIT cache lookup...).
    pub call_overhead_cycles: u64,
    /// Extra per-micro-kernel dispatch overhead in cycles.
    pub per_tile_overhead_cycles: u64,
}

/// Largest divisor of `dim` that is `<= cap` (and a multiple of `align`
/// when possible).
fn capped_divisor(dim: usize, cap: usize, align: usize) -> usize {
    let divs = divisors(dim);
    divs.iter()
        .rev()
        .find(|&&d| d <= cap && d % align == 0)
        .or_else(|| divs.iter().rev().find(|&&d| d <= cap))
        .copied()
        .unwrap_or(dim)
}

impl Baseline {
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::OpenBlas => "OpenBLAS",
            Baseline::Eigen => "Eigen",
            Baseline::LibShalom => "LibShalom",
            Baseline::FastConv => "FastConv",
            Baseline::Libxsmm => "LIBXSMM",
            Baseline::Tvm => "TVM",
            Baseline::Ssl2 => "SSL2",
        }
    }

    /// Whether the library supports the problem on this chip (Fig 8
    /// caption; Table I footnotes).
    pub fn supports(&self, chip: &ChipSpec, m: usize, n: usize, k: usize) -> bool {
        let _ = m;
        match self {
            Baseline::LibShalom => {
                n.is_multiple_of(8) && k.is_multiple_of(8) && chip.id != "m2" && chip.id != "a64fx"
            }
            Baseline::Ssl2 => chip.id == "a64fx",
            Baseline::Libxsmm => m.max(n).max(k) <= 128,
            _ => true,
        }
    }

    /// The main register tile the library's kernels use on a NEON chip
    /// (scaled to the first feasible lane multiple on SVE).
    fn main_tile(&self, chip: &ChipSpec) -> MicroTile {
        let sigma = chip.sigma_lane();
        let scale = |mr: usize, nrv: usize| MicroTile::new(mr, nrv * sigma);
        match self {
            Baseline::OpenBlas => scale(5, 4),
            Baseline::Eigen => scale(4, 2),
            Baseline::LibShalom => scale(5, 4),
            Baseline::FastConv => {
                if scale(4, 5).feasible(sigma) {
                    scale(4, 5)
                } else {
                    scale(4, 2)
                }
            }
            Baseline::Libxsmm => scale(5, 4),
            Baseline::Tvm => scale(5, 4),
            Baseline::Ssl2 => scale(6, 1),
        }
    }

    fn blocking(&self, m: usize, n: usize, k: usize, chip: &ChipSpec) -> (usize, usize, usize) {
        let sigma = chip.sigma_lane();
        match self {
            // Classic large-matrix heuristics, oblivious to small shapes.
            Baseline::OpenBlas => (
                capped_divisor(m, 192, 1),
                capped_divisor(n, 4096, sigma),
                capped_divisor(k, 384, 1),
            ),
            Baseline::Eigen => {
                (capped_divisor(m, 96, 1), capped_divisor(n, 256, sigma), capped_divisor(k, 256, 1))
            }
            // Small-matrix JIT: one block.
            Baseline::Libxsmm => (m, n, k),
            Baseline::Ssl2 => (
                capped_divisor(m, 128, 1),
                capped_divisor(n, 512, sigma),
                capped_divisor(k, 512, 1),
            ),
            // Tuned blocking (LibShalom's analytic model / TVM's search /
            // FastConv's tuner land near our tuner's choices).
            Baseline::LibShalom | Baseline::Tvm | Baseline::FastConv => {
                let s = autogemm_tuner::tune(m, n, k, chip);
                (s.mc, s.nc, s.kc)
            }
        }
    }

    fn tile_plan(&self, mc: usize, nc: usize, kc: usize, chip: &ChipSpec) -> TilePlan {
        let sigma = chip.sigma_lane();
        let tile = self.main_tile(chip);
        let _ = kc;
        match self {
            Baseline::OpenBlas => plan_openblas(mc, nc, tile),
            Baseline::Eigen
            | Baseline::LibShalom
            | Baseline::FastConv
            | Baseline::Libxsmm
            | Baseline::Tvm
            | Baseline::Ssl2 => plan_libxsmm(mc, nc, tile, sigma),
        }
    }

    fn packing(&self, n: usize, chip: &ChipSpec) -> Packing {
        let _ = chip;
        match self {
            Baseline::OpenBlas | Baseline::Eigen | Baseline::Tvm | Baseline::FastConv => {
                Packing::Online
            }
            // LibShalom packs B offline for large matrices (§V-C).
            Baseline::LibShalom => {
                if n >= 256 {
                    Packing::Offline
                } else {
                    Packing::Online
                }
            }
            Baseline::Libxsmm => Packing::None,
            Baseline::Ssl2 => Packing::Online,
        }
    }

    fn opts(&self) -> ModelOpts {
        match self {
            // Hand-scheduled kernels: rotation yes; no cross-kernel fusion.
            Baseline::OpenBlas | Baseline::LibShalom | Baseline::Ssl2 => {
                ModelOpts { rotate: true, fused: false }
            }
            // Generated or generic kernels: neither optimization.
            Baseline::Eigen | Baseline::Libxsmm | Baseline::Tvm | Baseline::FastConv => {
                ModelOpts { rotate: false, fused: false }
            }
        }
    }

    fn warmth(&self) -> Option<Warmth> {
        match self {
            // LibShalom's hand-written L1 prefetching keeps the streams
            // L1-resident even when the block working set spills (this is
            // why it beats autoGEMM at 128³ on the KP920, §V-C).
            Baseline::LibShalom => Some(Warmth::L1),
            _ => None,
        }
    }

    fn overheads(&self) -> (u64, u64) {
        // (per-call, per-tile) cycles.
        match self {
            // cblas interface + thread-pool wake/join + buffer management.
            Baseline::OpenBlas => (110_000, 30),
            // Template dispatch + generic packing paths.
            Baseline::Eigen => (45_000, 40),
            // Purpose-built for small shapes: tiny entry cost.
            Baseline::LibShalom => (1_200, 8),
            Baseline::FastConv => (30_000, 24),
            // The paper's LIBXSMM usage dispatches one JIT'd call per
            // small GEMM tile: the per-tile cost is a full function call
            // through the dispatcher with argument marshalling (~100 ns).
            Baseline::Libxsmm => (9_000, 240),
            // TVM AOT emits one fused kernel per shape; dispatch is per
            // call, not per tile.
            Baseline::Tvm => (6_000, 4),
            Baseline::Ssl2 => (20_000, 16),
        }
    }

    /// Resolve the full execution profile for a problem on a chip.
    ///
    /// Panics if the library does not support the problem — check
    /// [`Baseline::supports`] first.
    pub fn profile(&self, m: usize, n: usize, k: usize, chip: &ChipSpec) -> BaselineProfile {
        assert!(
            self.supports(chip, m, n, k),
            "{} does not support {m}x{n}x{k} on {}",
            self.name(),
            chip.name
        );
        let (mc, nc, kc) = self.blocking(m, n, k, chip);
        let block_plan = self.tile_plan(mc, nc, kc, chip);
        let schedule = Schedule {
            m,
            n,
            k,
            mc,
            nc,
            kc,
            order: LoopOrder::goto(),
            packing: self.packing(n, chip),
        };
        let (call, tile) = self.overheads();
        BaselineProfile {
            plan: ExecutionPlan {
                schedule,
                block_plan,
                opts: self.opts(),
                sigma_lane: chip.sigma_lane(),
                warmth: self.warmth(),
                routing: autogemm::OperandRouting::packed(),
            },
            call_overhead_cycles: call,
            per_tile_overhead_cycles: tile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn openblas_pads_and_others_do_not() {
        let chip = ChipSpec::kp920();
        let ob = Baseline::OpenBlas.profile(26, 36, 64, &chip);
        assert!(ob.plan.block_plan.padded_elems() > 0);
        let xs = Baseline::Tvm.profile(26, 36, 64, &chip);
        assert_eq!(xs.plan.block_plan.padded_elems(), 0);
    }

    #[test]
    fn libshalom_profile_has_prefetch_and_rotation() {
        let chip = ChipSpec::graviton2();
        let p = Baseline::LibShalom.profile(128, 128, 128, &chip);
        assert_eq!(p.plan.warmth, Some(Warmth::L1));
        assert!(p.plan.opts.rotate);
        assert!(!p.plan.opts.fused, "fusion is an autoGEMM novelty");
    }

    #[test]
    fn blockings_divide_the_problem() {
        let chip = ChipSpec::kp920();
        for b in crate::all_baselines() {
            if !b.supports(&chip, 256, 3136, 64) {
                continue;
            }
            let p = b.profile(256, 3136, 64, &chip);
            let s = &p.plan.schedule;
            assert_eq!(256 % s.mc, 0, "{}", b.name());
            assert_eq!(3136 % s.nc, 0, "{}", b.name());
            assert_eq!(64 % s.kc, 0, "{}", b.name());
        }
    }

    #[test]
    fn block_plans_cover_their_blocks() {
        let chip = ChipSpec::graviton2();
        for b in crate::all_baselines() {
            if !b.supports(&chip, 64, 64, 64) {
                continue;
            }
            let p = b.profile(64, 64, 64, &chip);
            p.plan
                .block_plan
                .validate(chip.sigma_lane())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        }
    }

    #[test]
    fn sve_tiles_scale_to_16_lanes() {
        let chip = ChipSpec::a64fx();
        let p = Baseline::Ssl2.profile(64, 64, 64, &chip);
        assert!(p.plan.block_plan.placements.iter().all(|t| t.tile.nr % 16 == 0));
    }
}
