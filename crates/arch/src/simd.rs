//! SIMD instruction-set widths and the derived `σ_lane` parameter.
//!
//! The paper (§III-A) parameterizes its micro-kernels by `σ_lane`, the
//! number of single-precision lanes per vector register: 4 for Armv8 NEON
//! and 16 for 512-bit SVE machines such as the A64FX.

use serde::{Deserialize, Serialize};

/// Maximum number of `f32` lanes any supported SIMD ISA provides.
///
/// Functional simulation stores vector registers as `[f32; MAX_LANES]`;
/// NEON programs only touch the first four lanes.
pub const MAX_LANES: usize = 16;

/// A SIMD instruction set available on some Arm chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimdIsa {
    /// Armv8 Advanced SIMD: 128-bit vectors, 4 × f32 lanes.
    Neon,
    /// Scalable Vector Extension at the A64FX's 512-bit implementation:
    /// 16 × f32 lanes.
    Sve512,
}

impl SimdIsa {
    /// Vector width in bits.
    pub fn bits(self) -> usize {
        match self {
            SimdIsa::Neon => 128,
            SimdIsa::Sve512 => 512,
        }
    }

    /// `σ_lane`: single-precision lanes per vector register.
    pub fn lanes(self) -> usize {
        self.bits() / 32
    }

    /// Bytes moved by one vector load or store.
    pub fn vector_bytes(self) -> usize {
        self.bits() / 8
    }

    /// Number of architectural vector registers. Both NEON and SVE expose
    /// 32, which the paper uses as the register-tiling budget (§III-A1).
    pub fn vector_registers(self) -> usize {
        32
    }

    /// Human-readable name as the paper's Table IV prints it.
    pub fn display_name(self) -> &'static str {
        match self {
            SimdIsa::Neon => "NEON(128)",
            SimdIsa::Sve512 => "SVE(512)",
        }
    }
}

impl std::fmt::Display for SimdIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.display_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neon_has_four_f32_lanes() {
        assert_eq!(SimdIsa::Neon.lanes(), 4);
        assert_eq!(SimdIsa::Neon.vector_bytes(), 16);
    }

    #[test]
    fn sve512_has_sixteen_f32_lanes() {
        assert_eq!(SimdIsa::Sve512.lanes(), 16);
        assert_eq!(SimdIsa::Sve512.vector_bytes(), 64);
    }

    #[test]
    fn lanes_never_exceed_max() {
        for isa in [SimdIsa::Neon, SimdIsa::Sve512] {
            assert!(isa.lanes() <= MAX_LANES);
        }
    }

    #[test]
    fn both_isas_expose_32_registers() {
        assert_eq!(SimdIsa::Neon.vector_registers(), 32);
        assert_eq!(SimdIsa::Sve512.vector_registers(), 32);
    }

    #[test]
    fn display_matches_table_iv() {
        assert_eq!(SimdIsa::Neon.to_string(), "NEON(128)");
        assert_eq!(SimdIsa::Sve512.to_string(), "SVE(512)");
    }
}
